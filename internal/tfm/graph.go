// Package tfm implements the transaction flow model (TFM) that the paper
// (§3.2) uses as its test model: a directed graph whose nodes are public
// features of a component and whose paths from object creation ("birth") to
// destruction ("death") are the allowable method sequences. An individual
// path through the graph is a transaction; the driver generator derives one
// test case per transaction (the transaction coverage criterion of §3.4.1).
package tfm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID names a TFM node (the paper uses n1, n2, ...).
type NodeID string

// Node is a public feature group of the component. A node may list several
// methods: these are alternatives (e.g. overloaded constructors), any one of
// which realizes the node when a transaction traverses it.
type Node struct {
	ID      NodeID
	Methods []string // method identifiers from the t-spec (m1, m2, ...)
	Start   bool     // birth node: object construction
	Final   bool     // death node: object destruction
}

// Clone returns a deep copy of the node.
func (n Node) Clone() Node {
	cp := n
	cp.Methods = append([]string(nil), n.Methods...)
	return cp
}

// Edge is a directed link: the target feature may immediately follow the
// source feature in a transaction.
type Edge struct {
	From, To NodeID
}

// Graph is a transaction flow model. The zero value is unusable; construct
// with New. Graph is not safe for concurrent mutation; concurrent reads are
// safe once construction is done.
type Graph struct {
	name  string
	nodes map[NodeID]*Node
	succ  map[NodeID][]NodeID
	pred  map[NodeID][]NodeID
	edges []Edge
}

// New creates an empty TFM for the named component.
func New(name string) *Graph {
	return &Graph{
		name:  name,
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID][]NodeID),
		pred:  make(map[NodeID][]NodeID),
	}
}

// Name returns the component name the model describes.
func (g *Graph) Name() string { return g.name }

// AddNode inserts a node. Duplicate IDs and empty IDs are rejected.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return errors.New("tfm: node ID must not be empty")
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("tfm: duplicate node %q", n.ID)
	}
	cp := n.Clone()
	g.nodes[n.ID] = &cp
	return nil
}

// AddEdge inserts a directed link between two existing nodes. Parallel
// duplicate edges are rejected; self-loops are allowed (a feature may repeat).
func (g *Graph) AddEdge(from, to NodeID) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("tfm: edge references unknown node %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("tfm: edge references unknown node %q", to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("tfm: duplicate edge %s -> %s", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.edges = append(g.edges, Edge{From: from, To: to})
	return nil
}

// Node returns the node with the given ID, or false.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return n.Clone(), true
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Successors returns the ordered successor list of a node.
func (g *Graph) Successors(id NodeID) []NodeID {
	return append([]NodeID(nil), g.succ[id]...)
}

// Predecessors returns the ordered predecessor list of a node.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	return append([]NodeID(nil), g.pred[id]...)
}

// StartNodes returns the birth nodes sorted by ID.
func (g *Graph) StartNodes() []NodeID { return g.selectNodes(func(n *Node) bool { return n.Start }) }

// FinalNodes returns the death nodes sorted by ID.
func (g *Graph) FinalNodes() []NodeID { return g.selectNodes(func(n *Node) bool { return n.Final }) }

func (g *Graph) selectNodes(keep func(*Node) bool) []NodeID {
	var out []NodeID
	for id, n := range g.nodes {
		if keep(n) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the node count (the paper reports model size as nodes).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the link count (the paper reports model size as links).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Stats summarizes the model the way the paper reports it ("a test model
// composed of 16 nodes and 43 links").
type Stats struct {
	Nodes, Edges, StartNodes, FinalNodes int
}

// Stats returns the model size summary.
func (g *Graph) Stats() Stats {
	return Stats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		StartNodes: len(g.StartNodes()),
		FinalNodes: len(g.FinalNodes()),
	}
}

// String renders the stats line.
func (s Stats) String() string {
	return fmt.Sprintf("%d nodes, %d links (%d start, %d final)", s.Nodes, s.Edges, s.StartNodes, s.FinalNodes)
}

// Validate checks the structural well-formedness rules a usable TFM must
// satisfy. It returns all problems found, joined into a single error, or nil.
func (g *Graph) Validate() error {
	var problems []string
	if len(g.nodes) == 0 {
		problems = append(problems, "model has no nodes")
	}
	starts := g.StartNodes()
	finals := g.FinalNodes()
	if len(g.nodes) > 0 && len(starts) == 0 {
		problems = append(problems, "model has no start (birth) node")
	}
	if len(g.nodes) > 0 && len(finals) == 0 {
		problems = append(problems, "model has no final (death) node")
	}
	for _, n := range g.Nodes() {
		if len(n.Methods) == 0 {
			problems = append(problems, fmt.Sprintf("node %s lists no methods", n.ID))
		}
		if n.Start && n.Final {
			problems = append(problems, fmt.Sprintf("node %s is both start and final", n.ID))
		}
	}
	// Reachability: every node reachable from some start; every node must
	// reach some final node. Unreachable features are unexercisable; dead-end
	// features would leak objects.
	if len(starts) > 0 {
		reach := g.forwardReach(starts)
		for _, n := range g.Nodes() {
			if !reach[n.ID] {
				problems = append(problems, fmt.Sprintf("node %s is unreachable from any start node", n.ID))
			}
		}
	}
	if len(finals) > 0 {
		coreach := g.backwardReach(finals)
		for _, n := range g.Nodes() {
			if !coreach[n.ID] {
				problems = append(problems, fmt.Sprintf("node %s cannot reach any final node", n.ID))
			}
		}
	}
	for _, id := range starts {
		if len(g.pred[id]) > 0 {
			problems = append(problems, fmt.Sprintf("start node %s has incoming edges", id))
		}
	}
	for _, id := range finals {
		if len(g.succ[id]) > 0 {
			problems = append(problems, fmt.Sprintf("final node %s has outgoing edges", id))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("tfm: invalid model %q: %s", g.name, strings.Join(problems, "; "))
}

func (g *Graph) forwardReach(seeds []NodeID) map[NodeID]bool {
	return g.reach(seeds, g.succ)
}

func (g *Graph) backwardReach(seeds []NodeID) map[NodeID]bool {
	return g.reach(seeds, g.pred)
}

func (g *Graph) reach(seeds []NodeID, next map[NodeID][]NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool, len(g.nodes))
	stack := append([]NodeID(nil), seeds...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, next[id]...)
	}
	return seen
}

// Clone returns an independent deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := New(g.name)
	for _, n := range g.Nodes() {
		if err := cp.AddNode(n); err != nil {
			panic("tfm: clone of valid graph failed: " + err.Error())
		}
	}
	for _, e := range g.edges {
		if err := cp.AddEdge(e.From, e.To); err != nil {
			panic("tfm: clone of valid graph failed: " + err.Error())
		}
	}
	return cp
}
