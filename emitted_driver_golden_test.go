package concat

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"concat/internal/tfm"
)

var updateGolden = flag.Bool("update", false, "rewrite the emitted-driver golden files under testdata/emitted")

// emitTargets are the bundled components whose factories are constructible
// with a plain Go expression, which is what EmitOptions.FactoryExpr needs.
// (The generic Stack targets are built through an erred constructor —
// stack.IntStack() returns (factory, error) — so they have no one-expression
// form and are exercised by the e2e test's machinery instead.)
var emitTargets = []struct {
	name        string
	importPath  string
	factoryExpr string
}{
	{"Account", "concat/internal/components/account", "account.NewFactory()"},
	{"ObList", "concat/internal/components/oblist", "oblist.NewFactory()"},
	{"SortableObList", "concat/internal/components/sortlist", "sortlist.NewFactory()"},
	{"Product", "concat/internal/components/product", "product.NewFactory()"},
	{"OrderSystem", "concat/internal/components/ordersys", "ordersys.NewFactory()"},
}

// emitDriverSource generates the deterministic driver source the golden
// files pin: fixed seed, bounded enumeration so the files stay reviewable.
func emitDriverSource(t *testing.T, name, importPath, factoryExpr string) []byte {
	t.Helper()
	comp := Target(name)
	if comp == nil {
		t.Fatalf("unknown target %q", name)
	}
	suite, err := Generate(comp.Spec(), GenOptions{
		Seed: 42,
		Enum: tfm.EnumOptions{MaxTransactions: 12},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var src bytes.Buffer
	if err := EmitDriver(&src, suite, EmitOptions{
		ComponentImport: importPath,
		FactoryExpr:     factoryExpr,
	}); err != nil {
		t.Fatalf("EmitDriver: %v", err)
	}
	return src.Bytes()
}

// TestEmittedDriverGolden pins the emitter's output for every bundled
// component against committed golden files: any change to driver
// generation, argument sampling, or the emitter's layout shows up as a
// reviewable diff. Regenerate with `go test -run TestEmittedDriverGolden
// -update .`.
func TestEmittedDriverGolden(t *testing.T) {
	for _, tgt := range emitTargets {
		t.Run(tgt.name, func(t *testing.T) {
			got := emitDriverSource(t, tgt.name, tgt.importPath, tgt.factoryExpr)
			path := filepath.Join("testdata", "emitted", tgt.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("emitted driver differs from %s (regenerate with -update if intended):\n%s",
					path, firstLineDiff(want, got))
			}
		})
	}
}

// TestEmittedDriverGoldenIsStable guards the generator's determinism claim
// directly: emitting twice with the same seed yields identical source.
func TestEmittedDriverGoldenIsStable(t *testing.T) {
	for _, tgt := range emitTargets {
		a := emitDriverSource(t, tgt.name, tgt.importPath, tgt.factoryExpr)
		b := emitDriverSource(t, tgt.name, tgt.importPath, tgt.factoryExpr)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two emissions with the same seed differ:\n%s", tgt.name, firstLineDiff(a, b))
		}
	}
}

// firstLineDiff points at the first differing line of two sources.
func firstLineDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}
