package driver

import (
	"fmt"

	"concat/internal/domain"
	"concat/internal/tspec"
)

// SoakOptions configure random-walk suite generation.
type SoakOptions struct {
	// Seed drives both the walks and the argument sampling.
	Seed int64
	// Cases is the number of random transactions to generate.
	Cases int
	// MaxLength bounds each walk; zero means 4x the node count.
	MaxLength int
}

// GenerateSoak produces a suite of random transactions: each test case is
// one random walk through the TFM from a birth node to a death node, with
// arguments drawn from the declared domains. Where the systematic generator
// (Generate) enumerates the bounded transaction space once, the soak
// generator samples the unbounded space — long, repetitive method sequences
// the enumeration's loop bound excludes. It is the load/endurance-testing
// complement the transaction flow model supports "for free".
func GenerateSoak(spec *tspec.Spec, opts SoakOptions) (*Suite, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
	}
	if opts.Cases <= 0 {
		opts.Cases = 100
	}
	g, err := spec.TFM()
	if err != nil {
		return nil, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
	}
	rng := domain.NewRand(opts.Seed)
	suite := &Suite{
		Component: spec.Class.Name,
		Seed:      opts.Seed,
		Criterion: "random-walk",
	}
	for i := 0; i < opts.Cases; i++ {
		tr, err := g.RandomWalk(rng, opts.MaxLength)
		if err != nil {
			return nil, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
		}
		combo := make([]string, len(tr.Path))
		for j, nodeID := range tr.Path {
			n, ok := spec.NodeByID(string(nodeID))
			if !ok || len(n.Methods) == 0 {
				return nil, fmt.Errorf("driver: walk visited unusable node %s", nodeID)
			}
			combo[j] = n.Methods[rng.IntN(len(n.Methods))]
		}
		tc, err := buildCase(spec, tr, combo, rng, i)
		if err != nil {
			return nil, err
		}
		suite.Cases = append(suite.Cases, tc)
	}
	return suite, nil
}
