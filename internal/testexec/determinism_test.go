package testexec_test

// The determinism suite is the contract behind Options.Parallelism: for any
// bundled component and any worker count, a parallel run must produce a
// Report bit-for-bit identical to the serial run with the same suite seed —
// same outcomes, same transcripts, same per-case seeds, same order. This is
// what makes parallel mutation campaigns trustworthy: parallelism may only
// ever change wall clock, never results.

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"concat/internal/core"
	"concat/internal/driver"
	"concat/internal/testexec"
)

// targetNames returns every bundled component name, sorted for stable
// subtest ordering.
func targetNames() []string {
	var names []string
	for name := range core.Targets() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func TestParallelRunMatchesSerialForAllComponents(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, name := range targetNames() {
		t.Run(name, func(t *testing.T) {
			tgt, err := core.LookupTarget(name)
			if err != nil {
				t.Fatalf("LookupTarget: %v", err)
			}
			comp := tgt.New(nil)
			suite, err := comp.GenerateSuite(driver.Options{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4})
			if err != nil {
				t.Fatalf("GenerateSuite: %v", err)
			}
			serial, err := comp.RunSuite(suite, testexec.Options{Seed: 42})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if len(serial.Results) != len(suite.Cases) {
				t.Fatalf("serial results = %d, cases = %d", len(serial.Results), len(suite.Cases))
			}
			for _, n := range parallelisms {
				par, err := comp.RunSuite(suite, testexec.Options{Seed: 42, Parallelism: n})
				if err != nil {
					t.Fatalf("parallel(%d) run: %v", n, err)
				}
				assertReportsIdentical(t, serial, par, n)
			}
		})
	}
}

// assertReportsIdentical compares two reports field by field so a failure
// names the first divergent case rather than dumping both reports.
func assertReportsIdentical(t *testing.T, serial, par *testexec.Report, n int) {
	t.Helper()
	if par.Component != serial.Component {
		t.Fatalf("parallel(%d) component = %q, want %q", n, par.Component, serial.Component)
	}
	if len(par.Results) != len(serial.Results) {
		t.Fatalf("parallel(%d) results = %d, want %d", n, len(par.Results), len(serial.Results))
	}
	for i := range serial.Results {
		want, got := serial.Results[i], par.Results[i]
		if got.CaseID != want.CaseID {
			t.Fatalf("parallel(%d) case %d: ID %q, want %q (order not preserved)", n, i, got.CaseID, want.CaseID)
		}
		if got.Seed != want.Seed {
			t.Errorf("parallel(%d) case %s: seed %d, want %d", n, want.CaseID, got.Seed, want.Seed)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallel(%d) case %s diverged:\n got: %+v\nwant: %+v", n, want.CaseID, got, want)
		}
	}
	if !reflect.DeepEqual(par.BITSites, serial.BITSites) {
		t.Errorf("parallel(%d) BITSites diverged:\n got: %+v\nwant: %+v", n, par.BITSites, serial.BITSites)
	}
}

// TestCaseSeedDependsOnIdentityNotOrder pins the seed-derivation scheme:
// seeds are a function of (suite seed, case ID) only.
func TestCaseSeedDependsOnIdentityNotOrder(t *testing.T) {
	if testexec.CaseSeed(42, "TC0") != testexec.CaseSeed(42, "TC0") {
		t.Error("CaseSeed not deterministic")
	}
	if testexec.CaseSeed(42, "TC0") == testexec.CaseSeed(42, "TC1") {
		t.Error("distinct case IDs should get distinct seeds")
	}
	if testexec.CaseSeed(42, "TC0") == testexec.CaseSeed(43, "TC0") {
		t.Error("distinct suite seeds should get distinct case seeds")
	}
}

// TestParallelRunRecordsSeeds asserts the executed report carries the
// derived per-case seed for every case, serial or parallel.
func TestParallelRunRecordsSeeds(t *testing.T) {
	tgt, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	comp := tgt.New(nil)
	suite, err := comp.GenerateSuite(driver.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3} {
		rep, err := comp.RunSuite(suite, testexec.Options{Seed: 7, Parallelism: n})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range rep.Results {
			if res.Seed != testexec.CaseSeed(7, res.CaseID) {
				t.Fatalf("parallelism %d: case %s seed = %d, want CaseSeed = %d",
					n, res.CaseID, res.Seed, testexec.CaseSeed(7, res.CaseID))
			}
		}
	}
}

// TestParallelRunWithGoldenOracle exercises the oracle path under
// concurrency: a golden recorded from a serial run must accept a parallel
// rerun, and flag a doctored reference identically in both modes.
func TestParallelRunWithGoldenOracle(t *testing.T) {
	tgt, err := core.LookupTarget("Account")
	if err != nil {
		t.Fatal(err)
	}
	comp := tgt.New(nil)
	suite, err := comp.GenerateSuite(driver.Options{Seed: 13, ExpandAlternatives: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := comp.RunSuite(suite, testexec.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	golden := testexec.NewGolden(ref)
	rep, err := comp.RunSuite(suite, testexec.Options{Seed: 13, Oracle: golden, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("parallel golden-checked rerun failed: %+v", rep.Failures())
	}
	// A different suite seed changes hole-completion streams; components
	// without holes still pass, so only assert the run completes and the
	// report stays ordered.
	rep2, err := comp.RunSuite(suite, testexec.Options{Seed: 14, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range rep2.Results {
		if res.CaseID != suite.Cases[i].ID {
			t.Fatalf("result %d out of order: %s", i, res.CaseID)
		}
	}
}
