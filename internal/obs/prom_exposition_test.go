package obs

import (
	"bufio"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLabeledSortsAndEscapes pins the Labeled contract: pairs sort by key
// and values carry exposition-format escapes, so the same logical series
// always produces the same internal name.
func TestLabeledSortsAndEscapes(t *testing.T) {
	got := Labeled("http_requests", "route", "/campaigns", "code", "202", "method", "POST")
	want := `http_requests{code="202",method="POST",route="/campaigns"}`
	if got != want {
		t.Errorf("Labeled = %q, want %q", got, want)
	}
	got = Labeled("f", "k", "a\\b\"c\nd")
	want = `f{k="a\\b\"c\nd"}`
	if got != want {
		t.Errorf("Labeled escaping = %q, want %q", got, want)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:        `plain`,
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"\\\"\n":       `\\\"\n`,
		"tab\tstays":   "tab\tstays", // only \, " and LF are special
		"utf8 héllo ✓": "utf8 héllo ✓",
	} {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusExpositionFormat walks the rendered text line by line
// and checks the exposition-format invariants the satellite pins: every
// family introduced by exactly one HELP line immediately followed by its
// TYPE line, label values escaped, sample lines shaped `name{labels} value`.
func TestWritePrometheusExpositionFormat(t *testing.T) {
	m := NewMetrics()
	m.Inc("case.outcome.pass", 3)
	m.Inc(Labeled("http_requests", "route", "/campaigns", "method", "POST", "code", "202"), 7)
	m.Inc(Labeled("weird", "v", "a\\b\"c\nd"), 1)
	m.Observe(Labeled("http_request_duration", "route", "/campaigns", "method", "POST"), "", 250*time.Microsecond)
	var b strings.Builder
	if err := m.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP concat_http_requests_total ",
		"# TYPE concat_http_requests_total counter",
		`concat_http_requests_total{code="202",method="POST",route="/campaigns"} 7`,
		`concat_weird_total{v="a\\b\"c\nd"} 1`,
		"# HELP concat_http_request_duration_seconds ",
		"# TYPE concat_http_request_duration_seconds histogram",
		`concat_http_request_duration_seconds_bucket{method="POST",route="/campaigns",le="0.001"} 1`,
		`concat_http_request_duration_seconds_count{method="POST",route="/campaigns"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// A raw newline inside a label value would split the sample across two
	// lines; the escaped form must keep every sample on one line.
	sc := bufio.NewScanner(strings.NewReader(out))
	var prevHelpFamily string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Errorf("blank line in exposition output")
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Errorf("HELP line without docstring: %q", line)
			}
			prevHelpFamily = fields[2]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			if fields[2] != prevHelpFamily {
				t.Errorf("TYPE for %s not preceded by its HELP line", fields[2])
			}
			if k := fields[3]; k != "counter" && k != "histogram" && k != "gauge" {
				t.Errorf("unknown metric kind in %q", line)
			}
			continue
		}
		// Sample line: name (with optional {labels}) space value.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Errorf("unbalanced label braces in %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsConcurrent hammers one Metrics with parallel Inc, Observe and
// Snapshot from many goroutines; -race turns any unsynchronized access into
// a failure, and the final counts must equal the work submitted.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Inc("shared.counter", 1)
				m.Inc(Labeled("http_requests", "route", "/campaigns", "method", "POST", "code", "202"), 1)
				m.Observe("shared.duration", "", time.Duration(i+1)*time.Microsecond)
				if i%10 == 0 {
					snap := m.Snapshot()
					var b strings.Builder
					if err := snap.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot()
	if got := snap.Counters["shared.counter"]; got != goroutines*perG {
		t.Errorf("shared.counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counters[Labeled("http_requests", "route", "/campaigns", "method", "POST", "code", "202")]; got != goroutines*perG {
		t.Errorf("labeled counter = %d, want %d", got, goroutines*perG)
	}
	h, ok := snap.Durations["shared.duration"]
	if !ok || h.Count != goroutines*perG {
		t.Errorf("shared.duration count = %+v, want %d observations", h, goroutines*perG)
	}
}
