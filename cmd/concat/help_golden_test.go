package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestHelpGolden pins `concat help` byte for byte: the help text is the
// CLI's public contract, and a subcommand added (or renamed) without a
// deliberate golden update is a review-visible event. Refresh with
// `go test ./cmd/concat -run TestHelpGolden -update`.
func TestHelpGolden(t *testing.T) {
	got := mustRunCLI(t, "help")
	goldenPath := filepath.Join("testdata", "help.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("help output deviates from testdata/help.golden (run with -update after a deliberate change):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Structural guards, independent of the golden bytes: the service
	// subcommands are advertised, the hidden case server is not.
	for _, cmd := range []string{"serve", "submit", "status", "mutate", "trace-validate"} {
		if !strings.Contains(got, "\n  "+cmd) {
			t.Errorf("help does not list subcommand %q", cmd)
		}
	}
	if strings.Contains(got, "run-case") {
		t.Error("help leaks the hidden run-case subcommand")
	}
	if !strings.Contains(got, "exit codes:") {
		t.Error("help does not document the exit-code contract")
	}
}
