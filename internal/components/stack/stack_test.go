package stack

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

func intFactory(t *testing.T) *Factory[int64] {
	t.Helper()
	f, err := IntStack()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenericCoreBehaviour(t *testing.T) {
	var s Stack[string]
	if _, err := s.Pop(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Pop err = %v", err)
	}
	if _, err := s.Top(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Top err = %v", err)
	}
	if err := s.Push("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Push("b"); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Top(); err != nil || v != "b" {
		t.Errorf("Top = %q, %v", v, err)
	}
	if v, err := s.Pop(); err != nil || v != "b" {
		t.Errorf("Pop = %q, %v", v, err)
	}
	if s.Size() != 1 {
		t.Errorf("Size = %d", s.Size())
	}
	s.Clear()
	if s.Size() != 0 {
		t.Error("Clear left elements")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant: %v", err)
	}
}

func TestDepthBound(t *testing.T) {
	var s Stack[int]
	for i := 0; i < MaxDepth; i++ {
		if err := s.Push(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := s.Push(999); err == nil {
		t.Error("push beyond MaxDepth should fail")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant at capacity: %v", err)
	}
}

func TestLIFOProperty(t *testing.T) {
	prop := func(vs []int64) bool {
		var s Stack[int64]
		if len(vs) > MaxDepth {
			vs = vs[:MaxDepth]
		}
		for _, v := range vs {
			if err := s.Push(v); err != nil {
				return false
			}
		}
		for i := len(vs) - 1; i >= 0; i-- {
			got, err := s.Pop()
			if err != nil || got != vs[i] {
				return false
			}
		}
		_, err := s.Pop()
		return errors.Is(err, ErrEmpty)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInstantiateValidation(t *testing.T) {
	if _, err := Instantiate(Instantiation[int64]{}); err == nil {
		t.Error("empty instantiation should fail")
	}
	if _, err := Instantiate(Instantiation[int64]{
		Name:      "Bad",
		Elem:      tspec.DomainDecl{}, // unbuildable domain
		FromValue: func(v domain.Value) (int64, error) { return v.AsInt() },
		ToValue:   domain.Int,
	}); err == nil {
		t.Error("unbuildable element domain should fail spec instantiation")
	}
}

func TestInstantiationsShareTheModel(t *testing.T) {
	fi := intFactory(t)
	fs, err := StringStack()
	if err != nil {
		t.Fatal(err)
	}
	gi, err := fi.Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	gs, err := fs.Spec().TFM()
	if err != nil {
		t.Fatal(err)
	}
	if gi.Stats() != gs.Stats() {
		t.Errorf("instantiated models differ: %v vs %v", gi.Stats(), gs.Stats())
	}
	// Only the element domain differs.
	mi, _ := fi.Spec().MethodByName("Push")
	ms, _ := fs.Spec().MethodByName("Push")
	if mi.Params[0].Domain.Kind == ms.Params[0].Domain.Kind {
		t.Error("instantiations should have different element domains")
	}
}

func TestBothInstantiationsSelfTest(t *testing.T) {
	fi := intFactory(t)
	fs, err := StringStack()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []component.Factory{fi, fs} {
		suite, err := driver.Generate(f.Spec(), driver.Options{
			Seed: 42, ExpandAlternatives: true, MaxAlternatives: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		rep, err := testexec.Run(suite, f, testexec.Options{})
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if !rep.AllPassed() {
			t.Fatalf("%s failures: %+v", f.Name(), rep.Failures()[:1])
		}
	}
}

func TestInstanceLifecycle(t *testing.T) {
	f := intFactory(t)
	if _, err := f.New("Nope", nil); err == nil {
		t.Error("wrong ctor name should fail")
	}
	inst, err := f.New("StackOfInt", nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	if _, err := inst.Invoke("Push", []domain.Value{domain.Int(7)}); err != nil {
		t.Fatal(err)
	}
	out, err := inst.Invoke("Top", nil)
	if err != nil || out[0].MustInt() != 7 {
		t.Errorf("Top = %v, %v", out, err)
	}
	// Type mismatch through the generic boundary.
	if _, err := inst.Invoke("Push", []domain.Value{domain.Str("x")}); err == nil {
		t.Error("string push into int stack should fail")
	}
	var sb strings.Builder
	if err := inst.Reporter(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "StackOfInt{size: 1}") {
		t.Errorf("report = %q", sb.String())
	}
	if err := inst.InvariantTest(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("Size", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy err = %v", err)
	}
}
