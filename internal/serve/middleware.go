// HTTP observability for the campaign service: per-endpoint RED metrics
// (rate, errors, duration) recorded into the server's obs.Metrics, an
// in-flight gauge, per-request IDs, and NDJSON structured access logs.
//
// Everything here is a side channel with the same determinism bar as span
// tracing (PR 3): instrumentation observes requests after the handler
// produced its bytes and never feeds anything back into the campaign
// machinery, so an access-logged request produces a byte-identical campaign
// report to an unlogged one — a regression test pins that.

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/obs"
	"concat/internal/store"
)

// statusRecorder captures the response status and byte count while
// preserving the http.Flusher the events stream depends on.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLogEntry is one NDJSON access-log line. Fields involving time are
// wall-clock and belong to the side channel only; everything else is a pure
// function of the request and response.
type AccessLogEntry struct {
	Time   string `json:"ts"`
	ID     string `json:"id"`
	Method string `json:"method"`
	Route  string `json:"route"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	Bytes  int64  `json:"bytes"`
	DurUS  int64  `json:"durUs"`
	Remote string `json:"remote,omitempty"`
}

// accessLogger serializes NDJSON access-log lines onto one writer.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(e AccessLogEntry) {
	if l == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	_, _ = l.w.Write(append(line, '\n'))
	l.mu.Unlock()
}

// instrument wraps one route's handler with the RED recorder: request
// counter by (route, method, code), latency histogram by (route, method),
// the process-wide in-flight gauge, a per-request ID threaded into the
// response (X-Request-ID) and the access log. The route label is the
// registration pattern's path — bounded cardinality, never the raw URL.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%08d", s.nRequests.Add(1))
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		s.inFlight.Add(1)
		start := time.Now()
		h(rec, r)
		dur := time.Since(start)
		s.inFlight.Add(-1)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.Inc(obs.Labeled("http_requests",
			"route", route, "method", r.Method, "code", strconv.Itoa(rec.status)), 1)
		s.metrics.Observe(obs.Labeled("http_request_duration",
			"route", route, "method", r.Method), "", dur)
		s.accessLog.log(AccessLogEntry{
			Time:   start.UTC().Format(time.RFC3339Nano),
			ID:     id,
			Method: r.Method,
			Route:  route,
			Path:   r.URL.Path,
			Status: rec.status,
			Bytes:  rec.bytes,
			DurUS:  dur.Microseconds(),
			Remote: r.RemoteAddr,
		})
	}
}

// subscriber is one live /events client, registered for the scrape-time
// subscriber-count and broadcast-lag gauges.
type subscriber struct {
	job *Job
	off atomic.Int64
}

// addSubscriber registers a live events stream and returns its handle plus
// the deregistration func.
func (s *Server) addSubscriber(j *Job) (*subscriber, func()) {
	sub := &subscriber{job: j}
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = make(map[*subscriber]struct{})
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	return sub, func() {
		s.subMu.Lock()
		delete(s.subs, sub)
		s.subMu.Unlock()
	}
}

// subscriberStats snapshots the events gauges: the number of live /events
// streams and the worst broadcast lag (bytes written to a followed job's
// trace that its slowest subscriber has not yet consumed).
func (s *Server) subscriberStats() (count int, maxLag int64) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for sub := range s.subs {
		count++
		if lag := int64(sub.job.Trace().Len()) - sub.off.Load(); lag > maxLag {
			maxLag = lag
		}
	}
	return count, maxLag
}

// timedStore wraps the configured verdict-store backend with read-path
// timing: every Get records into the store.get.duration histogram (the
// concat_store_get_duration_seconds family on /metrics). Writes and stats
// pass through untouched. The wrapper is only installed over an enabled
// backend — runCampaign paths use it, while Config.Store keeps its original
// dynamic type for the RawBackend /store mount and Enabled checks.
type timedStore struct {
	inner   store.Backend
	metrics *obs.Metrics
}

func (t *timedStore) Get(k store.Key, out any) (bool, error) {
	start := time.Now()
	ok, err := t.inner.Get(k, out)
	t.metrics.Observe("store.get.duration", "", time.Since(start))
	return ok, err
}

func (t *timedStore) Put(k store.Key, value any) error { return t.inner.Put(k, value) }

func (t *timedStore) Len() (entries, skipped int, err error) { return t.inner.Len() }

func (t *timedStore) Stats() store.Stats { return t.inner.Stats() }
