// Kill-matrix and oracle-attribution views of a mutation campaign. The
// paper reports its experiments as aggregate tables (Tables 2-3) plus the
// observation that 59 of 652 kills were "due to assertion violation"; these
// projections make both first-class: a per-mutant row naming the verdict,
// the killing case and the kill reason, and a per-operator attribution of
// kills to the three criteria of §4 (crash, assertion violation, output
// difference). Both are pure functions of Result.Mutants — replaying a
// campaign from the verdict store reconstructs them bit-for-bit.

package analysis

import "sort"

// KillRow is one mutant's line in the mutant×case kill matrix.
type KillRow struct {
	Mutant   string `json:"mutant"`
	Operator string `json:"operator"`
	Method   string `json:"method"`
	Killed   bool   `json:"killed"`
	// Reason is the kill criterion ("crash", "assertion", "output-diff"),
	// empty for survivors.
	Reason string `json:"reason,omitempty"`
	// KillingCase is the first test case that killed the mutant, empty for
	// survivors — the matrix is sparse because the analysis stops a mutant
	// at its first kill, exactly like the paper's driver.
	KillingCase string `json:"killingCase,omitempty"`
	Reached     bool   `json:"reached"`
	Infected    bool   `json:"infected"`
	Equivalent  bool   `json:"equivalent"`
}

// KillMatrix projects the campaign into per-mutant rows, in campaign order
// (mutant enumeration order, which is deterministic).
func (r *Result) KillMatrix() []KillRow {
	if r == nil || len(r.Mutants) == 0 {
		return nil
	}
	rows := make([]KillRow, 0, len(r.Mutants))
	for _, m := range r.Mutants {
		row := KillRow{
			Mutant:     m.Mutant.ID,
			Operator:   m.Mutant.Operator.String(),
			Method:     m.Mutant.Method,
			Killed:     m.Killed,
			Reached:    m.Reached,
			Infected:   m.Infected,
			Equivalent: m.Equivalent(),
		}
		if m.Killed {
			row.Reason = m.Reason.String()
			row.KillingCase = m.KillingCase
		}
		rows = append(rows, row)
	}
	return rows
}

// OperatorAttribution charges each operator's kills to the oracle that
// earned them: the crash containment, the BIT assertion oracle, or the
// golden output comparison.
type OperatorAttribution struct {
	Operator     string `json:"operator"`
	Mutants      int    `json:"mutants"`
	Killed       int    `json:"killed"`
	ByCrash      int    `json:"byCrash"`
	ByAssertion  int    `json:"byAssertion"`
	ByOutputDiff int    `json:"byOutputDiff"`
	Equivalent   int    `json:"equivalent"`
	Alive        int    `json:"alive"` // survivors excluding equivalence candidates
}

// OracleAttribution aggregates the kill matrix per operator, sorted by
// operator name for a deterministic artifact.
func (r *Result) OracleAttribution() []OperatorAttribution {
	if r == nil || len(r.Mutants) == 0 {
		return nil
	}
	byOp := make(map[string]*OperatorAttribution)
	var names []string
	for _, m := range r.Mutants {
		name := m.Mutant.Operator.String()
		a := byOp[name]
		if a == nil {
			a = &OperatorAttribution{Operator: name}
			byOp[name] = a
			names = append(names, name)
		}
		a.Mutants++
		switch {
		case m.Killed:
			a.Killed++
			switch m.Reason {
			case KillCrash:
				a.ByCrash++
			case KillAssertion:
				a.ByAssertion++
			case KillOutputDiff:
				a.ByOutputDiff++
			}
		case m.Equivalent():
			a.Equivalent++
		default:
			a.Alive++
		}
	}
	sort.Strings(names)
	out := make([]OperatorAttribution, len(names))
	for i, n := range names {
		out[i] = *byOp[n]
	}
	return out
}
