package sandbox

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestBudgetSteps(t *testing.T) {
	b := NewBudget(3, 0)
	for i := 0; i < 3; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step %d: unexpected error %v", i, err)
		}
	}
	err := b.Step()
	if err == nil {
		t.Fatal("fourth step should exhaust a 3-step budget")
	}
	if !IsExhausted(err) {
		t.Fatalf("exhaustion not classified: %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Resource != "step" || ex.Limit != 3 {
		t.Fatalf("wrong exhaustion detail: %+v", ex)
	}
}

func TestBudgetBytes(t *testing.T) {
	b := NewBudget(0, 10)
	if err := b.Charge(10); err != nil {
		t.Fatalf("charge within budget: %v", err)
	}
	if err := b.Charge(1); err == nil || !IsExhausted(err) {
		t.Fatalf("over-budget charge not exhausted: %v", err)
	}
	if b.BytesUsed() != 11 {
		t.Fatalf("BytesUsed = %d, want 11", b.BytesUsed())
	}
}

func TestBudgetNilAndUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Step(); err != nil {
		t.Fatalf("nil budget must never exhaust: %v", err)
	}
	if err := b.Charge(1 << 40); err != nil {
		t.Fatalf("nil budget must never exhaust: %v", err)
	}
	u := NewBudget(0, 0)
	for i := 0; i < 10_000; i++ {
		if err := u.Step(); err != nil {
			t.Fatalf("unlimited budget exhausted at %d: %v", i, err)
		}
	}
}

func TestBudgetConcurrentExhaustion(t *testing.T) {
	// Exactly limit steps succeed no matter how the charges interleave.
	const limit, workers, per = 100, 8, 50
	b := NewBudget(limit, 0)
	var ok, failed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := b.Step()
				mu.Lock()
				if err == nil {
					ok++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if ok != limit || failed != workers*per-limit {
		t.Fatalf("ok=%d failed=%d, want %d/%d", ok, failed, limit, workers*per-limit)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Abandon()
	l.Abandon()
	if l.Abandoned() != 2 || l.Outstanding() != 2 {
		t.Fatalf("abandoned=%d outstanding=%d, want 2/2", l.Abandoned(), l.Outstanding())
	}
	l.Settle()
	if l.Outstanding() != 1 || l.Settled() != 1 {
		t.Fatalf("outstanding=%d settled=%d, want 1/1", l.Outstanding(), l.Settled())
	}
	var nl *Ledger
	nl.Abandon() // must not panic
	nl.Settle()
	if nl.Outstanding() != 0 {
		t.Fatal("nil ledger should read zero")
	}
}

func TestRetryTransient(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("spawn: %w", syscall.EAGAIN)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryDeterministicFailureNotRetried(t *testing.T) {
	calls := 0
	permanent := errors.New("component is broken")
	err := Retry(RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d: deterministic errors must not be retried", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		return syscall.ETXTBSY
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 attempts", err, calls)
	}
	if !errors.Is(err, syscall.ETXTBSY) {
		t.Fatalf("final error lost its cause: %v", err)
	}
}

func TestRunProcessExitCodes(t *testing.T) {
	res, err := RunProcess(ProcessSpec{Argv: []string{"/bin/sh", "-c", "exit 66"}})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if res.ExitCode != 66 || res.TimedOut {
		t.Fatalf("exit=%d timedOut=%v, want 66/false", res.ExitCode, res.TimedOut)
	}
	if res.FatalSummary == "" {
		t.Fatal("abnormal exit should carry a summary")
	}
}

func TestRunProcessTimeout(t *testing.T) {
	res, err := RunProcess(ProcessSpec{
		Argv:    []string{"/bin/sh", "-c", "sleep 30"},
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !res.TimedOut {
		t.Fatalf("expected timeout kill, got exit=%d", res.ExitCode)
	}
}

func TestRunProcessOutputCap(t *testing.T) {
	res, err := RunProcess(ProcessSpec{
		Argv:           []string{"/bin/sh", "-c", "yes x | head -c 100000"},
		MaxOutputBytes: 1024,
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if len(res.Stdout) != 1024 {
		t.Fatalf("stdout length %d, want capped at 1024", len(res.Stdout))
	}
}

func TestRunProcessSpawnFailure(t *testing.T) {
	_, err := RunProcess(ProcessSpec{Argv: []string{"/nonexistent/binary"}})
	if err == nil {
		t.Fatal("spawn of a missing binary must fail")
	}
}

func TestSummarizeFatal(t *testing.T) {
	stderr := []byte("runtime: goroutine stack exceeds 67108864-byte limit\nfatal error: stack overflow\n\ngoroutine 1 [running]:\nmain.f(0xc000...)\n")
	got := SummarizeFatal("exit status 2", stderr)
	want := "fatal error: stack overflow (exit status 2)"
	if got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	if got := SummarizeFatal("exit status 66", nil); got != "exit status 66" {
		t.Fatalf("plain exit summary = %q", got)
	}
}
