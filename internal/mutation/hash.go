package mutation

import "concat/internal/core/canon"

// CanonicalJSON returns the mutant's canonical wire encoding: the same
// document MarshalJSON produces, rewritten with sorted keys and stable
// number handling (see internal/core/canon). Two mutants with the same
// identity canonicalize to byte-identical output no matter which process
// encoded them — this is the form the verdict store hashes.
func (m Mutant) CanonicalJSON() ([]byte, error) {
	return canon.Marshal(m)
}

// Hash returns the mutant's content address: the hex SHA-256 of its
// canonical encoding. Editing any part of the mutant's identity — site,
// operator, replacement, constant — changes the hash, which is what makes
// incremental campaign re-runs re-execute exactly the edited mutants.
func (m Mutant) Hash() (string, error) {
	return canon.Hash(m)
}
