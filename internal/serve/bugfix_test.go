// Regression tests for the service-layer bugfixes: the events stream must
// flush its response headers before the first trace chunk, and Retry-After
// must stay within its ceiling no matter how deep and slow the queue is.

package serve

import (
	"io"
	"net/http"
	"testing"
	"time"

	"concat/internal/analysis"
)

// TestEventsHeadersFlushedBeforeFirstEvent pins the subscribe-time flush: a
// client subscribing to a submitted but still-quiet campaign (no trace
// spans yet) must receive the 200 and content type immediately instead of
// hanging until the first span lands.
func TestEventsHeadersFlushedBeforeFirstEvent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	s.campaign = func(j *Job) (*analysis.Result, []byte, error) {
		close(started)
		<-release
		return nil, []byte("stub report\n"), nil
	}
	st, code := submit(t, ts, Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started

	// The campaign is pinned before writing any span. Without the
	// subscribe-time flush this Get blocks until the timeout because no
	// response bytes ever leave the server.
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		close(release)
		t.Fatalf("subscriber to a quiet campaign got no response headers: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("events subscribe = HTTP %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	close(release)
	// The stream still terminates cleanly when the job finishes.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Errorf("draining events stream: %v", err)
	}
}

// TestRetryAfterSecondsCapped pins the Retry-After ceiling: a deep queue of
// slow campaigns must advise maxRetryAfterSeconds, not a multi-hour value a
// well-behaved client would actually honor.
func TestRetryAfterSecondsCapped(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(s.Close)

	set := func(durs []time.Duration, queued int) {
		s.mu.Lock()
		s.durs = durs
		s.queued = queued
		s.mu.Unlock()
	}
	// 10 queued jobs averaging 2 hours: uncapped this is 72000 seconds.
	set([]time.Duration{2 * time.Hour}, 10)
	if got := s.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Errorf("deep slow queue: Retry-After = %d, want the %d cap", got, maxRetryAfterSeconds)
	}
	// Empty queue keeps the 1-second floor.
	set(nil, 0)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("idle server: Retry-After = %d, want the 1s floor", got)
	}
	// In between, the estimate passes through untouched: 3 * 2s / 1 = 6.
	set([]time.Duration{2 * time.Second}, 3)
	if got := s.retryAfterSeconds(); got != 6 {
		t.Errorf("moderate queue: Retry-After = %d, want 6", got)
	}
	set(nil, 0) // leave the bookkeeping consistent for Close
}
