module concat

go 1.22
