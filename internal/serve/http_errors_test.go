// Table-driven error-path coverage for the whole HTTP surface: unknown
// IDs, malformed bodies, wrong methods, and the remote-store and shard
// endpoints' error codes. Real multi-node clients hit these paths first.

package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"concat/internal/store"
)

func TestHTTPErrorPaths(t *testing.T) {
	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: fs})
	absentID := strings.Repeat("a", 64)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"status unknown id", http.MethodGet, "/campaigns/zz", "", http.StatusNotFound},
		{"report unknown id", http.MethodGet, "/campaigns/zz/report", "", http.StatusNotFound},
		{"coverage unknown id", http.MethodGet, "/campaigns/zz/coverage", "", http.StatusNotFound},
		{"events unknown id", http.MethodGet, "/campaigns/zz/events", "", http.StatusNotFound},
		{"submit malformed json", http.MethodPost, "/campaigns", "{not json", http.StatusBadRequest},
		{"submit unknown field", http.MethodPost, "/campaigns", `{"bogus": 1}`, http.StatusBadRequest},
		{"submit unknown component", http.MethodPost, "/campaigns", `{"component": "NoSuch"}`, http.StatusBadRequest},
		{"submit negative shards", http.MethodPost, "/campaigns", `{"component": "Account", "shards": -1}`, http.StatusBadRequest},
		{"campaigns wrong method", http.MethodDelete, "/campaigns", "", http.StatusMethodNotAllowed},
		{"status wrong method", http.MethodPost, "/campaigns/zz", "", http.StatusMethodNotAllowed},
		{"metrics wrong method", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
		{"store malformed id", http.MethodGet, "/store/not-a-hash", "", http.StatusBadRequest},
		{"store absent entry", http.MethodGet, "/store/" + absentID, "", http.StatusNotFound},
		{"store wrong method", http.MethodDelete, "/store/" + absentID, "", http.StatusMethodNotAllowed},
		{"store corrupt put", http.MethodPut, "/store/" + absentID, `{"key":{"kind":"mutant-verdict"},"sum":"x","value":{}}`, http.StatusBadRequest},
		{"store dir wrong method", http.MethodPut, "/store", "", http.StatusMethodNotAllowed},
		{"lease wrong method", http.MethodGet, "/work/lease", "", http.StatusMethodNotAllowed},
		{"shard done unknown campaign", http.MethodPost, "/work/zz/shards/0", `{"epoch": 1}`, http.StatusNotFound},
		{"shard done malformed index", http.MethodPost, "/work/zz/shards/x", `{"epoch": 1}`, http.StatusBadRequest},
		{"shard done malformed body", http.MethodPost, "/work/zz/shards/0", "{", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s = HTTP %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestStoreEndpointsAbsentWithoutStore: a server with no store configured
// must not expose the remote-store protocol at all.
func TestStoreEndpointsAbsentWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /store without a store = HTTP %d, want 404", resp.StatusCode)
	}
}
