// The pluggable storage seam: Backend abstracts the verdict store's
// contract — Get/Put over canonical-JSON entry documents with integrity
// digests, plus Len/Stats observability — so campaigns can run against the
// file-backed Store, the in-memory Mem, or the HTTP Remote client
// interchangeably. RawBackend adds the verbatim entry-document surface the
// remote-store protocol moves over the wire: because documents are
// canonical JSON addressed by their key hash, any backend can verify any
// other backend's output locally, and a shared store written by many nodes
// stays byte-identical to one written by a single process.

package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"

	"concat/internal/core/canon"
)

// Backend is one verdict-store implementation. All methods must be safe
// for concurrent use.
type Backend interface {
	// Get looks the key up and, on a hit, decodes the stored payload into
	// out. (false, nil) is a clean miss; an entry failing integrity is
	// quarantined and reported as a miss, never served as a wrong verdict.
	Get(k Key, out any) (bool, error)
	// Put stores the value under the key, overwriting any previous entry.
	Put(k Key, value any) error
	// Len counts stored entries plus files/documents skipped as foreign or
	// quarantined.
	Len() (entries, skipped int, err error)
	// Stats snapshots the backend's lookup counters.
	Stats() Stats
}

// RawBackend is a backend that can serve the HTTP remote-store protocol:
// entry documents move verbatim, so a remote writer produces exactly the
// bytes a local Put would have.
type RawBackend interface {
	Backend
	// GetRaw returns the verified entry document for a content address;
	// ok=false is a miss.
	GetRaw(id string) (doc []byte, ok bool, err error)
	// PutRaw verifies the document against its content address and stores
	// it verbatim; a document failing verification returns ErrCorrupt.
	PutRaw(id string, doc []byte) error
}

// ErrCorrupt tags an entry document that failed integrity verification:
// undecodable, key not hashing to its content address, or value not
// hashing to the embedded sum.
var ErrCorrupt = errors.New("store: entry failed integrity verification")

// Enabled reports whether b is a usable backend. Call sites historically
// passed a possibly-nil *Store (the disabled cache); through the Backend
// interface such a typed nil is non-nil, so the nil check lives here.
func Enabled(b Backend) bool {
	if b == nil {
		return false
	}
	v := reflect.ValueOf(b)
	return v.Kind() != reflect.Pointer || !v.IsNil()
}

// BackendStats snapshots b's counters, tolerating disabled backends.
func BackendStats(b Backend) Stats {
	if !Enabled(b) {
		return Stats{}
	}
	return b.Stats()
}

// encodeEntry canonical-encodes (key, value) as a self-describing entry
// document and returns its content address. The document embeds the full
// key and the value's canonical hash, so any reader can verify it without
// trusting the writer; the same (key, value) pair always encodes
// byte-identical documents on any node.
func encodeEntry(k Key, value any) (id string, doc []byte, err error) {
	id, err = k.ID()
	if err != nil {
		return "", nil, err
	}
	rawVal, err := canon.Marshal(value)
	if err != nil {
		return "", nil, fmt.Errorf("store: encoding value for %s: %w", id, err)
	}
	sum, err := canon.HashRaw(rawVal)
	if err != nil {
		return "", nil, fmt.Errorf("store: hashing value for %s: %w", id, err)
	}
	doc, err = canon.Marshal(entry{Key: k, Sum: sum, Value: rawVal})
	if err != nil {
		return "", nil, fmt.Errorf("store: encoding entry %s: %w", id, err)
	}
	return id, append(doc, '\n'), nil
}

// decodeEntry verifies a document against its content address — the key
// must re-hash to id and the value to the embedded sum — and returns the
// parsed entry. Every failure wraps ErrCorrupt: truncation, bit rot, a
// foreign document under the right name, or a lying remote peer all look
// the same to the caller.
func decodeEntry(id string, doc []byte) (entry, error) {
	var e entry
	if err := json.Unmarshal(doc, &e); err != nil {
		return entry{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, id, err)
	}
	keyID, err := e.Key.ID()
	if err != nil || keyID != id {
		return entry{}, fmt.Errorf("%w: key does not hash to %s", ErrCorrupt, id)
	}
	sum, err := canon.HashRaw(e.Value)
	if err != nil || sum != e.Sum {
		return entry{}, fmt.Errorf("%w: value digest mismatch for %s", ErrCorrupt, id)
	}
	return e, nil
}

// isEntryID reports whether id is a well-formed content address: 64 hex
// digits.
func isEntryID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// Interface conformance of the three shipped backends.
var (
	_ RawBackend = (*Store)(nil)
	_ RawBackend = (*Mem)(nil)
	_ Backend    = (*Remote)(nil)
)
