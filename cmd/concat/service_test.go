package main

import (
	"errors"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"concat/internal/serve"
)

// startService runs the campaign service behind an httptest listener and
// returns its base URL — what `concat serve` exposes, minus the fixed port.
func startService(t *testing.T, cfg serve.Config) string {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func TestCLISubmitWaitAndStatus(t *testing.T) {
	url := startService(t, serve.Config{})
	out := mustRunCLI(t, "submit", "-addr", url, "-component", "Account", "-wait")
	if !strings.Contains(out, "submitted c1 (Account)") {
		t.Errorf("submit output lacks acknowledgement: %q", out)
	}
	if !strings.Contains(out, "Results obtained for the Account class") {
		t.Errorf("submit -wait did not print the report:\n%s", out)
	}
	statusOut := mustRunCLI(t, "status", "-addr", url, "-id", "c1")
	for _, want := range []string{`"id": "c1"`, `"state": "done"`} {
		if !strings.Contains(statusOut, want) {
			t.Errorf("status output missing %s:\n%s", want, statusOut)
		}
	}
	listOut := mustRunCLI(t, "status", "-addr", url)
	if !strings.Contains(listOut, `"id": "c1"`) {
		t.Errorf("status list missing c1:\n%s", listOut)
	}
}

func TestCLISubmitWithoutWaitReturnsImmediately(t *testing.T) {
	url := startService(t, serve.Config{})
	out := mustRunCLI(t, "submit", "-addr", url, "-component", "Account")
	if strings.Contains(out, "Results obtained") {
		t.Errorf("submit without -wait printed a report:\n%s", out)
	}
}

func TestCLISubmitSurvivorsExitContract(t *testing.T) {
	// ObList's own suite leaves survivors, so a waited submission must end
	// in the errSurvivors sentinel — the CLI maps it to exit code 2.
	url := startService(t, serve.Config{})
	out, err := runCLI(t, "submit", "-addr", url, "-component", "ObList", "-wait")
	if !errors.Is(err, errSurvivors) {
		t.Errorf("ObList submission error = %v, want errSurvivors", err)
	}
	if !strings.Contains(out, "Results obtained for the ObList class") {
		t.Errorf("report missing despite survivors:\n%s", out)
	}
}

func TestCLIMutateSurvivorsExitContract(t *testing.T) {
	out, err := runCLI(t, "mutate", "-component", "ObList")
	if !errors.Is(err, errSurvivors) {
		t.Errorf("mutate ObList error = %v, want errSurvivors", err)
	}
	// The table still renders in full before the contract error.
	if !strings.Contains(out, "Score") {
		t.Errorf("table missing from survivor run:\n%s", out)
	}
}

func TestCLISubmitErrors(t *testing.T) {
	url := startService(t, serve.Config{})
	if _, err := runCLI(t, "submit", "-addr", url); err == nil {
		t.Error("submit without component should fail")
	}
	if _, err := runCLI(t, "submit", "-addr", url, "-component", "NoSuch"); err == nil {
		t.Error("unknown component should fail")
	}
	if _, err := runCLI(t, "status", "-addr", url, "-id", "zz"); err == nil {
		t.Error("unknown campaign ID should fail")
	}
	if _, err := runCLI(t, "submit", "-addr", "127.0.0.1:1", "-component", "Account"); err == nil {
		t.Error("unreachable service should fail")
	}
}

func TestCLIMutateCacheDir(t *testing.T) {
	dir := t.TempDir()
	cold := mustRunCLI(t, "mutate", "-component", "Account", "-cache-dir", dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cache dir is empty after a cold campaign")
	}
	warm := mustRunCLI(t, "mutate", "-component", "Account", "-cache-dir", dir)
	if cold != warm {
		t.Errorf("warm cached table differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	// The cache-hit path must apply the same verdict contract: survivors
	// replayed from the store still exit nonzero.
	if _, err := runCLI(t, "mutate", "-component", "ObList", "-cache-dir", dir); !errors.Is(err, errSurvivors) {
		t.Fatalf("cold ObList error = %v, want errSurvivors", err)
	}
	if _, err := runCLI(t, "mutate", "-component", "ObList", "-cache-dir", dir); !errors.Is(err, errSurvivors) {
		t.Errorf("warm ObList error = %v, want errSurvivors", err)
	}
}

func TestCLISelftestCacheDir(t *testing.T) {
	dir := t.TempDir()
	cold := mustRunCLI(t, "selftest", "-component", "Product", "-cache-dir", dir)
	warm := mustRunCLI(t, "selftest", "-component", "Product", "-cache-dir", dir)
	if cold != warm {
		t.Errorf("cached selftest output differs:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) == 0 {
		t.Errorf("selftest cache dir empty (err %v)", err)
	}
}

func TestCLIServeFlagValidation(t *testing.T) {
	if _, err := runCLI(t, "serve", "-addr", "not an address"); err == nil {
		t.Error("invalid listen address should fail")
	}
}
