// Package store is the content-addressed incremental verdict store: a
// file-backed cache mapping (spec-hash, suite-hash, mutant-hash, seed,
// options-hash) to a recorded verdict. A mutant's verdict is a pure
// function of those five inputs — everything else about a campaign
// (parallelism, isolation mode, tracing) is determinism-neutral by the
// executor's contract — so resubmitting a campaign after editing one
// operator or one component re-executes only the mutants whose hash inputs
// changed and serves the rest from the store, with byte-identical reports.
//
// Entries are JSON files in canonical encoding (internal/core/canon):
// sorted keys, stable numbers. The same entry written by any process on any
// platform is byte-identical, so a cache directory can be shared, shipped,
// or diffed. Writes go through a temp file + rename, which makes
// concurrent writers of the same key safe (identical content, last rename
// wins).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"concat/internal/core/canon"
)

// Key is the five-part content address of one cached verdict. Kind
// namespaces entry types (mutant verdicts vs whole suite reports) so their
// addresses can never collide.
type Key struct {
	// Kind is the entry namespace: KindMutantVerdict or KindSuiteReport.
	Kind string `json:"kind"`
	// Spec is the canonical hash of the component's t-spec.
	Spec string `json:"spec"`
	// Suite is the canonical hash of the executed suite.
	Suite string `json:"suite"`
	// Mutant is the canonical hash of the active mutant; empty for
	// non-mutation entries (suite reports).
	Mutant string `json:"mutant,omitempty"`
	// Seed is the execution seed driving hole completion.
	Seed int64 `json:"seed"`
	// Options is the fingerprint of the result-relevant execution options
	// (testexec.Options.ResultFingerprint).
	Options string `json:"options"`
}

// Entry kinds.
const (
	KindMutantVerdict = "mutant-verdict"
	KindSuiteReport   = "suite-report"
	// KindCaseResult is one test case's execution result, keyed by the
	// case's own canonical hash rather than a whole-suite hash — the unit of
	// reuse for the impact engine's partitioned re-runs (internal/impact).
	KindCaseResult = "case-result"
)

// ID returns the key's content address: the hex SHA-256 of its canonical
// encoding.
func (k Key) ID() (string, error) {
	if k.Kind == "" {
		return "", errors.New("store: key has no kind")
	}
	return canon.Hash(k)
}

// Verdict is the cached outcome of one mutant run — the persistent form of
// analysis.MutantResult, defined here so the store stays a leaf package.
// Reason carries the kill reason's integer code; zero means "not killed".
type Verdict struct {
	Killed      bool   `json:"killed"`
	Reason      int    `json:"reason,omitempty"`
	KillingCase string `json:"killingCase,omitempty"`
	Reached     bool   `json:"reached"`
	Infected    bool   `json:"infected"`
}

// Stats is a point-in-time snapshot of the store's lookup counters.
// Quarantined counts entries that failed integrity checks on read and were
// renamed aside.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Quarantined int64 `json:"quarantined"`
}

// Store is a file-backed content-addressed cache. All methods are safe for
// concurrent use; a nil *Store is the disabled cache (Get always misses
// without counting, Put discards), so call sites thread it without checks.
type Store struct {
	dir          string
	hits, misses atomic.Int64
	quarantined  atomic.Int64

	// mem caches decoded payloads by entry ID so a campaign's repeated
	// warm lookups don't re-read files. Bounded by the number of distinct
	// entries touched in-process.
	mu  sync.RWMutex
	mem map[string][]byte
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	return &Store{dir: dir, mem: make(map[string][]byte)}, nil
}

// Dir returns the store's root directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// entry is the on-disk document: the full key (so entries are
// self-describing and auditable), the payload, and the payload's canonical
// hash. The key must re-hash to the entry's file name and the value to Sum,
// so any corruption — truncation, bit rot, a foreign file under the right
// name — is detected on read instead of being served as a wrong verdict.
type entry struct {
	Key   Key             `json:"key"`
	Sum   string          `json:"sum"`
	Value json.RawMessage `json:"value"`
}

// path shards entries by the first two hex digits of their ID, keeping
// directories small on big campaigns.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id[:2], id+".json")
}

// Get looks the key up and, on a hit, decodes the stored payload into out.
// It returns (false, nil) on a clean miss and (false, err) only for
// environmental read failures. An entry that exists but fails integrity —
// truncated, bit-flipped, undecodable, key or value hash mismatch — is
// quarantined: renamed aside with a .corrupt suffix, counted in
// Stats.Quarantined, and reported as a clean miss, so corruption can never
// panic a campaign or serve a wrong verdict; the next Put writes a fresh
// entry under the original name.
func (s *Store) Get(k Key, out any) (bool, error) {
	if s == nil {
		return false, nil
	}
	id, err := k.ID()
	if err != nil {
		return false, err
	}
	raw, err := s.load(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return false, nil
		}
		s.misses.Add(1)
		return false, err
	}
	e, err := decodeEntry(id, raw)
	if err != nil {
		s.quarantine(id)
		return false, nil
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		s.quarantine(id)
		return false, nil
	}
	s.hits.Add(1)
	return true, nil
}

// GetRaw returns the verified entry document for a content address — the
// raw half of the remote-store protocol. Counting and quarantine behave
// exactly like Get: a corrupt entry is renamed aside and read as a miss.
func (s *Store) GetRaw(id string) ([]byte, bool, error) {
	if s == nil {
		return nil, false, nil
	}
	if !isEntryID(id) {
		return nil, false, fmt.Errorf("store: malformed entry id %q", id)
	}
	raw, err := s.load(id)
	if err != nil {
		s.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	if _, err := decodeEntry(id, raw); err != nil {
		s.quarantine(id)
		return nil, false, nil
	}
	s.hits.Add(1)
	return raw, true, nil
}

// quarantine renames a corrupt entry aside and evicts it from the
// in-memory cache; the caller re-executes and re-stores as if the entry
// never existed. Concurrent readers of the same corrupt entry race to the
// same .corrupt name: exactly one rename succeeds, so only that winner
// counts the quarantine — the losers' failed renames are non-fatal and
// uncounted. Every caller still counts its own miss.
func (s *Store) quarantine(id string) {
	s.mu.Lock()
	delete(s.mem, id)
	s.mu.Unlock()
	path := s.path(id)
	if os.Rename(path, path+".corrupt") == nil {
		s.quarantined.Add(1)
	}
	s.misses.Add(1)
}

func (s *Store) load(id string) ([]byte, error) {
	s.mu.RLock()
	raw, ok := s.mem[id]
	s.mu.RUnlock()
	if ok {
		return raw, nil
	}
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.mem[id] = raw
	s.mu.Unlock()
	return raw, nil
}

// Put stores the value under the key, overwriting any previous entry. The
// on-disk document is canonical JSON, so the same (key, value) pair always
// writes byte-identical files.
func (s *Store) Put(k Key, value any) error {
	if s == nil {
		return nil
	}
	id, doc, err := encodeEntry(k, value)
	if err != nil {
		return err
	}
	return s.writeDoc(id, doc)
}

// PutRaw verifies a ready-made entry document against its content address
// and writes it verbatim — remote writers pass the same integrity gate
// that local Put output satisfies by construction, so a shared store can
// never be poisoned over the wire.
func (s *Store) PutRaw(id string, doc []byte) error {
	if s == nil {
		return nil
	}
	if !isEntryID(id) {
		return fmt.Errorf("store: malformed entry id %q", id)
	}
	if _, err := decodeEntry(id, doc); err != nil {
		return err
	}
	return s.writeDoc(id, doc)
}

// writeDoc durably lands an entry document under its content address.
func (s *Store) writeDoc(id string, doc []byte) error {
	path := s.path(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Temp file + rename: concurrent writers of the same key write
	// identical content, so whichever rename lands last leaves a good file.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing entry %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.mem[id] = doc
	s.mu.Unlock()
	return nil
}

// Len walks the store and counts persisted entries. Unreadable files or
// directories and foreign files — quarantined .corrupt entries, stray temp
// files, anything whose name is not a content address — are skipped and
// counted instead of failing the whole walk: one bad shard must not make
// the store unobservable.
func (s *Store) Len() (entries, skipped int, err error) {
	if s == nil {
		return 0, 0, nil
	}
	err = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			skipped++
			if d != nil && d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if d.IsDir() {
			return nil
		}
		if isEntryName(filepath.Base(path)) {
			entries++
		} else {
			skipped++
		}
		return nil
	})
	return entries, skipped, err
}

// isEntryName reports whether name is a well-formed entry file name: a
// 64-hex content address plus ".json".
func isEntryName(name string) bool {
	const hexLen = 64
	return len(name) == hexLen+len(".json") && name[hexLen:] == ".json" && isEntryID(name[:hexLen])
}

// Stats snapshots the hit/miss counters (zero on a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Quarantined: s.quarantined.Load()}
}
