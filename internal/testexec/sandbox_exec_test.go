package testexec

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/sandbox"
)

// chaosSuiteN builds a Chaos suite whose single case pokes n times before
// the destructor.
func chaosSuiteN(n int) *driver.Suite {
	calls := []driver.Call{{MethodID: "m1", Method: "Chaos"}}
	for i := 0; i < n; i++ {
		calls = append(calls, driver.Call{MethodID: "m3", Method: "Poke"})
	}
	calls = append(calls, driver.Call{MethodID: "m2", Method: "~Chaos"})
	return &driver.Suite{
		Component: "Chaos",
		Cases: []driver.TestCase{{
			ID:          "TC0",
			Transaction: "n1>n2>n3",
			Calls:       calls,
		}},
	}
}

func TestStepBudgetExhaustsDispatch(t *testing.T) {
	// 20 pokes but only 5 steps of budget: the executor's per-call charge
	// runs dry at a deterministic call.
	rep, err := Run(chaosSuiteN(20), &chaosFactory{}, Options{StepBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomeResourceExhausted {
		t.Fatalf("outcome = %s (%s), want resource-exhausted", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "step budget exhausted") {
		t.Errorf("detail = %q", res.Detail)
	}
	// Determinism: the same budget cuts at the same point every run.
	rep2, err := Run(chaosSuiteN(20), &chaosFactory{}, Options{StepBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Transcript != rep2.Results[0].Transcript ||
		rep.Results[0].Detail != rep2.Results[0].Detail {
		t.Error("budget exhaustion not deterministic")
	}
}

func TestStepBudgetGenerousCasePasses(t *testing.T) {
	rep, err := Run(chaosSuiteN(3), &chaosFactory{}, Options{StepBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != OutcomePass {
		t.Errorf("outcome = %s (%s)", rep.Results[0].Outcome, rep.Results[0].Detail)
	}
}

// burnInstance loops on its own BIT services until the guard's budget stops
// it — without a budget its Poke would spin a very long time.
type burnInstance struct{ chaos }

func (b *burnInstance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if method == "Poke" {
		for i := 0; i < 1<<30; i++ {
			if err := b.InvariantTest(); err != nil {
				return nil, err
			}
		}
	}
	return b.chaos.Invoke(method, args)
}

type burnFactory struct{ chaosFactory }

func (f *burnFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	return &burnInstance{}, nil
}

func TestStepBudgetChargesBITGuard(t *testing.T) {
	rep, err := Run(chaosSuite(), &burnFactory{}, Options{StepBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomeResourceExhausted {
		t.Fatalf("outcome = %s (%s), want resource-exhausted", res.Outcome, res.Detail)
	}
	if res.Method != "Poke" {
		t.Errorf("method = %q, want Poke", res.Method)
	}
}

// floodInstance returns a huge result from every Poke, flooding the
// transcript.
type floodInstance struct{ chaos }

func (f *floodInstance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if method == "Poke" {
		return []domain.Value{domain.Str(strings.Repeat("x", 4096))}, nil
	}
	return f.chaos.Invoke(method, args)
}

type floodFactory struct{ chaosFactory }

func (f *floodFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	return &floodInstance{}, nil
}

func TestTranscriptCapCutsFloodingCase(t *testing.T) {
	rep, err := Run(chaosSuiteN(1000), &floodFactory{}, Options{MaxTranscriptBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomeResourceExhausted {
		t.Fatalf("outcome = %s (%s), want resource-exhausted", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "transcript budget exhausted") {
		t.Errorf("detail = %q", res.Detail)
	}
	if !strings.Contains(res.Transcript, "[transcript truncated at 16384 bytes]") {
		t.Error("transcript missing truncation marker")
	}
	if int64(len(res.Transcript)) > (16<<10)+128 {
		t.Errorf("transcript length %d exceeds cap plus marker", len(res.Transcript))
	}
}

func TestTranscriptCapGenerousCasePasses(t *testing.T) {
	rep, err := Run(chaosSuiteN(3), &chaosFactory{}, Options{MaxTranscriptBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomePass {
		t.Errorf("outcome = %s (%s)", res.Outcome, res.Detail)
	}
	if strings.Contains(res.Transcript, "truncated") {
		t.Error("unexpected truncation marker")
	}
}

func TestTimeoutResultCarriesSeedAndPartialTranscript(t *testing.T) {
	opts := Options{Seed: 99, CaseTimeout: 50 * time.Millisecond}
	rep, err := Run(chaosSuite(), &hangFactory{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %s", res.Outcome)
	}
	if want := CaseSeed(99, "TC0"); res.Seed != want {
		t.Errorf("timeout result seed = %d, want %d", res.Seed, want)
	}
	// The constructor's NEW line was written before the hang; the timeout
	// result must carry it plus the timeout marker.
	if !strings.Contains(res.Transcript, "NEW Chaos()") {
		t.Errorf("partial transcript missing NEW line: %q", res.Transcript)
	}
	if !strings.Contains(res.Transcript, "[case timed out after") {
		t.Errorf("partial transcript missing timeout marker: %q", res.Transcript)
	}
	if rep.AbandonedGoroutines != 1 {
		t.Errorf("AbandonedGoroutines = %d, want 1", rep.AbandonedGoroutines)
	}
}

func TestLeakLedgerSharedAcrossRuns(t *testing.T) {
	ledger := sandbox.NewLedger()
	opts := Options{CaseTimeout: 50 * time.Millisecond, LeakLedger: ledger}
	for i := 0; i < 2; i++ {
		rep, err := Run(chaosSuite(), &hangFactory{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AbandonedGoroutines != 1 {
			t.Fatalf("run %d: AbandonedGoroutines = %d, want 1", i, rep.AbandonedGoroutines)
		}
	}
	if ledger.Abandoned() != 2 {
		t.Errorf("shared ledger abandoned = %d, want 2", ledger.Abandoned())
	}
	// The hung goroutines never finish, so they are still outstanding.
	if ledger.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", ledger.Outstanding())
	}
}

func TestLedgerSettlesSlowButFiniteCase(t *testing.T) {
	ledger := sandbox.NewLedger()
	rep, err := Run(chaosSuite(), &slowFactory{}, Options{
		CaseTimeout: 20 * time.Millisecond,
		LeakLedger:  ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %s", rep.Results[0].Outcome)
	}
	// The slow case finishes ~180ms after abandonment and settles its entry.
	deadline := time.Now().Add(5 * time.Second)
	for ledger.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ledger never settled: outstanding = %d", ledger.Outstanding())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ledger.Abandoned() != 1 || ledger.Settled() != 1 {
		t.Errorf("abandoned = %d settled = %d", ledger.Abandoned(), ledger.Settled())
	}
}

// slowInstance sleeps past the case timeout but does finish.
type slowInstance struct{ chaos }

func (s *slowInstance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if method == "Poke" {
		time.Sleep(200 * time.Millisecond)
	}
	return s.chaos.Invoke(method, args)
}

type slowFactory struct{ chaosFactory }

func (f *slowFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	return &slowInstance{}, nil
}

// panicOracle panics from Check — a harness hook, outside runCase's recover.
type panicOracle struct{}

func (panicOracle) Check(caseID, transcript string) error { panic("oracle exploded") }

func TestOraclePanicIsContained(t *testing.T) {
	rep, err := Run(chaosSuite(), &chaosFactory{}, Options{Oracle: panicOracle{}})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %s, want crash", res.Outcome)
	}
	if !strings.Contains(res.Detail, "panic in harness hook") {
		t.Errorf("detail = %q", res.Detail)
	}
	if res.CaseID != "TC0" || res.Seed == 0 {
		t.Errorf("recovered result lost identity: %+v", res)
	}
}

// panicForkFactory panics from Fork — the other pre-runCase harness hook.
type panicForkFactory struct{ chaosFactory }

func (f *panicForkFactory) Fork() component.Factory { panic("fork exploded") }

func TestForkPanicIsContained(t *testing.T) {
	rep, err := Run(chaosSuite(), &panicForkFactory{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomePanic {
		t.Fatalf("outcome = %s, want crash", res.Outcome)
	}
	if !strings.Contains(res.Detail, "panic in harness hook: fork exploded") {
		t.Errorf("detail = %q", res.Detail)
	}
}

func TestHarnessHookPanicDoesNotCrashParallelRun(t *testing.T) {
	s := &driver.Suite{Component: "Chaos"}
	for i := 0; i < 8; i++ {
		c := chaosSuite().Cases[0]
		c.ID = c.ID + strings.Repeat("x", i) // unique IDs
		s.Cases = append(s.Cases, c)
	}
	rep, err := Run(s, &panicForkFactory{}, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Outcome != OutcomePanic {
			t.Fatalf("case %s outcome = %s", res.CaseID, res.Outcome)
		}
	}
}

func TestResourceOutcomesIdenticalSerialAndParallel(t *testing.T) {
	s := &driver.Suite{Component: "Chaos"}
	base := chaosSuiteN(50).Cases[0]
	for i := 0; i < 6; i++ {
		c := base
		c.ID = base.ID + strings.Repeat("y", i)
		s.Cases = append(s.Cases, c)
	}
	opts := Options{Seed: 7, StepBudget: 10, MaxTranscriptBytes: 4 << 10}
	serial, err := Run(s, &chaosFactory{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := Run(s, &chaosFactory{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Results {
		if !reflect.DeepEqual(serial.Results[i], par.Results[i]) {
			t.Fatalf("case %s differs between serial and parallel:\n%+v\nvs\n%+v",
				serial.Results[i].CaseID, serial.Results[i], par.Results[i])
		}
	}
}

func TestOutcomeResourceExhaustedString(t *testing.T) {
	if got := OutcomeResourceExhausted.String(); got != "resource-exhausted" {
		t.Errorf("String() = %q", got)
	}
}
