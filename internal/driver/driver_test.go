package driver

import (
	"bytes"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"concat/internal/components/account"
	"concat/internal/domain"
	"concat/internal/tfm"
	"concat/internal/tspec"
)

func generateAccount(t *testing.T, opts Options) *Suite {
	t.Helper()
	s, err := Generate(account.Spec(), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

func TestGenerateBasics(t *testing.T) {
	s := generateAccount(t, Options{Seed: 42})
	if s.Component != account.Name {
		t.Errorf("component = %q", s.Component)
	}
	if s.Criterion != "all-transactions" {
		t.Errorf("criterion = %q", s.Criterion)
	}
	if len(s.Cases) == 0 {
		t.Fatal("no test cases generated")
	}
	spec := account.Spec()
	for _, tc := range s.Cases {
		if len(tc.Calls) < 2 {
			t.Fatalf("case %s has %d calls", tc.ID, len(tc.Calls))
		}
		first, ok := spec.MethodByID(tc.Calls[0].MethodID)
		if !ok || first.Category != tspec.CatConstructor {
			t.Errorf("case %s does not start with a constructor (%+v)", tc.ID, first)
		}
		last, ok := spec.MethodByID(tc.Calls[len(tc.Calls)-1].MethodID)
		if !ok || last.Category != tspec.CatDestructor {
			t.Errorf("case %s does not end with the destructor (%+v)", tc.ID, last)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateAccount(t, Options{Seed: 7})
	b := generateAccount(t, Options{Seed: 7})
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		ca, cb := a.Cases[i], b.Cases[i]
		if ca.Transaction != cb.Transaction || len(ca.Calls) != len(cb.Calls) {
			t.Fatalf("case %d structure differs", i)
		}
		for j := range ca.Calls {
			if ca.Calls[j].Method != cb.Calls[j].Method {
				t.Fatalf("case %d call %d method differs", i, j)
			}
			for k := range ca.Calls[j].Args {
				if !ca.Calls[j].Args[k].Equal(cb.Calls[j].Args[k]) {
					t.Fatalf("case %d call %d arg %d differs: %v vs %v",
						i, j, k, ca.Calls[j].Args[k], cb.Calls[j].Args[k])
				}
			}
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	a := generateAccount(t, Options{Seed: 1})
	b := generateAccount(t, Options{Seed: 2})
	differ := false
	for i := range a.Cases {
		if i >= len(b.Cases) {
			break
		}
		for j := range a.Cases[i].Calls {
			ca, cb := a.Cases[i].Calls[j], b.Cases[i].Calls[j]
			if ca.Method != cb.Method || len(ca.Args) != len(cb.Args) {
				differ = true // different alternative sampled
				continue
			}
			for k, arg := range ca.Args {
				if !arg.Equal(cb.Args[k]) {
					differ = true
				}
			}
		}
	}
	if !differ {
		t.Error("different seeds produced identical argument values")
	}
}

func TestGenerateArgsRespectDomains(t *testing.T) {
	s := generateAccount(t, Options{Seed: 3, ExpandAlternatives: true})
	spec := account.Spec()
	for _, tc := range s.Cases {
		for _, c := range tc.Calls {
			m, ok := spec.MethodByID(c.MethodID)
			if !ok {
				t.Fatalf("unknown method %s", c.MethodID)
			}
			if len(c.Args) != len(m.Params) {
				t.Fatalf("call %s has %d args, want %d", c.Method, len(c.Args), len(m.Params))
			}
			for i, p := range m.Params {
				if holeAt(c, i) {
					continue
				}
				d, err := p.Domain.Build()
				if err != nil {
					t.Fatal(err)
				}
				if !d.Contains(c.Args[i]) {
					t.Errorf("call %s arg %d = %v outside declared domain %s",
						c.Method, i, c.Args[i], d.Describe())
				}
			}
		}
	}
}

func holeAt(c Call, i int) bool {
	for _, h := range c.Holes {
		if h.Arg == i {
			return true
		}
	}
	return false
}

func TestGenerateExpandAlternatives(t *testing.T) {
	single := generateAccount(t, Options{Seed: 4})
	expanded := generateAccount(t, Options{Seed: 4, ExpandAlternatives: true})
	if len(expanded.Cases) <= len(single.Cases) {
		t.Errorf("expansion gave %d cases, single-choice gave %d",
			len(expanded.Cases), len(single.Cases))
	}
	capped := generateAccount(t, Options{Seed: 4, ExpandAlternatives: true, MaxAlternatives: 2})
	perTransaction := map[string]int{}
	for _, tc := range capped.Cases {
		perTransaction[tc.Transaction]++
	}
	for tr, n := range perTransaction {
		if n > 2 {
			t.Errorf("transaction %s expanded to %d cases despite cap 2", tr, n)
		}
	}
}

func TestGenerateHolesForStructuredParams(t *testing.T) {
	spec, err := tspec.NewBuilder("Holder").
		Method("m1", "Holder", "", tspec.CatConstructor).
		Method("m2", "~Holder", "", tspec.CatDestructor).
		Method("m3", "Attach", "", tspec.CatUpdate).
		Param("p", tspec.PointerTo("Provider", true)).
		Param("o", tspec.ObjectOf("Widget")).
		Node("n1", true, "m1").
		Node("n2", false, "m3").
		Node("n3", false, "m2").
		Edge("n1", "n2").
		Edge("n2", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate(spec, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var attach *Call
	for i := range s.Cases {
		for j := range s.Cases[i].Calls {
			if s.Cases[i].Calls[j].Method == "Attach" {
				attach = &s.Cases[i].Calls[j]
			}
		}
	}
	if attach == nil {
		t.Fatal("Attach call not generated")
	}
	if len(attach.Holes) != 2 {
		t.Fatalf("holes = %+v, want 2", attach.Holes)
	}
	if attach.Holes[0].TypeName != "Provider" || !attach.Holes[0].Nullable {
		t.Errorf("hole 0 = %+v", attach.Holes[0])
	}
	if attach.Holes[1].TypeName != "Widget" || attach.Holes[1].Nullable {
		t.Errorf("hole 1 = %+v", attach.Holes[1])
	}
	if s.Stats().Holes == 0 {
		t.Error("stats should count holes")
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	bad := account.Spec().Clone()
	bad.Class.Name = ""
	if _, err := Generate(bad, Options{}); err == nil {
		t.Error("generating from invalid spec should fail")
	}
}

func TestGenerateCriteria(t *testing.T) {
	all := generateAccount(t, Options{Seed: 5, Criterion: tfm.CoverTransactions})
	links := generateAccount(t, Options{Seed: 5, Criterion: tfm.CoverLinks})
	nodes := generateAccount(t, Options{Seed: 5, Criterion: tfm.CoverNodes})
	if !(len(nodes.Cases) <= len(links.Cases) && len(links.Cases) <= len(all.Cases)) {
		t.Errorf("criteria ordering violated: nodes=%d links=%d all=%d",
			len(nodes.Cases), len(links.Cases), len(all.Cases))
	}
	if links.Criterion != "all-links" || nodes.Criterion != "all-nodes" {
		t.Error("criterion labels wrong")
	}
}

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	s := generateAccount(t, Options{Seed: 6})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Component != s.Component || back.Seed != s.Seed || len(back.Cases) != len(s.Cases) {
		t.Fatalf("round trip lost header/cases")
	}
	for i := range s.Cases {
		if s.Cases[i].Transaction != back.Cases[i].Transaction {
			t.Fatalf("case %d transaction differs", i)
		}
		for j := range s.Cases[i].Calls {
			a, b := s.Cases[i].Calls[j], back.Cases[i].Calls[j]
			if a.Method != b.Method || len(a.Args) != len(b.Args) {
				t.Fatalf("case %d call %d differs", i, j)
			}
			for k := range a.Args {
				if !a.Args[k].Equal(b.Args[k]) {
					t.Fatalf("case %d call %d arg %d differs", i, j, k)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("loading garbage should fail")
	}
}

func TestSuiteAccessors(t *testing.T) {
	s := generateAccount(t, Options{Seed: 8})
	tc, ok := s.CaseByID("TC0")
	if !ok || tc.ID != "TC0" {
		t.Errorf("CaseByID(TC0) = %+v, %v", tc, ok)
	}
	if _, ok := s.CaseByID("TC99999"); ok {
		t.Error("CaseByID should miss")
	}
	if got := tc.Methods(); len(got) == 0 {
		t.Error("Methods() empty")
	}
	st := s.Stats()
	if st.Cases != len(s.Cases) || st.Calls == 0 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "test cases") {
		t.Errorf("stats string = %q", st.String())
	}
}

func TestEmitProducesParsableGo(t *testing.T) {
	s := generateAccount(t, Options{Seed: 9})
	var buf bytes.Buffer
	err := Emit(&buf, s, EmitOptions{
		ComponentImport: "concat/internal/components/account",
		FactoryExpr:     "account.NewFactory()",
	})
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	src := buf.String()
	for _, want := range []string{
		"package main",
		"func testCase0() driver.TestCase",
		"func main() {",
		"account.NewFactory()",
		"testexec.Run",
		"Code generated by the Concat driver generator",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted driver missing %q", want)
		}
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "driver.go", src, 0); err != nil {
		t.Fatalf("emitted driver does not parse: %v\n%s", err, src)
	}
}

func TestEmitRequiresFactory(t *testing.T) {
	s := generateAccount(t, Options{Seed: 9})
	if err := Emit(&bytes.Buffer{}, s, EmitOptions{}); err == nil {
		t.Error("Emit without factory config should fail")
	}
}

func TestEmitValueLiterals(t *testing.T) {
	if got := valueLit(domain.Int(-3)); got != "domain.Int(-3)" {
		t.Errorf("int lit = %q", got)
	}
	if got := valueLit(domain.Float(1.5)); got != "domain.Float(1.5)" {
		t.Errorf("float lit = %q", got)
	}
	if got := valueLit(domain.Str("a\"b")); got != `domain.Str("a\"b")` {
		t.Errorf("string lit = %q", got)
	}
	if got := valueLit(domain.Bool(true)); got != "domain.Bool(true)" {
		t.Errorf("bool lit = %q", got)
	}
	if got := valueLit(domain.Nil()); got != "domain.Nil()" {
		t.Errorf("nil lit = %q", got)
	}
}

func TestGenerateSoak(t *testing.T) {
	spec := account.Spec()
	s, err := GenerateSoak(spec, SoakOptions{Seed: 9, Cases: 50, MaxLength: 12})
	if err != nil {
		t.Fatalf("GenerateSoak: %v", err)
	}
	if len(s.Cases) != 50 {
		t.Fatalf("cases = %d", len(s.Cases))
	}
	if s.Criterion != "random-walk" {
		t.Errorf("criterion = %q", s.Criterion)
	}
	for _, tc := range s.Cases {
		if len(tc.Calls) < 2 {
			t.Fatalf("case %s too short", tc.ID)
		}
		first, _ := spec.MethodByID(tc.Calls[0].MethodID)
		last, _ := spec.MethodByID(tc.Calls[len(tc.Calls)-1].MethodID)
		if first.Category != tspec.CatConstructor || last.Category != tspec.CatDestructor {
			t.Fatalf("case %s is not birth-to-death: %s..%s", tc.ID, first.Name, last.Name)
		}
	}
}

func TestGenerateSoakDeterministic(t *testing.T) {
	a, err := GenerateSoak(account.Spec(), SoakOptions{Seed: 4, Cases: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSoak(account.Spec(), SoakOptions{Seed: 4, Cases: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cases {
		if a.Cases[i].Transaction != b.Cases[i].Transaction {
			t.Fatalf("walk %d diverged", i)
		}
	}
}

// TestGenerateSoakParallelMatchesSerial pins the sharding contract: the
// suite a worker pool generates is bit-for-bit the suite the serial loop
// generates, because every case draws from its own (Seed, index)-derived
// RNG stream.
func TestGenerateSoakParallelMatchesSerial(t *testing.T) {
	opts := SoakOptions{Seed: 4, Cases: 60, MaxLength: 16}
	serial, err := GenerateSoak(account.Spec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 64} {
		opts.Parallelism = par
		got, err := GenerateSoak(account.Spec(), opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got.Cases) != len(serial.Cases) {
			t.Fatalf("parallelism %d: %d cases, want %d", par, len(got.Cases), len(serial.Cases))
		}
		for i := range serial.Cases {
			if !reflect.DeepEqual(got.Cases[i], serial.Cases[i]) {
				t.Fatalf("parallelism %d: case %d diverged:\n got: %+v\nwant: %+v",
					par, i, got.Cases[i], serial.Cases[i])
			}
		}
	}
}

func TestGenerateSoakDefaults(t *testing.T) {
	s, err := GenerateSoak(account.Spec(), SoakOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cases) != 100 {
		t.Errorf("default cases = %d", len(s.Cases))
	}
}

func TestGenerateSoakInvalidSpec(t *testing.T) {
	bad := account.Spec().Clone()
	bad.Class.Name = ""
	if _, err := GenerateSoak(bad, SoakOptions{Seed: 1}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestGenerateBoundaryCases(t *testing.T) {
	plain := generateAccount(t, Options{Seed: 2})
	withB := generateAccount(t, Options{Seed: 2, BoundaryCases: true})
	if len(withB.Cases) <= len(plain.Cases) {
		t.Fatalf("boundary generation added no cases: %d vs %d", len(withB.Cases), len(plain.Cases))
	}
	// Boundary cases use domain limits: the Deposit amount 1 or 1000 must
	// appear somewhere.
	spec := account.Spec()
	sawBoundary := false
	for _, tc := range withB.Cases {
		for _, c := range tc.Calls {
			m, ok := spec.MethodByID(c.MethodID)
			if !ok {
				continue
			}
			for i, p := range m.Params {
				d, err := p.Domain.Build()
				if err != nil || holeAt(c, i) {
					continue
				}
				for _, b := range d.Boundary() {
					if c.Args[i].Equal(b) {
						sawBoundary = true
					}
				}
			}
		}
	}
	if !sawBoundary {
		t.Error("no boundary values found in boundary cases")
	}
}
