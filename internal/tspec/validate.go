package tspec

import (
	"fmt"
	"strings"
)

// Validate performs the semantic well-formedness checks on a parsed or
// programmatically built spec. It collects all problems before returning so
// a producer sees every defect in one pass — the paper notes that writing
// the t-spec is itself a specification-quality activity ("incompleteness,
// ambiguity and inconsistency can be detected by the tester and then
// removed").
func (s *Spec) Validate() error {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if s.Class.Name == "" {
		addf("class name is empty")
	}
	if s.Class.Superclass == s.Class.Name && s.Class.Name != "" {
		addf("class %q lists itself as superclass", s.Class.Name)
	}

	// Attributes: unique names, buildable domains.
	attrSeen := map[string]bool{}
	for _, a := range s.Attributes {
		if a.Name == "" {
			addf("attribute with empty name")
			continue
		}
		if attrSeen[a.Name] {
			addf("duplicate attribute %q", a.Name)
		}
		attrSeen[a.Name] = true
		if _, err := a.Domain.Build(); err != nil {
			addf("attribute %q: %v", a.Name, err)
		}
	}

	// Methods: unique IDs, parameter counts, buildable parameter domains,
	// Uses references.
	methodSeen := map[string]bool{}
	haveCtor, haveDtor := false, false
	for _, m := range s.Methods {
		if m.ID == "" {
			addf("method with empty identifier")
			continue
		}
		if methodSeen[m.ID] {
			addf("duplicate method identifier %q", m.ID)
		}
		methodSeen[m.ID] = true
		if m.Name == "" {
			addf("method %s has empty name", m.ID)
		}
		switch m.Category {
		case CatConstructor:
			haveCtor = true
		case CatDestructor:
			haveDtor = true
		case CatUpdate, CatAccess, CatOther:
		default:
			addf("method %s has invalid category", m.ID)
		}
		if m.DeclaredParams != len(m.Params) {
			addf("method %s declares %d parameters but %d Parameter clauses were given",
				m.ID, m.DeclaredParams, len(m.Params))
		}
		paramSeen := map[string]bool{}
		for _, p := range m.Params {
			if paramSeen[p.Name] {
				addf("method %s has duplicate parameter %q", m.ID, p.Name)
			}
			paramSeen[p.Name] = true
			if _, err := p.Domain.Build(); err != nil {
				addf("method %s parameter %q: %v", m.ID, p.Name, err)
			}
		}
		for _, u := range m.Uses {
			if !attrSeen[u] {
				addf("method %s uses undeclared attribute %q", m.ID, u)
			}
		}
	}
	// A component is born and dies (§3.2): its spec must declare at least
	// one constructor and one destructor.
	if !haveCtor {
		addf("no constructor method declared")
	}
	if !haveDtor {
		addf("no destructor method declared")
	}

	// Nodes: unique IDs, known methods, start nodes contain constructors.
	nodeSeen := map[string]bool{}
	outDeg := map[string]int{}
	for _, n := range s.Nodes {
		if n.ID == "" {
			addf("node with empty identifier")
			continue
		}
		if nodeSeen[n.ID] {
			addf("duplicate node %q", n.ID)
		}
		nodeSeen[n.ID] = true
		if len(n.Methods) == 0 {
			addf("node %s lists no methods", n.ID)
		}
		for _, mid := range n.Methods {
			if !methodSeen[mid] {
				addf("node %s references undeclared method %q", n.ID, mid)
			}
		}
		if n.Start {
			for _, mid := range n.Methods {
				if m, ok := s.MethodByID(mid); ok && m.Category != CatConstructor {
					addf("start node %s lists non-constructor method %s", n.ID, mid)
				}
			}
		}
	}

	// Edges: known endpoints; declared out-degrees consistent.
	for _, e := range s.Edges {
		if !nodeSeen[e.From] {
			addf("edge references undeclared node %q", e.From)
		}
		if !nodeSeen[e.To] {
			addf("edge references undeclared node %q", e.To)
		}
		outDeg[e.From]++
	}
	for _, n := range s.Nodes {
		if n.OutDeg != outDeg[n.ID] {
			addf("node %s declares %d outgoing edges but %d Edge clauses were given",
				n.ID, n.OutDeg, outDeg[n.ID])
		}
	}

	// Inheritance annotations: meaningful targets only.
	if s.Class.Superclass == "" {
		if len(s.Redefined) > 0 {
			addf("Redefined clause without a superclass")
		}
		if len(s.ModifiedAttributes) > 0 {
			addf("ModifiedAttributes clause without a superclass")
		}
	}
	for _, name := range s.Redefined {
		if _, ok := s.MethodByName(name); !ok {
			addf("Redefined lists unknown method %q", name)
		}
	}
	for _, name := range s.ModifiedAttributes {
		if !attrSeen[name] {
			addf("ModifiedAttributes lists unknown attribute %q", name)
		}
	}

	if len(problems) == 0 {
		// Defer the structural graph rules (reachability, birth/death) to
		// the TFM validator so the messages match the model vocabulary.
		if len(s.Nodes) > 0 {
			g, err := s.TFM()
			if err != nil {
				return fmt.Errorf("tspec: spec %q: %w", s.Class.Name, err)
			}
			if err := g.Validate(); err != nil {
				return fmt.Errorf("tspec: spec %q: %w", s.Class.Name, err)
			}
		}
		return nil
	}
	return fmt.Errorf("tspec: invalid spec %q: %s", s.Class.Name, strings.Join(problems, "; "))
}
