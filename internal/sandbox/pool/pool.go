package pool

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"concat/internal/sandbox"
)

// Worker-side errors surfaced by Recv. ErrRecvTimeout means the caller's
// deadline elapsed with the worker still silent — the worker must be
// killed (Discard) because its stream position is unknown.
var (
	ErrRecvTimeout = errors.New("pool: receive deadline elapsed")
	ErrClosed      = errors.New("pool: pool is closed")
)

// Config describes the worker processes a Pool spawns.
type Config struct {
	// Argv is the worker command line; Argv[0] is the executable. The
	// worker is expected to serve batch frames on stdin/stdout until EOF.
	Argv []string
	// Env entries are appended to the parent environment.
	Env []string
	// Size is the maximum number of concurrently live workers; <=0 means 1.
	Size int
	// MaxFrameBytes bounds one received frame; <=0 applies
	// DefaultMaxFrameBytes.
	MaxFrameBytes int64
	// MaxStderrBytes caps the retained head of a worker's stderr (the part
	// holding a fatal error line); <=0 applies an 8MB default.
	MaxStderrBytes int64
	// Retry is the policy for transient spawn failures; the zero value uses
	// sandbox.DefaultRetryPolicy.
	Retry sandbox.RetryPolicy
}

// Stats counts pool lifecycle events. Spawned includes restarts; Discarded
// counts workers killed after a crash, deadline, or dirty batch.
type Stats struct {
	Spawned   int64
	Discarded int64
}

// Pool is a bounded set of warm worker processes. Acquire hands out an
// idle worker (spawning lazily up to Size), Release returns a healthy one,
// Discard kills one whose stream or address space is no longer trusted.
// All methods are safe for concurrent use.
type Pool struct {
	cfg Config

	idle chan *Worker
	sem  chan struct{}

	mu     sync.Mutex
	closed bool
	live   map[*Worker]struct{}

	spawned   atomic.Int64
	discarded atomic.Int64
}

// New validates the config and returns an empty pool; workers spawn lazily
// on Acquire.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Argv) == 0 {
		return nil, errors.New("pool: empty worker argv")
	}
	if cfg.Size <= 0 {
		cfg.Size = 1
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.MaxStderrBytes <= 0 {
		cfg.MaxStderrBytes = 8 << 20
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry = sandbox.DefaultRetryPolicy()
	}
	return &Pool{
		cfg:  cfg,
		idle: make(chan *Worker, cfg.Size),
		sem:  make(chan struct{}, cfg.Size),
		live: make(map[*Worker]struct{}),
	}, nil
}

// Acquire returns a warm worker, spawning one when no idle worker exists
// and the pool is under Size; otherwise it blocks until a worker is
// released or discarded. Spawn failures are retried under the transient
// policy before being reported.
func (p *Pool) Acquire() (*Worker, error) {
	select {
	case w := <-p.idle:
		return w, nil
	default:
	}
	select {
	case w := <-p.idle:
		return w, nil
	case p.sem <- struct{}{}:
		w, err := p.spawn()
		if err != nil {
			<-p.sem
			return nil, err
		}
		return w, nil
	}
}

// Release returns a healthy worker to the idle set for reuse.
func (p *Pool) Release(w *Worker) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.Discard(w)
		return
	}
	select {
	case p.idle <- w:
	default:
		// Shouldn't happen (idle capacity == sem capacity), but never block.
		p.Discard(w)
	}
}

// Discard kills the worker and frees its pool slot; the next Acquire may
// spawn a replacement. Safe on an already-dead worker.
func (p *Pool) Discard(w *Worker) {
	w.kill()
	p.mu.Lock()
	_, tracked := p.live[w]
	delete(p.live, w)
	p.mu.Unlock()
	if tracked {
		p.discarded.Add(1)
		<-p.sem
	}
}

// Close kills every worker, idle or not, and fails future Acquires.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := make([]*Worker, 0, len(p.live))
	for w := range p.live {
		workers = append(workers, w)
	}
	p.live = make(map[*Worker]struct{})
	p.mu.Unlock()
	for _, w := range workers {
		w.kill()
		p.discarded.Add(1)
		<-p.sem
	}
	// Drain any idle references; their workers were already killed above.
	for {
		select {
		case <-p.idle:
		default:
			return
		}
	}
}

// Stats returns the lifecycle counters so far.
func (p *Pool) Stats() Stats {
	return Stats{Spawned: p.spawned.Load(), Discarded: p.discarded.Load()}
}

func (p *Pool) spawn() (*Worker, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()
	var w *Worker
	err := sandbox.Retry(p.cfg.Retry, func() error {
		var spawnErr error
		w, spawnErr = startWorker(p.cfg)
		return spawnErr
	})
	if err != nil {
		return nil, err
	}
	p.spawned.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		w.kill()
		return nil, ErrClosed
	}
	p.live[w] = struct{}{}
	p.mu.Unlock()
	return w, nil
}

// recvFrame is one reader-goroutine delivery: a payload or the stream
// error that ended the worker's output.
type recvFrame struct {
	payload []byte
	err     error
}

// Worker is one live case-server process plus its framed pipes. A Worker
// is owned by exactly one dispatcher between Acquire and Release/Discard;
// its methods are not safe for concurrent use by multiple dispatchers.
type Worker struct {
	cmd    *exec.Cmd
	stdin  *os.File
	stdout *os.File
	stderr *capBuffer

	frames  chan recvFrame
	readErr error

	killOnce sync.Once
	waitOnce sync.Once
	waitDone chan struct{}
}

func startWorker(cfg Config) (*Worker, error) {
	inR, inW, err := os.Pipe()
	if err != nil {
		return nil, fmt.Errorf("pool: stdin pipe: %w", err)
	}
	outR, outW, err := os.Pipe()
	if err != nil {
		inR.Close()
		inW.Close()
		return nil, fmt.Errorf("pool: stdout pipe: %w", err)
	}
	cmd := exec.Command(cfg.Argv[0], cfg.Argv[1:]...)
	cmd.Stdin = inR
	cmd.Stdout = outW
	stderr := &capBuffer{max: cfg.MaxStderrBytes}
	cmd.Stderr = stderr
	cmd.Env = append(os.Environ(), cfg.Env...)
	// Its own process group, so killing a wedged worker reaches descendants
	// too — same containment stance as the spawn-per-case path. WaitDelay
	// keeps an orphaned descendant holding the stderr pipe from wedging Wait.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.WaitDelay = 2 * time.Second
	if err := cmd.Start(); err != nil {
		inR.Close()
		inW.Close()
		outR.Close()
		outW.Close()
		return nil, fmt.Errorf("pool: spawning %s: %w", cfg.Argv[0], err)
	}
	// Close the child's ends in the parent; the reader then sees EOF the
	// moment the worker (and its process group) is gone.
	inR.Close()
	outW.Close()

	w := &Worker{
		cmd:      cmd,
		stdin:    inW,
		stdout:   outR,
		stderr:   stderr,
		frames:   make(chan recvFrame, 4),
		waitDone: make(chan struct{}),
	}
	go w.readLoop(cfg.MaxFrameBytes)
	return w, nil
}

// readLoop pulls frames off the worker's stdout for Recv. It owns the
// stdout pipe: it exits (closing the channel) on the first read error,
// which for a dead worker is EOF.
func (w *Worker) readLoop(maxFrame int64) {
	br := bufio.NewReader(w.stdout)
	for {
		payload, err := ReadFrame(br, maxFrame)
		if err != nil {
			w.frames <- recvFrame{err: err}
			close(w.frames)
			w.stdout.Close()
			return
		}
		w.frames <- recvFrame{payload: payload}
	}
}

// Send writes one frame to the worker's stdin. A write error means the
// worker is gone; the caller should Recv (to classify) or Discard.
func (w *Worker) Send(payload []byte) error {
	return WriteFrame(w.stdin, payload)
}

// Recv returns the next frame from the worker, waiting up to timeout.
// ErrRecvTimeout means the worker is wedged past its deadline; any other
// error means its output stream ended (crash or clean exit) — classify
// with Fate.
func (w *Worker) Recv(timeout time.Duration) ([]byte, error) {
	if w.readErr != nil {
		return nil, w.readErr
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-w.frames:
		if !ok {
			return nil, w.readErr
		}
		if f.err != nil {
			w.readErr = f.err
		}
		return f.payload, f.err
	case <-timer.C:
		return nil, ErrRecvTimeout
	}
}

// kill force-terminates the worker's process group and reaps it.
func (w *Worker) kill() {
	w.killOnce.Do(func() {
		if err := syscall.Kill(-w.cmd.Process.Pid, syscall.SIGKILL); err != nil {
			_ = w.cmd.Process.Kill()
		}
		w.stdin.Close()
	})
	w.wait()
}

// wait reaps the worker process exactly once.
func (w *Worker) wait() {
	w.waitOnce.Do(func() {
		go func() {
			_ = w.cmd.Wait()
			close(w.waitDone)
		}()
	})
	select {
	case <-w.waitDone:
	case <-time.After(5 * time.Second):
		// A wedged reap should never block the campaign; the process group
		// was SIGKILLed, the OS will finish the job.
	}
}

// Fate reaps a worker whose stream ended and classifies its death: the
// exit code plus the same deterministic fatal summary the spawn-per-case
// path derives (the runtime's "fatal error:"/"panic:" line from stderr, or
// the exit status). Call it only after Recv reported a stream error.
func (w *Worker) Fate() (exitCode int, summary string) {
	w.stdin.Close()
	w.wait()
	state := w.cmd.ProcessState
	if state == nil {
		return -1, "worker not reaped"
	}
	code := state.ExitCode()
	if code == 0 {
		return 0, ""
	}
	return code, sandbox.SummarizeFatal(state.String(), w.stderr.Bytes())
}

// capBuffer keeps the first max bytes written and drops the rest, always
// reporting full consumption so the worker never blocks on stderr.
type capBuffer struct {
	mu  sync.Mutex
	buf []byte
	max int64
}

func (c *capBuffer) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if room := c.max - int64(len(c.buf)); room > 0 {
		if int64(len(p)) < room {
			room = int64(len(p))
		}
		c.buf = append(c.buf, p[:room]...)
	}
	return len(p), nil
}

func (c *capBuffer) Bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...)
}
