// Package component defines the runtime model of a self-testable component:
// how the generated driver creates instances, invokes methods by name, and
// reaches the built-in test facilities.
//
// The paper's driver calls C++ methods directly because test cases are
// generated as C++ template functions. Go has no classes or templates, so
// the generated suites are data and components expose a uniform Invoke
// interface; the Dispatcher helper keeps the per-component wiring to a
// table of method functions. This is the "interface-based adaptation" noted
// in DESIGN.md.
package component

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"concat/internal/bit"
	"concat/internal/domain"
	"concat/internal/tspec"
)

// Instance is a live object of a component under test. It exposes the
// built-in test interface (embedded bit.SelfTestable) plus name-based method
// invocation and explicit destruction — the birth-to-death lifecycle a
// transaction exercises.
type Instance interface {
	bit.SelfTestable
	// Invoke calls the named method with the given arguments.
	Invoke(method string, args []domain.Value) ([]domain.Value, error)
	// Destroy plays the destructor role: it releases resources and checks
	// any destruction-time contract. After Destroy the instance must not be
	// used.
	Destroy() error
}

// Factory creates instances of one component and carries its t-spec — the
// component and its specification travel together, which is the definition
// of a self-testable component.
type Factory interface {
	// Name returns the component (class) name.
	Name() string
	// Spec returns the component's embedded test specification.
	Spec() *tspec.Spec
	// New constructs an instance using the named constructor method.
	New(ctor string, args []domain.Value) (Instance, error)
}

// Forker is an optional Factory capability for components whose instances
// work against shared mutable context (a database, a file store). Fork
// returns an independent factory whose instances share no mutable state
// with the receiver's — a fresh world. The test executor forks per test
// case when available, so every transaction starts from the same initial
// context: cases become hermetic, their transcripts stop depending on
// suite order, and serial and parallel execution produce identical
// reports. If the forked factory also exposes
// Providers() map[string]domain.Provider, the executor completes that
// case's structured parameters from the fork, keeping the providers'
// side effects inside the case's world too.
type Forker interface {
	Factory
	Fork() Factory
}

// ErrUnknownMethod is wrapped by Invoke for calls to undeclared methods.
var ErrUnknownMethod = errors.New("component: unknown method")

// ErrDestroyed is wrapped by Invoke on a destroyed instance.
var ErrDestroyed = errors.New("component: instance already destroyed")

// Method is a bound method implementation: it receives the call arguments
// and returns the results.
type Method func(args []domain.Value) ([]domain.Value, error)

// Dispatcher is the method table backing an Instance's Invoke. The zero
// value is ready to use.
type Dispatcher struct {
	methods map[string]Method
}

// Register binds a method name to its implementation. Re-registering a name
// replaces the previous binding.
func (d *Dispatcher) Register(name string, fn Method) {
	if d.methods == nil {
		d.methods = make(map[string]Method)
	}
	d.methods[name] = fn
}

// Invoke dispatches a call by method name.
func (d *Dispatcher) Invoke(name string, args []domain.Value) ([]domain.Value, error) {
	fn, ok := d.methods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, name)
	}
	return fn(args)
}

// Has reports whether a method is registered.
func (d *Dispatcher) Has(name string) bool {
	_, ok := d.methods[name]
	return ok
}

// Names returns the registered method names, sorted.
func (d *Dispatcher) Names() []string {
	out := make([]string, 0, len(d.methods))
	for name := range d.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Registry is a thread-safe name-to-factory map: the component library a
// consumer (or the concat CLI) selects targets from.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory; duplicate names are rejected.
func (r *Registry) Register(f Factory) error {
	if f == nil {
		return errors.New("component: nil factory")
	}
	name := f.Name()
	if name == "" {
		return errors.New("component: factory with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[name]; ok {
		return fmt.Errorf("component: %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Lookup returns the factory for a component name.
func (r *Registry) Lookup(name string) (Factory, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("component: %q not registered", name)
	}
	return f, nil
}

// Names returns the registered component names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WantArgs validates an argument list against expected kinds; it is the
// argument-marshalling guard every component method starts with.
func WantArgs(method string, args []domain.Value, kinds ...domain.Kind) error {
	if len(args) != len(kinds) {
		return fmt.Errorf("component: %s expects %d arguments, got %d", method, len(kinds), len(args))
	}
	for i, k := range kinds {
		got := args[i].Kind()
		if got == k {
			continue
		}
		// Nil satisfies pointer/object positions (a null argument).
		if got == domain.KindNil && (k == domain.KindPointer || k == domain.KindObject) {
			continue
		}
		// Objects satisfy pointer positions and vice versa: both are refs.
		if (got == domain.KindObject && k == domain.KindPointer) ||
			(got == domain.KindPointer && k == domain.KindObject) {
			continue
		}
		return fmt.Errorf("component: %s argument %d is %s, want %s", method, i, got, k)
	}
	return nil
}
