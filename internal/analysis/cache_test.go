package analysis

import (
	"bytes"
	"testing"

	"concat/internal/component"
	"concat/internal/components/account"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/store"
)

// cachedAccount builds a fresh Analysis over the account component wired to
// the verdict store at dir, the way two independent processes would run the
// same campaign against a shared cache directory.
func cachedAccount(t *testing.T, dir string) (*Analysis, []mutation.Mutant) {
	t.Helper()
	eng := mutation.NewEngine()
	eng.MustRegisterSites(account.Sites()...)
	suite, err := driver.Generate(account.Spec(), driver.Options{
		Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	a := &Analysis{
		Engine:  eng,
		Factory: account.NewFactoryWithEngine(eng),
		Suite:   suite,
		Store:   st,
	}
	return a, eng.Enumerate(nil, nil)
}

// renderAll captures everything a campaign reports: progress lines plus the
// rendered table — the byte-identity surface of the warm-cache contract.
func renderAll(t *testing.T, a *Analysis, mutants []mutation.Mutant) (*Result, []byte) {
	t.Helper()
	var out bytes.Buffer
	a.Progress = &out
	res, err := a.Run(mutants)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Tabulate().Render(&out); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return res, out.Bytes()
}

func TestWarmCacheByteIdenticalReport(t *testing.T) {
	dir := t.TempDir()

	coldA, mutants := cachedAccount(t, dir)
	cold, coldOut := renderAll(t, coldA, mutants)
	if cold.CacheMisses != len(mutants) || cold.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", cold.CacheHits, cold.CacheMisses, len(mutants))
	}
	if n, skipped, err := coldA.Store.Len(); err != nil || n != len(mutants) || skipped != 0 {
		t.Fatalf("store Len = %d (skipped %d), %v; want %d, 0 skipped", n, skipped, err, len(mutants))
	}

	// Warm run: fresh engine, factory, suite and store handle — only the
	// cache directory is shared. Every mutant must be served from the store
	// and the full rendered output must match byte for byte.
	warmA, warmMutants := cachedAccount(t, dir)
	warm, warmOut := renderAll(t, warmA, warmMutants)
	if warm.CacheHits != len(mutants) || warm.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, len(mutants))
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("warm output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
}

func TestCacheReExecutesOnlyChangedMutants(t *testing.T) {
	dir := t.TempDir()
	coldA, mutants := cachedAccount(t, dir)
	if _, err := coldA.Run(mutants); err != nil {
		t.Fatal(err)
	}

	// Perturb one mutant's identity: its content address moves, so the warm
	// campaign re-executes exactly that one and serves the rest from the
	// store.
	warmA, warmMutants := cachedAccount(t, dir)
	warmMutants[0].ID += "#changed"
	warm, err := warmA.Run(warmMutants)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheMisses != 1 || warm.CacheHits != len(warmMutants)-1 {
		t.Errorf("warm run after 1 change: hits=%d misses=%d, want %d/1",
			warm.CacheHits, warm.CacheMisses, len(warmMutants)-1)
	}
}

func TestCacheKeyedOnSeed(t *testing.T) {
	dir := t.TempDir()
	coldA, mutants := cachedAccount(t, dir)
	if _, err := coldA.Run(mutants); err != nil {
		t.Fatal(err)
	}
	// A different execution seed is a different campaign: nothing may be
	// served from the other seed's verdicts.
	otherA, otherMutants := cachedAccount(t, dir)
	otherA.Exec.Seed = 99
	other, err := otherA.Run(otherMutants)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHits != 0 || other.CacheMisses != len(otherMutants) {
		t.Errorf("different seed: hits=%d misses=%d, want 0/%d", other.CacheHits, other.CacheMisses, len(otherMutants))
	}
}

func TestWarmCacheParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	coldA, mutants := cachedAccount(t, dir)
	_, coldOut := renderAll(t, coldA, mutants)

	// A parallel warm run shares one hit/miss tally across workers and must
	// still render the identical report.
	warmA, warmMutants := cachedAccount(t, dir)
	warmA.Parallelism = 4
	warmA.NewFactory = func(e *mutation.Engine) component.Factory {
		return account.NewFactoryWithEngine(e)
	}
	warm, warmOut := renderAll(t, warmA, warmMutants)
	if warm.CacheHits != len(warmMutants) || warm.CacheMisses != 0 {
		t.Fatalf("parallel warm run: hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, len(warmMutants))
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Errorf("parallel warm output differs from cold sequential:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
}
