// The HTTP remote backend: a client (Remote) speaking the remote-store
// protocol against any node that mounts NewHandler, so one node's warm
// cache serves every other node. The protocol moves verbatim entry
// documents, and *both* ends verify integrity — the server before storing
// a remote write, the client before trusting a fetched document — so a
// corrupt or lying peer degrades to cache misses, never wrong verdicts.
//
//	GET /store/{id}   fetch the entry document (404 on miss, 400 bad id)
//	PUT /store/{id}   store a verified document (204; 400 on corruption)
//	GET /store        entry counts plus the serving backend's counters
//
// Workers default to publishing through their coordinator's /store mount,
// which gives a fleet a shared verdict store with no shared filesystem.

package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
)

// maxEntryBytes bounds a single entry document on the wire; suite-report
// entries embed whole transcripts but stay far below this.
const maxEntryBytes = 64 << 20

// Remote is the client backend over a peer's mounted store handler. All
// methods are safe for concurrent use.
type Remote struct {
	base   string
	client *http.Client

	hits, misses atomic.Int64
	quarantined  atomic.Int64
}

// NewRemote returns a backend over the store mounted at base — the peer's
// service root, e.g. "http://127.0.0.1:8437". A nil client uses
// http.DefaultClient.
func NewRemote(base string, client *http.Client) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{base: strings.TrimSuffix(base, "/"), client: client}
}

func (r *Remote) entryURL(id string) string {
	return r.base + "/store/" + id
}

// Get fetches and locally verifies the entry document for the key. A 404
// is a counted clean miss; a document that fails verification — the server
// is corrupt or lying — is counted as quarantined and read as a miss, so
// the caller re-executes rather than trusting it. Network and server
// errors surface as errors: the caller cannot tell a miss from an outage,
// and silently re-executing against a dead shared store would fork the
// fleet's view of the campaign.
func (r *Remote) Get(k Key, out any) (bool, error) {
	id, err := k.ID()
	if err != nil {
		return false, err
	}
	resp, err := r.client.Get(r.entryURL(id))
	if err != nil {
		r.misses.Add(1)
		return false, fmt.Errorf("store: remote get %s: %w", id, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		r.misses.Add(1)
		return false, nil
	default:
		r.misses.Add(1)
		return false, fmt.Errorf("store: remote get %s: HTTP %d", id, resp.StatusCode)
	}
	doc, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		r.misses.Add(1)
		return false, fmt.Errorf("store: remote get %s: reading body: %w", id, err)
	}
	e, err := decodeEntry(id, doc)
	if err != nil {
		r.quarantined.Add(1)
		r.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		r.quarantined.Add(1)
		r.misses.Add(1)
		return false, nil
	}
	r.hits.Add(1)
	return true, nil
}

// Put encodes the entry locally — so the bytes on the wire are exactly
// what a local Put would have written — and publishes it to the peer.
func (r *Remote) Put(k Key, value any) error {
	id, doc, err := encodeEntry(k, value)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, r.entryURL(id), bytes.NewReader(doc))
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", id, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("store: remote put %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// dirInfo is the GET /store response document.
type dirInfo struct {
	Entries int   `json:"entries"`
	Skipped int   `json:"skipped"`
	Stats   Stats `json:"stats"`
}

// Len asks the peer for its entry counts.
func (r *Remote) Len() (entries, skipped int, err error) {
	resp, err := r.client.Get(r.base + "/store")
	if err != nil {
		return 0, 0, fmt.Errorf("store: remote len: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("store: remote len: HTTP %d", resp.StatusCode)
	}
	var d dirInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&d); err != nil {
		return 0, 0, fmt.Errorf("store: remote len: %w", err)
	}
	return d.Entries, d.Skipped, nil
}

// Stats snapshots the client-side counters: this node's hits, misses, and
// quarantined fetches against the remote store. The peer's own counters
// are on its GET /store document and /metrics.
func (r *Remote) Stats() Stats {
	return Stats{Hits: r.hits.Load(), Misses: r.misses.Load(), Quarantined: r.quarantined.Load()}
}

// NewHandler serves the remote-store protocol over b. The handler routes
// GET /store, GET /store/{id}, and PUT /store/{id} (Go 1.22 patterns), so
// it can be mounted per-pattern on a service mux or served standalone.
func NewHandler(b RawBackend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /store/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !isEntryID(id) {
			storeError(w, http.StatusBadRequest, fmt.Sprintf("malformed entry id %q", id))
			return
		}
		doc, ok, err := b.GetRaw(id)
		if err != nil {
			storeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !ok {
			storeError(w, http.StatusNotFound, "no entry "+id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
	})
	mux.HandleFunc("PUT /store/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !isEntryID(id) {
			storeError(w, http.StatusBadRequest, fmt.Sprintf("malformed entry id %q", id))
			return
		}
		doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
		if err != nil {
			storeError(w, http.StatusBadRequest, "reading entry document: "+err.Error())
			return
		}
		switch err := b.PutRaw(id, doc); {
		case errors.Is(err, ErrCorrupt):
			storeError(w, http.StatusBadRequest, err.Error())
		case err != nil:
			storeError(w, http.StatusInternalServerError, err.Error())
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	mux.HandleFunc("GET /store", func(w http.ResponseWriter, r *http.Request) {
		entries, skipped, err := b.Len()
		if err != nil {
			storeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		doc, _ := json.Marshal(dirInfo{Entries: entries, Skipped: skipped, Stats: b.Stats()})
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(doc, '\n'))
	})
	return mux
}

// storeError writes the protocol's JSON error document.
func storeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	doc, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(doc, '\n'))
}
