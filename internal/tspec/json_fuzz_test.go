package tspec

import (
	"bytes"
	"strings"
	"testing"
)

// jsonSeed serializes a text-notation spec into the JSON wire form for the
// fuzz corpus; it fails the fuzzer setup on malformed seed text.
func jsonSeed(f *testing.F, src string) []byte {
	f.Helper()
	spec, err := Parse(src)
	if err != nil {
		f.Fatalf("seed does not parse: %v", err)
	}
	var buf bytes.Buffer
	if err := spec.SaveJSON(&buf); err != nil {
		f.Fatalf("seed does not serialize: %v", err)
	}
	return buf.Bytes()
}

// FuzzJSONRoundTrip asserts the JSON wire form's contract: arbitrary bytes
// never panic LoadJSON, and any input that loads AND validates must survive
// SaveJSON -> LoadJSON with no observable difference — byte-identical
// re-serialization, and diff.go's Classify finding every method Inherited
// (i.e. no signature drift) when the round-tripped spec is framed as a
// subclass of the original. Run with `go test -fuzz FuzzJSONRoundTrip` for a
// real campaign; the seed corpus runs in ordinary `go test`.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"class":{"name":"A"}}`))
	f.Add([]byte(`{"class":{"name":"A"},"methods":[{"id":"m1","name":"A","category":"constructor"}]}`))
	f.Add([]byte(`{"class":{"name":"A"},"attributes":[{"name":"x","domain":{"kind":"range","lo":1,"hi":2}}]}`))
	f.Add([]byte(`{"class":{"name":"A"},"nodes":[{"id":"n1","start":true,"methods":["m1"]}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"class":{"name":"A"},"attributes":[{"name":"x","domain":{"kind":"range"}}]}`))
	f.Add(jsonSeed(f, productSpecText))
	f.Add(jsonSeed(f, "Class('A', No, <empty>, <empty>)\nMethod(m1, 'A', <empty>, constructor, 0)"))
	f.Add(jsonSeed(f, "Class('A', Yes, 'B', ['x.cpp'])\nAttribute('s', string, ['a','b'])\nMethod(m1, 'A', <empty>, constructor, 0)"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := LoadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// LoadJSON validates, so spec is well-formed. One round trip must be
		// lossless...
		var first bytes.Buffer
		if err := spec.SaveJSON(&first); err != nil {
			t.Fatalf("valid spec failed to serialize: %v", err)
		}
		back, err := LoadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("serialized spec does not reload: %v\n%s", err, first.String())
		}
		// ...and re-serialization must be byte-identical (a fixed point).
		var second bytes.Buffer
		if err := back.SaveJSON(&second); err != nil {
			t.Fatalf("round-tripped spec failed to serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("JSON round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		// The text notation must agree too.
		var ft, bt strings.Builder
		if err := spec.Format(&ft); err != nil {
			t.Fatalf("original failed to format: %v", err)
		}
		if err := back.Format(&bt); err != nil {
			t.Fatalf("round-tripped spec failed to format: %v", err)
		}
		if ft.String() != bt.String() {
			t.Fatalf("text forms diverge after JSON round trip:\noriginal:\n%s\nback:\n%s", ft.String(), bt.String())
		}
		// The diff engine's own comparator must see no difference, method by
		// method (keyed by ID, since overloads share a name).
		if len(back.Methods) != len(spec.Methods) {
			t.Fatalf("round trip changed method count: %d -> %d", len(spec.Methods), len(back.Methods))
		}
		overloaded := false
		names := map[string]int{}
		for i, m := range spec.Methods {
			if m.ID != back.Methods[i].ID {
				t.Fatalf("round trip reordered methods: %q -> %q at %d", m.ID, back.Methods[i].ID, i)
			}
			if !sameSignature(m, back.Methods[i]) {
				t.Fatalf("round trip changed the signature of %s (%q)", m.ID, m.Name)
			}
			names[m.Name]++
			if names[m.Name] > 1 {
				overloaded = true
			}
		}
		// For specs without overloads, Classify end to end must also report
		// no difference: frame the round-tripped spec as a direct subclass
		// with nothing redefined — every method must classify Inherited.
		// (With overloads, name-keyed Classify conservatively reports the
		// extra overloads redefined, so the framing doesn't apply.)
		if !overloaded {
			child := back.Clone()
			child.Class.Superclass = spec.Class.Name
			child.Redefined = nil
			child.ModifiedAttributes = nil
			cls, err := Classify(spec, child)
			if err != nil {
				t.Fatalf("Classify on round-tripped spec: %v", err)
			}
			for name, st := range cls {
				if st != StatusInherited {
					t.Fatalf("round trip changed method %q: classified %s, want inherited", name, st)
				}
			}
		}
	})
}
