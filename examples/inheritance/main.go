// Inheritance: the hierarchical incremental test reuse of §3.4.2. The
// sortable list derives from the plain list; its suite is assembled by
// classifying every transaction — skip (inherited-only), reuse (touches
// redefined methods whose spec did not change), regenerate (touches new
// methods) — exactly the workflow behind the paper's "233 new test cases;
// the class reused 329 test cases from its superclass".
package main

import (
	"fmt"
	"os"

	"concat"
	"concat/internal/history"
	"concat/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inheritance:", err)
		os.Exit(1)
	}
}

func run() error {
	parent := concat.Target("ObList")
	child := concat.Target("SortableObList")

	opts := concat.GenOptions{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4}

	// The parent's own testing: its suite becomes the reuse pool.
	parentSuite, err := concat.Generate(parent.Spec(), opts)
	if err != nil {
		return err
	}
	fmt.Printf("parent %s: %s\n", parent.Spec().Class.Name, parentSuite.Stats())

	// Classify the subclass methods against the parent spec.
	cls, err := tspec.Classify(parent.Spec(), child.Spec())
	if err != nil {
		return err
	}
	fmt.Printf("\nmethod classification of %s:\n", child.Spec().Class.Name)
	fmt.Printf("  inherited unchanged: %v\n", cls.Names(tspec.StatusInherited))
	fmt.Printf("  redefined:           %v\n", cls.Names(tspec.StatusRedefined))
	fmt.Printf("  new:                 %v\n", cls.Names(tspec.StatusNew))

	// Derive the subclass suite.
	d, err := concat.Derive(parent.Spec(), child.Spec(), parentSuite, opts)
	if err != nil {
		return err
	}
	skip, reuse, regen := d.Plan.Counts()
	fmt.Printf("\ntransaction decisions: %d skip, %d reuse, %d regenerate\n", skip, reuse, regen)
	fmt.Printf("derived suite: %d new cases, %d reused from the parent (%d parent cases skipped)\n",
		d.NumNew, d.NumReused, d.NumSkipped)

	// Show a decision of each class.
	shown := map[history.TransactionClass]bool{}
	for _, dec := range d.Plan.Decisions {
		if shown[dec.Class] {
			continue
		}
		shown[dec.Class] = true
		fmt.Printf("  e.g. %-10s %s — %s\n", dec.Class, dec.Transaction, dec.Reason)
	}

	// Run the derived suite against the subclass.
	report, err := child.RunSuite(d.Suite, concat.ExecOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", report.Summary())
	if !report.AllPassed() {
		return fmt.Errorf("derived suite failed")
	}

	fmt.Println("\nNOTE: the skipped transactions are the paper's Table 3 warning —")
	fmt.Println("faults planted in inherited methods survive under this reduced suite.")
	fmt.Println("Run `go run ./cmd/experiments -table3 -baseline` to measure it.")
	return nil
}
