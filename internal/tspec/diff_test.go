package tspec

import "testing"

// subClone derives a child spec from the base builder by cloning: same
// methods, correct superclass link, ready for targeted mutation.
func subClone(t *testing.T) (parent, child *Spec) {
	t.Helper()
	parent = baseBuilder().MustBuild()
	child = parent.Clone()
	child.Class.Name = "Sub"
	child.Class.Superclass = "Base"
	return parent, child
}

func classify(t *testing.T, parent, child *Spec) Classification {
	t.Helper()
	cls, err := Classify(parent, child)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return cls
}

// An unmodified clone inherits every method: the signature test must not
// produce false positives on identical declarations.
func TestClassifyIdenticalCloneInheritsAll(t *testing.T) {
	parent, child := subClone(t)
	cls := classify(t, parent, child)
	for name, st := range cls {
		if st != StatusInherited {
			t.Errorf("%s = %s, want inherited", name, st)
		}
	}
	if inh, red, nw := cls.Counts(); inh != 4 || red != 0 || nw != 0 {
		t.Errorf("counts = %d/%d/%d, want 4/0/0", inh, red, nw)
	}
}

// Adding a parameter to an inherited method changes its signature — Harrold's
// model forbids that, so the method must be regenerated (Redefined).
func TestClassifyAddedParameter(t *testing.T) {
	parent, child := subClone(t)
	add := &child.Methods[2] // Add(v)
	add.Params = append(add.Params, Param{Name: "w", Domain: RangeInt(0, 1)})
	cls := classify(t, parent, child)
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined after added parameter", cls["Add"])
	}
	if cls["Get"] != StatusInherited {
		t.Errorf("Get = %s, want inherited (untouched)", cls["Get"])
	}
}

// Removing a parameter is the symmetric signature change.
func TestClassifyRemovedParameter(t *testing.T) {
	parent, child := subClone(t)
	child.Methods[2].Params = nil // Add(v) -> Add()
	cls := classify(t, parent, child)
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined after removed parameter", cls["Add"])
	}
}

// Re-domaining a parameter — same name and arity, different input domain —
// is a spec change even when the structural signature is unchanged. Each
// variant of the domain declaration must be noticed.
func TestClassifyRedomainedParameter(t *testing.T) {
	cases := []struct {
		name   string
		domain DomainDecl
	}{
		{"narrowed range", RangeInt(1, 5)},
		{"widened range", RangeInt(1, 10000)},
		{"shifted bounds", RangeInt(2, 11)},
		{"kind change to string", StringLen(1, 10)},
		{"kind change to bool", BoolDom()},
		{"float promotion", RangeFloat(1, 10)},
		{"enumerated candidates", StringsOf("a", "b")},
		{"nullable pointer", PointerTo("T", true)},
		{"non-nullable pointer", PointerTo("T", false)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			parent, child := subClone(t)
			child.Methods[2].Params[0].Domain = c.domain
			cls := classify(t, parent, child)
			if cls["Add"] != StatusRedefined {
				t.Errorf("Add = %s, want redefined after %s", cls["Add"], c.name)
			}
		})
	}
}

// Renaming a parameter counts as a signature change too: the t-spec names
// feed the generated driver, so parent cases would no longer replay.
func TestClassifyRenamedParameter(t *testing.T) {
	parent, child := subClone(t)
	child.Methods[2].Params[0].Name = "value"
	cls := classify(t, parent, child)
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined after parameter rename", cls["Add"])
	}
}

// Constructor handling. A subclass that keeps the parent's constructor name
// and shape inherits it; changing the constructor's parameters — the common
// real-world case of a subclass constructor taking extra configuration —
// forces regeneration; a renamed constructor (the usual C++/Go pattern where
// the constructor carries the class name) is New.
func TestClassifyConstructorChanges(t *testing.T) {
	t.Run("unchanged constructor inherits", func(t *testing.T) {
		parent, child := subClone(t)
		cls := classify(t, parent, child)
		if cls["Base"] != StatusInherited {
			t.Errorf("Base ctor = %s, want inherited", cls["Base"])
		}
	})
	t.Run("constructor gains parameter", func(t *testing.T) {
		parent, child := subClone(t)
		ctor := &child.Methods[0] // Base()
		ctor.Params = append(ctor.Params, Param{Name: "capacity", Domain: RangeInt(1, 8)})
		cls := classify(t, parent, child)
		if cls["Base"] != StatusRedefined {
			t.Errorf("Base ctor = %s, want redefined after added parameter", cls["Base"])
		}
	})
	t.Run("renamed constructor is new", func(t *testing.T) {
		parent, child := subClone(t)
		child.Methods[0].Name = "Sub"
		cls := classify(t, parent, child)
		if cls["Sub"] != StatusNew {
			t.Errorf("Sub ctor = %s, want new", cls["Sub"])
		}
		if _, ok := cls["Base"]; ok {
			t.Error("classification lists the parent's constructor name, but only child methods belong in it")
		}
	})
	t.Run("constructor category change", func(t *testing.T) {
		parent, child := subClone(t)
		child.Methods[0].Category = CatUpdate
		cls := classify(t, parent, child)
		if cls["Base"] != StatusRedefined {
			t.Errorf("Base ctor = %s, want redefined after category change", cls["Base"])
		}
	})
}

// A method dropped from the child never appears in the classification —
// callers iterate child methods only, so removal is visible as absence.
func TestClassifyRemovedMethodAbsent(t *testing.T) {
	parent, child := subClone(t)
	child.Methods = append(child.Methods[:3], child.Methods[4:]...) // drop Get
	cls := classify(t, parent, child)
	if _, ok := cls["Get"]; ok {
		t.Error("removed method Get still classified")
	}
	if len(cls) != 3 {
		t.Errorf("classification size = %d, want 3", len(cls))
	}
}

// Redefinition precedence: an explicit Redefined clause wins even when the
// signatures agree, and combines with a signature change without conflict.
func TestClassifyExplicitRedefinePrecedence(t *testing.T) {
	parent, child := subClone(t)
	child.Redefined = []string{"Get"}
	child.Methods[2].Params[0].Domain = RangeInt(1, 99) // Add re-domained too
	cls := classify(t, parent, child)
	if cls["Get"] != StatusRedefined {
		t.Errorf("Get = %s, want redefined (explicit clause)", cls["Get"])
	}
	if cls["Add"] != StatusRedefined {
		t.Errorf("Add = %s, want redefined (signature)", cls["Add"])
	}
	if inh, red, nw := cls.Counts(); inh != 2 || red != 2 || nw != 0 {
		t.Errorf("counts = %d/%d/%d, want 2/2/0", inh, red, nw)
	}
}
