// Warm-pool dispatch benchmark: the point of the worker pool is that a
// crash-contained case costs one pipe round-trip instead of one process
// spawn. This test measures per-case latency of spawn-per-case isolation
// (cold) against warm-pool batched dispatch on the same suite, asserts the
// pool is actually faster — the claim holds even on a single CPU, because
// the saving is fork/exec cost, not parallelism — and with -update-bench
// records the measurement in BENCH_POOL.json.
package concat

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"concat/internal/core"
	"concat/internal/driver"
	"concat/internal/testexec"
)

// timeIsolationMode runs the suite `reps` times under the given isolation
// mode and returns the mean per-case latency.
func timeIsolationMode(t *testing.T, comp *core.Component, suite *driver.Suite, mode testexec.IsolationMode, reps int) time.Duration {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	opts := testexec.Options{Seed: 42, Isolation: mode, IsolationCommand: []string{exe}, IsolationEnv: raceFriendlyEnv}
	start := time.Now()
	cases := 0
	for i := 0; i < reps; i++ {
		rep, err := comp.RunSuite(suite, opts)
		if err != nil {
			t.Fatalf("suite run under mode %v: %v", mode, err)
		}
		cases += len(rep.Results)
	}
	if cases == 0 {
		t.Fatal("suite produced no cases to time")
	}
	return time.Since(start) / time.Duration(cases)
}

// TestPoolWarmDispatchFasterThanColdSpawn is the pool's performance
// acceptance (and the CI bench smoke): per-case latency under warm-pool
// dispatch must beat spawn-per-case isolation. No margin multiplier is
// applied — a pool that cannot beat one fork/exec per case has no reason
// to exist.
func TestPoolWarmDispatchFasterThanColdSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a few hundred child processes to time them")
	}
	comp := Target("Account")
	suite, err := comp.GenerateSuite(driver.Options{Seed: 42})
	if err != nil {
		t.Fatalf("generating suite: %v", err)
	}
	const reps = 3
	cold := timeIsolationMode(t, comp, suite, testexec.IsolateSubprocess, reps)
	warm := timeIsolationMode(t, comp, suite, testexec.IsolatePool, reps)
	ratio := float64(cold) / float64(warm)
	t.Logf("per-case latency over %d cases x %d reps: cold spawn %v, warm pool %v (%.1fx) on %d CPU(s)",
		len(suite.Cases), reps, cold, warm, ratio, runtime.NumCPU())
	if warm >= cold {
		t.Errorf("warm dispatch (%v/case) not faster than cold spawn (%v/case)", warm, cold)
	}

	if *updateBenchJSON {
		record := map[string]any{
			"benchmark":         "per-case isolation latency: spawn-per-case (cold) vs warm pool batched dispatch",
			"command":           "go test -run TestPoolWarmDispatchFasterThanColdSpawn -update-bench .",
			"component":         "Account",
			"cases":             len(suite.Cases),
			"reps":              reps,
			"cpus":              runtime.NumCPU(),
			"cold_spawn_us":     cold.Microseconds(),
			"warm_dispatch_us":  warm.Microseconds(),
			"speedup":           ratio,
			"reports_identical": "asserted byte-for-byte by TestIsolationModesByteIdenticalReports",
			"os_arch":           runtime.GOOS + "/" + runtime.GOARCH,
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_POOL.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
