// Package bit provides the built-in test (BIT) capabilities of §2.4 and
// §3.3: assertion checking (class invariant, pre- and postconditions) used
// as a partial oracle, a Reporter that dumps an object's internal state, and
// the BIT access control that makes the facilities available only in test
// mode.
//
// The paper realizes these as an abstract C++ class BuiltInTest that the
// component under test inherits, plus assertion macros that throw on
// violation (Figures 4-5). The Go adaptation: components embed bit.Base
// (embedding plays the inheritance role), satisfy the SelfTestable
// interface, and assertion violations are typed *Violation errors rather
// than exceptions — the same information the paper's driver catches in its
// try-block, delivered through Go's error channel.
package bit

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Mode is the BIT access-control state. In the paper this is a compile-time
// directive; here it is a runtime switch so that one binary can exercise
// both normal and test behaviour (and so the switch itself is testable).
type Mode int32

// BIT modes.
const (
	// ModeOff: BIT services are inaccessible; calling them is a misuse and
	// returns ErrBITDisabled. Production configuration.
	ModeOff Mode = iota + 1
	// ModeTest: BIT services are available; assertions are checked.
	ModeTest
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeTest:
		return "test"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// ErrBITDisabled is returned when a built-in test service is invoked while
// the component is not in test mode — the paper's "BIT access control
// capability prevents the misuse of BIT services".
var ErrBITDisabled = errors.New("bit: built-in test services are disabled (component not in test mode)")

// ViolationKind classifies an assertion violation.
type ViolationKind int

// Violation kinds, matching the paper's three assertion macros.
const (
	KindInvariant ViolationKind = iota + 1
	KindPrecondition
	KindPostcondition
)

// String names the kind with the paper's message wording.
func (k ViolationKind) String() string {
	switch k {
	case KindInvariant:
		return "invariant"
	case KindPrecondition:
		return "pre-condition"
	case KindPostcondition:
		return "post-condition"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation is the typed error raised when an assertion fails. It is the
// partial oracle's verdict: the object reached a state (or was called in a
// way) the contract forbids.
type Violation struct {
	Kind   ViolationKind
	Method string // method being executed when the assertion failed
	Expr   string // the predicate that failed, for the log
	Detail string // optional free-form diagnosis
}

// Error implements error with the paper's macro wording.
func (v *Violation) Error() string {
	msg := fmt.Sprintf("%s is violated!", v.Kind)
	if v.Method != "" {
		msg += " method=" + v.Method
	}
	if v.Expr != "" {
		msg += " expr=" + v.Expr
	}
	if v.Detail != "" {
		msg += " detail=" + v.Detail
	}
	return msg
}

// Is makes errors.Is(err, &Violation{Kind: k}) match on kind, and
// errors.Is(err, ErrViolation) match any violation.
func (v *Violation) Is(target error) bool {
	if target == ErrViolation {
		return true
	}
	t, ok := target.(*Violation)
	if !ok {
		return false
	}
	return (t.Kind == 0 || t.Kind == v.Kind) &&
		(t.Method == "" || t.Method == v.Method)
}

// ErrViolation is a sentinel matched by every *Violation via errors.Is.
var ErrViolation = errors.New("bit: assertion violation")

// AsViolation unwraps err to a *Violation if one is in its chain.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// ClassInvariant is the Go analog of the paper's ClassInvariant macro: it
// returns a violation error when exp is false, nil otherwise.
func ClassInvariant(exp bool, method, expr string) error {
	if exp {
		return nil
	}
	return &Violation{Kind: KindInvariant, Method: method, Expr: expr}
}

// PreCondition is the Go analog of the PreCondition macro.
func PreCondition(exp bool, method, expr string) error {
	if exp {
		return nil
	}
	return &Violation{Kind: KindPrecondition, Method: method, Expr: expr}
}

// PostCondition is the Go analog of the PostCondition macro.
func PostCondition(exp bool, method, expr string) error {
	if exp {
		return nil
	}
	return &Violation{Kind: KindPostcondition, Method: method, Expr: expr}
}

// SelfTestable is the built-in test interface of the paper's Figure 4
// BuiltInTest class: an invariant check, a reporter, and the access-control
// mode switch. Components embed Base for the mode machinery and implement
// InvariantTest and Reporter themselves ("should be redefined by the user").
type SelfTestable interface {
	// InvariantTest checks the class invariant against the object's current
	// state. It returns nil when the invariant holds, a *Violation when it
	// does not, and ErrBITDisabled outside test mode.
	InvariantTest() error
	// Reporter writes a human-readable dump of the object's internal state,
	// the observability aid of §3.3. It returns ErrBITDisabled outside test
	// mode.
	Reporter(w io.Writer) error
	// BITMode returns the current access-control mode.
	BITMode() Mode
	// SetBITMode switches the access-control mode.
	SetBITMode(Mode)
}

// Charger is a cooperative resource budget the BIT access-control guard
// charges one step on per guarded service entry. The test executor installs
// one per case (see SetBITBudget), which turns every invariant check and
// reporter dump into a metered step: a component stuck in a loop that keeps
// exercising its own BIT services runs out of budget at a deterministic
// point instead of hanging the case. sandbox.Budget is the standard
// implementation.
type Charger interface {
	// Step charges one unit of work; it returns an error once the budget
	// is exhausted.
	Step() error
}

// BudgetSetter is the capability the executor uses to install a per-case
// budget; Base implements it, so every component that embeds Base is
// resource-boundable for free.
type BudgetSetter interface {
	SetBITBudget(Charger)
}

// chargerBox wraps a Charger so atomic.Value always stores one concrete
// type regardless of the Charger implementation behind it.
type chargerBox struct{ c Charger }

// Base supplies the BIT access-control state. Embed it in a component to
// inherit BITMode/SetBITMode; the zero value is ModeOff (production-safe by
// default). Mode reads/writes are atomic so a test harness may flip modes
// while observers run.
type Base struct {
	mode      atomic.Int32
	budget    atomic.Value // *chargerBox
	telemetry atomic.Value // *telemetryBox
}

// BITMode implements SelfTestable.
func (b *Base) BITMode() Mode {
	m := Mode(b.mode.Load())
	if m == 0 {
		return ModeOff
	}
	return m
}

// SetBITMode implements SelfTestable.
func (b *Base) SetBITMode(m Mode) {
	b.mode.Store(int32(m))
}

// SetBITBudget implements BudgetSetter: subsequent Guard calls charge one
// step on c. A nil charger leaves the guard unmetered.
func (b *Base) SetBITBudget(c Charger) {
	if c != nil {
		b.budget.Store(&chargerBox{c: c})
	}
}

// Guard is the access-control check a component places at the top of each
// BIT service: it returns ErrBITDisabled unless the component is in test
// mode. With a budget installed it also charges one step, so BIT service
// entries are bounded work — the executor's resource-bounding hook.
func (b *Base) Guard() error {
	if b.BITMode() != ModeTest {
		return ErrBITDisabled
	}
	if box, _ := b.budget.Load().(*chargerBox); box != nil {
		if err := box.c.Step(); err != nil {
			return fmt.Errorf("bit: guarded service stopped: %w", err)
		}
	}
	return nil
}

// InTestMode reports whether BIT services are currently available.
func (b *Base) InTestMode() bool { return b.BITMode() == ModeTest }
