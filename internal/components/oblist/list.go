// Package oblist re-implements the experimental subject of the paper's §4:
// MFC's CObList, a doubly linked object list. It is built as a self-testable
// component — the class ships with its t-spec, built-in test capabilities
// (class invariant, reporter, BIT access control) and mutation
// instrumentation in the three methods the paper mutates in experiment 2
// (Table 3): AddHead, RemoveAt and RemoveHead.
//
// MFC stores CObject* elements; this implementation stores domain.Value
// items (integers in the experiments), which preserves the list semantics
// the mutation operators attack while keeping runs deterministic.
package oblist

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"concat/internal/bit"
	"concat/internal/domain"
	"concat/internal/mutation"
)

// Errors returned by list operations on invalid states/arguments. These are
// observable behaviour (recorded in test transcripts), not contract
// violations.
var (
	ErrEmpty      = errors.New("oblist: list is empty")
	ErrOutOfRange = errors.New("oblist: index out of range")
)

// auditSeq is a package-level counter none of the instrumented methods use:
// it populates E(R2) for the IndVarRepExt operator.
var auditSeq int64 = 7

// node is one doubly linked element.
type node struct {
	val  domain.Value
	prev *node
	next *node
}

// ObList is the list state plus built-in test machinery. It is embedded by
// the sortable subclass, playing the C++ base-class role.
type ObList struct {
	bit.Base
	eng   *mutation.Engine
	head  *node
	tail  *node
	count int64
	// blockSize mirrors CObList's m_nBlockSize construction parameter; the
	// list semantics ignore it, but it is a class attribute that methods do
	// not use — a natural E(R2) member.
	blockSize int64
}

// NewObList creates an empty list; eng may be nil (no mutation analysis).
func NewObList(blockSize int64, eng *mutation.Engine) *ObList {
	l := &ObList{}
	l.Init(blockSize, eng)
	return l
}

// Init prepares an embedded ObList in place — the constructor-chaining hook
// for derived components (Go embedding has no implicit base construction).
func (l *ObList) Init(blockSize int64, eng *mutation.Engine) {
	if blockSize <= 0 {
		blockSize = 10
	}
	l.blockSize = blockSize
	l.eng = eng
}

// Engine returns the attached mutation engine (nil when not under analysis).
func (l *ObList) Engine() *mutation.Engine { return l.eng }

// use routes an instrumented variable use through the mutation engine.
func (l *ObList) use(site mutation.SiteID, v domain.Value, locals map[string]domain.Value) domain.Value {
	if l.eng == nil || !l.eng.Armed() {
		return v
	}
	return l.eng.Use(site, v, mutation.Env{
		Locals: locals,
		Globals: map[string]domain.Value{
			"count": domain.Int(l.count),
		},
		Externals: map[string]domain.Value{
			"blockSize": domain.Int(l.blockSize),
			"auditSeq":  domain.Int(auditSeq),
		},
	})
}

func (l *ObList) useInt(site mutation.SiteID, v int64, locals map[string]domain.Value) int64 {
	out := l.use(site, domain.Int(v), locals)
	n, err := out.AsInt()
	if err != nil {
		return v
	}
	return n
}

// GetCount returns the number of elements.
func (l *ObList) GetCount() int64 { return l.count }

// IsEmpty reports whether the list has no elements.
func (l *ObList) IsEmpty() bool { return l.count == 0 }

// AddHead prepends a value. This method carries mutation sites (Table 3).
func (l *ObList) AddHead(v domain.Value) {
	// Non-interface variables: oldCount, newCount, and the stored value.
	oldCount := l.useInt("AddHead/oldCount", l.count, nil)
	stored := l.use("AddHead/stored", v, map[string]domain.Value{
		"oldCount": domain.Int(oldCount),
	})
	n := &node{val: stored}
	if l.head == nil {
		l.head = n
		l.tail = n
	} else {
		n.next = l.head
		l.head.prev = n
		l.head = n
	}
	newCount := oldCount + 1
	newCount = l.useInt("AddHead/newCount", newCount, map[string]domain.Value{
		"oldCount": domain.Int(oldCount),
	})
	l.count = newCount
}

// AddTail appends a value.
func (l *ObList) AddTail(v domain.Value) {
	n := &node{val: v}
	if l.tail == nil {
		l.head = n
		l.tail = n
	} else {
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
	l.count++
}

// RemoveHead removes and returns the first element. Instrumented (Table 3).
func (l *ObList) RemoveHead() (domain.Value, error) {
	if l.head == nil {
		return domain.Value{}, ErrEmpty
	}
	out := l.use("RemoveHead/out", l.head.val, nil)
	oldCount := l.useInt("RemoveHead/oldCount", l.count, nil)
	l.head = l.head.next
	if l.head == nil {
		l.tail = nil
	} else {
		l.head.prev = nil
	}
	newCount := oldCount - 1
	newCount = l.useInt("RemoveHead/newCount", newCount, map[string]domain.Value{
		"oldCount": domain.Int(oldCount),
	})
	l.count = newCount
	return out, nil
}

// RemoveTail removes and returns the last element.
func (l *ObList) RemoveTail() (domain.Value, error) {
	if l.tail == nil {
		return domain.Value{}, ErrEmpty
	}
	out := l.tail.val
	l.tail = l.tail.prev
	if l.tail == nil {
		l.head = nil
	} else {
		l.tail.next = nil
	}
	l.count--
	return out, nil
}

// GetHead returns the first element without removing it.
func (l *ObList) GetHead() (domain.Value, error) {
	if l.head == nil {
		return domain.Value{}, ErrEmpty
	}
	return l.head.val, nil
}

// GetTail returns the last element without removing it.
func (l *ObList) GetTail() (domain.Value, error) {
	if l.tail == nil {
		return domain.Value{}, ErrEmpty
	}
	return l.tail.val, nil
}

// nodeAt walks to the i-th node.
func (l *ObList) nodeAt(i int64) (*node, error) {
	if i < 0 || i >= l.count {
		return nil, fmt.Errorf("%w: %d (count %d)", ErrOutOfRange, i, l.count)
	}
	n := l.head
	for k := int64(0); k < i; k++ {
		n = n.next
	}
	return n, nil
}

// GetAt returns the element at position i.
func (l *ObList) GetAt(i int64) (domain.Value, error) {
	n, err := l.nodeAt(i)
	if err != nil {
		return domain.Value{}, err
	}
	return n.val, nil
}

// SetAt replaces the element at position i.
func (l *ObList) SetAt(i int64, v domain.Value) error {
	n, err := l.nodeAt(i)
	if err != nil {
		return err
	}
	n.val = v
	return nil
}

// RemoveAt removes and returns the element at position i. Instrumented
// (Table 3): it is the richest method of experiment 2, with index and count
// locals feeding the unlink.
func (l *ObList) RemoveAt(i int64) (domain.Value, error) {
	idx := l.useInt("RemoveAt/idx", i, nil)
	oldCount := l.useInt("RemoveAt/oldCount", l.count, map[string]domain.Value{
		"idx": domain.Int(idx),
	})
	if idx < 0 || idx >= oldCount || idx >= l.count {
		return domain.Value{}, fmt.Errorf("%w: %d (count %d)", ErrOutOfRange, idx, l.count)
	}
	// Walk with an instrumented cursor position. iters hard-bounds the walk
	// so a mutated cursor cannot loop forever: a corrupted iteration ends
	// mid-list instead.
	n := l.head
	iters := int64(0)
	for k := int64(0); k < idx && iters <= l.count; iters++ {
		step := l.useInt("RemoveAt/step", k, map[string]domain.Value{
			"idx":      domain.Int(idx),
			"oldCount": domain.Int(oldCount),
		})
		if step != k {
			// A mutated cursor restarts the walk from the mutated position,
			// clamped into the list, modelling a corrupted iteration.
			k = clamp(step, 0, idx)
		}
		k++
		if n.next == nil {
			break
		}
		n = n.next
	}
	out := l.use("RemoveAt/out", n.val, map[string]domain.Value{
		"idx":      domain.Int(idx),
		"oldCount": domain.Int(oldCount),
	})
	// Unlink n.
	if n.prev == nil {
		l.head = n.next
	} else {
		n.prev.next = n.next
	}
	if n.next == nil {
		l.tail = n.prev
	} else {
		n.next.prev = n.prev
	}
	newCount := oldCount - 1
	newCount = l.useInt("RemoveAt/newCount", newCount, map[string]domain.Value{
		"idx":      domain.Int(idx),
		"oldCount": domain.Int(oldCount),
	})
	l.count = newCount
	return out, nil
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InsertBefore inserts v before position i.
func (l *ObList) InsertBefore(i int64, v domain.Value) error {
	if i == 0 {
		l.AddHead(v)
		return nil
	}
	n, err := l.nodeAt(i)
	if err != nil {
		return err
	}
	nn := &node{val: v, prev: n.prev, next: n}
	n.prev.next = nn
	n.prev = nn
	l.count++
	return nil
}

// InsertAfter inserts v after position i.
func (l *ObList) InsertAfter(i int64, v domain.Value) error {
	n, err := l.nodeAt(i)
	if err != nil {
		return err
	}
	nn := &node{val: v, prev: n, next: n.next}
	if n.next == nil {
		l.tail = nn
	} else {
		n.next.prev = nn
	}
	n.next = nn
	l.count++
	return nil
}

// Find returns the position of the first element equal to v, or -1.
func (l *ObList) Find(v domain.Value) int64 {
	i := int64(0)
	for n := l.head; n != nil; n = n.next {
		if n.val.Equal(v) {
			return i
		}
		i++
	}
	return -1
}

// RemoveAll empties the list.
func (l *ObList) RemoveAll() {
	l.head = nil
	l.tail = nil
	l.count = 0
}

// Values returns the elements in order (a defensive copy).
func (l *ObList) Values() []domain.Value {
	out := make([]domain.Value, 0, l.count)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.val)
	}
	return out
}

// SetValues replaces the list contents with vs, preserving count bookkeeping.
func (l *ObList) SetValues(vs []domain.Value) {
	l.RemoveAll()
	for _, v := range vs {
		l.AddTail(v)
	}
}

// CheckInvariant verifies the class invariant:
//
//   - count matches the forward traversal length (bounded by count+1 so a
//     corrupted list cannot loop forever);
//   - the backward traversal matches too;
//   - head/tail are nil exactly when the list is empty;
//   - boundary nodes have no dangling prev/next;
//   - count is non-negative.
func (l *ObList) CheckInvariant() error {
	if err := l.AssertInvariant(l.count >= 0, "InvariantTest", "count >= 0"); err != nil {
		return err
	}
	if l.count == 0 {
		return l.AssertInvariant(l.head == nil && l.tail == nil,
			"InvariantTest", "empty list has nil head and tail")
	}
	if err := l.AssertInvariant(l.head != nil && l.tail != nil,
		"InvariantTest", "non-empty list has head and tail"); err != nil {
		return err
	}
	if err := l.AssertInvariant(l.head.prev == nil, "InvariantTest", "head.prev == nil"); err != nil {
		return err
	}
	if err := l.AssertInvariant(l.tail.next == nil, "InvariantTest", "tail.next == nil"); err != nil {
		return err
	}
	var fwd int64
	for n := l.head; n != nil && fwd <= l.count; n = n.next {
		fwd++
		if n.next == nil {
			if err := l.AssertInvariant(n == l.tail, "InvariantTest", "forward walk ends at tail"); err != nil {
				return err
			}
		}
	}
	if err := l.AssertInvariant(fwd == l.count, "InvariantTest", "count matches forward length"); err != nil {
		return err
	}
	var bwd int64
	for n := l.tail; n != nil && bwd <= l.count; n = n.prev {
		bwd++
	}
	return l.AssertInvariant(bwd == l.count, "InvariantTest", "count matches backward length")
}

// WriteReport dumps the list state for the Reporter.
func (l *ObList) WriteReport(w io.Writer, class string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{count: %d, items: [", class, l.count)
	for i, v := range l.Values() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString("]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Sites returns the mutation site table for the instrumented base-class
// methods — the paper's Table 3 targets.
func Sites() []mutation.Site {
	ext := []string{"blockSize", "auditSeq"}
	return []mutation.Site{
		{ID: "AddHead/oldCount", Method: "AddHead", Var: "oldCount", Kind: domain.KindInt,
			Globals: []string{"count"}, Externals: ext},
		{ID: "AddHead/stored", Method: "AddHead", Var: "stored", Kind: domain.KindInt,
			Locals: []string{"oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "AddHead/newCount", Method: "AddHead", Var: "newCount", Kind: domain.KindInt,
			Locals: []string{"oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveHead/out", Method: "RemoveHead", Var: "out", Kind: domain.KindInt,
			Locals: []string{"oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveHead/oldCount", Method: "RemoveHead", Var: "oldCount", Kind: domain.KindInt,
			Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveHead/newCount", Method: "RemoveHead", Var: "newCount", Kind: domain.KindInt,
			Locals: []string{"oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveAt/idx", Method: "RemoveAt", Var: "idx", Kind: domain.KindInt,
			Locals: []string{"oldCount", "step"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveAt/oldCount", Method: "RemoveAt", Var: "oldCount", Kind: domain.KindInt,
			Locals: []string{"idx", "step"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveAt/step", Method: "RemoveAt", Var: "step", Kind: domain.KindInt,
			Locals: []string{"idx", "oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveAt/out", Method: "RemoveAt", Var: "out", Kind: domain.KindInt,
			Locals: []string{"idx", "oldCount"}, Globals: []string{"count"}, Externals: ext},
		{ID: "RemoveAt/newCount", Method: "RemoveAt", Var: "newCount", Kind: domain.KindInt,
			Locals: []string{"idx", "oldCount"}, Globals: []string{"count"}, Externals: ext},
	}
}
