package main

import (
	"errors"
	"os"
	"strings"
	"testing"
)

func TestRunFigureArtifacts(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, selection{table1: true, figure2: true, figure3: true, figure6: true, seed: 42})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "IndVarRepReq",
		"Figure 2", "digraph",
		"Figure 3", "Class('Product'",
		"Figures 6-7", "package main",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCounts(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, selection{counts: true, seed: 42}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"ObList model", "paper: 233", "paper: 329"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("counts missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunTables(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	var sb strings.Builder
	// The published tables leave surviving mutants, so a successful run ends
	// in the errSurvivors sentinel (exit code 2), not nil.
	if err := run(&sb, selection{table2: true, table3: true, baseline: true, seed: 42}); !errors.Is(err, errSurvivors) {
		t.Fatalf("run: %v, want errSurvivors", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Results obtained for the SortableObList class",
		"Table 3", "paper: 159 mutants",
		"baseline", "Results obtained for the ObList class",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

// TestPublishedNumbersStable pins the exact totals EXPERIMENTS.md publishes
// (seed 42). A failure here means the published tables must be regenerated
// deliberately, not that the code is wrong.
func TestPublishedNumbersStable(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	var sb strings.Builder
	if err := run(&sb, selection{counts: true, table2: true, table3: true, baseline: true, seed: 42}); !errors.Is(err, errSurvivors) {
		t.Fatalf("run: %v, want errSurvivors", err)
	}
	out := sb.String()
	for _, want := range []string{
		"subclass new cases:     200",
		"subclass reused cases:  56",
		"parent cases skipped:   94",
		"92.9%", // experiment 1 total score
		"73.9%", // experiment 2 total score
		"96.4%", // baseline total score
	} {
		if !strings.Contains(out, want) {
			t.Errorf("published number %q missing from output", want)
		}
	}
}

// TestWarmCacheTablesByteIdentical reruns Table 3 against a shared verdict
// store: the warm run must replay every verdict and print the same bytes.
func TestWarmCacheTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	dir := t.TempDir()
	sel := selection{table3: true, seed: 42, cacheDir: dir}
	var cold strings.Builder
	if err := run(&cold, sel); !errors.Is(err, errSurvivors) {
		t.Fatalf("cold run: %v, want errSurvivors", err)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) == 0 {
		t.Fatalf("verdict store empty after cold run (err %v)", err)
	}
	var warm strings.Builder
	if err := run(&warm, sel); !errors.Is(err, errSurvivors) {
		t.Fatalf("warm run: %v, want errSurvivors", err)
	}
	if cold.String() != warm.String() {
		t.Errorf("warm table differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold.String(), warm.String())
	}
}

// TestCoverDirWritesArtifacts: with -cover-dir, experiment 2 (and its
// baseline) leave canonical coverage artifacts beside their tables, and the
// tables gain a transaction-coverage summary line.
func TestCoverDirWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(&sb, selection{table3: true, baseline: true, seed: 42, coverDir: dir}); !errors.Is(err, errSurvivors) {
		t.Fatalf("run: %v, want errSurvivors", err)
	}
	if !strings.Contains(sb.String(), "coverage: transactions ") {
		t.Errorf("tables lack the coverage summary:\n%s", sb.String())
	}
	for _, name := range []string{"experiment2.json", "experiment2-baseline.json"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("artifact %s not written: %v", name, err)
		}
		for _, want := range []string{`"killMatrix"`, `"assertionSites"`, `"transactionsCovered"`} {
			if !strings.Contains(string(data), want) {
				t.Errorf("artifact %s missing %s", name, want)
			}
		}
	}
}
