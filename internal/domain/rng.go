package domain

import (
	"hash/fnv"
	"io"
	"math/rand/v2"
)

// NewRand returns a deterministic random source for the given seed. All test
// generation in this repository flows through here so that suites are fully
// reproducible: the same t-spec and seed always yield the same test cases,
// which is what makes the recorded golden outputs (the mutation oracle's
// reference run) meaningful.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0x434f4e434154)) // "CONCAT"
}

// DeriveSeed derives an independent child seed from a parent seed and a
// label (a test-case ID, a shard index, ...). Parallel executors use it to
// give every unit of work its own RNG stream that depends only on the
// parent seed and the unit's identity — never on scheduling or iteration
// order — so a run fanned over N workers is bit-for-bit identical to the
// serial run with the same parent seed.
func DeriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, label)
	x := h.Sum64() + uint64(seed)*0x9E3779B97F4A7C15 // golden-ratio spread keeps seed 0 and 1 streams apart
	// splitmix64 finalizer: avalanche so adjacent seeds and similar labels
	// land in unrelated streams.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
