package impact

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"concat/internal/core/canon"
	"concat/internal/tspec"
)

// Version is the impact artifact schema version.
const Version = 1

// CaseImpact is one case's decision and attribution.
type CaseImpact struct {
	CaseID      string   `json:"caseId"`
	Transaction string   `json:"transaction"`
	Decision    Decision `json:"decision"`
	// Reason attributes the decision: for rerun/regenerated the impacted
	// methods (with their delta reasons) or the content change; for a kept
	// case executed on a cache miss, "cold store".
	Reason string `json:"reason,omitempty"`
	// Warm reports that the case replayed from the store without executing.
	Warm bool `json:"warm,omitempty"`
}

// TransactionImpact aggregates the decisions of one transaction's cases —
// the per-transaction attribution of why work was kept or re-run.
type TransactionImpact struct {
	Transaction string   `json:"transaction"`
	Kept        int      `json:"kept,omitempty"`
	Rerun       int      `json:"rerun,omitempty"`
	Regenerated int      `json:"regenerated,omitempty"`
	Reasons     []string `json:"reasons,omitempty"`
}

// Report is the canonical impact artifact: what the spec edit invalidated,
// what was replayed warm, and why — identical runs produce identical bytes.
type Report struct {
	Version     int    `json:"version"`
	Component   string `json:"component"`
	Seed        int64  `json:"seed"`
	OldSpecHash string `json:"oldSpecHash"`
	NewSpecHash string `json:"newSpecHash"`
	// Delta is the spec-level diff driving the partition.
	Delta tspec.SpecDelta `json:"delta"`
	// Partition counts over the new suite's cases.
	Kept        int `json:"kept"`
	Rerun       int `json:"rerun"`
	Regenerated int `json:"regenerated"`
	// CacheHits counts kept cases replayed warm; CacheMisses counts every
	// executed case (cold kept cases plus the whole invalidated partition).
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// Mutant accounting (spec-level): mutants living in impacted methods
	// need re-verification, the rest keep their verdicts.
	MutantsKept        int `json:"mutantsKept,omitempty"`
	MutantsInvalidated int `json:"mutantsInvalidated,omitempty"`
	// Transactions attributes the partition per transaction, in suite order.
	Transactions []TransactionImpact `json:"transactions,omitempty"`
	// Cases lists every case's decision, in suite order.
	Cases []CaseImpact `json:"cases,omitempty"`
}

// Encode serializes the report as canonical JSON plus a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	raw, err := canon.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("impact: encoding report: %w", err)
	}
	return append(raw, '\n'), nil
}

// Decode parses an encoded report and checks its version.
func Decode(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(bytes.TrimSpace(raw), &r); err != nil {
		return nil, fmt.Errorf("impact: decoding report: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("impact: unsupported report version %d (want %d)", r.Version, Version)
	}
	if r.Component == "" {
		return nil, errors.New("impact: report has no component")
	}
	return &r, nil
}

// Load reads and decodes a report from r.
func Load(rd io.Reader) (*Report, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("impact: reading report: %w", err)
	}
	return Decode(raw)
}

// Render writes the human-readable impact table.
func (r *Report) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Impact analysis: %s (seed %d)\n", r.Component, r.Seed)
	if r.OldSpecHash == r.NewSpecHash {
		fmt.Fprintf(bw, "  spec: unchanged (%s)\n", short(r.NewSpecHash))
	} else {
		fmt.Fprintf(bw, "  spec: %s -> %s\n", short(r.OldSpecHash), short(r.NewSpecHash))
	}
	if len(r.Delta.Impacted) == 0 && len(r.Delta.Removed) == 0 && !r.Delta.ModelChanged {
		fmt.Fprintln(bw, "  delta: none")
	} else {
		for _, m := range r.Delta.Impacted {
			fmt.Fprintf(bw, "  delta: %s %s\n", m.Method, m.Reason)
		}
		for _, m := range r.Delta.Removed {
			fmt.Fprintf(bw, "  delta: %s removed\n", m)
		}
		if r.Delta.ModelChanged {
			fmt.Fprintln(bw, "  delta: transaction flow model changed")
		}
	}
	fmt.Fprintf(bw, "  cases: %d kept, %d re-run, %d regenerated\n", r.Kept, r.Rerun, r.Regenerated)
	fmt.Fprintf(bw, "  cache: %d hits, %d misses\n", r.CacheHits, r.CacheMisses)
	if r.MutantsKept+r.MutantsInvalidated > 0 {
		fmt.Fprintf(bw, "  mutants: %d kept, %d invalidated\n", r.MutantsKept, r.MutantsInvalidated)
	}
	if len(r.Transactions) > 0 {
		tw := tabwriter.NewWriter(bw, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  TRANSACTION\tKEPT\tRERUN\tREGEN\tWHY")
		for _, t := range r.Transactions {
			why := ""
			if len(t.Reasons) > 0 {
				why = t.Reasons[0]
				if len(t.Reasons) > 1 {
					why += fmt.Sprintf(" (+%d more)", len(t.Reasons)-1)
				}
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%s\n", t.Transaction, t.Kept, t.Rerun, t.Regenerated, why)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
