package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func mustRunCLI(t *testing.T, args ...string) string {
	t.Helper()
	out, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("concat %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return out
}

func writeTempSpec(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.tspec")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliSpec = `
Class('Gauge', No, <empty>, <empty>)
Attribute('level', range, 0, 10)
Method(m1, 'Gauge', <empty>, constructor, 0)
Method(m2, '~Gauge', <empty>, destructor, 0)
Method(m3, 'Bump', <empty>, update, 1)
Parameter(m3, 'by', range, 1, 3)
Node(n1, Yes, 1, [m1])
Node(n2, No, 1, [m3])
Node(n3, No, 0, [m2])
Edge(n1, n2)
Edge(n2, n3)
`

func TestCLIUsageErrors(t *testing.T) {
	if _, err := runCLI(t); err == nil {
		t.Error("no args should fail")
	}
	if _, err := runCLI(t, "frobnicate"); err == nil {
		t.Error("unknown subcommand should fail")
	}
	out := mustRunCLI(t, "help")
	if !strings.Contains(out, "selftest") {
		t.Errorf("help output: %q", out)
	}
}

func TestCLIList(t *testing.T) {
	out := mustRunCLI(t, "list")
	for _, want := range []string{"Account", "ObList", "SortableObList", "Product"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestCLIValidate(t *testing.T) {
	path := writeTempSpec(t, cliSpec)
	out := mustRunCLI(t, "validate", path)
	if !strings.Contains(out, `spec "Gauge" is valid`) {
		t.Errorf("validate output: %q", out)
	}
	bad := writeTempSpec(t, "Class('X', No, <empty>, <empty>)")
	if _, err := runCLI(t, "validate", bad); err == nil {
		t.Error("invalid spec should fail")
	}
	if _, err := runCLI(t, "validate"); err == nil {
		t.Error("validate without file should fail")
	}
	if _, err := runCLI(t, "validate", filepath.Join(t.TempDir(), "absent.tspec")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCLIGraph(t *testing.T) {
	path := writeTempSpec(t, cliSpec)
	out := mustRunCLI(t, "graph", path)
	if !strings.Contains(out, "digraph \"Gauge\"") {
		t.Errorf("graph output: %q", out)
	}
	out = mustRunCLI(t, "graph", "-component", "Product", "-highlight", "n1,n3,n5,n6")
	if !strings.Contains(out, "color=red") {
		t.Error("highlight missing from DOT")
	}
}

func TestCLIPaths(t *testing.T) {
	path := writeTempSpec(t, cliSpec)
	out := mustRunCLI(t, "paths", path)
	if !strings.Contains(out, "n1 -> n2 -> n3") || !strings.Contains(out, "1 transactions") {
		t.Errorf("paths output: %q", out)
	}
	out = mustRunCLI(t, "paths", "-component", "ObList", "-criterion", "all-links")
	if !strings.Contains(out, "all-links") {
		t.Errorf("criterion output: %q", out)
	}
	if _, err := runCLI(t, "paths", "-criterion", "bogus", path); err == nil {
		t.Error("bad criterion should fail")
	}
	out = mustRunCLI(t, "paths", "-component", "ObList", "-limit", "5")
	if !strings.Contains(out, "warning") {
		t.Errorf("truncation warning missing: %q", out)
	}
}

func TestCLIGenAndRun(t *testing.T) {
	dir := t.TempDir()
	suitePath := filepath.Join(dir, "suite.json")
	mustRunCLI(t, "gen", "-component", "Account", "-seed", "9", "-out", suitePath)
	if _, err := os.Stat(suitePath); err != nil {
		t.Fatalf("suite not written: %v", err)
	}
	logPath := filepath.Join(dir, "result.txt")
	out := mustRunCLI(t, "run", "-component", "Account", "-suite", suitePath, "-log", logPath)
	if !strings.Contains(out, "pass=") {
		t.Errorf("run output: %q", out)
	}
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logData), "OK!") {
		t.Errorf("log: %q", logData)
	}
	// Error paths.
	if _, err := runCLI(t, "run", "-component", "Account"); err == nil {
		t.Error("run without suite should fail")
	}
	if _, err := runCLI(t, "run", "-component", "Nope", "-suite", suitePath); err == nil {
		t.Error("unknown component should fail")
	}
	if _, err := runCLI(t, "gen", "-component", "Account", "-spec", suitePath); err == nil {
		t.Error("component+spec together should fail")
	}
	if _, err := runCLI(t, "gen"); err == nil {
		t.Error("gen without target should fail")
	}
}

func TestCLIGenFromSpecFile(t *testing.T) {
	path := writeTempSpec(t, cliSpec)
	out := mustRunCLI(t, "gen", "-spec", path)
	if !strings.Contains(out, `"component": "Gauge"`) {
		t.Errorf("gen output: %q", out)
	}
}

func TestCLISelfTest(t *testing.T) {
	out := mustRunCLI(t, "selftest", "-component", "Product", "-expand", "-alt", "3")
	if !strings.Contains(out, "pass=") {
		t.Errorf("selftest output: %q", out)
	}
	if _, err := runCLI(t, "selftest"); err == nil {
		t.Error("selftest without component should fail")
	}
}

func TestCLIDerive(t *testing.T) {
	dir := t.TempDir()
	out := mustRunCLI(t, "derive", "-parent", "ObList", "-child", "SortableObList",
		"-expand", "-alt", "2", "-out", filepath.Join(dir, "derived.json"))
	for _, want := range []string{"skipped", "reused", "regenerated", "redefined"} {
		if !strings.Contains(out, want) {
			t.Errorf("derive output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "derived.json")); err != nil {
		t.Errorf("derived suite not written: %v", err)
	}
	if _, err := runCLI(t, "derive", "-parent", "ObList"); err == nil {
		t.Error("derive without child should fail")
	}
	if _, err := runCLI(t, "derive", "-parent", "Account", "-child", "Product"); err == nil {
		t.Error("unrelated classes should fail derivation")
	}
}

func TestCLIMutate(t *testing.T) {
	out := mustRunCLI(t, "mutate", "-component", "Account", "-expand", "-alt", "4")
	for _, want := range []string{"Results obtained for the Account class", "#killed", "Score"} {
		if !strings.Contains(out, want) {
			t.Errorf("mutate output missing %q:\n%s", want, out)
		}
	}
	out = mustRunCLI(t, "mutate", "-component", "Account", "-expand", "-methods", "Withdraw", "-v")
	if !strings.Contains(out, "killed by") {
		t.Errorf("verbose mutate output: %q", out)
	}
	if _, err := runCLI(t, "mutate"); err == nil {
		t.Error("mutate without component should fail")
	}
	if _, err := runCLI(t, "mutate", "-component", "Product"); err == nil {
		t.Error("uninstrumented component should fail")
	}
}

func TestCLIEmit(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "driver.go")
	mustRunCLI(t, "emit", "-component", "Account",
		"-import", "concat/internal/components/account",
		"-factory", "account.NewFactory()",
		"-out", outPath)
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "package main") {
		t.Errorf("emitted driver: %q", data[:60])
	}
	if _, err := runCLI(t, "emit", "-component", "Account"); err == nil {
		t.Error("emit without import/factory should fail")
	}
}

func TestCLISoak(t *testing.T) {
	out := mustRunCLI(t, "soak", "-component", "Account", "-cases", "30", "-seed", "5")
	if !strings.Contains(out, "soak suite: 30 test cases") || !strings.Contains(out, "pass=30") {
		t.Errorf("soak output: %q", out)
	}
	if _, err := runCLI(t, "soak"); err == nil {
		t.Error("soak without component should fail")
	}
	if _, err := runCLI(t, "soak", "-component", "Nope"); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestCLIRecordAndRegress(t *testing.T) {
	dir := t.TempDir()
	suitePath := filepath.Join(dir, "suite.json")
	goldenPath := filepath.Join(dir, "golden.json")
	mustRunCLI(t, "gen", "-component", "Account", "-seed", "3", "-out", suitePath)
	out := mustRunCLI(t, "record", "-component", "Account", "-suite", suitePath, "-golden", goldenPath)
	if !strings.Contains(out, "recorded golden reference") {
		t.Errorf("record output: %q", out)
	}
	// The same build regresses cleanly.
	out = mustRunCLI(t, "regress", "-component", "Account", "-suite", suitePath, "-golden", goldenPath)
	if !strings.Contains(out, "no regressions") {
		t.Errorf("regress output: %q", out)
	}
	// A doctored golden file is detected as a regression.
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), "NEW Account(", "NEW Acc0unt(", 1)
	if doctored == string(data) {
		t.Fatal("test setup: transcript marker not found")
	}
	if err := os.WriteFile(goldenPath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "regress", "-component", "Account", "-suite", suitePath, "-golden", goldenPath); err == nil {
		t.Error("doctored golden should report a regression")
	}
	// Error paths.
	if _, err := runCLI(t, "record", "-component", "Account", "-suite", suitePath); err == nil {
		t.Error("record without -golden should fail")
	}
	if _, err := runCLI(t, "regress", "-component", "Account", "-suite", suitePath); err == nil {
		t.Error("regress without -golden should fail")
	}
	if _, err := runCLI(t, "regress", "-component", "ObList", "-suite", suitePath, "-golden", goldenPath); err == nil {
		t.Error("component mismatch should fail")
	}
}

// TestCLICoverRoundTrip drives the full coverage path: selftest and mutate
// write canonical artifacts, `concat cover` renders them as tables and as a
// DOT heatmap, and the selftest/mutate artifacts agree on suite coverage.
func TestCLICoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	selfArt := filepath.Join(dir, "selftest.json")
	out := mustRunCLI(t, "selftest", "-component", "Account", "-expand", "-alt", "4", "-cover", selfArt)
	if !strings.Contains(out, "coverage: transactions ") {
		t.Errorf("selftest -cover did not print a summary:\n%s", out)
	}
	mutArt := filepath.Join(dir, "mutate.json")
	out = mustRunCLI(t, "mutate", "-component", "Account", "-expand", "-alt", "4", "-cover", mutArt)
	if !strings.Contains(out, "coverage: transactions ") {
		t.Errorf("mutate -cover did not print a summary:\n%s", out)
	}

	rendered := mustRunCLI(t, "cover", "-artifact", mutArt)
	for _, want := range []string{"Component: Account", "TRANSACTION", "ASSERTION SITE", "MUTANT", "OPERATOR"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("cover rendering missing %q:\n%s", want, rendered)
		}
	}
	// Positional artifact path works too, and renders identically.
	if positional := mustRunCLI(t, "cover", mutArt); positional != rendered {
		t.Error("positional and -artifact renderings differ")
	}

	dot := mustRunCLI(t, "cover", "-artifact", mutArt, "-dot")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "hits") {
		t.Errorf("cover -dot output is not a heatmap:\n%s", dot)
	}

	// selftest and mutate ran the same generated suite: identical coverage.
	selfData, err := os.ReadFile(selfArt)
	if err != nil {
		t.Fatal(err)
	}
	mutData, err := os.ReadFile(mutArt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(selfData), `"transactionsCovered"`) {
		t.Errorf("selftest artifact lacks coverage fields:\n%s", selfData)
	}
	if len(mutData) <= len(selfData) {
		t.Error("mutate artifact should additionally carry the kill matrix")
	}

	// Error paths.
	if _, err := runCLI(t, "cover"); err == nil {
		t.Error("cover without an artifact should fail")
	}
	if _, err := runCLI(t, "cover", "-artifact", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("cover on a missing file should fail")
	}
}

// TestCLIMutateParallelArtifactIdentical is the CI byte-identity claim in
// miniature: a serial and a 4-way parallel campaign write the same artifact.
func TestCLIMutateParallelArtifactIdentical(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.json")
	parallel := filepath.Join(dir, "parallel.json")
	mustRunCLI(t, "mutate", "-component", "Account", "-expand", "-cover", serial)
	mustRunCLI(t, "mutate", "-component", "Account", "-expand", "-cover", parallel, "-parallel", "4")
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("serial and parallel artifacts differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestCLITraceValidateStdin: the satellite contract — `concat
// trace-validate -` (and no argument at all) reads the NDJSON stream from
// stdin.
func TestCLITraceValidateStdin(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.ndjson")
	mustRunCLI(t, "selftest", "-component", "Product", "-trace", tracePath)

	for _, args := range [][]string{{"trace-validate", "-"}, {"trace-validate"}} {
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		saved := os.Stdin
		os.Stdin = f
		out, err := runCLI(t, args...)
		os.Stdin = saved
		f.Close()
		if err != nil {
			t.Fatalf("concat %s: %v", strings.Join(args, " "), err)
		}
		if !strings.Contains(out, "trace stdin:") || !strings.Contains(out, "schema-valid") {
			t.Errorf("stdin validation output: %q", out)
		}
	}

	// The file path still works, and extra arguments still fail.
	out := mustRunCLI(t, "trace-validate", tracePath)
	if !strings.Contains(out, "schema-valid") {
		t.Errorf("file validation output: %q", out)
	}
	if _, err := runCLI(t, "trace-validate", tracePath, tracePath); err == nil {
		t.Error("two arguments should fail")
	}
}
