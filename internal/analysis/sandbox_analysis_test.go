// End-to-end proof of the hardened sandbox at the campaign level: a
// mutation analysis over a component whose mutants include genuinely fatal
// faults (os.Exit, stack exhaustion) completes under subprocess isolation,
// classifies those mutants as crash kills, reconstructs reach/infection
// flags from the case servers' Extra payloads, and produces the same result
// serially and in parallel.
package analysis_test

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"concat/internal/analysis"
	"concat/internal/component"
	"concat/internal/mutation"
	"concat/internal/sandbox/hostile"
	"concat/internal/testexec"
)

// TestMain doubles this test binary as a case server (see the same pattern
// in internal/sandbox/hostile): when spawned with ServerEnv set it serves
// isolated cases — one-shot or the warm-pool batch loop, per the
// sentinel's value — and exits instead of running the tests.
func TestMain(m *testing.M) {
	if served, err := testexec.ServeFromEnv(os.Stdin, os.Stdout, hostile.CaseResolver()); served {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fatalCampaign runs the full HostileMut mutant set — including the fatal
// "hard" (os.Exit) and "boom" (stack overflow) candidates — under subprocess
// isolation at the given parallelism.
func fatalCampaign(t *testing.T, parallelism int) *analysis.Result {
	return fatalCampaignMode(t, parallelism, testexec.IsolateSubprocess)
}

// fatalCampaignMode is fatalCampaign with a selectable isolation mode, so
// the warm-pool campaign can be asserted verdict-identical to spawn-mode.
func fatalCampaignMode(t *testing.T, parallelism int, mode testexec.IsolationMode) *analysis.Result {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	eng := mutation.NewEngine()
	eng.MustRegisterSites(hostile.MutSites()...)
	a := &analysis.Analysis{
		Engine:  eng,
		Factory: hostile.NewMutFactory(eng),
		Suite:   hostile.MutSuite(3),
		Exec: testexec.Options{
			Seed:             42,
			Isolation:        mode,
			IsolationCommand: []string{exe},
		},
		Parallelism: parallelism,
		NewFactory: func(e *mutation.Engine) component.Factory {
			return hostile.NewMutFactory(e)
		},
	}
	res, err := a.Run(eng.Enumerate(nil, nil))
	if err != nil {
		t.Fatalf("campaign with fatal mutants did not complete: %v", err)
	}
	return res
}

// findMutant returns the result for the mutant with the given operator and
// replacement.
func findMutant(t *testing.T, res *analysis.Result, op mutation.Operator, repl string) analysis.MutantResult {
	t.Helper()
	for _, mr := range res.Mutants {
		if mr.Mutant.Operator == op && mr.Mutant.Replacement == repl {
			return mr
		}
	}
	t.Fatalf("no %s(%s) mutant in result (%d mutants)", op, repl, len(res.Mutants))
	return analysis.MutantResult{}
}

// TestFatalMutantCampaignCompletes is the sandbox acceptance test: the
// campaign with process-killing mutants runs to completion, the fatal
// mutants are killed by crash, and the equivalent mutant is recognized from
// the flags the case servers shipped back.
func TestFatalMutantCampaignCompletes(t *testing.T) {
	res := fatalCampaign(t, 1)

	// BitNeg + RepLoc(soft) + RepGlob(hard) + RepExt(boom) + 5 RepReq ints.
	if len(res.Mutants) != 9 {
		t.Fatalf("campaign analyzed %d mutants, want 9", len(res.Mutants))
	}

	hard := findMutant(t, res, mutation.OpRepGlob, "hard")
	if !hard.Killed || hard.Reason != analysis.KillCrash {
		t.Errorf("os.Exit mutant: killed=%v reason=%v, want a crash kill", hard.Killed, hard.Reason)
	}
	boom := findMutant(t, res, mutation.OpRepExt, "boom")
	if !boom.Killed || boom.Reason != analysis.KillCrash {
		t.Errorf("stack-overflow mutant: killed=%v reason=%v, want a crash kill", boom.Killed, boom.Reason)
	}

	// The equivalent mutant survives, and — although it executed only inside
	// child processes — its reach-without-infection record made it back to
	// the parent through CaseResult.Extra.
	soft := findMutant(t, res, mutation.OpRepLoc, "soft")
	if soft.Killed {
		t.Errorf("equivalent mutant was killed: %+v", soft)
	}
	if !soft.Reached || soft.Infected || !soft.Equivalent() {
		t.Errorf("equivalent mutant flags = reached:%v infected:%v, want reached-only", soft.Reached, soft.Infected)
	}

	neg := findMutant(t, res, mutation.OpBitNeg, "~")
	if !neg.Killed || neg.Reason != analysis.KillAssertion {
		t.Errorf("negation mutant: killed=%v reason=%v, want an assertion kill (negative counter)", neg.Killed, neg.Reason)
	}
}

// TestFatalCampaignIdenticalSerialAndParallel: crash containment must not
// cost determinism — the serial and parallel campaigns (child processes and
// all) agree bit-for-bit, reference report included.
func TestFatalCampaignIdenticalSerialAndParallel(t *testing.T) {
	serial := fatalCampaign(t, 1)
	parallel := fatalCampaign(t, 4)
	if !reflect.DeepEqual(serial.Mutants, parallel.Mutants) {
		t.Errorf("mutant results differ between serial and parallel campaigns:\nserial:   %+v\nparallel: %+v",
			serial.Mutants, parallel.Mutants)
	}
	if !reflect.DeepEqual(serial.Reference, parallel.Reference) {
		t.Errorf("reference reports differ between serial and parallel campaigns")
	}
}

// TestFatalCampaignPoolVerdictUnchanged is the warm pool's campaign-level
// acceptance: the same fatal-mutant campaign dispatched in batches to
// long-lived workers — one pool shared across the reference run and every
// mutant, workers dying mid-campaign on the fatal candidates — produces
// the exact kill matrix of the spawn-per-case campaign, serially and in
// parallel. Crash containment amortized must not move a single verdict.
func TestFatalCampaignPoolVerdictUnchanged(t *testing.T) {
	spawn := fatalCampaign(t, 1)
	poolSerial := fatalCampaignMode(t, 1, testexec.IsolatePool)
	poolParallel := fatalCampaignMode(t, 4, testexec.IsolatePool)
	if !reflect.DeepEqual(spawn.Mutants, poolSerial.Mutants) {
		t.Errorf("kill matrix differs between spawn and pool isolation:\nspawn: %+v\npool:  %+v",
			spawn.Mutants, poolSerial.Mutants)
	}
	if !reflect.DeepEqual(spawn.Reference, poolSerial.Reference) {
		t.Errorf("reference reports differ between spawn and pool isolation")
	}
	if !reflect.DeepEqual(poolSerial.Mutants, poolParallel.Mutants) {
		t.Errorf("pool campaign differs between serial and parallel scheduling:\nserial:   %+v\nparallel: %+v",
			poolSerial.Mutants, poolParallel.Mutants)
	}
	if !reflect.DeepEqual(poolSerial.Reference, poolParallel.Reference) {
		t.Errorf("pool reference reports differ between serial and parallel scheduling")
	}
}
