package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"concat/internal/core"
	"concat/internal/impact"
	"concat/internal/store"
	"concat/internal/tspec"
)

// specJSON exports a component's embedded t-spec as the canonical JSON wire
// form an impact submission carries.
func specJSON(t *testing.T, name string) ([]byte, *tspec.Spec) {
	t.Helper()
	target, err := core.LookupTarget(name)
	if err != nil {
		t.Fatal(err)
	}
	spec := target.New(nil).Spec()
	var buf bytes.Buffer
	if err := spec.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), spec
}

// perturbedSpecJSON degenerates the first range parameter domain it finds
// and returns the edited spec's JSON plus the owning method's name.
func perturbedSpecJSON(t *testing.T, spec *tspec.Spec) ([]byte, string) {
	t.Helper()
	cp := spec.Clone()
	for i, m := range cp.Methods {
		for j, p := range m.Params {
			if p.Domain.Kind == tspec.DomRange && p.Domain.Lo != p.Domain.Hi {
				cp.Methods[i].Params[j].Domain.Hi = p.Domain.Lo
				var buf bytes.Buffer
				if err := cp.SaveJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), m.Name
			}
		}
	}
	t.Fatalf("spec %s has no range parameter to perturb", spec.Class.Name)
	return nil, ""
}

// submitImpact posts to /impact and decodes the accepted status.
func submitImpact(t *testing.T, ts *httptest.Server, req Request) (Status, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/impact", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// fetchImpact blocks on the impact-artifact endpoint until the job finishes.
func fetchImpact(t *testing.T, ts *httptest.Server, id string) *impact.Report {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/impact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("impact %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	rep, err := impact.Decode(body)
	if err != nil {
		t.Fatalf("decoding impact artifact: %v", err)
	}
	return rep
}

// An impact submission runs through the queue like any campaign: the job
// partitions the suite, the artifact endpoint serves the canonical report,
// the status carries the partition counts, a warm resubmission replays
// entirely from the store, and /metrics accumulates the partition counters.
func TestImpactEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: store.NewMem()})
	specRaw, spec := specJSON(t, "Account")
	oldRaw, method := perturbedSpecJSON(t, spec)

	// Component deliberately omitted: the handler derives it from newSpec.
	st, code := submitImpact(t, ts, Request{OldSpec: oldRaw, NewSpec: specRaw})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.Component != "Account" {
		t.Fatalf("component = %q, want Account (derived from newSpec)", st.Component)
	}
	rep := fetchImpact(t, ts, st.ID)
	if rep.Component != "Account" || rep.Kept+rep.Rerun+rep.Regenerated == 0 {
		t.Fatalf("artifact = %+v, want a populated Account partition", rep)
	}
	if rep.Delta.ImpactedReason(method) != tspec.ReasonDomainChanged {
		t.Errorf("delta reason for %s = %q, want %q",
			method, rep.Delta.ImpactedReason(method), tspec.ReasonDomainChanged)
	}
	done := getStatus(t, ts, st.ID)
	if done.Kept != rep.Kept || done.Rerun != rep.Rerun || done.Regenerated != rep.Regenerated {
		t.Errorf("status partition = %d/%d/%d, artifact says %d/%d/%d",
			done.Kept, done.Rerun, done.Regenerated, rep.Kept, rep.Rerun, rep.Regenerated)
	}
	if report := fetchReport(t, ts, st.ID); !strings.Contains(string(report), "Impact analysis: Account") {
		t.Errorf("report missing impact table:\n%s", report)
	}

	// Identical revisions on the now-warm store: zero executions.
	st2, code := submitImpact(t, ts, Request{OldSpec: specRaw, NewSpec: specRaw})
	if code != http.StatusAccepted {
		t.Fatalf("warm submit: HTTP %d", code)
	}
	rep2 := fetchImpact(t, ts, st2.ID)
	if rep2.CacheMisses != 0 || rep2.CacheHits != rep2.Kept {
		t.Errorf("warm run = %d hits/%d misses, want %d/0",
			rep2.CacheHits, rep2.CacheMisses, rep2.Kept)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, name := range []string{
		"concat_impact_kept_total", "concat_impact_rerun_total", "concat_impact_regenerated_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// Malformed impact submissions are rejected at admission, not at run time.
func TestImpactSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Store: store.NewMem()})
	specRaw, _ := specJSON(t, "Account")

	cases := []struct {
		name string
		req  Request
	}{
		{"missing newSpec", Request{Component: "Account", OldSpec: specRaw}},
		{"garbage oldSpec", Request{Component: "Account", OldSpec: []byte(`{"x":1}`), NewSpec: specRaw}},
		{"component mismatch", Request{Component: "ObList", OldSpec: specRaw, NewSpec: specRaw}},
	}
	for _, tc := range cases {
		if _, code := submitImpact(t, ts, tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, code)
		}
	}
	// The plain campaign endpoint applies the same validation.
	if _, code := submit(t, ts, Request{Component: "Account", OldSpec: specRaw}); code != http.StatusBadRequest {
		t.Errorf("campaign endpoint accepted a one-sided impact request")
	}
}

// A journaled impact job survives a restart: the restored server keeps
// serving the artifact bytes verbatim and the status keeps its partition.
func TestImpactJournalRestore(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	specRaw, spec := specJSON(t, "Account")
	oldRaw, _ := perturbedSpecJSON(t, spec)

	s1, ts1 := newTestServer(t, Config{Store: store.NewMem(), Journal: jn})
	st, code := submitImpact(t, ts1, Request{OldSpec: oldRaw, NewSpec: specRaw})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Get(ts1.URL + "/campaigns/" + st.ID + "/impact")
	if err != nil {
		t.Fatal(err)
	}
	wantArt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ts1.Close()
	s1.Close()

	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Store: store.NewMem(), Journal: jn2})
	resp2, err := http.Get(ts2.URL + "/campaigns/" + st.ID + "/impact")
	if err != nil {
		t.Fatal(err)
	}
	gotArt, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(gotArt, wantArt) {
		t.Error("restored impact artifact differs from the original bytes")
	}
	rep, err := impact.Decode(wantArt)
	if err != nil {
		t.Fatal(err)
	}
	restored := getStatus(t, ts2, st.ID)
	if restored.Kept != rep.Kept || restored.Rerun != rep.Rerun || restored.Regenerated != rep.Regenerated {
		t.Errorf("restored status partition = %d/%d/%d, artifact says %d/%d/%d",
			restored.Kept, restored.Rerun, restored.Regenerated, rep.Kept, rep.Rerun, rep.Regenerated)
	}
}
