// Package obs is the campaign observability layer: a deterministic-safe
// tracing and metrics side channel for suite execution, subprocess
// isolation and mutation analysis. It is the diagnosis-side analog of the
// paper's BIT reporter — where the reporter dumps the component's internal
// state into the observable output, the tracer dumps the *harness's*
// internal behaviour (which case ran where, how long, with what outcome)
// into a side channel that never touches the observable output.
//
// The layer's contract is strict: timing lives only here. Golden
// transcripts, testexec.Report contents and mutation tables are
// byte-identical with tracing on or off, serial or parallel. Span
// *structure* (the tree of suite → case → call / child-spawn spans and
// their outcome attributes) is deterministic for a fixed seed; span IDs,
// emission order and timings are not, and Tree normalizes them away for
// determinism tests.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanID identifies a span within one trace stream. Zero is "no parent":
// a span with Parent 0 is a root.
type SpanID int64

// The span kinds the schema admits, mirroring the execution hierarchy:
// a campaign wraps a reference run and many mutants, each of which wraps a
// suite run; a suite wraps cases; a case wraps calls (in-process) or a
// child-spawn (subprocess isolation) whose child-side call spans are
// re-parented under it.
const (
	KindCampaign  = "campaign"      // one mutation-analysis run
	KindReference = "reference"     // the campaign's original-program run
	KindMutant    = "mutant"        // one mutant's suite run
	KindSuite     = "suite"         // one testexec.Run
	KindCase      = "case"          // one executed test case
	KindCall      = "call"          // one dispatched call (ctor, method, dtor, reporter)
	KindSpawn     = "child-spawn"   // one subprocess case-server execution
	KindSoakGen   = "soak-generate" // one GenerateSoak invocation
	KindSoakCase  = "soak-case"     // one generated random-walk case
)

// KnownKind reports whether kind is part of the span schema.
func KnownKind(kind string) bool {
	switch kind {
	case KindCampaign, KindReference, KindMutant, KindSuite, KindCase,
		KindCall, KindSpawn, KindSoakGen, KindSoakCase:
		return true
	}
	return false
}

// Span is one NDJSON trace record. StartUS/DurUS are microseconds; StartUS
// is relative to the emitting tracer's epoch (its creation time), so spans
// shipped back from a child process carry the child's own clock. Attrs
// carry only deterministic labels (outcome, method, exit code) plus the few
// documented volatile keys (see Volatile).
type Span struct {
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Kind    string            `json:"kind"`
	Name    string            `json:"name"`
	StartUS int64             `json:"startUs"`
	DurUS   int64             `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer emits spans, either as NDJSON lines on a writer or into an
// in-memory collector (NewCollector). All methods are safe for concurrent
// use and safe on a nil receiver — a nil *Tracer is the disabled tracer,
// so call sites thread it without nil checks on the hot path.
type Tracer struct {
	mu         sync.Mutex
	enc        *json.Encoder
	collect    []Span
	collecting bool
	err        error
	nextID     SpanID
	clock      func() time.Time
	epoch      time.Time
}

// NewTracer returns a tracer writing one JSON span per line to w (NDJSON).
// A span's line is written when it ends, so child lines precede their
// parent's.
func NewTracer(w io.Writer) *Tracer {
	t := newTracer()
	t.enc = json.NewEncoder(w)
	return t
}

// NewCollector returns a tracer that buffers spans in memory; read them
// back with Spans. This is what a subprocess case server uses to ship its
// spans to the parent, and what determinism tests compare.
func NewCollector() *Tracer {
	t := newTracer()
	t.collecting = true
	return t
}

func newTracer() *Tracer {
	now := time.Now()
	return &Tracer{clock: time.Now, epoch: now}
}

// Spans returns a copy of the collected spans (collector tracers only).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.collect))
	copy(out, t.collect)
	return out
}

// Err returns the first emission error (a failed write on the NDJSON
// sink). Trace I/O failures never affect execution; callers check Err once
// at the end of a run.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.collecting {
		t.collect = append(t.collect, s)
		return
	}
	if t.err == nil {
		if err := t.enc.Encode(s); err != nil {
			t.err = fmt.Errorf("obs: emitting span: %w", err)
		}
	}
}

func (t *Tracer) allocID() SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Start opens a span under the given parent (0 for a root). It returns nil
// on a nil tracer; ActiveSpan methods are nil-safe, so the disabled path
// costs one nil check.
func (t *Tracer) Start(parent SpanID, kind, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := t.clock()
	return &ActiveSpan{
		t:     t,
		start: now,
		span: Span{
			ID:      t.allocID(),
			Parent:  parent,
			Kind:    kind,
			Name:    name,
			StartUS: now.Sub(t.epoch).Microseconds(),
		},
	}
}

// EmitChildren re-emits spans recorded by another tracer (a child
// process's collector) into this stream, re-parented under parent: every
// span gets a fresh ID, intra-batch parent links are preserved, and spans
// whose parent is outside the batch (the child's roots) are attached to
// parent. Child StartUS values stay on the child's clock.
func (t *Tracer) EmitChildren(parent SpanID, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	idMap := make(map[SpanID]SpanID, len(spans))
	for _, s := range spans {
		idMap[s.ID] = t.allocID()
	}
	for _, s := range spans {
		s.ID = idMap[s.ID]
		if mapped, ok := idMap[s.Parent]; ok && s.Parent != 0 {
			s.Parent = mapped
		} else {
			s.Parent = parent
		}
		t.emit(s)
	}
}

// ActiveSpan is an open span. SetAttr and End are nil-safe; End is
// idempotent. An ActiveSpan is used from one goroutine (the one running
// the work it measures).
type ActiveSpan struct {
	t     *Tracer
	start time.Time
	span  Span
	ended bool
}

// ID returns the span's ID, or 0 on a nil span — which parents any child
// span at the root, keeping nested Start calls nil-safe end to end.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr records a label on the span. Call before End; attrs set after
// End are dropped.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = value
}

// End closes the span, stamps its duration and emits it.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.span.DurUS = s.t.clock().Sub(s.start).Microseconds()
	s.t.emit(s.span)
}
