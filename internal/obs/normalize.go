package obs

import (
	"fmt"
	"sort"
	"strings"
)

// volatileAttrs are the span attributes that may legitimately differ
// between two runs of the same seeded workload — retry counts depend on
// transient host contention and worker counts on the execution strategy,
// never on the work. Tree drops them so structural comparison ignores them.
var volatileAttrs = map[string]bool{
	"attempts":    true,
	"parallelism": true,
}

// TreeNode is a span stripped to its deterministic structure: kind, name,
// non-volatile attrs and canonically ordered children. Two traces of the
// same seeded run — serial or parallel, whatever the span IDs and timings —
// normalize to equal forests.
type TreeNode struct {
	Kind     string
	Name     string
	Attrs    map[string]string
	Children []*TreeNode
}

// Tree builds the normalized forest of a trace: IDs and timings dropped,
// volatile attrs removed, children (and roots) sorted by their canonical
// rendering. Spans referencing a parent that is not in the trace are
// treated as roots.
func Tree(spans []Span) []*TreeNode {
	nodes := make(map[SpanID]*TreeNode, len(spans))
	for _, s := range spans {
		n := &TreeNode{Kind: s.Kind, Name: s.Name}
		for k, v := range s.Attrs {
			if volatileAttrs[k] {
				continue
			}
			if n.Attrs == nil {
				n.Attrs = make(map[string]string)
			}
			n.Attrs[k] = v
		}
		nodes[s.ID] = n
	}
	var roots []*TreeNode
	for _, s := range spans {
		n := nodes[s.ID]
		if parent, ok := nodes[s.Parent]; ok && s.Parent != 0 && s.Parent != s.ID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortForest(roots)
	return roots
}

func sortForest(nodes []*TreeNode) {
	for _, n := range nodes {
		sortForest(n.Children)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].render() < nodes[j].render()
	})
}

// render serializes the subtree canonically — the sort key and the
// equality witness.
func (n *TreeNode) render() string {
	var b strings.Builder
	n.renderTo(&b, 0)
	return b.String()
}

func (n *TreeNode) renderTo(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %q", n.Kind, n.Name)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%q", k, n.Attrs[k])
		}
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.renderTo(b, depth+1)
	}
}

// RenderForest serializes a normalized forest — handy in test failure
// messages (diff two forests as text).
func RenderForest(nodes []*TreeNode) string {
	var b strings.Builder
	for _, n := range nodes {
		n.renderTo(&b, 0)
	}
	return b.String()
}

// EqualForests reports whether two normalized forests are structurally
// identical.
func EqualForests(a, b []*TreeNode) bool {
	return RenderForest(a) == RenderForest(b)
}
