// Package ordersys implements the paper's stated future work (§6):
// extending the self-testable component approach "for components having
// more than one class; so instead of method's interactions inside a class
// (intraclass testing), we focus on interactions between classes
// (interclass testing)". The paper already argues (§3.2) that the
// transaction flow model scales to this case because "it can show the
// sequencing of activities performed by several objects as well".
//
// OrderSystem is one component composed of two collaborating classes: a
// Cart (order lines) and the stock database of package stockdb. Its TFM
// nodes are activities of either class; its class invariant is an
// interclass property (every cart line references a stocked product, and
// the cart total matches the line sum); and its mutation sites sit on the
// Checkout method, where values flow from the Cart into the Stock — the
// interclass interface the paper wants tested.
package ordersys

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/mutation"
	"concat/internal/stockdb"
	"concat/internal/tspec"
)

// Name is the component name.
const Name = "OrderSystem"

// ErrNoSuchLine is returned when removing an absent cart line.
var ErrNoSuchLine = errors.New("ordersys: no such cart line")

// ErrInsufficientStock is returned when a line asks for more than stocked.
var ErrInsufficientStock = errors.New("ordersys: insufficient stock")

// line is one cart entry.
type line struct {
	name  string
	qty   int64
	price float64
}

// OrderSystem is the two-class component instance: the cart object plus the
// stock database object it collaborates with.
type OrderSystem struct {
	bit.Base
	disp      component.Dispatcher
	eng       *mutation.Engine
	db        *stockdb.DB
	lines     []line
	checkouts int64
	destroyed bool
}

var _ component.Instance = (*OrderSystem)(nil)

func newOrderSystem(db *stockdb.DB, eng *mutation.Engine) *OrderSystem {
	o := &OrderSystem{db: db, eng: eng}
	o.disp.Register("Stock.AddProduct", o.stockAdd)
	o.disp.Register("Stock.Remove", o.stockRemove)
	o.disp.Register("Stock.Count", o.stockCount)
	o.disp.Register("Cart.AddLine", o.cartAddLine)
	o.disp.Register("Cart.RemoveLine", o.cartRemoveLine)
	o.disp.Register("Cart.Lines", o.cartLines)
	o.disp.Register("Cart.Total", o.cartTotal)
	o.disp.Register("Checkout", o.checkout)
	return o
}

// Invoke implements component.Instance.
func (o *OrderSystem) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if o.destroyed {
		return nil, fmt.Errorf("%w: %s", component.ErrDestroyed, Name)
	}
	return o.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (o *OrderSystem) Destroy() error {
	o.lines = nil
	o.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable. The invariant is interclass:
// every cart line must reference a product that exists in the stock with at
// least the line's quantity, quantities are positive, and line names are
// unique.
func (o *OrderSystem) InvariantTest() error {
	if err := o.Guard(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, l := range o.lines {
		if err := o.AssertInvariant(l.qty > 0, "InvariantTest", "line qty > 0"); err != nil {
			return err
		}
		if err := o.AssertInvariant(!seen[l.name], "InvariantTest", "line names unique"); err != nil {
			return err
		}
		seen[l.name] = true
		rec, err := o.db.Query(l.name)
		if err := o.AssertInvariant(err == nil, "InvariantTest", "cart line references stocked product"); err != nil {
			return err
		}
		if err := o.AssertInvariant(rec.Qty >= l.qty, "InvariantTest", "stock covers cart line"); err != nil {
			return err
		}
		if err := o.AssertInvariant(rec.Price == l.price, "InvariantTest", "line price matches stock"); err != nil {
			return err
		}
	}
	return o.AssertInvariant(o.checkouts >= 0, "InvariantTest", "checkouts >= 0")
}

// Reporter implements bit.SelfTestable.
func (o *OrderSystem) Reporter(w io.Writer) error {
	if err := o.Guard(); err != nil {
		return err
	}
	names := make([]string, 0, len(o.lines))
	for _, l := range o.lines {
		names = append(names, fmt.Sprintf("%s x%d @%.2f", l.name, l.qty, l.price))
	}
	sort.Strings(names)
	_, err := fmt.Fprintf(w, "OrderSystem{lines: %v, total: %.2f, stocked: %d, checkouts: %d}\n",
		names, o.total(), o.db.Count(), o.checkouts)
	return err
}

func (o *OrderSystem) total() float64 {
	t := 0.0
	for _, l := range o.lines {
		t += float64(l.qty) * l.price
	}
	return t
}

func (o *OrderSystem) use(site mutation.SiteID, v domain.Value, locals map[string]domain.Value) domain.Value {
	if o.eng == nil || !o.eng.Armed() {
		return v
	}
	return o.eng.Use(site, v, mutation.Env{
		Locals: locals,
		Globals: map[string]domain.Value{
			"lines":     domain.Int(int64(len(o.lines))),
			"checkouts": domain.Int(o.checkouts),
		},
		Externals: map[string]domain.Value{
			"stocked": domain.Int(int64(o.db.Count())),
		},
	})
}

func (o *OrderSystem) useInt(site mutation.SiteID, v int64, locals map[string]domain.Value) int64 {
	out := o.use(site, domain.Int(v), locals)
	n, err := out.AsInt()
	if err != nil {
		return v
	}
	return n
}

// --- Stock-class activities ---

func (o *OrderSystem) stockAdd(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Stock.AddProduct", args,
		domain.KindString, domain.KindInt, domain.KindFloat); err != nil {
		return nil, err
	}
	name := args[0].MustString()
	qty := args[1].MustInt()
	price := args[2].MustFloat()
	if err := o.AssertPre(qty > 0, "Stock.AddProduct", "qty > 0"); err != nil {
		return nil, err
	}
	if err := o.AssertPre(price > 0, "Stock.AddProduct", "price > 0"); err != nil {
		return nil, err
	}
	if err := o.db.Insert(stockdb.Record{Name: name, Qty: qty, Price: price}); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(int64(o.db.Count()))}, nil
}

func (o *OrderSystem) stockRemove(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Stock.Remove", args, domain.KindString); err != nil {
		return nil, err
	}
	name := args[0].MustString()
	// Interclass consistency: removing a product that the cart references
	// would break the invariant, so the cart line goes first.
	o.dropLine(name)
	rec, err := o.db.Remove(name)
	if err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(rec.Qty)}, nil
}

func (o *OrderSystem) stockCount(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Stock.Count", args); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(int64(o.db.Count()))}, nil
}

// --- Cart-class activities ---

func (o *OrderSystem) cartAddLine(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Cart.AddLine", args, domain.KindString, domain.KindInt); err != nil {
		return nil, err
	}
	name := args[0].MustString()
	qty := args[1].MustInt()
	if err := o.AssertPre(qty > 0, "Cart.AddLine", "qty > 0"); err != nil {
		return nil, err
	}
	rec, err := o.db.Query(name)
	if err != nil {
		return nil, err // observable: ordering an unstocked product
	}
	existing := int64(0)
	for _, l := range o.lines {
		if l.name == name {
			existing = l.qty
		}
	}
	if existing+qty > rec.Qty {
		return nil, fmt.Errorf("%w: %q has %d, cart wants %d", ErrInsufficientStock, name, rec.Qty, existing+qty)
	}
	if existing > 0 {
		for i := range o.lines {
			if o.lines[i].name == name {
				o.lines[i].qty += qty
			}
		}
	} else {
		o.lines = append(o.lines, line{name: name, qty: qty, price: rec.Price})
	}
	return []domain.Value{domain.Int(int64(len(o.lines)))}, nil
}

func (o *OrderSystem) cartRemoveLine(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Cart.RemoveLine", args, domain.KindString); err != nil {
		return nil, err
	}
	name := args[0].MustString()
	if !o.dropLine(name) {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchLine, name)
	}
	return []domain.Value{domain.Int(int64(len(o.lines)))}, nil
}

func (o *OrderSystem) dropLine(name string) bool {
	for i, l := range o.lines {
		if l.name == name {
			o.lines = append(o.lines[:i], o.lines[i+1:]...)
			return true
		}
	}
	return false
}

func (o *OrderSystem) cartLines(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Cart.Lines", args); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(int64(len(o.lines)))}, nil
}

func (o *OrderSystem) cartTotal(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Cart.Total", args); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Float(o.total())}, nil
}

// --- the interclass interface: Checkout ---

// checkout transfers the cart into the stock: every line decrements its
// product's stocked quantity, the cart empties, the checkout counter grows.
// The mutation sites sit on the values crossing the class boundary — the
// interclass interface-mutation targets.
func (o *OrderSystem) checkout(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Checkout", args); err != nil {
		return nil, err
	}
	if len(o.lines) == 0 {
		return nil, errors.New("ordersys: checkout of an empty cart")
	}
	items := int64(0)
	for _, l := range o.lines {
		rec, err := o.db.Query(l.name)
		if err != nil {
			return nil, fmt.Errorf("ordersys: checkout: %w", err)
		}
		qty := o.useInt("Checkout/qty", l.qty, map[string]domain.Value{
			"items": domain.Int(items),
		})
		remaining := rec.Qty - qty
		remaining = o.useInt("Checkout/remaining", remaining, map[string]domain.Value{
			"qty":   domain.Int(qty),
			"items": domain.Int(items),
		})
		if remaining < 0 {
			return nil, fmt.Errorf("%w: %q", ErrInsufficientStock, l.name)
		}
		rec.Qty = remaining
		if err := o.db.Update(rec); err != nil {
			return nil, fmt.Errorf("ordersys: checkout: %w", err)
		}
		items += qty
	}
	o.lines = nil
	o.checkouts++
	if err := o.AssertPost(len(o.lines) == 0, "Checkout", "cart empty after checkout"); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(items)}, nil
}

// Sites returns the interclass mutation sites of the Checkout method.
func Sites() []mutation.Site {
	return []mutation.Site{
		{ID: "Checkout/qty", Method: "Checkout", Var: "qty", Kind: domain.KindInt,
			Locals:    []string{"items", "remaining"},
			Globals:   []string{"lines", "checkouts"},
			Externals: []string{"stocked"}},
		{ID: "Checkout/remaining", Method: "Checkout", Var: "remaining", Kind: domain.KindInt,
			Locals:    []string{"qty", "items"},
			Globals:   []string{"lines", "checkouts"},
			Externals: []string{"stocked"}},
	}
}

// Factory builds OrderSystem instances; each instance gets a fresh stock
// database so transactions are independent.
type Factory struct {
	eng *mutation.Engine
}

var _ component.Factory = (*Factory)(nil)

// NewFactory returns a production factory.
func NewFactory() *Factory { return &Factory{} }

// NewFactoryWithEngine attaches a mutation engine to built instances.
func NewFactoryWithEngine(eng *mutation.Engine) *Factory { return &Factory{eng: eng} }

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory.
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	if ctor != "OrderSystem" {
		return nil, fmt.Errorf("ordersys: unknown constructor %q", ctor)
	}
	if err := component.WantArgs(ctor, args); err != nil {
		return nil, err
	}
	return newOrderSystem(stockdb.New(), f.eng), nil
}

var specOnce = sync.OnceValue(buildSpec)

// Spec returns the component's embedded t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

// buildSpec: the interclass TFM. Nodes n2/n3 are Stock-class activities,
// n4/n5 Cart-class activities, n6 the cross-class Checkout, n7 observers of
// both classes — one model sequencing two objects' methods.
func buildSpec() *tspec.Spec {
	productNames := tspec.StringsOf("widget", "gadget", "gizmo")
	return tspec.NewBuilder(Name).
		Attribute("lines", tspec.RangeInt(0, 20)).
		Attribute("checkouts", tspec.RangeInt(0, 1000)).
		Method("m1", "OrderSystem", "", tspec.CatConstructor).
		Method("m2", "~OrderSystem", "", tspec.CatDestructor).
		Method("m3", "Stock.AddProduct", "int", tspec.CatUpdate).
		Param("name", productNames).
		Param("qty", tspec.RangeInt(1, 50)).
		Param("price", tspec.RangeFloat(0.5, 100)).
		Method("m4", "Stock.Remove", "int", tspec.CatUpdate).
		Param("name", productNames).
		Method("m5", "Stock.Count", "int", tspec.CatAccess).
		Method("m6", "Cart.AddLine", "int", tspec.CatUpdate).
		Param("name", productNames).
		Param("qty", tspec.RangeInt(1, 10)).
		Uses("lines").
		Method("m7", "Cart.RemoveLine", "int", tspec.CatUpdate).
		Param("name", productNames).
		Uses("lines").
		Method("m8", "Cart.Lines", "int", tspec.CatAccess).
		Uses("lines").
		Method("m9", "Cart.Total", "float", tspec.CatAccess).
		Uses("lines").
		Method("m10", "Checkout", "int", tspec.CatUpdate).
		Uses("lines", "checkouts").
		Node("n1", true, "m1").
		Node("n2", false, "m3").             // Stock: fill the shelves
		Node("n3", false, "m4").             // Stock: delist a product
		Node("n4", false, "m6").             // Cart: order lines
		Node("n5", false, "m7").             // Cart: retract a line
		Node("n6", false, "m10").            // interclass: checkout
		Node("n7", false, "m5", "m8", "m9"). // observers of both classes
		Node("n8", false, "m2").
		Edge("n1", "n2").
		Edge("n1", "n8").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n7").
		Edge("n3", "n4").
		Edge("n3", "n8").
		Edge("n4", "n4").
		Edge("n4", "n5").
		Edge("n4", "n6").
		Edge("n4", "n7").
		Edge("n5", "n6").
		Edge("n5", "n8").
		Edge("n6", "n7").
		Edge("n6", "n8").
		Edge("n7", "n8").
		MustBuild()
}
