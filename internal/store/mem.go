// The in-memory backend: the same verified entry documents the filesystem
// store persists, held in a map. It is the test double for campaign code
// that needs a real (counting, integrity-checking) store without touching
// disk, and the smallest thing NewHandler can serve a warm cache from.

package store

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Mem is a map-backed Backend. All methods are safe for concurrent use.
// Unlike *Store, the zero value is not disabled — use NewMem.
type Mem struct {
	mu      sync.RWMutex
	entries map[string][]byte

	hits, misses atomic.Int64
	quarantined  atomic.Int64
	skipped      atomic.Int64
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{entries: make(map[string][]byte)}
}

// Get looks the key up, decoding the stored payload into out on a hit. A
// document failing integrity (possible only through in-process tampering,
// but checked for parity with the other backends) is dropped, counted as
// quarantined, and read as a clean miss.
func (m *Mem) Get(k Key, out any) (bool, error) {
	id, err := k.ID()
	if err != nil {
		return false, err
	}
	m.mu.RLock()
	doc, ok := m.entries[id]
	m.mu.RUnlock()
	if !ok {
		m.misses.Add(1)
		return false, nil
	}
	if e, err := decodeEntry(id, doc); err == nil {
		if err := json.Unmarshal(e.Value, out); err == nil {
			m.hits.Add(1)
			return true, nil
		}
	}
	m.quarantine(id)
	return false, nil
}

// quarantine drops a corrupt document. Like the filesystem backend,
// concurrent readers of the same corrupt entry count one quarantine total
// (the deleter wins) but one miss each.
func (m *Mem) quarantine(id string) {
	m.mu.Lock()
	if _, still := m.entries[id]; still {
		delete(m.entries, id)
		m.quarantined.Add(1)
		m.skipped.Add(1)
	}
	m.mu.Unlock()
	m.misses.Add(1)
}

// Put stores the value under the key, overwriting any previous entry.
func (m *Mem) Put(k Key, value any) error {
	id, doc, err := encodeEntry(k, value)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.entries[id] = doc
	m.mu.Unlock()
	return nil
}

// GetRaw returns the verified entry document for a content address.
func (m *Mem) GetRaw(id string) ([]byte, bool, error) {
	m.mu.RLock()
	doc, ok := m.entries[id]
	m.mu.RUnlock()
	if !ok {
		m.misses.Add(1)
		return nil, false, nil
	}
	if _, err := decodeEntry(id, doc); err != nil {
		m.quarantine(id)
		return nil, false, nil
	}
	m.hits.Add(1)
	return doc, true, nil
}

// PutRaw verifies the document against its content address and stores it
// verbatim.
func (m *Mem) PutRaw(id string, doc []byte) error {
	if _, err := decodeEntry(id, doc); err != nil {
		return err
	}
	m.mu.Lock()
	m.entries[id] = doc
	m.mu.Unlock()
	return nil
}

// Len counts stored entries; skipped counts documents dropped by
// quarantine (mirroring the filesystem store, where renamed-aside .corrupt
// files show up as skipped).
func (m *Mem) Len() (entries, skipped int, err error) {
	m.mu.RLock()
	entries = len(m.entries)
	m.mu.RUnlock()
	return entries, int(m.skipped.Load()), nil
}

// Stats snapshots the lookup counters.
func (m *Mem) Stats() Stats {
	return Stats{Hits: m.hits.Load(), Misses: m.misses.Load(), Quarantined: m.quarantined.Load()}
}
