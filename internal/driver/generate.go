package driver

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"

	"concat/internal/domain"
	"concat/internal/tfm"
	"concat/internal/tspec"
)

// Options configure test generation.
type Options struct {
	// Seed makes generation reproducible; the same spec, options and seed
	// always yield the same suite.
	Seed int64
	// Criterion selects the coverage criterion; zero means transaction
	// coverage, the criterion the paper's Driver Generator implements.
	Criterion tfm.Criterion
	// Enum bounds transaction enumeration (loop bound, limits).
	Enum tfm.EnumOptions
	// ExpandAlternatives, when true, generates one test case per choice of
	// method alternative at each node (capped by MaxAlternatives); when
	// false one alternative is sampled per node per transaction.
	ExpandAlternatives bool
	// MaxAlternatives caps the per-transaction expansion; zero means 8.
	MaxAlternatives int
	// BoundaryCases, when true, adds one extra case per transaction whose
	// arguments are domain boundary values (lower limit, upper limit, ...)
	// instead of random samples — the classic complement to the paper's
	// random selection from the valid subdomain.
	BoundaryCases bool
}

func (o Options) withDefaults() Options {
	if o.Criterion == 0 {
		o.Criterion = tfm.CoverTransactions
	}
	if o.MaxAlternatives <= 0 {
		o.MaxAlternatives = 8
	}
	return o
}

// Generate runs the Driver Generator: spec -> transactions -> test cases.
// A truncated enumeration (tfm.ErrTruncated) is not an error here; the suite
// simply covers the truncated space. Invalid specs and unbuildable domains
// are errors.
func Generate(spec *tspec.Spec, opts Options) (*Suite, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: generating for %q: %w", spec.Class.Name, err)
	}
	opts = opts.withDefaults()
	g, err := spec.TFM()
	if err != nil {
		return nil, fmt.Errorf("driver: generating for %q: %w", spec.Class.Name, err)
	}
	transactions, err := g.Select(opts.Criterion, opts.Enum)
	if err != nil && !errors.Is(err, tfm.ErrTruncated) {
		return nil, fmt.Errorf("driver: generating for %q: %w", spec.Class.Name, err)
	}

	suite := &Suite{
		Component: spec.Class.Name,
		Seed:      opts.Seed,
		Criterion: opts.Criterion.String(),
	}
	for _, tr := range transactions {
		// Each transaction draws from its own RNG stream, derived from the
		// suite seed and the transaction's stable key. Sampling is therefore
		// a function of the transaction alone: a spec edit that perturbs one
		// transaction's domains (or adds/removes transactions) leaves every
		// other transaction's cases byte-identical, which is what lets the
		// impact engine replay unaffected work from the verdict store.
		rng := domain.NewRand(domain.DeriveSeed(opts.Seed, "tx:"+tr.Key()))
		combos, err := methodCombos(spec, tr, opts, rng)
		if err != nil {
			return nil, err
		}
		for _, combo := range combos {
			tc, err := buildCase(spec, tr, combo, rng, len(suite.Cases))
			if err != nil {
				return nil, err
			}
			suite.Cases = append(suite.Cases, tc)
		}
		if opts.BoundaryCases && len(combos) > 0 {
			tc, err := buildBoundaryCase(spec, tr, combos[0], len(suite.Cases))
			if err != nil {
				return nil, err
			}
			suite.Cases = append(suite.Cases, tc)
		}
	}
	return suite, nil
}

// buildBoundaryCase builds one case whose arguments are boundary values:
// the i-th argument of each call takes the (i mod len(boundary))-th
// boundary member, cycling so that a transaction exercises several edges of
// each domain across its calls.
func buildBoundaryCase(spec *tspec.Spec, tr tfm.Transaction, combo []string, ordinal int) (TestCase, error) {
	tc := TestCase{
		ID:          "TC" + strconv.Itoa(ordinal),
		Transaction: tr.Key(),
	}
	for _, id := range tr.Path {
		tc.Path = append(tc.Path, string(id))
	}
	pick := 0
	for _, methodID := range combo {
		m, ok := spec.MethodByID(methodID)
		if !ok {
			return TestCase{}, fmt.Errorf("driver: unknown method %s", methodID)
		}
		call := Call{MethodID: m.ID, Method: m.Name}
		for i, p := range m.Params {
			switch p.Domain.Kind {
			case tspec.DomObject, tspec.DomPointer:
				call.Args = append(call.Args, domain.Nil())
				call.Holes = append(call.Holes, Hole{
					Arg:      i,
					TypeName: p.Domain.TypeName,
					Nullable: p.Domain.Kind == tspec.DomPointer && p.Domain.Nullable,
				})
			default:
				d, err := p.Domain.Build()
				if err != nil {
					return TestCase{}, fmt.Errorf("driver: parameter %q: %w", p.Name, err)
				}
				bs := d.Boundary()
				if len(bs) == 0 {
					// Domains without boundaries (none today) would need a
					// sample; fail loudly instead of guessing.
					return TestCase{}, fmt.Errorf("driver: parameter %q has no boundary values", p.Name)
				}
				call.Args = append(call.Args, bs[pick%len(bs)])
				pick++
			}
		}
		tc.Calls = append(tc.Calls, call)
	}
	return tc, nil
}

// methodCombos chooses, for every node of the transaction, which of the
// node's alternative methods each generated case invokes.
func methodCombos(spec *tspec.Spec, tr tfm.Transaction, opts Options, rng *rand.Rand) ([][]string, error) {
	alternatives := make([][]string, len(tr.Path))
	for i, nodeID := range tr.Path {
		n, ok := spec.NodeByID(string(nodeID))
		if !ok {
			return nil, fmt.Errorf("driver: transaction references unknown node %s", nodeID)
		}
		if len(n.Methods) == 0 {
			return nil, fmt.Errorf("driver: node %s has no methods", nodeID)
		}
		alternatives[i] = n.Methods
	}
	if !opts.ExpandAlternatives {
		combo := make([]string, len(alternatives))
		for i, alts := range alternatives {
			combo[i] = alts[rng.IntN(len(alts))]
		}
		return [][]string{combo}, nil
	}
	// Expansion guarantees every alternative of every node appears in at
	// least one test case of the transaction: combo k picks alternative
	// k mod len(alts) at each node, and the combo count is the widest
	// node's alternative count (capped). A full cartesian product would be
	// exponential and — worse — a truncated product silently never
	// exercises the later alternatives of later nodes.
	width := 1
	for _, alts := range alternatives {
		if len(alts) > width {
			width = len(alts)
		}
	}
	if width > opts.MaxAlternatives {
		width = opts.MaxAlternatives
	}
	combos := make([][]string, width)
	for k := 0; k < width; k++ {
		combo := make([]string, len(alternatives))
		for i, alts := range alternatives {
			combo[i] = alts[k%len(alts)]
		}
		combos[k] = combo
	}
	return combos, nil
}

// buildCase samples arguments for one method combination.
func buildCase(spec *tspec.Spec, tr tfm.Transaction, combo []string, rng *rand.Rand, ordinal int) (TestCase, error) {
	tc := TestCase{
		ID:          "TC" + strconv.Itoa(ordinal),
		Transaction: tr.Key(),
	}
	for _, id := range tr.Path {
		tc.Path = append(tc.Path, string(id))
	}
	for _, methodID := range combo {
		m, ok := spec.MethodByID(methodID)
		if !ok {
			return TestCase{}, fmt.Errorf("driver: unknown method %s", methodID)
		}
		call, err := buildCall(m, rng)
		if err != nil {
			return TestCase{}, fmt.Errorf("driver: case %s method %s: %w", tc.ID, m.Name, err)
		}
		tc.Calls = append(tc.Calls, call)
	}
	return tc, nil
}

func buildCall(m tspec.Method, rng *rand.Rand) (Call, error) {
	call := Call{MethodID: m.ID, Method: m.Name}
	for i, p := range m.Params {
		switch p.Domain.Kind {
		case tspec.DomObject, tspec.DomPointer:
			// Structured parameter: leave a hole for manual completion.
			call.Args = append(call.Args, domain.Nil())
			call.Holes = append(call.Holes, Hole{
				Arg:      i,
				TypeName: p.Domain.TypeName,
				Nullable: p.Domain.Kind == tspec.DomPointer && p.Domain.Nullable,
			})
		default:
			d, err := p.Domain.Build()
			if err != nil {
				return Call{}, fmt.Errorf("parameter %q: %w", p.Name, err)
			}
			v, err := d.Sample(rng)
			if err != nil {
				return Call{}, fmt.Errorf("parameter %q: %w", p.Name, err)
			}
			call.Args = append(call.Args, v)
		}
	}
	return call, nil
}
