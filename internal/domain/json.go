package domain

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// valueJSON is the wire form of a Value. Object and pointer payloads are not
// serializable — they are in-memory references — so they round-trip as
// placeholders that must be re-bound by a Provider on load, mirroring the
// paper's "structured type parameters must be completed manually" rule.
type valueJSON struct {
	Kind    string  `json:"kind"`
	Int     *int64  `json:"int,omitempty"`
	Float   *string `json:"float,omitempty"` // formatted to preserve exactness
	Str     *string `json:"str,omitempty"`
	Bool    *bool   `json:"bool,omitempty"`
	Opaque  bool    `json:"opaque,omitempty"`
	Summary string  `json:"summary,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	w := valueJSON{Kind: v.kind.String()}
	switch v.kind {
	case KindInt:
		w.Int = &v.i
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'x', -1, 64) // hex float: lossless round trip
		w.Float = &s
	case KindString:
		w.Str = &v.s
	case KindBool:
		w.Bool = &v.b
	case KindObject, KindPointer:
		w.Opaque = true
		w.Summary = v.String()
	case KindNil:
		// kind alone is sufficient
	default:
		return nil, fmt.Errorf("domain: cannot marshal invalid value")
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w valueJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("domain: decoding value: %w", err)
	}
	k, err := ParseKind(w.Kind)
	if err != nil {
		return err
	}
	switch k {
	case KindInt:
		if w.Int == nil {
			return fmt.Errorf("domain: int value missing payload")
		}
		*v = Int(*w.Int)
	case KindFloat:
		if w.Float == nil {
			return fmt.Errorf("domain: float value missing payload")
		}
		f, err := strconv.ParseFloat(*w.Float, 64)
		if err != nil {
			return fmt.Errorf("domain: decoding float payload %q: %w", *w.Float, err)
		}
		*v = Float(f)
	case KindString:
		if w.Str == nil {
			return fmt.Errorf("domain: string value missing payload")
		}
		*v = Str(*w.Str)
	case KindBool:
		if w.Bool == nil {
			return fmt.Errorf("domain: bool value missing payload")
		}
		*v = Bool(*w.Bool)
	case KindNil:
		*v = Nil()
	case KindObject, KindPointer:
		// Deserialized references are unresolved placeholders.
		*v = Value{kind: k}
	default:
		return fmt.Errorf("domain: cannot unmarshal kind %s", k)
	}
	return nil
}
