package bit

import (
	"reflect"
	"sync"
	"testing"
)

func TestTelemetryRecordCounts(t *testing.T) {
	tel := NewTelemetry()
	tel.Record(KindInvariant, "Push", "size >= 0", false)
	tel.Record(KindInvariant, "Push", "size >= 0", false)
	tel.Record(KindInvariant, "Push", "size >= 0", true)
	tel.Record(KindPrecondition, "Pop", "size > 0", true)
	want := []SiteRecord{
		{Kind: "invariant", Method: "Push", Expr: "size >= 0", Evaluated: 3, Violated: 1},
		{Kind: "pre-condition", Method: "Pop", Expr: "size > 0", Evaluated: 1, Violated: 1},
	}
	if got := tel.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("Records = %+v, want %+v", got, want)
	}
}

func TestTelemetryRecordsSorted(t *testing.T) {
	tel := NewTelemetry()
	tel.Record(KindPostcondition, "B", "z", false)
	tel.Record(KindInvariant, "B", "y", false)
	tel.Record(KindInvariant, "A", "x", false)
	tel.Record(KindInvariant, "A", "w", false)
	recs := tel.Records()
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Method > b.Method) ||
			(a.Kind == b.Kind && a.Method == b.Method && a.Expr > b.Expr) {
			t.Fatalf("records out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.Record(KindInvariant, "m", "e", true) // must not panic
	tel.Merge(NewTelemetry())
	tel.MergeRecords([]SiteRecord{{Kind: "invariant"}})
	if got := tel.Records(); got != nil {
		t.Errorf("nil telemetry Records = %+v, want nil", got)
	}
	live := NewTelemetry()
	live.Merge(nil) // nil source must not panic either
	if got := live.Records(); got != nil {
		t.Errorf("empty telemetry Records = %+v, want nil", got)
	}
}

// TestTelemetryMergeCommutative is the parallelism-safety contract: merging
// per-case telemetries in any completion order yields the same aggregate.
func TestTelemetryMergeCommutative(t *testing.T) {
	mk := func(n int64) *Telemetry {
		tel := NewTelemetry()
		for i := int64(0); i < n; i++ {
			tel.Record(KindInvariant, "Push", "ok", i%2 == 0)
		}
		tel.Record(KindPostcondition, "Pop", "shrunk", false)
		return tel
	}
	ab := NewTelemetry()
	ab.Merge(mk(3))
	ab.Merge(mk(5))
	ba := NewTelemetry()
	ba.Merge(mk(5))
	ba.Merge(mk(3))
	if !reflect.DeepEqual(ab.Records(), ba.Records()) {
		t.Errorf("merge order changed aggregate:\n%+v\nvs\n%+v", ab.Records(), ba.Records())
	}
}

func TestTelemetryConcurrentRecord(t *testing.T) {
	tel := NewTelemetry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tel.Record(KindInvariant, "m", "e", i%10 == 0)
			}
		}()
	}
	wg.Wait()
	recs := tel.Records()
	if len(recs) != 1 || recs[0].Evaluated != 800 || recs[0].Violated != 80 {
		t.Errorf("concurrent counts = %+v, want evaluated 800 / violated 80", recs)
	}
}

// TestBaseAssertHelpersRecordAndDelegate: the Assert* helpers count the
// evaluation on the installed telemetry and return exactly what the paper's
// macros would.
func TestBaseAssertHelpersRecordAndDelegate(t *testing.T) {
	var b Base
	tel := NewTelemetry()
	b.SetBITTelemetry(tel)
	if err := b.AssertInvariant(true, "m", "inv"); err != nil {
		t.Errorf("passing invariant returned %v", err)
	}
	if err := b.AssertInvariant(false, "m", "inv"); err == nil {
		t.Error("failing invariant returned nil")
	} else if v, ok := AsViolation(err); !ok || v.Kind != KindInvariant {
		t.Errorf("failing invariant returned %v, want invariant violation", err)
	}
	if err := b.AssertPre(false, "m", "pre"); err == nil {
		t.Error("failing pre-condition returned nil")
	}
	if err := b.AssertPost(false, "m", "post"); err == nil {
		t.Error("failing post-condition returned nil")
	}
	want := []SiteRecord{
		{Kind: "invariant", Method: "m", Expr: "inv", Evaluated: 2, Violated: 1},
		{Kind: "post-condition", Method: "m", Expr: "post", Evaluated: 1, Violated: 1},
		{Kind: "pre-condition", Method: "m", Expr: "pre", Evaluated: 1, Violated: 1},
	}
	if got := tel.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("telemetry = %+v, want %+v", got, want)
	}
}

// TestBaseAssertWithoutTelemetry: with no telemetry installed the helpers
// are plain assertions — no recording, same verdicts.
func TestBaseAssertWithoutTelemetry(t *testing.T) {
	var b Base
	if err := b.AssertInvariant(false, "m", "e"); err == nil {
		t.Error("unrecorded failing invariant returned nil")
	}
	b.SetBITTelemetry(nil) // explicit nil is ignored, not a panic
	if err := b.AssertPre(true, "m", "e"); err != nil {
		t.Errorf("unrecorded passing pre-condition returned %v", err)
	}
}
