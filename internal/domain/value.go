// Package domain models the value spaces ("domains") that a t-spec declares
// for component attributes and method parameters, and provides the sampling
// machinery the driver generator uses to pick concrete test inputs.
//
// The paper (§3.4.1) generates values "by randomly selecting a value from the
// valid subdomain", implemented there for numeric types and strings; object,
// array and pointer parameters "must be completed manually by the tester".
// This package reproduces that behaviour: Range, Set and String domains
// support automatic sampling, while Object and Pointer domains yield
// placeholders that the tester resolves through a Provider.
package domain

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value. The zero Kind is invalid so
// that an uninitialized Value is detectable.
type Kind int

// Supported value kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
	KindBool
	KindObject  // a reference to a component instance or other structured value
	KindPointer // a possibly-nil reference
	KindNil     // the distinguished null reference
)

var kindNames = map[Kind]string{
	KindInt:     "int",
	KindFloat:   "float",
	KindString:  "string",
	KindBool:    "bool",
	KindObject:  "object",
	KindPointer: "pointer",
	KindNil:     "nil",
}

// String returns the t-spec name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is one of the declared kinds.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// ParseKind converts a t-spec type name into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if strings.EqualFold(name, s) {
			return k, nil
		}
	}
	// t-spec synonyms used in the paper's Figure 3.
	switch strings.ToLower(s) {
	case "range":
		return KindInt, nil
	case "set":
		return KindInt, nil
	}
	return 0, fmt.Errorf("domain: unknown kind %q", s)
}

// Value is a tagged union carrying one concrete test input or output. Values
// are immutable once constructed; Ref is shared by reference for object and
// pointer kinds.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
	ref  any
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Object returns a structured value wrapping ref.
func Object(ref any) Value { return Value{kind: KindObject, ref: ref} }

// Pointer returns a pointer value wrapping ref; a nil ref yields Nil().
func Pointer(ref any) Value {
	if ref == nil {
		return Nil()
	}
	return Value{kind: KindPointer, ref: ref}
}

// Nil returns the distinguished null reference.
func Nil() Value { return Value{kind: KindNil} }

// Kind returns the value's kind; the zero Value has kind 0 (invalid).
func (v Value) Kind() Kind { return v.kind }

// IsZero reports whether v is the uninitialized Value.
func (v Value) IsZero() bool { return v.kind == 0 }

// IsNil reports whether v is the null reference (or a nil-ref pointer).
func (v Value) IsNil() bool {
	return v.kind == KindNil || ((v.kind == KindPointer || v.kind == KindObject) && v.ref == nil)
}

// AsInt returns the integer payload. It returns an error if the kind differs.
func (v Value) AsInt() (int64, error) {
	if v.kind != KindInt {
		return 0, fmt.Errorf("domain: value is %s, not int", v.kind)
	}
	return v.i, nil
}

// AsFloat returns the float payload; integer values convert losslessly.
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindFloat:
		return v.f, nil
	case KindInt:
		return float64(v.i), nil
	default:
		return 0, fmt.Errorf("domain: value is %s, not float", v.kind)
	}
}

// AsString returns the string payload. It returns an error if the kind differs.
func (v Value) AsString() (string, error) {
	if v.kind != KindString {
		return "", fmt.Errorf("domain: value is %s, not string", v.kind)
	}
	return v.s, nil
}

// AsBool returns the boolean payload. It returns an error if the kind differs.
func (v Value) AsBool() (bool, error) {
	if v.kind != KindBool {
		return false, fmt.Errorf("domain: value is %s, not bool", v.kind)
	}
	return v.b, nil
}

// Ref returns the reference payload for object and pointer values, or nil.
func (v Value) Ref() any {
	return v.ref
}

// MustInt returns the integer payload and panics on kind mismatch. Reserved
// for tests and internal call sites that already validated the kind.
func (v Value) MustInt() int64 {
	n, err := v.AsInt()
	if err != nil {
		panic(err)
	}
	return n
}

// MustFloat is the float analog of MustInt.
func (v Value) MustFloat() float64 {
	f, err := v.AsFloat()
	if err != nil {
		panic(err)
	}
	return f
}

// MustString is the string analog of MustInt.
func (v Value) MustString() string {
	s, err := v.AsString()
	if err != nil {
		panic(err)
	}
	return s
}

// Equal reports whether two values have the same kind and payload. Object and
// pointer values compare by reference identity.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindObject, KindPointer:
		return v.ref == o.ref
	case KindNil:
		return true
	default:
		return true // two zero Values
	}
}

// Compare orders two values of the same comparable kind. It returns a
// negative, zero or positive number like strings.Compare, and an error for
// non-comparable or mismatched kinds. This is the comparator the sortable
// list component uses.
func (v Value) Compare(o Value) (int, error) {
	if v.kind != o.kind {
		// Allow int/float cross comparison, which the list components need
		// when mixed numeric payloads are stored.
		if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return cmpFloat(a, b), nil
		}
		return 0, fmt.Errorf("domain: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	case KindFloat:
		return cmpFloat(v.f, o.f), nil
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("domain: kind %s is not ordered", v.kind)
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value in t-spec literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindObject:
		return fmt.Sprintf("object(%T)", v.ref)
	case KindPointer:
		return fmt.Sprintf("pointer(%T)", v.ref)
	case KindNil:
		return "nil"
	default:
		return "<invalid>"
	}
}

// SortValues orders a slice of mutually comparable values in place; values
// that fail to compare keep their relative order.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		c, err := vs[i].Compare(vs[j])
		return err == nil && c < 0
	})
}
