package obs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestBroadcastLateSubscriberReplaysAll(t *testing.T) {
	b := NewBroadcast()
	if _, err := b.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	r := b.Reader() // subscribes after the writes
	if _, err := b.Write([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := "one\ntwo\nthree\n"; string(got) != want {
		t.Errorf("late subscriber read %q, want %q", got, want)
	}
}

func TestBroadcastBlocksUntilData(t *testing.T) {
	b := NewBroadcast()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(b.Reader())
		done <- data
	}()
	// The reader is (eventually) blocked; writes then a close release it.
	if _, err := b.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if got := <-done; string(got) != "hello" {
		t.Errorf("read %q, want %q", got, "hello")
	}
}

func TestBroadcastNextCancel(t *testing.T) {
	b := NewBroadcast()
	cancel := make(chan struct{})
	close(cancel)
	if chunk, _, ok := b.Next(0, cancel); ok || chunk != nil {
		t.Errorf("Next on empty stream with fired cancel = %q, %v", chunk, ok)
	}
	// Data already past the offset is returned even with cancel fired.
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if chunk, next, ok := b.Next(0, cancel); !ok || string(chunk) != "x" || next != 1 {
		t.Errorf("Next with buffered data = %q, %d, %v", chunk, next, ok)
	}
}

func TestBroadcastCapDropsOldestLines(t *testing.T) {
	b := NewBroadcastCapped(16)
	for i := 0; i < 10; i++ {
		if _, err := fmt.Fprintf(b, "line-%d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if b.Len() != 70 { // absolute length counts dropped bytes
		t.Errorf("Len = %d, want 70", b.Len())
	}
	if b.Dropped() == 0 {
		t.Error("cap never dropped anything")
	}
	if got := len(b.Bytes()); got > 16 {
		t.Errorf("retained %d bytes, cap is 16", got)
	}
	// The retained suffix starts at a line boundary.
	if got := b.Bytes(); len(got) > 0 && !bytes.HasPrefix(got, []byte("line-")) {
		t.Errorf("retained suffix is mid-line: %q", got)
	}
}

// TestBroadcastCapLateSubscriber is the satellite's contract: a subscriber
// joining after the cap dropped data gets an explicit truncation marker,
// then the retained lines, never silently spliced bytes.
func TestBroadcastCapLateSubscriber(t *testing.T) {
	b := NewBroadcastCapped(16)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(b, "line-%d\n", i)
	}
	b.Close()
	data, err := io.ReadAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	wantMarker := fmt.Sprintf("{\"truncated\":true,\"missedBytes\":%d}\n", b.Dropped())
	if !bytes.HasPrefix(data, []byte(wantMarker)) {
		t.Errorf("late subscriber stream = %q, want prefix %q", data, wantMarker)
	}
	if !bytes.HasSuffix(data, []byte("line-9\n")) {
		t.Errorf("late subscriber missing newest line: %q", data)
	}
	rest := bytes.TrimPrefix(data, []byte(wantMarker))
	if !bytes.Equal(rest, b.Bytes()) {
		t.Errorf("after the marker the stream should be the retained suffix:\n%q\nvs\n%q", rest, b.Bytes())
	}
}

// TestBroadcastCapLiveReaderSeesAll: a reader that subscribed before the
// cap trimmed anything streams the complete data — the cap bounds replay
// retention, not live delivery.
func TestBroadcastCapLiveReaderSeesAll(t *testing.T) {
	b := NewBroadcastCapped(16)
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(b.Reader())
		done <- data
	}()
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		line := fmt.Sprintf("line-%d\n", i)
		want.WriteString(line)
		if _, err := b.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	got := <-done
	// The reader races the writer: if it ever fell behind the trim point it
	// legitimately sees a truncation marker; but the total content it saw
	// must end with the final lines and contain no mid-line splice.
	if !bytes.HasSuffix(got, []byte("line-49\n")) {
		t.Errorf("live reader missing tail: %q", got)
	}
	if bytes.Equal(got, want.Bytes()) {
		return // kept up perfectly — the common case
	}
	if !bytes.Contains(got, []byte(`"truncated":true`)) {
		t.Errorf("live reader lost data without a truncation marker:\n%q", got)
	}
}

// TestBroadcastCapTraceStillValidates: a truncated NDJSON trace read via a
// late subscriber still parses — the marker is skipped by ReadTrace.
func TestBroadcastCapTraceStillValidates(t *testing.T) {
	b := NewBroadcastCapped(1 << 10)
	tr := NewTracer(b)
	root := tr.Start(0, KindSuite, "Demo")
	for i := 0; i < 64; i++ {
		tr.Start(root.ID(), KindCase, fmt.Sprintf("TC%d", i)).End()
	}
	root.End()
	b.Close()
	if b.Dropped() == 0 {
		t.Fatal("test did not exceed the cap; raise the span count")
	}
	spans, err := ReadTrace(b.Reader())
	if err != nil {
		t.Fatalf("ReadTrace on truncated stream: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans survived truncation")
	}
	for _, s := range spans {
		if err := s.Validate(); err != nil {
			t.Errorf("retained span invalid: %v", err)
		}
	}
}

func TestBroadcastWriteAfterClose(t *testing.T) {
	b := NewBroadcast()
	b.Close()
	b.Close() // idempotent
	if _, err := b.Write([]byte("late")); err == nil {
		t.Error("write after close should fail")
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d after failed write", b.Len())
	}
}

func TestBroadcastConcurrentReaders(t *testing.T) {
	b := NewBroadcast()
	const lines = 100
	const readers = 8
	var want bytes.Buffer
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&want, "line %d\n", i)
	}
	var wg sync.WaitGroup
	got := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := io.ReadAll(b.Reader())
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
			got[i] = data
		}(i)
	}
	for i := 0; i < lines; i++ {
		if _, err := fmt.Fprintf(b, "line %d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	wg.Wait()
	for i, data := range got {
		if !bytes.Equal(data, want.Bytes()) {
			t.Errorf("reader %d saw %d bytes, want %d", i, len(data), want.Len())
		}
	}
}

func TestBroadcastCarriesValidNDJSON(t *testing.T) {
	// The broadcast's primary payload: a tracer streaming spans through it
	// must yield a schema-valid NDJSON trace on the reader side.
	b := NewBroadcast()
	tr := NewTracer(b)
	root := tr.Start(0, KindSuite, "Demo")
	tr.Start(root.ID(), KindCase, "TC0").End()
	root.End()
	b.Close()
	n, err := ValidateNDJSON(b.Reader())
	if err != nil {
		t.Fatalf("ValidateNDJSON: %v", err)
	}
	if n != 2 {
		t.Errorf("spans = %d, want 2", n)
	}
}

// TestBroadcastCapManyWritesKeepsOffsets drives the capped buffer through
// thousands of trims and periodic compactions — the regime a large traced
// campaign produces — and checks the absolute-offset bookkeeping end to
// end: total length, dropped count, the retained suffix matching the true
// stream tail, and Next serving correct bytes from a mid-stream offset.
func TestBroadcastCapManyWritesKeepsOffsets(t *testing.T) {
	const cap = 512
	b := NewBroadcastCapped(cap)
	var whole bytes.Buffer
	for i := 0; i < 20000; i++ {
		line := fmt.Sprintf("{\"i\":%d}\n", i)
		whole.WriteString(line)
		if _, err := b.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	total := whole.Len()
	if b.Len() != total {
		t.Fatalf("Len = %d, want %d", b.Len(), total)
	}
	retained := b.Bytes()
	if len(retained) > cap {
		t.Errorf("retained %d bytes, cap is %d", len(retained), cap)
	}
	if b.Dropped() != total-len(retained) {
		t.Errorf("Dropped = %d, want %d", b.Dropped(), total-len(retained))
	}
	if !bytes.Equal(retained, whole.Bytes()[total-len(retained):]) {
		t.Errorf("retained suffix is not the stream tail:\n%q", retained)
	}
	if retained[0] != '{' {
		t.Errorf("retained suffix is mid-line: %q", retained[:20])
	}
	// A reader resuming from inside the retained window gets exactly the
	// remaining tail, at the right absolute offset.
	off := total - len(retained)/2
	chunk, next, ok := b.Next(off, nil)
	if !ok || next != total {
		t.Fatalf("Next(%d) = %d, %v; want %d, true", off, next, ok, total)
	}
	if !bytes.Equal(chunk, whole.Bytes()[off:]) {
		t.Errorf("Next(%d) returned wrong bytes", off)
	}
	b.Close()
}
