package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"concat/internal/serve/chaos"
)

func testKey(mutant string) Key {
	return Key{
		Kind:    KindMutantVerdict,
		Spec:    "spec-hash",
		Suite:   "suite-hash",
		Mutant:  mutant,
		Seed:    42,
		Options: "opt-hash",
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := Verdict{Killed: true, Reason: 3, KillingCase: "TC7", Reached: true, Infected: true}
	if err := s.Put(testKey("m1"), want); err != nil {
		t.Fatal(err)
	}
	var got Verdict
	ok, err := s.Get(testKey("m1"), &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit", st)
	}
}

func TestMissCounts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s.Get(testKey("absent"), &v)
	if err != nil || ok {
		t.Fatalf("Get of absent key = %v, %v; want clean miss", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 miss", st)
	}
}

func TestKeyComponentsIndependent(t *testing.T) {
	// Every key field moves the address; no cross-kind or cross-field
	// collisions.
	keys := []Key{
		testKey("m1"),
		testKey("m2"),
		{Kind: KindSuiteReport, Spec: "spec-hash", Suite: "suite-hash", Seed: 42, Options: "opt-hash"},
		func() Key { k := testKey("m1"); k.Seed = 43; return k }(),
		func() Key { k := testKey("m1"); k.Options = "other"; return k }(),
		func() Key { k := testKey("m1"); k.Spec = "other"; return k }(),
		func() Key { k := testKey("m1"); k.Suite = "other"; return k }(),
	}
	seen := map[string]int{}
	for i, k := range keys {
		id, err := k.ID()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[id]; dup {
			t.Errorf("keys %d and %d collide", prev, i)
		}
		seen[id] = i
	}
}

func TestPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(testKey("m1"), Verdict{Killed: true, Reason: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s2.Get(testKey("m1"), &v)
	if err != nil || !ok {
		t.Fatalf("reopened store: Get = %v, %v", ok, err)
	}
	if !v.Killed || v.Reason != 1 {
		t.Errorf("reopened verdict = %+v", v)
	}
	if n, skipped, err := s2.Len(); err != nil || n != 1 || skipped != 0 {
		t.Errorf("Len = %d (skipped %d), %v; want 1, 0", n, skipped, err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// The same (key, value) written into two stores produces byte-identical
	// files — the property that makes cache directories diffable.
	write := func() []byte {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := testKey("m1")
		if err := s.Put(k, Verdict{Killed: true, Reason: 2, KillingCase: "TC1", Reached: true}); err != nil {
			t.Fatal(err)
		}
		id, err := k.ID()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, id[:2], id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := write(), write(); !bytes.Equal(a, b) {
		t.Errorf("same entry, different bytes:\n%s\n%s", a, b)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("m1")
	if err := s.Put(k, Verdict{Killed: true}); err != nil {
		t.Fatal(err)
	}
	id, err := k.ID()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id[:2], id+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store re-reads disk; the corrupt entry is quarantined (renamed
	// aside) and reports as a clean miss, and a subsequent Put repairs it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s2.Get(k, &v)
	if ok || err != nil {
		t.Fatalf("corrupt entry: Get = %v, %v; want clean miss", ok, err)
	}
	if st := s2.Stats(); st.Quarantined != 1 || st.Misses != 1 {
		t.Errorf("corrupt entry stats = %+v; want 1 quarantined, 1 miss", st)
	}
	if _, err := os.Stat(filepath.Join(dir, id[:2], id+".json.corrupt")); err != nil {
		t.Errorf("corrupt entry was not renamed aside: %v", err)
	}
	if err := s2.Put(k, Verdict{Killed: true}); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s3.Get(k, &v); !ok || err != nil {
		t.Fatalf("repaired entry: Get = %v, %v", ok, err)
	}
}

func TestNilStoreDisabled(t *testing.T) {
	var s *Store
	var v Verdict
	ok, err := s.Get(testKey("m"), &v)
	if ok || err != nil {
		t.Errorf("nil store Get = %v, %v", ok, err)
	}
	if err := s.Put(testKey("m"), Verdict{}); err != nil {
		t.Errorf("nil store Put: %v", err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil store stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping key space: every key written by several workers.
				k := testKey(fmt.Sprintf("m%d", i))
				if err := s.Put(k, Verdict{Killed: i%2 == 0, Reason: i % 4}); err != nil {
					errs <- err
					return
				}
				var v Verdict
				if _, err := s.Get(k, &v); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, skipped, err := s.Len(); err != nil || n != perWorker || skipped != 0 {
		t.Errorf("Len = %d (skipped %d), %v; want %d, 0", n, skipped, err, perWorker)
	}
}

// entryPath locates the on-disk file of a key.
func entryPath(t *testing.T, dir string, k Key) string {
	t.Helper()
	id, err := k.ID()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, id[:2], id+".json")
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	// A torn write (power loss mid-write without the rename barrier) leaves
	// a truncated document: the read path must quarantine it and miss, never
	// panic or decode a partial verdict.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("m1")
	if err := s.Put(k, Verdict{Killed: true, Reason: 2}); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, dir, k)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 1, info.Size() / 2, info.Size() - 2} {
		if err := chaos.Truncate(path, n); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var v Verdict
		ok, err := s2.Get(k, &v)
		if ok || err != nil {
			t.Fatalf("truncate to %d: Get = %v, %v; want clean miss", n, ok, err)
		}
		if st := s2.Stats(); st.Quarantined != 1 {
			t.Errorf("truncate to %d: quarantined = %d, want 1", n, st.Quarantined)
		}
		os.Remove(path + ".corrupt")
		// Repair for the next truncation point.
		if err := s2.Put(k, Verdict{Killed: true, Reason: 2}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBitFlippedEntryQuarantined(t *testing.T) {
	// Flip every byte position in turn: wherever the flip lands — key,
	// checksum, value, structure — the entry must either still read back
	// exactly or be quarantined. No position may yield a wrong verdict.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("m1")
	want := Verdict{Killed: true, Reason: 3, KillingCase: "TC7", Reached: true, Infected: true}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, dir, k)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off++ {
		if err := chaos.FlipByte(path, off); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var v Verdict
		ok, err := s2.Get(k, &v)
		if err != nil {
			t.Fatalf("flip at %d: Get error %v", off, err)
		}
		if ok && v != want {
			t.Fatalf("flip at %d: served wrong verdict %+v", off, v)
		}
		if !ok {
			if st := s2.Stats(); st.Quarantined != 1 {
				t.Errorf("flip at %d: miss without quarantine: %+v", off, st)
			}
			os.Remove(path + ".corrupt")
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLenSkipsForeignAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(fmt.Sprintf("m%d", i)), Verdict{Killed: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign debris a shared cache directory accumulates: a quarantined
	// entry, a stray temp file, a README, a foreign-named JSON file.
	path := entryPath(t, dir, testKey("m0"))
	if err := os.Rename(path, path+".corrupt"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{".sometmp-123", "README.txt", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, skipped, err := s.Len()
	if err != nil {
		t.Fatalf("Len failed on foreign files: %v", err)
	}
	if n != 2 {
		t.Errorf("Len entries = %d, want 2", n)
	}
	if skipped != 4 {
		t.Errorf("Len skipped = %d, want 4", skipped)
	}
}

// TestConcurrentQuarantineCountedOnce pins the racing-readers bugfix: many
// readers hitting the same corrupt entry all miss, but exactly one wins
// the rename to the shared .corrupt name and only that winner counts the
// quarantine. Run under -race in CI.
func TestConcurrentQuarantineCountedOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("m1")
	if err := s.Put(k, Verdict{Killed: true}); err != nil {
		t.Fatal(err)
	}
	id, err := k.ID()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id[:2], id+".json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store re-reads disk; all readers race on the corrupt entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var v Verdict
			if ok, err := s2.Get(k, &v); ok || err != nil {
				t.Errorf("racing reader: Get = %v, %v; want clean miss", ok, err)
			}
		}()
	}
	close(start)
	wg.Wait()

	st := s2.Stats()
	if st.Quarantined != 1 {
		t.Errorf("one corrupt entry quarantined %d times by %d racing readers, want exactly 1", st.Quarantined, readers)
	}
	if st.Misses != readers {
		t.Errorf("misses = %d, want one per reader (%d)", st.Misses, readers)
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0", st.Hits)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt entry was not renamed aside: %v", err)
	}
}
