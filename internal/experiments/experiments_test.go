package experiments

import (
	"strings"
	"testing"

	"concat/internal/analysis"
)

func newSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(Default())
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return s
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Seed != 42 || cfg.ParentOpts.Seed != 42 {
		t.Errorf("config seeds = %+v", cfg)
	}
	if !cfg.ParentOpts.ExpandAlternatives || cfg.ParentOpts.MaxAlternatives != 4 {
		t.Errorf("parent opts = %+v", cfg.ParentOpts)
	}
	if cfg.ChildOpts.Enum.LoopBound != 3 {
		t.Errorf("child loop bound = %d", cfg.ChildOpts.Enum.LoopBound)
	}
}

func TestSetupCounts(t *testing.T) {
	s := newSetup(t)
	c, err := s.Counts()
	if err != nil {
		t.Fatalf("Counts: %v", err)
	}
	// The frozen numbers of EXPERIMENTS.md; a change here invalidates the
	// published tables and must be deliberate.
	if c.ParentModel.Nodes != 10 || c.ParentModel.Edges != 24 {
		t.Errorf("parent model = %+v", c.ParentModel)
	}
	if c.ChildModel.Nodes != 12 || c.ChildModel.Edges != 31 {
		t.Errorf("child model = %+v", c.ChildModel)
	}
	if c.ParentCases != 628 {
		t.Errorf("parent cases = %d, want 628", c.ParentCases)
	}
	if c.NewCases != 200 || c.ReusedCases != 56 || c.Skipped != 94 {
		t.Errorf("derived = %d/%d/%d, want 200/56/94", c.NewCases, c.ReusedCases, c.Skipped)
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "paper: 233") {
		t.Errorf("render missing paper reference: %q", sb.String())
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, want := range []string{"IndVarBitNeg", "IndVarRepGlob", "IndVarRepLoc",
		"IndVarRepExt", "IndVarRepReq", "required constants"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	var sb strings.Builder
	if err := Figure2(&sb); err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "color=red", "transactions at loop bound 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	var sb strings.Builder
	if err := Figure3(&sb); err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if !strings.Contains(sb.String(), "Class('Product'") {
		t.Errorf("Figure3 output: %q", sb.String()[:80])
	}
}

func TestFigure6(t *testing.T) {
	var sb strings.Builder
	if err := Figure6(&sb, 42); err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	for _, want := range []string{"package main", "testexec.Run", "product.NewFactory()"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Figure6 missing %q", want)
		}
	}
}

func TestExperimentsReproduceTheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	s := newSetup(t)

	r1, err := s.Experiment1(nil)
	if err != nil {
		t.Fatalf("Experiment1: %v", err)
	}
	t1 := r1.Tabulate()
	score1 := t1.Total.Score()

	r2, err := s.Experiment2(nil)
	if err != nil {
		t.Fatalf("Experiment2: %v", err)
	}
	t2 := r2.Tabulate()
	score2 := t2.Total.Score()

	base, err := s.Experiment2Baseline(nil)
	if err != nil {
		t.Fatalf("Experiment2Baseline: %v", err)
	}
	scoreBase := base.Tabulate().Total.Score()

	// The paper's shape, as invariants:
	// (1) experiment 1 scores high;
	if score1 < 0.85 {
		t.Errorf("experiment 1 score = %.1f%%, want >= 85%% (paper: 95.7%%)", score1*100)
	}
	// (2) the reduced suite loses substantial kill power vs both exp 1 and
	// the baseline;
	if score2 >= score1-0.10 {
		t.Errorf("experiment 2 score %.1f%% not clearly below experiment 1 %.1f%%",
			score2*100, score1*100)
	}
	if score2 >= scoreBase-0.10 {
		t.Errorf("experiment 2 score %.1f%% not clearly below baseline %.1f%%",
			score2*100, scoreBase*100)
	}
	// (3) assertion violations contribute a visible minority of exp-1 kills;
	ak := t1.KillsByReason[analysis.KillAssertion]
	if ak == 0 || ak >= t1.Total.Killed/2 {
		t.Errorf("assertion kills = %d of %d, want a visible minority", ak, t1.Total.Killed)
	}
	// (4) equivalents appear in experiment 1 and (nearly) vanish in 2;
	if t1.Total.Equivalent == 0 {
		t.Error("experiment 1 should find equivalence candidates")
	}
	if t2.Total.Equivalent > t1.Total.Equivalent {
		t.Errorf("experiment 2 equivalents (%d) exceed experiment 1 (%d)",
			t2.Total.Equivalent, t1.Total.Equivalent)
	}
	// (5) Sort1 dominates the experiment-1 mutant counts (paper: 280/700).
	sort1 := 0
	for _, n := range t1.MethodCounts["Sort1"] {
		sort1 += n
	}
	for _, m := range t1.Methods {
		if m == "Sort1" {
			continue
		}
		other := 0
		for _, n := range t1.MethodCounts[m] {
			other += n
		}
		if other > sort1 {
			t.Errorf("method %s has more mutants (%d) than Sort1 (%d)", m, other, sort1)
		}
	}
	// (6) experiment 2 kills nothing by crash (paper's mutants there fail
	// silently or corrupt state; ours likewise).
	if base.Tabulate().KillsByReason[analysis.KillCrash] != 0 {
		t.Log("baseline crash kills present (informational)")
	}
}

func TestOracleAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	s := newSetup(t)
	oa, err := s.RunOracleAblation()
	if err != nil {
		t.Fatalf("RunOracleAblation: %v", err)
	}
	if oa.AssertionsOnlyScore >= oa.FullScore {
		t.Errorf("assertions-only (%.1f%%) should be weaker than the full oracle (%.1f%%)",
			oa.AssertionsOnlyScore*100, oa.FullScore*100)
	}
	if oa.AssertionsOnlyScore > 0.7 {
		t.Errorf("assertions-only = %.1f%%: the paper says assertions alone are not an effective oracle",
			oa.AssertionsOnlyScore*100)
	}
	var sb strings.Builder
	oa.Render(&sb)
	if !strings.Contains(sb.String(), "assertions/crashes only") {
		t.Errorf("render = %q", sb.String())
	}
}

func TestCriterionAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	rows, err := RunCriterionAblation(42)
	if err != nil {
		t.Fatalf("RunCriterionAblation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cases: transactions >= links >= nodes. Scores: same ordering.
	if !(rows[0].Cases >= rows[1].Cases && rows[1].Cases >= rows[2].Cases) {
		t.Errorf("case ordering violated: %+v", rows)
	}
	if !(rows[0].Score >= rows[1].Score && rows[1].Score >= rows[2].Score) {
		t.Errorf("score ordering violated: %+v", rows)
	}
}

func TestLoopBoundAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	s := newSetup(t)
	rows, err := s.RunLoopBoundAblation([]int{1, 2})
	if err != nil {
		t.Fatalf("RunLoopBoundAblation: %v", err)
	}
	if len(rows) != 2 || rows[0].LoopBound != 1 || rows[1].LoopBound != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[1].Cases <= rows[0].Cases {
		t.Errorf("loop bound 2 should enlarge the suite: %d vs %d", rows[1].Cases, rows[0].Cases)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation experiments are slow")
	}
	a := newSetup(t)
	b := newSetup(t)
	ra, err := a.Experiment2(nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Experiment2(nil)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := ra.Tabulate(), rb.Tabulate()
	if ta.Total != tb.Total {
		t.Errorf("experiment 2 not deterministic: %+v vs %+v", ta.Total, tb.Total)
	}
}
