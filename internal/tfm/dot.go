package tfm

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the model in Graphviz DOT syntax, the medium we use to
// regenerate the paper's Figure 2. Nodes are labelled with their method
// lists; start nodes are drawn as double circles and final nodes as double
// octagons. highlight, if non-empty, is a transaction whose edges are drawn
// bold red — the paper highlights the example use-case path this way.
func (g *Graph) WriteDOT(w io.Writer, highlight Transaction) error {
	hl := make(map[Edge]bool, len(highlight.Path))
	for i := 0; i+1 < len(highlight.Path); i++ {
		hl[Edge{From: highlight.Path[i], To: highlight.Path[i+1]}] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		shape := "circle"
		switch {
		case n.Start:
			shape = "doublecircle"
		case n.Final:
			shape = "doubleoctagon"
		}
		label := string(n.ID)
		if len(n.Methods) > 0 {
			label += "\\n" + strings.Join(n.Methods, ", ")
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", string(n.ID), shape, label)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		attr := ""
		if hl[e] {
			attr = " [color=red, penwidth=2.0]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", string(e.From), string(e.To), attr)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("tfm: writing DOT: %w", err)
	}
	return nil
}

// heatColor maps a hit count onto a white-to-red fill: unexercised elements
// stay light gray, and exercised ones deepen toward red proportionally to
// the hottest element in the map. Purely arithmetic, so the heatmap bytes
// are deterministic for a given coverage artifact.
func heatColor(hits, max int64) string {
	if hits <= 0 {
		return "gray92"
	}
	ratio := float64(hits) / float64(max)
	// Keep green/blue >= 0x50 so node labels stay readable at full heat.
	gb := 0xff - int(ratio*float64(0xff-0x50))
	return fmt.Sprintf("#ff%02x%02x", gb, gb)
}

// WriteDOTHeatmap renders the model like WriteDOT but paints each node and
// edge by how often a test suite exercised it — the coverage artifact's
// node/edge hit counts projected back onto the paper's Figure 2 drawing.
// Unexercised elements are light gray (the coverage holes stand out), hot
// elements shade toward red, and every edge is labelled with its hit count.
func (g *Graph) WriteDOTHeatmap(w io.Writer, nodeHits map[NodeID]int64, edgeHits map[Edge]int64) error {
	var maxNode, maxEdge int64
	for _, h := range nodeHits {
		if h > maxNode {
			maxNode = h
		}
	}
	for _, h := range edgeHits {
		if h > maxEdge {
			maxEdge = h
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		shape := "circle"
		switch {
		case n.Start:
			shape = "doublecircle"
		case n.Final:
			shape = "doubleoctagon"
		}
		label := string(n.ID)
		if len(n.Methods) > 0 {
			label += "\\n" + strings.Join(n.Methods, ", ")
		}
		label += fmt.Sprintf("\\n%d hits", nodeHits[n.ID])
		fmt.Fprintf(&b, "  %q [shape=%s, style=filled, fillcolor=%q, label=%q];\n",
			string(n.ID), shape, heatColor(nodeHits[n.ID], maxNode), label)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		hits := edgeHits[e]
		attr := fmt.Sprintf(" [label=%q, color=%q", fmt.Sprintf("%d", hits), heatColor(hits, maxEdge))
		if hits > 0 {
			attr += fmt.Sprintf(", penwidth=%.1f", 1.0+2.0*float64(hits)/float64(maxEdge))
		} else {
			attr += ", style=dashed"
		}
		attr += "]"
		fmt.Fprintf(&b, "  %q -> %q%s;\n", string(e.From), string(e.To), attr)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("tfm: writing DOT heatmap: %w", err)
	}
	return nil
}
