// Package history implements the test history and the hierarchical
// incremental test-reuse technique of §3.4.2. The paper adapts Harrold et
// al.'s incremental class testing with one modification: test cases are
// associated with transactions rather than individual class features. For a
// subclass,
//
//   - a transaction composed only of methods inherited without modification
//     (constructors and destructors excluded from the check) is NOT included
//     in the subclass test set — its parent test cases are assumed valid;
//   - a transaction containing redefined methods whose specification did not
//     change reuses the parent's test cases;
//   - a transaction containing new methods gets freshly generated cases.
//
// Experiment 2 (Table 3) measures the cost of the first rule: faults planted
// in the base class survive under the reduced subclass suite.
package history

import (
	"encoding/json"
	"fmt"
	"io"

	"concat/internal/driver"
	"concat/internal/tspec"
)

// Entry associates one test case with the transaction it exercises — the
// paper's "testing history" record, keyed by transaction.
type Entry struct {
	CaseID      string   `json:"caseId"`
	Transaction string   `json:"transaction"`
	Methods     []string `json:"methods"` // method names invoked, in order
	// Origin records how the case entered the suite: "new" (generated for
	// this class) or "reused" (inherited from the parent's history).
	Origin string `json:"origin"`
}

// History is a component's persistent testing history.
type History struct {
	Component  string  `json:"component"`
	Superclass string  `json:"superclass,omitempty"`
	Seed       int64   `json:"seed"`
	Entries    []Entry `json:"entries"`
}

// Build derives a history from a generated suite; every case is "new".
func Build(s *driver.Suite) *History {
	h := &History{Component: s.Component, Seed: s.Seed}
	for _, tc := range s.Cases {
		h.Entries = append(h.Entries, Entry{
			CaseID:      tc.ID,
			Transaction: tc.Transaction,
			Methods:     tc.Methods(),
			Origin:      "new",
		})
	}
	return h
}

// ByTransaction groups entry indices by transaction key.
func (h *History) ByTransaction() map[string][]Entry {
	out := make(map[string][]Entry)
	for _, e := range h.Entries {
		out[e.Transaction] = append(out[e.Transaction], e)
	}
	return out
}

// Save writes the history as JSON.
func (h *History) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("history: encoding: %w", err)
	}
	return nil
}

// Load reads a history saved with Save.
func Load(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: decoding: %w", err)
	}
	return &h, nil
}

// TransactionClass is the incremental-reuse decision for one transaction.
type TransactionClass int

// Decisions.
const (
	// ClassSkip: inherited-unchanged methods only — excluded from the
	// subclass suite (the paper's cost-saving, and its Table 3 warning).
	ClassSkip TransactionClass = iota + 1
	// ClassReuse: contains redefined methods but no new ones, and the
	// parent history holds cases for the same transaction — reuse them.
	ClassReuse
	// ClassRegenerate: contains new methods (or no parent cases exist) —
	// generate fresh cases.
	ClassRegenerate
)

// String names the class.
func (c TransactionClass) String() string {
	switch c {
	case ClassSkip:
		return "skip"
	case ClassReuse:
		return "reuse"
	case ClassRegenerate:
		return "regenerate"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Decision records the classification of one subclass transaction.
type Decision struct {
	Transaction string
	Class       TransactionClass
	Reason      string
}

// Plan is the full incremental-reuse plan for a subclass.
type Plan struct {
	Component  string
	Superclass string
	Decisions  []Decision
	// Classification is the per-method status diff that justified the plan.
	Classification tspec.Classification
}

// Counts returns the number of transactions per decision class.
func (p *Plan) Counts() (skip, reuse, regen int) {
	for _, d := range p.Decisions {
		switch d.Class {
		case ClassSkip:
			skip++
		case ClassReuse:
			reuse++
		case ClassRegenerate:
			regen++
		}
	}
	return skip, reuse, regen
}

// DerivedSuite is the subclass suite produced by the incremental technique,
// with provenance counts (the paper reports "233 new test cases; the class
// reused 329 test cases from its superclass").
type DerivedSuite struct {
	Suite      *driver.Suite
	History    *History
	Plan       *Plan
	NumNew     int
	NumReused  int
	NumSkipped int // test cases of the parent not carried into the suite
}

// Derive runs the incremental technique: classify subclass methods against
// the parent spec, classify every subclass transaction, and assemble the
// subclass suite from reused parent cases plus freshly generated ones.
//
// parentSuite and parentHist describe the parent's testing; opts drive the
// generation of the subclass's own cases (same knobs as driver.Generate).
func Derive(parentSpec, childSpec *tspec.Spec, parentSuite *driver.Suite, opts driver.Options) (*DerivedSuite, error) {
	if parentSuite == nil {
		return nil, fmt.Errorf("history: derive requires the parent suite")
	}
	classification, err := tspec.Classify(parentSpec, childSpec)
	if err != nil {
		return nil, fmt.Errorf("history: deriving %q: %w", childSpec.Class.Name, err)
	}

	// Generate the subclass's full suite once; it supplies the cases for
	// every transaction classified ClassRegenerate.
	fullChild, err := driver.Generate(childSpec, opts)
	if err != nil {
		return nil, fmt.Errorf("history: deriving %q: %w", childSpec.Class.Name, err)
	}

	// Group generated child cases and parent cases by transaction.
	childByTr := map[string][]driver.TestCase{}
	var childTrOrder []string
	for _, tc := range fullChild.Cases {
		if _, seen := childByTr[tc.Transaction]; !seen {
			childTrOrder = append(childTrOrder, tc.Transaction)
		}
		childByTr[tc.Transaction] = append(childByTr[tc.Transaction], tc)
	}
	parentByTr := map[string][]driver.TestCase{}
	for _, tc := range parentSuite.Cases {
		parentByTr[tc.Transaction] = append(parentByTr[tc.Transaction], tc)
	}

	plan := &Plan{
		Component:      childSpec.Class.Name,
		Superclass:     parentSpec.Class.Name,
		Classification: classification,
	}
	out := &DerivedSuite{
		Suite: &driver.Suite{
			Component: childSpec.Class.Name,
			Seed:      opts.Seed,
			Criterion: fullChild.Criterion,
		},
		Plan: plan,
	}

	nextID := 0
	var origins []string
	appendCase := func(tc driver.TestCase, origin string) {
		tc.ID = fmt.Sprintf("TC%d", nextID)
		nextID++
		out.Suite.Cases = append(out.Suite.Cases, tc)
		origins = append(origins, origin)
		if origin == "new" {
			out.NumNew++
		} else {
			out.NumReused++
		}
	}

	for _, tr := range childTrOrder {
		cases := childByTr[tr]
		cls, reason := classifyTransaction(childSpec, classification, cases)
		switch cls {
		case ClassSkip:
			out.NumSkipped += len(cases)
		case ClassReuse:
			parentCases, ok := parentByTr[tr]
			if !ok {
				// No parent cases for this transaction: fall back to the
				// freshly generated ones.
				cls = ClassRegenerate
				reason += "; no parent cases for transaction, regenerated"
				for _, tc := range cases {
					appendCase(tc, "new")
				}
				break
			}
			for _, tc := range parentCases {
				remapped, err := remapLifecycle(parentSpec, childSpec, tc)
				if err != nil {
					return nil, fmt.Errorf("history: reusing case %s: %w", tc.ID, err)
				}
				appendCase(remapped, "reused")
			}
		case ClassRegenerate:
			for _, tc := range cases {
				appendCase(tc, "new")
			}
		}
		plan.Decisions = append(plan.Decisions, Decision{Transaction: tr, Class: cls, Reason: reason})
	}

	out.History = buildDerivedHistory(out, origins)
	return out, nil
}

// classifyTransaction applies the paper's rule to one transaction, using the
// methods its generated cases actually invoke. Constructors and destructors
// are excluded from the modification check.
func classifyTransaction(spec *tspec.Spec, cls tspec.Classification, cases []driver.TestCase) (TransactionClass, string) {
	hasNew, hasRedefined := false, false
	var newName, redefName string
	for _, tc := range cases {
		for _, call := range tc.Calls {
			m, ok := spec.MethodByID(call.MethodID)
			if !ok {
				m, ok = spec.MethodByName(call.Method)
			}
			if !ok {
				continue
			}
			if m.Category == tspec.CatConstructor || m.Category == tspec.CatDestructor {
				continue
			}
			switch cls[m.Name] {
			case tspec.StatusNew:
				hasNew, newName = true, m.Name
			case tspec.StatusRedefined:
				hasRedefined, redefName = true, m.Name
			}
		}
	}
	switch {
	case hasNew:
		return ClassRegenerate, fmt.Sprintf("contains new method %s", newName)
	case hasRedefined:
		return ClassReuse, fmt.Sprintf("contains redefined method %s (spec unchanged)", redefName)
	default:
		return ClassSkip, "all methods inherited without modification"
	}
}

// remapLifecycle rewrites a reused parent test case so its constructor and
// destructor calls use the subclass's corresponding methods. The paper's
// rule — "except for the constructor and destructor methods, which for this
// reason are not part of a test case" — exists precisely because a subclass
// has its own birth and death methods; every other call is reused verbatim.
// The child method is matched by category and parameter signature.
func remapLifecycle(parentSpec, childSpec *tspec.Spec, tc driver.TestCase) (driver.TestCase, error) {
	out := tc
	out.Calls = append([]driver.Call(nil), tc.Calls...)
	for i, call := range out.Calls {
		pm, ok := parentSpec.MethodByID(call.MethodID)
		if !ok {
			pm, ok = parentSpec.MethodByName(call.Method)
		}
		if !ok {
			continue
		}
		if pm.Category != tspec.CatConstructor && pm.Category != tspec.CatDestructor {
			continue
		}
		cm, ok := findLifecycleMatch(childSpec, pm)
		if !ok {
			return driver.TestCase{}, fmt.Errorf(
				"no %s in %q matching the signature of parent %s", pm.Category, childSpec.Class.Name, pm.Name)
		}
		out.Calls[i].MethodID = cm.ID
		out.Calls[i].Method = cm.Name
	}
	return out, nil
}

// findLifecycleMatch locates the child constructor/destructor with the same
// category and parameter list shape (count and domain kinds) as the parent's.
func findLifecycleMatch(childSpec *tspec.Spec, pm tspec.Method) (tspec.Method, bool) {
	for _, cm := range childSpec.Methods {
		if cm.Category != pm.Category || len(cm.Params) != len(pm.Params) {
			continue
		}
		match := true
		for i := range cm.Params {
			if cm.Params[i].Domain.Kind != pm.Params[i].Domain.Kind {
				match = false
				break
			}
		}
		if match {
			return cm, true
		}
	}
	return tspec.Method{}, false
}

func buildDerivedHistory(d *DerivedSuite, origins []string) *History {
	h := &History{
		Component:  d.Suite.Component,
		Superclass: d.Plan.Superclass,
		Seed:       d.Suite.Seed,
	}
	for i, tc := range d.Suite.Cases {
		h.Entries = append(h.Entries, Entry{
			CaseID:      tc.ID,
			Transaction: tc.Transaction,
			Methods:     tc.Methods(),
			Origin:      origins[i],
		})
	}
	return h
}

// AdaptSuite instantiates a suite generated from an abstract (or otherwise
// shared) specification against a concrete component — the paper's §3.2
// advantage (iii): "test selection is, to a certain extent, implementation
// language independent, which allows tests to be generated for abstract
// classes, for example, to be later incorporated to a subclass test suite."
// Lifecycle calls are remapped onto the concrete class's constructors and
// destructors (matched by category and parameter shape, exactly like
// subclass reuse); every other call must name a method the concrete spec
// declares.
func AdaptSuite(abstractSpec, concreteSpec *tspec.Spec, s *driver.Suite) (*driver.Suite, error) {
	if s.Component != abstractSpec.Class.Name {
		return nil, fmt.Errorf("history: suite is for %q, abstract spec is %q",
			s.Component, abstractSpec.Class.Name)
	}
	out := &driver.Suite{
		Component: concreteSpec.Class.Name,
		Seed:      s.Seed,
		Criterion: s.Criterion,
	}
	for _, tc := range s.Cases {
		adapted, err := remapLifecycle(abstractSpec, concreteSpec, tc)
		if err != nil {
			return nil, fmt.Errorf("history: adapting case %s: %w", tc.ID, err)
		}
		for _, call := range adapted.Calls {
			m, ok := concreteSpec.MethodByName(call.Method)
			if !ok {
				return nil, fmt.Errorf("history: adapting case %s: %q does not implement %q",
					tc.ID, concreteSpec.Class.Name, call.Method)
			}
			_ = m
		}
		out.Cases = append(out.Cases, adapted)
	}
	return out, nil
}
