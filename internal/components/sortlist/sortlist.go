// Package sortlist re-implements the second experimental subject of the
// paper's §4: CSortableObList, an ordered linked list derived from CObList
// "obtained through the Internet". It embeds oblist.ObList (embedding plays
// the C++ inheritance role) and adds the five methods the paper mutates in
// experiment 1 (Table 2): Sort1, Sort2, ShellSort, FindMax and FindMin.
//
// The subclass also redefines three positional mutators (SetAt,
// InsertBefore, InsertAfter) without changing their specification — they
// additionally maintain a modification counter that invalidates the cached
// sort state. This is what makes the hierarchical incremental technique of
// §3.4.2 produce all three transaction classes: transactions with the new
// sort/find methods are regenerated, transactions touching the redefined
// mutators reuse parent cases, and inherited-only transactions are skipped —
// the skip class being exactly what experiment 2 (Table 3) measures the
// price of.
package sortlist

import (
	"errors"
	"fmt"

	"concat/internal/components/oblist"
	"concat/internal/domain"
	"concat/internal/mutation"
)

// ErrEmpty is returned by FindMax/FindMin on an empty list.
var ErrEmpty = errors.New("sortlist: list is empty")

// errIterationBound models a mutant driving a loop beyond any legitimate
// bound: the paper's testbed would hang and be killed by timeout; here the
// component panics, which the executor records as a crash kill.
func iterationBoundExceeded(method string) {
	panic(fmt.Sprintf("sortlist: %s exceeded its iteration bound (runaway mutant)", method))
}

// SortableObList is the derived list. The embedded ObList supplies the
// inherited methods and the BIT machinery.
type SortableObList struct {
	oblist.ObList
	// mods counts state modifications made through the redefined mutators;
	// it invalidates the sorted hint. It is the subclass's own attribute.
	mods int64
	// sortedHint caches whether the last operation left the list sorted.
	sortedHint bool
}

// NewSortableObList creates an empty sortable list; eng may be nil.
func NewSortableObList(blockSize int64, eng *mutation.Engine) *SortableObList {
	s := &SortableObList{}
	s.ObList.Init(blockSize, eng)
	return s
}

// List exposes the embedded base list.
func (s *SortableObList) List() *oblist.ObList { return &s.ObList }

// Mods returns the modification counter maintained by the redefined methods.
func (s *SortableObList) Mods() int64 { return s.mods }

// SortedHint reports the cached sort state.
func (s *SortableObList) SortedHint() bool { return s.sortedHint }

// use routes an instrumented use through the engine with the subclass's
// candidate environment (globals: count and mods).
func (s *SortableObList) use(site mutation.SiteID, v domain.Value, locals map[string]domain.Value) domain.Value {
	eng := s.Engine()
	if eng == nil || !eng.Armed() {
		return v
	}
	return eng.Use(site, v, mutation.Env{
		Locals: locals,
		Globals: map[string]domain.Value{
			"count": domain.Int(s.GetCount()),
			"mods":  domain.Int(s.mods),
		},
		Externals: map[string]domain.Value{
			"auditSeq": domain.Int(7),
		},
	})
}

func (s *SortableObList) useInt(site mutation.SiteID, v int64, locals map[string]domain.Value) int64 {
	out := s.use(site, domain.Int(v), locals)
	n, err := out.AsInt()
	if err != nil {
		return v
	}
	return n
}

// --- redefined mutators (specification unchanged; see package comment) ---

// SetAt redefines the base method: same contract, plus sort-state upkeep.
func (s *SortableObList) SetAt(i int64, v domain.Value) error {
	if err := s.ObList.SetAt(i, v); err != nil {
		return err
	}
	s.mods++
	s.sortedHint = false
	return nil
}

// InsertBefore redefines the base method with sort-state upkeep.
func (s *SortableObList) InsertBefore(i int64, v domain.Value) error {
	if err := s.ObList.InsertBefore(i, v); err != nil {
		return err
	}
	s.mods++
	s.sortedHint = false
	return nil
}

// InsertAfter redefines the base method with sort-state upkeep.
func (s *SortableObList) InsertAfter(i int64, v domain.Value) error {
	if err := s.ObList.InsertAfter(i, v); err != nil {
		return err
	}
	s.mods++
	s.sortedHint = false
	return nil
}

// --- the five new methods of experiment 1 (Table 2) ---

// Sort1 sorts the list with insertion sort. It is the richest instrumented
// method, mirroring its dominant mutant count in Table 2.
func (s *SortableObList) Sort1() error {
	vals := s.Values()
	n := s.useInt("Sort1/n", int64(len(vals)), nil)
	n = clampLen(n, len(vals))
	budget := int64(len(vals))*int64(len(vals)) + 16
	for i := int64(1); i < n; i++ {
		i = s.useInt("Sort1/i", i, map[string]domain.Value{"n": domain.Int(n)})
		if i < 1 || i >= int64(len(vals)) {
			break
		}
		key := s.use("Sort1/key", vals[i], map[string]domain.Value{
			"n": domain.Int(n), "i": domain.Int(i),
		})
		j := i - 1
		for j >= 0 {
			if budget--; budget < 0 {
				iterationBoundExceeded("Sort1")
			}
			j = s.useInt("Sort1/j", j, map[string]domain.Value{
				"n": domain.Int(n), "i": domain.Int(i), "key": key,
			})
			if j < 0 || j >= int64(len(vals)) {
				break
			}
			c, err := vals[j].Compare(key)
			if err != nil {
				return fmt.Errorf("sortlist: Sort1 comparing %v with %v: %w", vals[j], key, err)
			}
			if c <= 0 {
				break
			}
			vals[j+1] = vals[j]
			j--
		}
		slot := s.useInt("Sort1/slot", j+1, map[string]domain.Value{
			"n": domain.Int(n), "i": domain.Int(i), "j": domain.Int(j),
		})
		if slot < 0 || slot >= int64(len(vals)) {
			iterationBoundExceeded("Sort1")
		}
		vals[slot] = key
	}
	s.SetValues(vals)
	s.sortedHint = true
	return s.postSorted("Sort1", vals)
}

// Sort2 sorts the list with selection sort.
func (s *SortableObList) Sort2() error {
	vals := s.Values()
	n := int64(len(vals))
	budget := n*n + 16
	for i := int64(0); i+1 < n; i++ {
		minIdx := s.useInt("Sort2/minIdx", i, map[string]domain.Value{"i": domain.Int(i)})
		if minIdx < 0 || minIdx >= n {
			iterationBoundExceeded("Sort2")
		}
		for j := i + 1; j < n; j++ {
			if budget--; budget < 0 {
				iterationBoundExceeded("Sort2")
			}
			c, err := vals[j].Compare(vals[minIdx])
			if err != nil {
				return fmt.Errorf("sortlist: Sort2 comparing: %w", err)
			}
			if c < 0 {
				minIdx = j
			}
		}
		swapTo := s.useInt("Sort2/swapTo", i, map[string]domain.Value{
			"i": domain.Int(i), "minIdx": domain.Int(minIdx),
		})
		if swapTo < 0 || swapTo >= n {
			iterationBoundExceeded("Sort2")
		}
		vals[swapTo], vals[minIdx] = vals[minIdx], vals[swapTo]
	}
	s.SetValues(vals)
	s.sortedHint = true
	return s.postSorted("Sort2", vals)
}

// ShellSort sorts the list with Shell's method (gap sequence n/2, n/4, ...).
func (s *SortableObList) ShellSort() error {
	vals := s.Values()
	n := int64(len(vals))
	budget := n*n*4 + 64
	gap := s.useInt("ShellSort/gap0", n/2, nil)
	if gap < 0 || gap > n {
		gap = n / 2
	}
	for ; gap > 0; gap /= 2 {
		if budget--; budget < 0 {
			iterationBoundExceeded("ShellSort")
		}
		gap = s.useInt("ShellSort/gap", gap, map[string]domain.Value{"n": domain.Int(n)})
		if gap <= 0 || gap > n {
			break
		}
		for i := gap; i < n; i++ {
			if budget--; budget < 0 {
				iterationBoundExceeded("ShellSort")
			}
			temp := s.use("ShellSort/temp", vals[i], map[string]domain.Value{
				"gap": domain.Int(gap), "i": domain.Int(i),
			})
			j := i
			for j >= gap {
				if budget--; budget < 0 {
					iterationBoundExceeded("ShellSort")
				}
				c, err := vals[j-gap].Compare(temp)
				if err != nil {
					return fmt.Errorf("sortlist: ShellSort comparing: %w", err)
				}
				if c <= 0 {
					break
				}
				vals[j] = vals[j-gap]
				j -= gap
			}
			vals[j] = temp
		}
	}
	s.SetValues(vals)
	s.sortedHint = true
	return s.postSorted("ShellSort", vals)
}

// FindMax returns the largest element.
func (s *SortableObList) FindMax() (domain.Value, error) {
	vals := s.Values()
	if len(vals) == 0 {
		return domain.Value{}, ErrEmpty
	}
	best := s.use("FindMax/best", vals[0], nil)
	budget := int64(len(vals))*2 + 16
	for i := int64(1); i < int64(len(vals)); i++ {
		if budget--; budget < 0 {
			iterationBoundExceeded("FindMax")
		}
		i = s.useInt("FindMax/i", i, map[string]domain.Value{"best": best})
		if i < 1 || i >= int64(len(vals)) {
			break
		}
		c, err := vals[i].Compare(best)
		if err != nil {
			return domain.Value{}, fmt.Errorf("sortlist: FindMax comparing: %w", err)
		}
		if c > 0 {
			best = vals[i]
		}
	}
	out := s.use("FindMax/out", best, nil)
	return out, nil
}

// FindMin returns the smallest element.
func (s *SortableObList) FindMin() (domain.Value, error) {
	vals := s.Values()
	if len(vals) == 0 {
		return domain.Value{}, ErrEmpty
	}
	best := s.use("FindMin/best", vals[0], nil)
	budget := int64(len(vals))*2 + 16
	for i := int64(1); i < int64(len(vals)); i++ {
		if budget--; budget < 0 {
			iterationBoundExceeded("FindMin")
		}
		i = s.useInt("FindMin/i", i, map[string]domain.Value{"best": best})
		if i < 1 || i >= int64(len(vals)) {
			break
		}
		c, err := vals[i].Compare(best)
		if err != nil {
			return domain.Value{}, fmt.Errorf("sortlist: FindMin comparing: %w", err)
		}
		if c < 0 {
			best = vals[i]
		}
	}
	out := s.use("FindMin/out", best, nil)
	return out, nil
}

// postSorted is the sort postcondition: the stored list is ordered and the
// element count is unchanged. A violated postcondition is an assertion kill
// in the mutation analysis (the paper observed 59 of 652 kills from
// assertion violations).
func (s *SortableObList) postSorted(method string, input []domain.Value) error {
	stored := s.Values()
	if err := s.AssertPost(len(stored) == len(input), method, "count unchanged"); err != nil {
		return err
	}
	for i := 0; i+1 < len(stored); i++ {
		c, err := stored[i].Compare(stored[i+1])
		if err != nil {
			return fmt.Errorf("sortlist: %s postcondition comparing: %w", method, err)
		}
		if err := s.AssertPost(c <= 0, method, "list is ordered"); err != nil {
			return err
		}
	}
	return nil
}

func clampLen(v int64, n int) int64 {
	if v < 0 {
		return 0
	}
	if v > int64(n) {
		return int64(n)
	}
	return v
}

// Sites returns the mutation site table for the five subclass methods — the
// paper's Table 2 targets.
func Sites() []mutation.Site {
	ext := []string{"auditSeq"}
	glob := []string{"count", "mods"}
	return []mutation.Site{
		// Sort1: 5 sites.
		{ID: "Sort1/n", Method: "Sort1", Var: "n", Kind: domain.KindInt,
			Locals: []string{"i", "j", "key"}, Globals: glob, Externals: ext},
		{ID: "Sort1/i", Method: "Sort1", Var: "i", Kind: domain.KindInt,
			Locals: []string{"n", "j", "key"}, Globals: glob, Externals: ext},
		{ID: "Sort1/key", Method: "Sort1", Var: "key", Kind: domain.KindInt,
			Locals: []string{"n", "i", "j"}, Globals: glob, Externals: ext},
		{ID: "Sort1/j", Method: "Sort1", Var: "j", Kind: domain.KindInt,
			Locals: []string{"n", "i", "key"}, Globals: glob, Externals: ext},
		{ID: "Sort1/slot", Method: "Sort1", Var: "slot", Kind: domain.KindInt,
			Locals: []string{"n", "i", "j", "key"}, Globals: glob, Externals: ext},
		// Sort2: 2 sites.
		{ID: "Sort2/minIdx", Method: "Sort2", Var: "minIdx", Kind: domain.KindInt,
			Locals: []string{"i", "j", "swapTo"}, Globals: glob, Externals: ext},
		{ID: "Sort2/swapTo", Method: "Sort2", Var: "swapTo", Kind: domain.KindInt,
			Locals: []string{"i", "j", "minIdx"}, Globals: glob, Externals: ext},
		// ShellSort: 3 sites.
		{ID: "ShellSort/gap0", Method: "ShellSort", Var: "gap", Kind: domain.KindInt,
			Locals: []string{"i", "j", "temp"}, Globals: glob, Externals: ext},
		{ID: "ShellSort/gap", Method: "ShellSort", Var: "gap", Kind: domain.KindInt,
			Locals: []string{"n", "i", "j", "temp"}, Globals: glob, Externals: ext},
		{ID: "ShellSort/temp", Method: "ShellSort", Var: "temp", Kind: domain.KindInt,
			Locals: []string{"n", "gap", "i", "j"}, Globals: glob, Externals: ext},
		// FindMax: 3 sites.
		{ID: "FindMax/best", Method: "FindMax", Var: "best", Kind: domain.KindInt,
			Locals: []string{"i"}, Globals: glob, Externals: ext},
		{ID: "FindMax/i", Method: "FindMax", Var: "i", Kind: domain.KindInt,
			Locals: []string{"best"}, Globals: glob, Externals: ext},
		{ID: "FindMax/out", Method: "FindMax", Var: "out", Kind: domain.KindInt,
			Locals: []string{"best", "i"}, Globals: glob, Externals: ext},
		// FindMin: 3 sites.
		{ID: "FindMin/best", Method: "FindMin", Var: "best", Kind: domain.KindInt,
			Locals: []string{"i"}, Globals: glob, Externals: ext},
		{ID: "FindMin/i", Method: "FindMin", Var: "i", Kind: domain.KindInt,
			Locals: []string{"best"}, Globals: glob, Externals: ext},
		{ID: "FindMin/out", Method: "FindMin", Var: "out", Kind: domain.KindInt,
			Locals: []string{"best", "i"}, Globals: glob, Externals: ext},
	}
}
