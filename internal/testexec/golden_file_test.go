package testexec

import (
	"path/filepath"
	"testing"
)

func TestGoldenSaveFileRoundTrip(t *testing.T) {
	g := &Golden{
		Component: "Widget",
		Transcripts: map[string]string{
			"TC0": "NEW Widget()\nCALL Spin() -> [1]\n",
			"TC1": "NEW Widget()\nDESTROY ~Widget\n",
		},
		Outcomes: map[string]string{"TC0": "pass", "TC1": "pass"},
	}
	// Nested path exercises the directory-creating behaviour.
	path := filepath.Join(t.TempDir(), "golden", "Widget.json")
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadGoldenFile(path)
	if err != nil {
		t.Fatalf("LoadGoldenFile: %v", err)
	}
	if back.Component != g.Component {
		t.Errorf("component = %q, want %q", back.Component, g.Component)
	}
	for id, want := range g.Transcripts {
		if back.Transcripts[id] != want {
			t.Errorf("transcript %s = %q, want %q", id, back.Transcripts[id], want)
		}
	}
	if err := back.Check("TC0", g.Transcripts["TC0"]); err != nil {
		t.Errorf("reloaded oracle rejects the reference transcript: %v", err)
	}
	if err := back.Check("TC0", "NEW Widget()\nCALL Spin() -> [2]\n"); err == nil {
		t.Error("reloaded oracle accepted a diverging transcript")
	}
}

func TestLoadGoldenFileMissing(t *testing.T) {
	if _, err := LoadGoldenFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
}
