package tspec

import "testing"

// The memoized CanonicalHash must return the same value as a fresh
// computation, and Clone must reset the memo so a mutated clone hashes
// differently.
func TestCanonicalHashMemoized(t *testing.T) {
	s := baseBuilder().MustBuild()
	h1, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	h2, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash (memoized): %v", err)
	}
	if h1 != h2 {
		t.Fatalf("memoized hash diverged: %q vs %q", h1, h2)
	}
	fresh, err := s.Clone().CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash on clone: %v", err)
	}
	if fresh != h1 {
		t.Fatalf("clone hash = %q, want %q", fresh, h1)
	}
}

func TestCanonicalHashCloneResetsMemo(t *testing.T) {
	s := baseBuilder().MustBuild()
	base, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	mutated := s.Clone()
	mutated.Methods[2].Params[0].Domain.Hi = 99
	got, err := mutated.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash on mutated clone: %v", err)
	}
	if got == base {
		t.Fatalf("mutated clone kept the stale memoized hash %q", base)
	}
	// The original's memo is untouched.
	again, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash (original): %v", err)
	}
	if again != base {
		t.Fatalf("original hash moved: %q vs %q", again, base)
	}
}

func TestCanonicalHashConcurrent(t *testing.T) {
	s := baseBuilder().MustBuild()
	want, err := s.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	done := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func() {
			h, _ := s.CanonicalHash()
			done <- h
		}()
	}
	for i := 0; i < 8; i++ {
		if h := <-done; h != want {
			t.Fatalf("concurrent hash = %q, want %q", h, want)
		}
	}
}

// BenchmarkCanonicalHash measures the memoized hot path: repeated hashing of
// one spec, the store-key pattern of a mutation campaign (one lookup per
// mutant against the same spec).
func BenchmarkCanonicalHash(b *testing.B) {
	s := baseBuilder().MustBuild()
	if _, err := s.CanonicalHash(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CanonicalHash(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalHashCold defeats the memo by cloning per iteration —
// the pre-memoization cost of every lookup (minus the clone itself).
func BenchmarkCanonicalHashCold(b *testing.B) {
	s := baseBuilder().MustBuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Clone().CanonicalHash(); err != nil {
			b.Fatal(err)
		}
	}
}
