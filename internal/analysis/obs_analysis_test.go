// Campaign-level observability contract: a traced mutation campaign —
// subprocess isolation and all — produces byte-identical tables and
// reports at any parallelism and with tracing on or off, while the
// normalized span forest (campaign → reference/mutant → suite → case →
// child-spawn → call) is structurally identical between serial and
// parallel runs.
package analysis_test

import (
	"bytes"
	"os"
	"reflect"
	"runtime"
	"testing"

	"concat/internal/analysis"
	"concat/internal/component"
	"concat/internal/mutation"
	"concat/internal/obs"
	"concat/internal/sandbox/hostile"
	"concat/internal/testexec"
)

// tracedCampaign mirrors fatalCampaign but threads a span collector and
// metrics through the analysis.
func tracedCampaign(t *testing.T, parallelism int) (*analysis.Result, []obs.Span, *obs.Metrics) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	tr := obs.NewCollector()
	met := obs.NewMetrics()
	eng := mutation.NewEngine()
	eng.MustRegisterSites(hostile.MutSites()...)
	a := &analysis.Analysis{
		Engine:  eng,
		Factory: hostile.NewMutFactory(eng),
		Suite:   hostile.MutSuite(3),
		Exec: testexec.Options{
			Seed:             42,
			Isolation:        testexec.IsolateSubprocess,
			IsolationCommand: []string{exe},
			Trace:            tr,
			Metrics:          met,
		},
		Parallelism: parallelism,
		NewFactory: func(e *mutation.Engine) component.Factory {
			return hostile.NewMutFactory(e)
		},
	}
	res, err := a.Run(eng.Enumerate(nil, nil))
	if err != nil {
		t.Fatalf("traced campaign did not complete: %v", err)
	}
	return res, tr.Spans(), met
}

// renderTable renders the Tables 2/3 layout to bytes for byte-identity
// comparisons.
func renderTable(t *testing.T, res *analysis.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Tabulate().Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.Bytes()
}

// TestTracedCampaignMatchesUntraced: switching the observability layer on
// changes neither the mutant verdicts nor the reference report nor the
// rendered table.
func TestTracedCampaignMatchesUntraced(t *testing.T) {
	untraced := fatalCampaign(t, 1)
	traced, spans, met := tracedCampaign(t, 1)
	if !reflect.DeepEqual(untraced.Mutants, traced.Mutants) {
		t.Errorf("tracing changed the mutant verdicts:\n%+v\nvs\n%+v", untraced.Mutants, traced.Mutants)
	}
	if !reflect.DeepEqual(untraced.Reference.Results, traced.Reference.Results) {
		t.Errorf("tracing changed the reference report")
	}
	if a, b := renderTable(t, untraced), renderTable(t, traced); !bytes.Equal(a, b) {
		t.Errorf("tables differ with tracing on:\n%s\nvs\n%s", a, b)
	}

	if err := obs.ValidateTrace(spans); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// Coverage: one campaign root, one reference span, one mutant span per
	// mutant, and a case span for every case of every suite run.
	kinds := map[string]int{}
	mutantSeen := map[string]bool{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		if sp.Kind == obs.KindMutant {
			mutantSeen[sp.Name] = true
		}
	}
	if kinds[obs.KindCampaign] != 1 || kinds[obs.KindReference] != 1 {
		t.Errorf("campaign/reference spans = %d/%d, want 1/1",
			kinds[obs.KindCampaign], kinds[obs.KindReference])
	}
	if kinds[obs.KindMutant] != len(traced.Mutants) {
		t.Errorf("mutant spans = %d, want %d", kinds[obs.KindMutant], len(traced.Mutants))
	}
	for _, mr := range traced.Mutants {
		if !mutantSeen[mr.Mutant.ID] {
			t.Errorf("mutant %s has no span", mr.Mutant.ID)
		}
	}
	suites := len(traced.Mutants) + 1 // every mutant plus the reference
	casesPerSuite := len(hostile.MutSuite(3).Cases)
	if kinds[obs.KindSuite] != suites {
		t.Errorf("suite spans = %d, want %d", kinds[obs.KindSuite], suites)
	}
	if kinds[obs.KindCase] != suites*casesPerSuite {
		t.Errorf("case spans = %d, want %d", kinds[obs.KindCase], suites*casesPerSuite)
	}
	// Under isolation every executed case spawns a child.
	if kinds[obs.KindSpawn] != kinds[obs.KindCase] {
		t.Errorf("child-spawn spans = %d, want one per case (%d)", kinds[obs.KindSpawn], kinds[obs.KindCase])
	}
	if kinds[obs.KindCall] == 0 {
		t.Error("no child call spans were shipped back")
	}

	snap := met.Snapshot()
	killed := snap.Counters["mutant.killed"]
	alive := snap.Counters["mutant.alive"] + snap.Counters["mutant.equivalent"]
	if int(killed+alive) != len(traced.Mutants) {
		t.Errorf("metrics count %d mutants, want %d", killed+alive, len(traced.Mutants))
	}
}

// TestTracedCampaignStructureIdenticalSerialAndParallel is the issue's
// acceptance test: the same seeded campaign at parallelism 1 and
// GOMAXPROCS produces identical reports AND structurally-equal span trees
// (IDs, emission order and timings normalized away).
func TestTracedCampaignStructureIdenticalSerialAndParallel(t *testing.T) {
	serialRes, serialSpans, _ := tracedCampaign(t, 1)
	parallelRes, parallelSpans, _ := tracedCampaign(t, runtime.GOMAXPROCS(0))

	if !reflect.DeepEqual(serialRes.Mutants, parallelRes.Mutants) {
		t.Errorf("mutant results differ between serial and parallel traced campaigns")
	}
	if !reflect.DeepEqual(serialRes.Reference.Results, parallelRes.Reference.Results) {
		t.Errorf("reference reports differ between serial and parallel traced campaigns")
	}
	if a, b := renderTable(t, serialRes), renderTable(t, parallelRes); !bytes.Equal(a, b) {
		t.Errorf("tables differ between serial and parallel traced campaigns:\n%s\nvs\n%s", a, b)
	}

	sf, pf := obs.Tree(serialSpans), obs.Tree(parallelSpans)
	if !obs.EqualForests(sf, pf) {
		t.Errorf("span forests differ between serial and parallel campaigns:\n%s\nvs\n%s",
			obs.RenderForest(sf), obs.RenderForest(pf))
	}
}
