package obs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestBroadcastLateSubscriberReplaysAll(t *testing.T) {
	b := NewBroadcast()
	if _, err := b.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	r := b.Reader() // subscribes after the writes
	if _, err := b.Write([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := "one\ntwo\nthree\n"; string(got) != want {
		t.Errorf("late subscriber read %q, want %q", got, want)
	}
}

func TestBroadcastBlocksUntilData(t *testing.T) {
	b := NewBroadcast()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(b.Reader())
		done <- data
	}()
	// The reader is (eventually) blocked; writes then a close release it.
	if _, err := b.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if got := <-done; string(got) != "hello" {
		t.Errorf("read %q, want %q", got, "hello")
	}
}

func TestBroadcastNextCancel(t *testing.T) {
	b := NewBroadcast()
	cancel := make(chan struct{})
	close(cancel)
	if chunk, ok := b.Next(0, cancel); ok || chunk != nil {
		t.Errorf("Next on empty stream with fired cancel = %q, %v", chunk, ok)
	}
	// Data already past the offset is returned even with cancel fired.
	if _, err := b.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if chunk, ok := b.Next(0, cancel); !ok || string(chunk) != "x" {
		t.Errorf("Next with buffered data = %q, %v", chunk, ok)
	}
}

func TestBroadcastWriteAfterClose(t *testing.T) {
	b := NewBroadcast()
	b.Close()
	b.Close() // idempotent
	if _, err := b.Write([]byte("late")); err == nil {
		t.Error("write after close should fail")
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d after failed write", b.Len())
	}
}

func TestBroadcastConcurrentReaders(t *testing.T) {
	b := NewBroadcast()
	const lines = 100
	const readers = 8
	var want bytes.Buffer
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&want, "line %d\n", i)
	}
	var wg sync.WaitGroup
	got := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := io.ReadAll(b.Reader())
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
			got[i] = data
		}(i)
	}
	for i := 0; i < lines; i++ {
		if _, err := fmt.Fprintf(b, "line %d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	wg.Wait()
	for i, data := range got {
		if !bytes.Equal(data, want.Bytes()) {
			t.Errorf("reader %d saw %d bytes, want %d", i, len(data), want.Len())
		}
	}
}

func TestBroadcastCarriesValidNDJSON(t *testing.T) {
	// The broadcast's primary payload: a tracer streaming spans through it
	// must yield a schema-valid NDJSON trace on the reader side.
	b := NewBroadcast()
	tr := NewTracer(b)
	root := tr.Start(0, KindSuite, "Demo")
	tr.Start(root.ID(), KindCase, "TC0").End()
	root.End()
	b.Close()
	n, err := ValidateNDJSON(b.Reader())
	if err != nil {
		t.Fatalf("ValidateNDJSON: %v", err)
	}
	if n != 2 {
		t.Errorf("spans = %d, want 2", n)
	}
}
