package domain

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// ErrManualCompletion marks parameters the generator cannot fill
// automatically. The paper (§3.4.1): "Structured type parameters (including
// objects, arrays, and pointers) must be completed manually by the tester."
var ErrManualCompletion = errors.New("domain: structured parameter requires manual completion")

// A Domain is the declared value space of an attribute or parameter. Sample
// draws one member using the supplied source of randomness; Contains answers
// membership for oracle-side validation; Boundary enumerates the classic
// boundary values used by the extended generation strategy.
type Domain interface {
	// Kind is the kind of values the domain produces.
	Kind() Kind
	// Sample draws a uniformly random member of the domain.
	Sample(r *rand.Rand) (Value, error)
	// Contains reports whether v is a member of the domain.
	Contains(v Value) bool
	// Boundary returns the domain's boundary values (may be empty).
	Boundary() []Value
	// Describe renders the domain in t-spec notation.
	Describe() string
}

// IntRange is the t-spec `range` domain with inclusive limits.
type IntRange struct {
	Lo, Hi int64
}

var _ Domain = IntRange{}

// NewIntRange validates and builds an inclusive integer range.
func NewIntRange(lo, hi int64) (IntRange, error) {
	if lo > hi {
		return IntRange{}, fmt.Errorf("domain: range lower limit %d exceeds upper limit %d", lo, hi)
	}
	return IntRange{Lo: lo, Hi: hi}, nil
}

// Kind implements Domain.
func (d IntRange) Kind() Kind { return KindInt }

// Sample implements Domain.
func (d IntRange) Sample(r *rand.Rand) (Value, error) {
	if d.Lo > d.Hi {
		return Value{}, fmt.Errorf("domain: invalid range [%d,%d]", d.Lo, d.Hi)
	}
	span := uint64(d.Hi - d.Lo)
	if span == math.MaxUint64 {
		return Int(int64(r.Uint64())), nil
	}
	return Int(d.Lo + int64(r.Uint64N(span+1))), nil
}

// Contains implements Domain.
func (d IntRange) Contains(v Value) bool {
	n, err := v.AsInt()
	return err == nil && n >= d.Lo && n <= d.Hi
}

// Boundary implements Domain: lo, lo+1, mid, hi-1, hi (deduplicated).
func (d IntRange) Boundary() []Value {
	mid := d.Lo + (d.Hi-d.Lo)/2
	return dedupValues([]Value{Int(d.Lo), Int(d.Lo + 1), Int(mid), Int(d.Hi - 1), Int(d.Hi)},
		func(v Value) bool { return d.Contains(v) })
}

// Describe implements Domain.
func (d IntRange) Describe() string { return fmt.Sprintf("range, %d, %d", d.Lo, d.Hi) }

// FloatRange is a real-valued interval domain, closed at both ends.
type FloatRange struct {
	Lo, Hi float64
}

var _ Domain = FloatRange{}

// NewFloatRange validates and builds a closed float interval.
func NewFloatRange(lo, hi float64) (FloatRange, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return FloatRange{}, errors.New("domain: float range limit is NaN")
	}
	if lo > hi {
		return FloatRange{}, fmt.Errorf("domain: float range lower limit %g exceeds upper limit %g", lo, hi)
	}
	return FloatRange{Lo: lo, Hi: hi}, nil
}

// Kind implements Domain.
func (d FloatRange) Kind() Kind { return KindFloat }

// Sample implements Domain.
func (d FloatRange) Sample(r *rand.Rand) (Value, error) {
	if d.Lo > d.Hi {
		return Value{}, fmt.Errorf("domain: invalid float range [%g,%g]", d.Lo, d.Hi)
	}
	return Float(d.Lo + r.Float64()*(d.Hi-d.Lo)), nil
}

// Contains implements Domain.
func (d FloatRange) Contains(v Value) bool {
	f, err := v.AsFloat()
	return err == nil && f >= d.Lo && f <= d.Hi
}

// Boundary implements Domain.
func (d FloatRange) Boundary() []Value {
	mid := d.Lo + (d.Hi-d.Lo)/2
	return dedupValues([]Value{Float(d.Lo), Float(mid), Float(d.Hi)},
		func(v Value) bool { return d.Contains(v) })
}

// Describe implements Domain.
func (d FloatRange) Describe() string { return fmt.Sprintf("range, %g, %g", d.Lo, d.Hi) }

// Set is the t-spec `set` domain: an explicit enumeration of allowed values.
type Set struct {
	Members []Value
}

var _ Domain = Set{}

// NewSet builds an enumerated domain. All members must share a kind.
func NewSet(members ...Value) (Set, error) {
	if len(members) == 0 {
		return Set{}, errors.New("domain: set domain requires at least one member")
	}
	k := members[0].Kind()
	for i, m := range members {
		if m.Kind() != k {
			return Set{}, fmt.Errorf("domain: set member %d has kind %s, want %s", i, m.Kind(), k)
		}
	}
	cp := make([]Value, len(members))
	copy(cp, members)
	return Set{Members: cp}, nil
}

// Kind implements Domain.
func (d Set) Kind() Kind {
	if len(d.Members) == 0 {
		return 0
	}
	return d.Members[0].Kind()
}

// Sample implements Domain.
func (d Set) Sample(r *rand.Rand) (Value, error) {
	if len(d.Members) == 0 {
		return Value{}, errors.New("domain: empty set domain")
	}
	return d.Members[r.IntN(len(d.Members))], nil
}

// Contains implements Domain.
func (d Set) Contains(v Value) bool {
	for _, m := range d.Members {
		if m.Equal(v) {
			return true
		}
	}
	return false
}

// Boundary implements Domain: first and last member.
func (d Set) Boundary() []Value {
	switch len(d.Members) {
	case 0:
		return nil
	case 1:
		return []Value{d.Members[0]}
	default:
		return []Value{d.Members[0], d.Members[len(d.Members)-1]}
	}
}

// Describe implements Domain.
func (d Set) Describe() string {
	parts := make([]string, len(d.Members))
	for i, m := range d.Members {
		parts[i] = m.String()
	}
	return "set, [" + strings.Join(parts, ", ") + "]"
}

// StringDomain is the t-spec `string` domain: strings over Charset with
// lengths in [MinLen, MaxLen]. If Candidates is non-empty, sampling chooses
// among them instead (the paper's Parameter(..., ['p1','p2','p3']) form).
type StringDomain struct {
	MinLen, MaxLen int
	Charset        string
	Candidates     []string
}

var _ Domain = StringDomain{}

// DefaultCharset is used when a string domain declares no charset.
const DefaultCharset = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "

// NewStringDomain builds a random-string domain.
func NewStringDomain(minLen, maxLen int, charset string) (StringDomain, error) {
	if minLen < 0 || maxLen < minLen {
		return StringDomain{}, fmt.Errorf("domain: invalid string length bounds [%d,%d]", minLen, maxLen)
	}
	if charset == "" {
		charset = DefaultCharset
	}
	return StringDomain{MinLen: minLen, MaxLen: maxLen, Charset: charset}, nil
}

// NewStringSet builds a string domain from explicit candidates.
func NewStringSet(candidates ...string) (StringDomain, error) {
	if len(candidates) == 0 {
		return StringDomain{}, errors.New("domain: string set requires at least one candidate")
	}
	cp := make([]string, len(candidates))
	copy(cp, candidates)
	return StringDomain{Candidates: cp}, nil
}

// Kind implements Domain.
func (d StringDomain) Kind() Kind { return KindString }

// Sample implements Domain.
func (d StringDomain) Sample(r *rand.Rand) (Value, error) {
	if len(d.Candidates) > 0 {
		return Str(d.Candidates[r.IntN(len(d.Candidates))]), nil
	}
	charset := d.Charset
	if charset == "" {
		charset = DefaultCharset
	}
	if d.MaxLen < d.MinLen {
		return Value{}, fmt.Errorf("domain: invalid string length bounds [%d,%d]", d.MinLen, d.MaxLen)
	}
	n := d.MinLen + r.IntN(d.MaxLen-d.MinLen+1)
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(charset[r.IntN(len(charset))])
	}
	return Str(sb.String()), nil
}

// Contains implements Domain.
func (d StringDomain) Contains(v Value) bool {
	s, err := v.AsString()
	if err != nil {
		return false
	}
	if len(d.Candidates) > 0 {
		for _, c := range d.Candidates {
			if c == s {
				return true
			}
		}
		return false
	}
	if len(s) < d.MinLen || len(s) > d.MaxLen {
		return false
	}
	charset := d.Charset
	if charset == "" {
		charset = DefaultCharset
	}
	for i := 0; i < len(s); i++ {
		if !strings.Contains(charset, string(s[i])) {
			return false
		}
	}
	return true
}

// Boundary implements Domain: empty/shortest and longest representative, or
// first/last candidate.
func (d StringDomain) Boundary() []Value {
	if len(d.Candidates) > 0 {
		if len(d.Candidates) == 1 {
			return []Value{Str(d.Candidates[0])}
		}
		return []Value{Str(d.Candidates[0]), Str(d.Candidates[len(d.Candidates)-1])}
	}
	charset := d.Charset
	if charset == "" {
		charset = DefaultCharset
	}
	shortest := strings.Repeat(string(charset[0]), d.MinLen)
	longest := strings.Repeat(string(charset[0]), d.MaxLen)
	return dedupValues([]Value{Str(shortest), Str(longest)}, func(Value) bool { return true })
}

// Describe implements Domain.
func (d StringDomain) Describe() string {
	if len(d.Candidates) > 0 {
		quoted := make([]string, len(d.Candidates))
		for i, c := range d.Candidates {
			quoted[i] = "'" + c + "'"
		}
		return "string, [" + strings.Join(quoted, ", ") + "]"
	}
	return fmt.Sprintf("string, %d, %d", d.MinLen, d.MaxLen)
}

// ObjectDomain marks an object-typed parameter. TypeName names the required
// component class; sampling requires a registered Provider.
type ObjectDomain struct {
	TypeName string
	Provider Provider
}

var _ Domain = ObjectDomain{}

// Kind implements Domain.
func (d ObjectDomain) Kind() Kind { return KindObject }

// Sample implements Domain. Without a Provider it returns
// ErrManualCompletion, reproducing the paper's manual-completion rule.
func (d ObjectDomain) Sample(r *rand.Rand) (Value, error) {
	if d.Provider == nil {
		return Value{}, fmt.Errorf("object parameter of type %q: %w", d.TypeName, ErrManualCompletion)
	}
	return d.Provider.Provide(r)
}

// Contains implements Domain: any non-nil object reference is accepted.
func (d ObjectDomain) Contains(v Value) bool {
	return v.Kind() == KindObject && !v.IsNil()
}

// Boundary implements Domain.
func (d ObjectDomain) Boundary() []Value { return nil }

// Describe implements Domain.
func (d ObjectDomain) Describe() string { return "object, '" + d.TypeName + "'" }

// PointerDomain marks a pointer-typed parameter; nil is a member iff
// Nullable. Like ObjectDomain it needs a Provider for automatic sampling.
type PointerDomain struct {
	TypeName string
	Nullable bool
	Provider Provider
}

var _ Domain = PointerDomain{}

// Kind implements Domain.
func (d PointerDomain) Kind() Kind { return KindPointer }

// Sample implements Domain.
func (d PointerDomain) Sample(r *rand.Rand) (Value, error) {
	if d.Provider == nil {
		if d.Nullable {
			return Nil(), nil
		}
		return Value{}, fmt.Errorf("pointer parameter of type %q: %w", d.TypeName, ErrManualCompletion)
	}
	if d.Nullable && r.IntN(8) == 0 { // occasionally exercise the null branch
		return Nil(), nil
	}
	return d.Provider.Provide(r)
}

// Contains implements Domain.
func (d PointerDomain) Contains(v Value) bool {
	if v.IsNil() {
		return d.Nullable
	}
	return v.Kind() == KindPointer || v.Kind() == KindObject
}

// Boundary implements Domain.
func (d PointerDomain) Boundary() []Value {
	if d.Nullable {
		return []Value{Nil()}
	}
	return nil
}

// Describe implements Domain.
func (d PointerDomain) Describe() string { return "pointer, '" + d.TypeName + "'" }

// BoolDomain is the two-member boolean domain.
type BoolDomain struct{}

var _ Domain = BoolDomain{}

// Kind implements Domain.
func (BoolDomain) Kind() Kind { return KindBool }

// Sample implements Domain.
func (BoolDomain) Sample(r *rand.Rand) (Value, error) { return Bool(r.IntN(2) == 1), nil }

// Contains implements Domain.
func (BoolDomain) Contains(v Value) bool { return v.Kind() == KindBool }

// Boundary implements Domain.
func (BoolDomain) Boundary() []Value { return []Value{Bool(false), Bool(true)} }

// Describe implements Domain.
func (BoolDomain) Describe() string { return "bool" }

// A Provider resolves structured (object/pointer) parameters, playing the
// tester who "completes the test suite" in the paper's workflow. Providers
// typically construct fresh component instances or hand out fixtures.
type Provider interface {
	Provide(r *rand.Rand) (Value, error)
}

// ProviderFunc adapts a function to the Provider interface.
type ProviderFunc func(r *rand.Rand) (Value, error)

// Provide implements Provider.
func (f ProviderFunc) Provide(r *rand.Rand) (Value, error) { return f(r) }

func dedupValues(vs []Value, keep func(Value) bool) []Value {
	out := vs[:0:0]
	for _, v := range vs {
		if !keep(v) {
			continue
		}
		dup := false
		for _, o := range out {
			if o.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
