// Service-level load acceptance: the loadgen harness drives an in-process
// campaign service for a bounded, deterministic budget (fixed seed, warm
// verdict store) and the server's /metrics request counters must reconcile
// exactly — series by series — with the client's own counts. This is the
// end-to-end proof that the RED middleware counts every request exactly
// once under concurrency, and that the exposition output survives a strict
// consumer. With -update-bench the run is re-recorded into
// BENCH_SERVICE.json (the committed file comes from `concat loadgen`
// against a real `concat serve` over TCP; see EXPERIMENTS.md).
package concat

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"concat/internal/loadgen"
	"concat/internal/serve"
	"concat/internal/store"
)

func TestServiceLoadgenCountersReconcile(t *testing.T) {
	if testing.Short() {
		t.Skip("drives dozens of campaigns through the service")
	}
	s := serve.New(serve.Config{Workers: 2, QueueDepth: 2, Store: store.NewMem()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	res, err := loadgen.Run(loadgen.Config{
		BaseURL:     ts.URL,
		Requests:    24,
		Submitters:  6,
		Subscribers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%.1f campaigns/s, %.1f requests/s, %d HTTP requests, %d series cross-checked, %d rejected 503",
		res.CampaignsPerSecond, res.RequestsPerSecond, res.HTTPRequests,
		res.CrossCheck.Series, res.Backpressure.Rejected503)

	if res.CampaignsCompleted != 24 || res.CampaignsFailed != 0 {
		t.Errorf("campaigns completed=%d failed=%d, want 24/0", res.CampaignsCompleted, res.CampaignsFailed)
	}
	// The acceptance: server-side request totals equal client-side counts
	// for every (route, method, code) series the run produced.
	if !res.CrossCheck.Agree {
		t.Errorf("server/client counter mismatch:\n%s", strings.Join(res.CrossCheck.Mismatches, "\n"))
	}
	if res.CrossCheck.Series < 3 { // at least submit 202, status 200, events 200
		t.Errorf("cross-check covered only %d series", res.CrossCheck.Series)
	}
	if res.Backpressure.MissingRetryAfter != 0 {
		t.Errorf("%d 503 responses lacked Retry-After", res.Backpressure.MissingRetryAfter)
	}
	for _, ep := range []string{"POST /campaigns", "GET /campaigns/{id}"} {
		st, ok := res.Endpoints[ep]
		if !ok || st.Requests == 0 || st.P99US <= 0 || st.P50US > st.P99US {
			t.Errorf("endpoint %s stats implausible: %+v", ep, st)
		}
	}

	if *updateBenchJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_SERVICE.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
