package testexec

import (
	"fmt"
	"strings"
	"sync"

	"concat/internal/sandbox"
)

// transcript is the capped, concurrency-safe buffer a case's observable
// output accumulates in. The cap is the executor's transcript allocation
// budget: a mutant that floods its output (a runaway print loop, a giant
// reporter dump) is cut off at a deterministic byte position instead of
// growing the harness's memory without bound. The mutex exists for the
// timeout path — runCaseBounded snapshots the buffer from the watchdog
// while the abandoned case goroutine may still be writing.
type transcript struct {
	mu        sync.Mutex
	b         strings.Builder
	max       int64 // 0 = unlimited
	n         int64
	truncated bool
}

func newTranscript(max int64) *transcript {
	return &transcript{max: max}
}

// Write stores p up to the cap. Once the cap is exceeded the write (and
// every later one) fails with the sandbox exhaustion error so cooperative
// writers stop producing.
func (t *transcript) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.truncated {
		return 0, &sandbox.ExhaustedError{Resource: "transcript", Limit: t.max}
	}
	if t.max > 0 && t.n+int64(len(p)) > t.max {
		room := t.max - t.n
		if room > 0 {
			t.b.Write(p[:room])
			t.n = t.max
		}
		t.truncated = true
		return int(room), &sandbox.ExhaustedError{Resource: "transcript", Limit: t.max}
	}
	t.b.Write(p)
	t.n += int64(len(p))
	return len(p), nil
}

// charge accounts n bytes against the cap without storing anything — used
// to meter output that is buffered elsewhere first (the reporter dump).
func (t *transcript) charge(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.truncated {
		return &sandbox.ExhaustedError{Resource: "transcript", Limit: t.max}
	}
	if t.max > 0 && t.n+int64(n) > t.max {
		t.truncated = true
		return &sandbox.ExhaustedError{Resource: "transcript", Limit: t.max}
	}
	t.n += int64(n)
	return nil
}

// writeRaw appends already-charged (or marker) text, bypassing the cap.
func (t *transcript) writeRaw(s string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.b.WriteString(s)
}

// Truncated reports whether the cap was hit.
func (t *transcript) Truncated() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.truncated
}

// String returns the accumulated output, with a deterministic truncation
// marker appended when the cap was hit.
func (t *transcript) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.truncated {
		return t.b.String() + fmt.Sprintf("\n[transcript truncated at %d bytes]\n", t.max)
	}
	return t.b.String()
}

// Snapshot returns the output written so far plus the given marker line —
// the timeout path's partial transcript, taken while the abandoned case
// goroutine may still be running.
func (t *transcript) Snapshot(marker string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.String() + marker + "\n"
}

// limitDetail is the failure detail recorded when the cap cut a case off.
func (t *transcript) limitDetail() string {
	return fmt.Sprintf("transcript budget exhausted (limit %d bytes)", t.max)
}

// meteredBuilder buffers reporter output while charging the case transcript
// cap, so a flooding Reporter is stopped cooperatively (its writes start
// failing) without interleaving a partial dump into the transcript.
type meteredBuilder struct {
	b strings.Builder
	t *transcript
}

func (m *meteredBuilder) Write(p []byte) (int, error) {
	if err := m.t.charge(len(p)); err != nil {
		return 0, err
	}
	return m.b.Write(p)
}
