// Package canon is the canonical JSON encoder underneath every
// content-addressed identity in the repository: the verdict store's hash
// keys (internal/store), mutant identities (mutation.Mutant.Hash) and the
// execution-option fingerprints of testexec. Two values that encode to the
// same JSON document — regardless of struct field order, map iteration
// order, or how the document was produced — canonicalize to byte-identical
// output, so their hashes agree across processes, platforms and runs.
//
// The canonical form is:
//
//   - object keys sorted bytewise ascending, no duplicates (last wins, as
//     encoding/json decodes);
//   - no insignificant whitespace;
//   - numbers kept as the exact literal encoding/json produced (Go's
//     shortest-round-trip float formatting is itself deterministic, and
//     integer literals pass through untouched) — canonicalizing an
//     already-canonical document never reformats a number;
//   - strings re-escaped by encoding/json's escaper (stable, HTML-safe);
//   - null, true and false as themselves.
//
// NaN and infinities are unrepresentable — encoding/json rejects them
// before canonicalization, which is the stable-float policy: a value that
// cannot round-trip deterministically cannot be part of a cache key.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Marshal encodes v with encoding/json and rewrites the result into the
// canonical form described in the package comment.
func Marshal(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("canon: encoding: %w", err)
	}
	return Canonicalize(raw)
}

// Canonicalize rewrites one JSON document into canonical form. The input
// must be a single valid JSON value.
func Canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var node any
	if err := dec.Decode(&node); err != nil {
		return nil, fmt.Errorf("canon: parsing: %w", err)
	}
	// Reject trailing garbage: a cache key must be exactly one document.
	if dec.More() {
		return nil, fmt.Errorf("canon: trailing data after JSON value")
	}
	var buf bytes.Buffer
	if err := write(&buf, node); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Hash returns the hex SHA-256 of v's canonical encoding — the
// content-address used for store keys and mutant identities.
func Hash(v any) (string, error) {
	b, err := Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// HashRaw canonicalizes an already-encoded JSON document and returns its
// hex SHA-256 — for payloads produced by a dedicated encoder (a t-spec's
// SaveJSON) rather than a Go value.
func HashRaw(raw []byte) (string, error) {
	b, err := Canonicalize(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func write(buf *bytes.Buffer, node any) error {
	switch x := node.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		enc, err := json.Marshal(x)
		if err != nil {
			return fmt.Errorf("canon: encoding string: %w", err)
		}
		buf.Write(enc)
	case []any:
		buf.WriteByte('[')
		for i, elem := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := write(buf, elem); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("canon: encoding key: %w", err)
			}
			buf.Write(enc)
			buf.WriteByte(':')
			if err := write(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("canon: unexpected node type %T", node)
	}
	return nil
}
