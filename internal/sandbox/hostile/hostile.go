// Package hostile is the fault-injection kit for the execution sandbox: a
// family of deliberately misbehaving component doubles, one per failure
// mode the harness claims to contain. Each double is a valid self-testable
// component (it carries a t-spec and the BIT interface) whose behaviour is
// chosen at factory construction — panic in any lifecycle hook, hang, burn
// the step budget, flood the transcript, call os.Exit, recurse off the
// stack. The sandbox suite runs every double and asserts the executor
// records a per-case outcome instead of dying; the doubles are also the
// regression bed for the crash-containment subprocess mode, where the
// fatal behaviours (Exit, Recurse) actually kill the case server and the
// parent classifies the corpse.
package hostile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

// Name is the hostile component's class name.
const Name = "Hostile"

// Behavior selects which failure mode a Hostile instance exhibits.
type Behavior string

// The failure modes. Benign is the control: a Hostile that behaves.
const (
	Benign           Behavior = "benign"
	PanicOnNew       Behavior = "panic-on-new"       // constructor panics
	PanicOnInvoke    Behavior = "panic-on-invoke"    // Poke panics
	PanicOnInvariant Behavior = "panic-on-invariant" // InvariantTest panics
	PanicOnReporter  Behavior = "panic-on-reporter"  // Reporter panics
	PanicOnDestroy   Behavior = "panic-on-destroy"   // destructor panics
	PanicOnFork      Behavior = "panic-on-fork"      // Factory.Fork panics (harness hook)
	InfiniteLoop     Behavior = "infinite-loop"      // Poke never returns
	BurnBudget       Behavior = "burn-budget"        // Poke spins on its own BIT services
	FloodTranscript  Behavior = "flood-transcript"   // Poke returns huge values
	FloodReporter    Behavior = "flood-reporter"     // Reporter writes until stopped
	Exit             Behavior = "exit"               // Poke calls os.Exit(66) — fatal, needs isolation
	Recurse          Behavior = "recurse"            // Poke recurses off the stack — fatal, needs isolation
	// ExitMidBatch is the warm-pool crash probe: instances count their
	// construction process-wide, and Poke calls os.Exit(66) from every
	// instance after the first — so a worker process serving a batch
	// survives its first case and dies mid-batch on its second. Under
	// spawn-per-case isolation every case is the first in its process and
	// the behavior never fires; in-process it is as fatal as Exit. It lives
	// outside Behaviors()/FatalBehaviors() for exactly those reasons.
	ExitMidBatch Behavior = "exit-mid-batch"
)

// Behaviors lists every failure mode that is survivable in-process — the
// table the containment suite iterates. Exit and Recurse are excluded: they
// kill the hosting process by design and are exercised only under
// subprocess isolation (see FatalBehaviors).
func Behaviors() []Behavior {
	return []Behavior{
		Benign, PanicOnNew, PanicOnInvoke, PanicOnInvariant, PanicOnReporter,
		PanicOnDestroy, PanicOnFork, InfiniteLoop, BurnBudget,
		FloodTranscript, FloodReporter,
	}
}

// FatalBehaviors lists the modes that kill their hosting process — the
// subprocess-isolation suite's table.
func FatalBehaviors() []Behavior {
	return []Behavior{Exit, Recurse}
}

// exitMidBatchBirths counts ExitMidBatch instances constructed in this
// process — the state that makes the behavior fire only on a reused
// (warm) worker, never on a fresh one.
var exitMidBatchBirths atomic.Int64

// instance is one live Hostile object.
type instance struct {
	bit.Base
	behavior  Behavior
	ordinal   int64 // construction ordinal, process-wide (ExitMidBatch only)
	pokes     int64
	destroyed bool
}

var _ component.Instance = (*instance)(nil)

func (h *instance) InvariantTest() error {
	if err := h.Guard(); err != nil {
		return err
	}
	if h.behavior == PanicOnInvariant {
		panic("hostile: invariant check panics")
	}
	return h.AssertInvariant(h.pokes >= 0, "InvariantTest", "pokes >= 0")
}

func (h *instance) Reporter(w io.Writer) error {
	if err := h.Guard(); err != nil {
		return err
	}
	switch h.behavior {
	case PanicOnReporter:
		panic("hostile: reporter panics")
	case FloodReporter:
		// Write until the metered writer cuts us off; a well-behaved
		// component would stop at the first error, and this one does too —
		// the flood is in the volume, not in ignoring errors.
		for {
			if _, err := fmt.Fprintf(w, "flood %064d\n", h.pokes); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "Hostile{behavior: %s, pokes: %d}\n", h.behavior, h.pokes)
	return err
}

func (h *instance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if h.destroyed {
		return nil, fmt.Errorf("%w: Hostile", component.ErrDestroyed)
	}
	if method != "Poke" {
		return nil, fmt.Errorf("%w: %q", component.ErrUnknownMethod, method)
	}
	h.pokes++
	switch h.behavior {
	case PanicOnInvoke:
		panic("hostile: method panics")
	case InfiniteLoop:
		for {
			// A sleep keeps the spin from pegging a CPU while the watchdog
			// waits; the loop still never returns.
			time.Sleep(time.Millisecond)
		}
	case BurnBudget:
		// Spin on the component's own BIT services until the guard's budget
		// stops them — unbounded cooperative work.
		for {
			if err := h.InvariantTest(); err != nil {
				return nil, err
			}
		}
	case FloodTranscript:
		return []domain.Value{domain.Str(makeFlood(4096))}, nil
	case Exit:
		os.Exit(66)
	case ExitMidBatch:
		if h.ordinal > 1 {
			os.Exit(66)
		}
	case Recurse:
		return []domain.Value{domain.Int(recurse(0))}, nil
	}
	return []domain.Value{domain.Int(h.pokes)}, nil
}

func (h *instance) Destroy() error {
	if h.behavior == PanicOnDestroy && !h.destroyed {
		h.destroyed = true
		panic("hostile: destructor panics")
	}
	h.destroyed = true
	return nil
}

// recurse exhausts the goroutine stack: each frame pins a local array so
// the runtime cannot shrink frames away. The return value keeps the call
// from being optimized into a loop.
func recurse(depth int64) int64 {
	var pin [1 << 10]byte
	pin[0] = byte(depth)
	return recurse(depth+1) + int64(pin[0])
}

// makeFlood builds a deterministic n-byte payload.
func makeFlood(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a' + byte(i%26)
	}
	return string(b)
}

// Factory builds Hostile instances with one fixed behavior.
type Factory struct {
	behavior Behavior
}

var _ component.Forker = (*Factory)(nil)

// NewFactory returns a factory whose instances exhibit the behavior.
func NewFactory(b Behavior) *Factory { return &Factory{behavior: b} }

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory.
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	if ctor != "Hostile" {
		return nil, fmt.Errorf("hostile: unknown constructor %q", ctor)
	}
	if f.behavior == PanicOnNew {
		panic("hostile: constructor panics")
	}
	inst := &instance{behavior: f.behavior}
	if f.behavior == ExitMidBatch {
		inst.ordinal = exitMidBatchBirths.Add(1)
	}
	return inst, nil
}

// Fork implements component.Forker — the executor's pre-case harness hook,
// one more surface a hostile component can blow up.
func (f *Factory) Fork() component.Factory {
	if f.behavior == PanicOnFork {
		panic("hostile: fork panics")
	}
	return &Factory{behavior: f.behavior}
}

// specOnce builds the embedded t-spec exactly once.
var specOnce = sync.OnceValue(buildSpec)

// Spec returns the hostile component's t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

func buildSpec() *tspec.Spec {
	return tspec.NewBuilder(Name).
		Attribute("pokes", tspec.RangeInt(0, 1<<20)).
		Method("m1", "Hostile", "", tspec.CatConstructor).
		Uses("pokes").
		Method("m2", "Poke", "int", tspec.CatUpdate).
		Uses("pokes").
		Method("m3", "~Hostile", "", tspec.CatDestructor).
		Node("n1", true, "m1").
		Node("n2", false, "m2").
		Node("n3", false, "m3").
		Edge("n1", "n2").
		Edge("n2", "n2").
		Edge("n2", "n3").
		MustBuild()
}

// Suite returns a fixed suite for the Hostile component: construct, poke n
// times, destroy. The suite is handwritten (not driver-generated) so the
// containment tests control exactly how many chances each behavior gets to
// fire.
func Suite(pokes int) *driver.Suite {
	calls := []driver.Call{{MethodID: "m1", Method: "Hostile"}}
	for i := 0; i < pokes; i++ {
		calls = append(calls, driver.Call{MethodID: "m2", Method: "Poke"})
	}
	calls = append(calls, driver.Call{MethodID: "m3", Method: "~Hostile"})
	return &driver.Suite{
		Component: Name,
		Cases: []driver.TestCase{{
			ID:          "H0",
			Transaction: "n1>n2>n3",
			Path:        []string{"n1", "n2", "n3"},
			Calls:       calls,
		}},
	}
}

// Context is the isolation-context wire form hostile's resolver accepts:
// either a behavior for the Hostile component or an armed mutant for
// HostileMut.
type Context struct {
	Behavior Behavior         `json:"behavior,omitempty"`
	Mutant   *mutation.Mutant `json:"mutant,omitempty"`
}

// Flags is the per-case Extra payload the resolver's Finish hook ships back
// to the parent: the mutation engine's reach/infection record for the case.
type Flags struct {
	Reached  bool `json:"reached"`
	Infected bool `json:"infected"`
}

// CaseResolver returns the testexec.Resolver a hostile case server uses: it
// handles the Hostile component (context carries the behavior) and
// HostileMut (context carries the armed mutant, reach/infection flags
// travel back via Finish).
func CaseResolver() testexec.Resolver {
	return func(componentName string, context json.RawMessage) (testexec.Resolved, error) {
		var ctx Context
		if len(context) > 0 {
			if err := json.Unmarshal(context, &ctx); err != nil {
				return testexec.Resolved{}, fmt.Errorf("hostile: decoding context: %w", err)
			}
		}
		switch componentName {
		case Name:
			b := ctx.Behavior
			if b == "" {
				b = Benign
			}
			return testexec.Resolved{Factory: NewFactory(b)}, nil
		case MutName:
			eng := mutation.NewEngine()
			eng.MustRegisterSites(MutSites()...)
			if ctx.Mutant != nil {
				if err := eng.Activate(*ctx.Mutant); err != nil {
					return testexec.Resolved{}, err
				}
			}
			return testexec.Resolved{
				Factory: NewMutFactory(eng),
				Finish: func() json.RawMessage {
					raw, _ := json.Marshal(Flags{
						Reached:  eng.Reached(),
						Infected: eng.Infected(),
					})
					return raw
				},
			}, nil
		default:
			return testexec.Resolved{}, fmt.Errorf("hostile: unknown component %q", componentName)
		}
	}
}
