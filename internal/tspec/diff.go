package tspec

import (
	"fmt"
	"sort"
)

// MethodStatus classifies a subclass method relative to its parent class,
// following Harrold et al.'s incremental class testing model as adapted by
// the paper (§3.4.2).
type MethodStatus int

// Method classifications.
const (
	// StatusInherited: present in the parent with the same specification and
	// not reimplemented — its parent test cases remain valid.
	StatusInherited MethodStatus = iota + 1
	// StatusRedefined: reimplemented in the subclass (listed in Redefined),
	// touched by a modified attribute, or its specification changed.
	StatusRedefined
	// StatusNew: not present in the parent.
	StatusNew
)

// String names the status.
func (s MethodStatus) String() string {
	switch s {
	case StatusInherited:
		return "inherited"
	case StatusRedefined:
		return "redefined"
	case StatusNew:
		return "new"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Classification maps each subclass method name to its status.
type Classification map[string]MethodStatus

// Counts returns the number of methods in each status.
func (c Classification) Counts() (inherited, redefined, added int) {
	for _, st := range c {
		switch st {
		case StatusInherited:
			inherited++
		case StatusRedefined:
			redefined++
		case StatusNew:
			added++
		}
	}
	return inherited, redefined, added
}

// Names returns the sorted method names with the given status.
func (c Classification) Names(st MethodStatus) []string {
	var out []string
	for name, got := range c {
		if got == st {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Classify diffs a child spec against its parent and classifies every child
// method. The child must name the parent class as its superclass. The rules,
// per §3.4.2 and the Harrold model it adapts:
//
//   - a method absent from the parent is New;
//   - a method listed in the child's Redefined clause is Redefined;
//   - a method whose Uses set intersects the child's ModifiedAttributes is
//     Redefined ("in case an attribute is modified, the methods using it are
//     considered as modified");
//   - a method whose specification differs from the parent's (signature,
//     return, category) is Redefined — the model forbids signature changes,
//     so such a difference is treated as a spec modification that forces
//     regeneration;
//   - otherwise the method is Inherited.
//
// Constructors and destructors are classified like every other method; the
// transaction-level reuse logic in package history applies the paper's
// special rule (they are excluded from the modification test) itself.
func Classify(parent, child *Spec) (Classification, error) {
	if child.Class.Superclass != parent.Class.Name {
		return nil, fmt.Errorf("tspec: %q does not extend %q (superclass is %q)",
			child.Class.Name, parent.Class.Name, child.Class.Superclass)
	}
	redefined := map[string]bool{}
	for _, name := range child.Redefined {
		redefined[name] = true
	}
	modAttrs := map[string]bool{}
	for _, name := range child.ModifiedAttributes {
		modAttrs[name] = true
	}

	out := make(Classification, len(child.Methods))
	for _, m := range child.Methods {
		parentM, inParent := parent.MethodByName(m.Name)
		switch {
		case !inParent:
			out[m.Name] = StatusNew
		case redefined[m.Name]:
			out[m.Name] = StatusRedefined
		case usesModified(m, modAttrs):
			out[m.Name] = StatusRedefined
		case !sameSignature(parentM, m):
			out[m.Name] = StatusRedefined
		default:
			out[m.Name] = StatusInherited
		}
	}
	return out, nil
}

func usesModified(m Method, modAttrs map[string]bool) bool {
	for _, u := range m.Uses {
		if modAttrs[u] {
			return true
		}
	}
	return false
}

// sameSignature reports whether two method declarations agree on the parts
// Harrold's model freezes: name, return type, category, and the ordered
// parameter list (names, domain kinds and declared domains).
func sameSignature(a, b Method) bool {
	if a.Name != b.Name || a.Return != b.Return || a.Category != b.Category {
		return false
	}
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i].Name != b.Params[i].Name {
			return false
		}
		if !sameDomainDecl(a.Params[i].Domain, b.Params[i].Domain) {
			return false
		}
	}
	return true
}

func sameDomainDecl(a, b DomainDecl) bool {
	if a.Kind != b.Kind || a.Float != b.Float || a.Lo != b.Lo || a.Hi != b.Hi {
		return false
	}
	if a.MinLen != b.MinLen || a.MaxLen != b.MaxLen {
		return false
	}
	if a.TypeName != b.TypeName || a.Nullable != b.Nullable {
		return false
	}
	if len(a.Members) != len(b.Members) || len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Members {
		if !a.Members[i].Equal(b.Members[i]) {
			return false
		}
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			return false
		}
	}
	return true
}
