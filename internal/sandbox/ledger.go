package sandbox

import "sync/atomic"

// Ledger is the goroutine-leak ledger. The executor cannot kill a case
// goroutine that exceeds its timeout — Go offers no preemptive kill — so it
// abandons the goroutine and records the abandonment here. If the abandoned
// goroutine later runs to completion it settles its entry, so Outstanding
// is a live gauge of goroutines still running beyond their deadline.
//
// Abandon counts are monotonic and deterministic (one per timed-out case);
// Outstanding is inherently racy — it reflects whatever the leaked
// goroutines happen to be doing — and is for diagnostics, never for
// report content.
type Ledger struct {
	abandoned atomic.Int64
	settled   atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Abandon records one goroutine left running past its deadline. Safe on a
// nil receiver (no-op).
func (l *Ledger) Abandon() {
	if l != nil {
		l.abandoned.Add(1)
	}
}

// Settle records that a previously abandoned goroutine ran to completion.
// Safe on a nil receiver (no-op).
func (l *Ledger) Settle() {
	if l != nil {
		l.settled.Add(1)
	}
}

// Abandoned returns the total number of abandonments recorded.
func (l *Ledger) Abandoned() int64 {
	if l == nil {
		return 0
	}
	return l.abandoned.Load()
}

// Settled returns how many abandoned goroutines have since completed.
func (l *Ledger) Settled() int64 {
	if l == nil {
		return 0
	}
	return l.settled.Load()
}

// Outstanding returns the number of abandoned goroutines still running.
func (l *Ledger) Outstanding() int64 {
	if l == nil {
		return 0
	}
	return l.abandoned.Load() - l.settled.Load()
}
