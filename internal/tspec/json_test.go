package tspec

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := parseProduct(t)
	var buf bytes.Buffer
	if err := orig.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if back.Class.Name != orig.Class.Name {
		t.Errorf("class = %q", back.Class.Name)
	}
	if len(back.Attributes) != len(orig.Attributes) ||
		len(back.Methods) != len(orig.Methods) ||
		len(back.Nodes) != len(orig.Nodes) ||
		len(back.Edges) != len(orig.Edges) {
		t.Fatal("shape changed in JSON round trip")
	}
	for i := range orig.Attributes {
		if !sameDomainDecl(back.Attributes[i].Domain, orig.Attributes[i].Domain) {
			t.Errorf("attribute %d domain differs: %+v vs %+v",
				i, back.Attributes[i].Domain, orig.Attributes[i].Domain)
		}
	}
	for i := range orig.Methods {
		if !sameSignature(back.Methods[i], orig.Methods[i]) {
			t.Errorf("method %d differs", i)
		}
	}
	// JSON and text forms agree.
	var textForm strings.Builder
	if err := back.Format(&textForm); err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(textForm.String())
	if err != nil {
		t.Fatalf("text form of JSON-loaded spec does not parse: %v", err)
	}
	if err := reparsed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecJSONInheritanceClauses(t *testing.T) {
	src := baseBuilder().MustBuild().Clone()
	src.Class.Superclass = "Parent"
	src.Redefined = []string{"Add"}
	src.ModifiedAttributes = []string{"count"}
	var buf bytes.Buffer
	if err := src.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Redefined) != 1 || back.Redefined[0] != "Add" {
		t.Errorf("Redefined = %v", back.Redefined)
	}
	if len(back.ModifiedAttributes) != 1 || back.ModifiedAttributes[0] != "count" {
		t.Errorf("ModifiedAttributes = %v", back.ModifiedAttributes)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "not json"},
		{"bad category", `{"class":{"name":"A"},"methods":[{"id":"m1","name":"A","category":"builder"}]}`},
		{"bad domain kind", `{"class":{"name":"A"},"attributes":[{"name":"x","domain":{"kind":"widget"}}]}`},
		{"range missing limits", `{"class":{"name":"A"},"attributes":[{"name":"x","domain":{"kind":"range"}}]}`},
		{"bad param domain", `{"class":{"name":"A"},"methods":[{"id":"m1","name":"A","category":"constructor","params":[{"name":"p","domain":{"kind":"zap"}}]}]}`},
		{"invalid spec", `{"class":{"name":""}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadJSON(strings.NewReader(tc.src)); err == nil {
				t.Error("LoadJSON should fail")
			}
		})
	}
}

func TestSpecJSONAllDomainKinds(t *testing.T) {
	src := `
Class('Kinds', No, <empty>, <empty>)
Attribute('r', range, 1, 5)
Attribute('f', range, 0.5, 1.5)
Attribute('s', set, [1, 2])
Attribute('ss', set, ['a', 'b'])
Attribute('str', string, 1, 4)
Attribute('strc', string, ['x', 'y'])
Attribute('o', object, 'Widget')
Attribute('p', pointer, 'Widget', nullable)
Attribute('b', bool)
Method(m1, 'Kinds', <empty>, constructor, 0)
Method(m2, '~Kinds', <empty>, destructor, 0)
Node(n1, Yes, 1, [m1])
Node(n2, No, 0, [m2])
Edge(n1, n2)
`
	orig, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v\n%s", err, buf.String())
	}
	for i := range orig.Attributes {
		if !sameDomainDecl(back.Attributes[i].Domain, orig.Attributes[i].Domain) {
			t.Errorf("attribute %q domain changed: %+v vs %+v",
				orig.Attributes[i].Name, back.Attributes[i].Domain, orig.Attributes[i].Domain)
		}
	}
}
