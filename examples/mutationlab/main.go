// Mutationlab: the paper's evaluation machinery end-to-end on a small
// component. Interface mutants (Table 1 operators) are injected into the
// Account component's Withdraw method; the suite generated from its t-spec
// is scored against them with the paper's three kill criteria; and the
// source-level mutator shows the same fault model applied to real Go code.
package main

import (
	"fmt"
	"os"

	"concat"
	"concat/internal/mutation"
	"concat/internal/srcmut"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutationlab:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- In-process interface mutation --------------------------------------
	comp := concat.Target("Account")
	suite, err := concat.Generate(comp.Spec(), concat.GenOptions{
		Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("suite under evaluation: %s\n\n", suite.Stats())

	res, err := concat.Mutate("Account", suite, nil, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	table := res.Tabulate()
	if err := table.Render(os.Stdout); err != nil {
		return err
	}

	// Survivors deserve a look: never-infecting ones are equivalence
	// candidates (the paper marked equivalents by hand).
	for _, mr := range res.Mutants {
		if !mr.Killed {
			kind := "survivor"
			if mr.Equivalent() {
				kind = "equivalence candidate"
			} else if !mr.Reached {
				kind = "never reached by the suite"
			}
			fmt.Printf("ALIVE  %-55s (%s)\n", mr.Mutant.ID, kind)
		}
	}

	// --- Source-level interface mutation ------------------------------------
	src := `package acct

var auditLevel int64 = 2

type Account struct {
	balance int64
	limit   int64
}

func (a *Account) Withdraw(amount int64) int64 {
	remaining := a.balance - amount
	if remaining >= 0 {
		a.balance = remaining
	}
	return remaining
}
`
	mutants, err := srcmut.MutateFile("acct.go", []byte(src), srcmut.Options{
		Methods: []string{"Withdraw"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsource-level mutants of Withdraw: %d\n", len(mutants))
	byOp := map[mutation.Operator]int{}
	compiled := 0
	for _, m := range mutants {
		byOp[m.Operator]++
		if m.TypeCheck("acct.go") == nil {
			compiled++
		}
	}
	for _, op := range mutation.AllOperators {
		fmt.Printf("  %-15s %d\n", op, byOp[op])
	}
	fmt.Printf("%d/%d mutants compile cleanly (the paper compiled each mutant class individually)\n",
		compiled, len(mutants))
	if len(mutants) > 0 {
		fmt.Printf("\nexample mutant %s:\n%s", mutants[0].ID, mutants[0].Source)
	}
	return nil
}
