package tspec

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"concat/internal/domain"
)

// Format renders the spec back into the Figure 3 notation. Parsing the
// output yields an equivalent spec (round-trip property, tested).
func (s *Spec) Format(w io.Writer) error {
	var b strings.Builder

	b.WriteString("// t-spec for component " + s.Class.Name + "\n")
	abstract := "No"
	if s.Class.Abstract {
		abstract = "Yes"
	}
	super := "<empty>"
	if s.Class.Superclass != "" {
		super = quote(s.Class.Superclass)
	}
	sources := "<empty>"
	if len(s.Class.Sources) > 0 {
		qs := make([]string, len(s.Class.Sources))
		for i, src := range s.Class.Sources {
			qs[i] = quote(src)
		}
		sources = "[" + strings.Join(qs, ", ") + "]"
	}
	fmt.Fprintf(&b, "Class(%s, %s, %s, %s)\n", quote(s.Class.Name), abstract, super, sources)

	if len(s.Attributes) > 0 {
		b.WriteString("\n// attributes\n")
	}
	for _, a := range s.Attributes {
		fmt.Fprintf(&b, "Attribute(%s, %s)\n", quote(a.Name), formatDomain(a.Domain))
	}

	if len(s.Methods) > 0 {
		b.WriteString("\n// methods\n")
	}
	for _, m := range s.Methods {
		ret := "<empty>"
		if m.Return != "" {
			ret = quote(m.Return)
		}
		fmt.Fprintf(&b, "Method(%s, %s, %s, %s, %d)\n", m.ID, quote(m.Name), ret, m.Category, len(m.Params))
		for _, p := range m.Params {
			fmt.Fprintf(&b, "Parameter(%s, %s, %s)\n", m.ID, quote(p.Name), formatDomain(p.Domain))
		}
		if len(m.Uses) > 0 {
			qs := make([]string, len(m.Uses))
			for i, u := range m.Uses {
				qs[i] = quote(u)
			}
			fmt.Fprintf(&b, "Uses(%s, [%s])\n", m.ID, strings.Join(qs, ", "))
		}
	}

	if len(s.Nodes) > 0 {
		b.WriteString("\n// test model\n")
	}
	for _, n := range s.Nodes {
		start := "No"
		if n.Start {
			start = "Yes"
		}
		fmt.Fprintf(&b, "Node(%s, %s, %d, [%s])\n", n.ID, start, n.OutDeg, strings.Join(n.Methods, ", "))
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "Edge(%s, %s)\n", e.From, e.To)
	}

	if len(s.Redefined) > 0 {
		qs := make([]string, len(s.Redefined))
		for i, r := range s.Redefined {
			qs[i] = quote(r)
		}
		fmt.Fprintf(&b, "\nRedefined([%s])\n", strings.Join(qs, ", "))
	}
	if len(s.ModifiedAttributes) > 0 {
		qs := make([]string, len(s.ModifiedAttributes))
		for i, r := range s.ModifiedAttributes {
			qs[i] = quote(r)
		}
		fmt.Fprintf(&b, "ModifiedAttributes([%s])\n", strings.Join(qs, ", "))
	}

	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("tspec: writing spec: %w", err)
	}
	return nil
}

// String renders the spec via Format.
func (s *Spec) String() string {
	var sb strings.Builder
	if err := s.Format(&sb); err != nil {
		return "<unformattable spec: " + err.Error() + ">"
	}
	return sb.String()
}

func formatDomain(d DomainDecl) string {
	switch d.Kind {
	case DomRange:
		return fmt.Sprintf("range, %s, %s", formatNum(d.Lo, d.Float), formatNum(d.Hi, d.Float))
	case DomSet:
		parts := make([]string, len(d.Members))
		for i, m := range d.Members {
			parts[i] = formatValue(m)
		}
		return "set, [" + strings.Join(parts, ", ") + "]"
	case DomString:
		if len(d.Candidates) > 0 {
			parts := make([]string, len(d.Candidates))
			for i, c := range d.Candidates {
				parts[i] = quote(c)
			}
			return "string, [" + strings.Join(parts, ", ") + "]"
		}
		return fmt.Sprintf("string, %d, %d", d.MinLen, d.MaxLen)
	case DomObject:
		return "object, " + quote(d.TypeName)
	case DomPointer:
		if d.Nullable {
			return "pointer, " + quote(d.TypeName) + ", nullable"
		}
		return "pointer, " + quote(d.TypeName)
	case DomBool:
		return "bool"
	default:
		return fmt.Sprintf("unknown(%d)", int(d.Kind))
	}
}

func formatNum(f float64, isFloat bool) string {
	if !isFloat {
		return strconv.FormatInt(int64(f), 10)
	}
	s := strconv.FormatFloat(f, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0" // keep the float marker so round-trip preserves Float
	}
	return s
}

func formatValue(v domain.Value) string {
	switch v.Kind() {
	case domain.KindString:
		s, err := v.AsString()
		if err != nil {
			return v.String()
		}
		return quote(s)
	case domain.KindFloat:
		f, err := v.AsFloat()
		if err != nil {
			return v.String()
		}
		return formatNum(f, true)
	default:
		return v.String()
	}
}

func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\'', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}
