package hostile_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/sandbox/hostile"
	"concat/internal/testexec"
)

// TestMain doubles this test binary as a case server: when the executor
// spawns it with ServerEnv set, it serves isolated cases (one-shot or the
// warm-pool batch loop, per the sentinel's value) and exits instead of
// running the test suite. This is the standard pattern for exercising
// subprocess isolation from a test.
func TestMain(m *testing.M) {
	if served, err := testexec.ServeFromEnv(os.Stdin, os.Stdout, hostile.CaseResolver()); served {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// suiteFor builds the per-behavior suite: cases that poke twice and then
// destroy — except for reporter behaviors, which need a case that ends
// without a destructor so the reporter actually runs.
func suiteFor(b hostile.Behavior, cases int) *driver.Suite {
	withDestroy := b != hostile.PanicOnReporter && b != hostile.FloodReporter
	s := &driver.Suite{Component: hostile.Name}
	for i := 0; i < cases; i++ {
		calls := []driver.Call{
			{MethodID: "m1", Method: "Hostile"},
			{MethodID: "m2", Method: "Poke"},
			{MethodID: "m2", Method: "Poke"},
		}
		if withDestroy {
			calls = append(calls, driver.Call{MethodID: "m3", Method: "~Hostile"})
		}
		s.Cases = append(s.Cases, driver.TestCase{
			ID:          fmt.Sprintf("H%d", i),
			Transaction: "n1>n2>n3",
			Calls:       calls,
		})
	}
	return s
}

// boundedOpts are the sandbox bounds every containment run uses: a step
// budget for the budget burner, a transcript cap for the flooders, and a
// case timeout for the hang.
func boundedOpts() testexec.Options {
	return testexec.Options{
		Seed:               42,
		StepBudget:         500,
		MaxTranscriptBytes: 8 << 10,
		CaseTimeout:        100 * time.Millisecond,
	}
}

// wantOutcome maps each survivable behavior to the outcome the executor
// must record for it.
func wantOutcome(b hostile.Behavior) testexec.Outcome {
	switch b {
	case hostile.Benign:
		return testexec.OutcomePass
	case hostile.InfiniteLoop:
		return testexec.OutcomeTimeout
	case hostile.BurnBudget, hostile.FloodTranscript, hostile.FloodReporter:
		return testexec.OutcomeResourceExhausted
	default:
		return testexec.OutcomePanic
	}
}

// TestEveryHostileBehaviorYieldsRecordedOutcome is the kit's core claim:
// every failure mode that is survivable in-process becomes a recorded
// per-case outcome — the suite itself surviving is the containment proof.
func TestEveryHostileBehaviorYieldsRecordedOutcome(t *testing.T) {
	for _, b := range hostile.Behaviors() {
		t.Run(string(b), func(t *testing.T) {
			rep, err := testexec.Run(suiteFor(b, 1), hostile.NewFactory(b), boundedOpts())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			res := rep.Results[0]
			if want := wantOutcome(b); res.Outcome != want {
				t.Fatalf("outcome = %s, want %s (detail %q)", res.Outcome, want, res.Detail)
			}
			if res.CaseID != "H0" || res.Seed == 0 {
				t.Errorf("result lost case identity: %+v", res)
			}
			if b == hostile.InfiniteLoop && rep.AbandonedGoroutines != 1 {
				t.Errorf("AbandonedGoroutines = %d, want 1", rep.AbandonedGoroutines)
			}
		})
	}
}

// TestHostileReportsIdenticalAcrossParallelism runs every behavior's suite
// at parallelism 1, 4 and GOMAXPROCS and requires bit-for-bit identical
// reports — failure containment must not cost determinism.
func TestHostileReportsIdenticalAcrossParallelism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, b := range hostile.Behaviors() {
		t.Run(string(b), func(t *testing.T) {
			var reference *testexec.Report
			for _, p := range levels {
				opts := boundedOpts()
				opts.Parallelism = p
				rep, err := testexec.Run(suiteFor(b, 4), hostile.NewFactory(b), opts)
				if err != nil {
					t.Fatalf("Run(parallelism=%d): %v", p, err)
				}
				if reference == nil {
					reference = rep
					continue
				}
				if !reflect.DeepEqual(reference, rep) {
					t.Fatalf("report at parallelism=%d differs from parallelism=%d:\n%+v\nvs\n%+v",
						p, levels[0], rep, reference)
				}
			}
		})
	}
}

// isolatedOpts configures a run whose cases execute in child case servers:
// this test binary re-executed with ServerEnv set (see TestMain).
func isolatedOpts(t *testing.T, ctx hostile.Context) testexec.Options {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	raw, err := json.Marshal(ctx)
	if err != nil {
		t.Fatalf("marshal context: %v", err)
	}
	return testexec.Options{
		Seed:             42,
		Isolation:        testexec.IsolateSubprocess,
		IsolationCommand: []string{exe},
		IsolationContext: raw,
	}
}

// TestIsolationContainsFatalBehaviors is the crash-containment proof: a
// component that calls os.Exit or exhausts the stack kills only its case
// server; the parent records a crash outcome with a deterministic summary.
func TestIsolationContainsFatalBehaviors(t *testing.T) {
	wantDetail := map[hostile.Behavior]string{
		hostile.Exit:    "exit status 66",
		hostile.Recurse: "stack overflow",
	}
	for _, b := range hostile.FatalBehaviors() {
		t.Run(string(b), func(t *testing.T) {
			opts := isolatedOpts(t, hostile.Context{Behavior: b})
			rep, err := testexec.Run(suiteFor(b, 1), hostile.NewFactory(b), opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			res := rep.Results[0]
			if res.Outcome != testexec.OutcomePanic {
				t.Fatalf("outcome = %s (detail %q), want crash", res.Outcome, res.Detail)
			}
			if !strings.Contains(res.Detail, "fatal subprocess failure") ||
				!strings.Contains(res.Detail, wantDetail[b]) {
				t.Errorf("detail = %q, want fatal summary containing %q", res.Detail, wantDetail[b])
			}
		})
	}
}

// TestIsolationMatchesInProcessForBenignRuns: the subprocess mode is a
// containment wrapper, not a different semantics — a well-behaved case
// produces the same outcome and transcript either way.
func TestIsolationMatchesInProcessForBenignRuns(t *testing.T) {
	s := suiteFor(hostile.Benign, 2)
	inProc, err := testexec.Run(s, hostile.NewFactory(hostile.Benign), testexec.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	iso, err := testexec.Run(s, hostile.NewFactory(hostile.Benign),
		isolatedOpts(t, hostile.Context{Behavior: hostile.Benign}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range inProc.Results {
		a, b := inProc.Results[i], iso.Results[i]
		if a.Outcome != b.Outcome || a.Transcript != b.Transcript || a.Seed != b.Seed {
			t.Errorf("case %s differs:\nin-process: %+v\nisolated:   %+v", a.CaseID, a, b)
		}
	}
	// The assertion-site telemetry crosses the process boundary on its own
	// wire field, so the suite aggregate must match too.
	if !reflect.DeepEqual(inProc.BITSites, iso.BITSites) {
		t.Errorf("BITSites differ:\nin-process: %+v\nisolated:   %+v", inProc.BITSites, iso.BITSites)
	}
	if len(inProc.BITSites) == 0 {
		t.Error("benign hostile run recorded no assertion sites; telemetry not wired")
	}
}

// TestIsolationPanicBehaviorsRecordedInChild: recoverable panics under
// isolation are still classified by the child's own executor (the child
// does not die), proving the wire round-trip preserves classification.
func TestIsolationPanicBehaviorsRecordedInChild(t *testing.T) {
	opts := isolatedOpts(t, hostile.Context{Behavior: hostile.PanicOnInvoke})
	rep, err := testexec.Run(suiteFor(hostile.PanicOnInvoke, 1),
		hostile.NewFactory(hostile.PanicOnInvoke), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != testexec.OutcomePanic {
		t.Fatalf("outcome = %s (detail %q)", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "hostile: method panics") {
		t.Errorf("detail = %q, want the child's recovered panic message", res.Detail)
	}
}

// TestIsolationShipsMutantAndFlags: the opaque isolation context arms a
// mutant inside the case server, and the reach/infection flags come back in
// CaseResult.Extra — the wire protocol mutation analysis rides on.
func TestIsolationShipsMutantAndFlags(t *testing.T) {
	tests := []struct {
		name   string
		mutant mutation.Mutant
		want   hostile.Flags
	}{
		{
			name: "equivalent local replacement",
			mutant: mutation.Mutant{
				ID: "soft", Site: hostile.StepSite, Method: "Step",
				Operator: mutation.OpRepLoc, Replacement: "soft",
			},
			want: hostile.Flags{Reached: true, Infected: false},
		},
		{
			name: "infectious constant replacement",
			mutant: mutation.Mutant{
				ID: "req5", Site: hostile.StepSite, Method: "Step",
				Operator: mutation.OpRepReq, Replacement: "5",
			},
			want: hostile.Flags{Reached: true, Infected: true},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mutant
			if m.Operator == mutation.OpRepReq {
				m.Constant = domain.Int(5)
			}
			opts := isolatedOpts(t, hostile.Context{Mutant: &m})
			rep, err := testexec.Run(hostile.MutSuite(3), hostile.NewMutFactory(nil), opts)
			if err != nil {
				t.Fatal(err)
			}
			res := rep.Results[0]
			if res.Outcome != testexec.OutcomePass {
				t.Fatalf("outcome = %s (detail %q)", res.Outcome, res.Detail)
			}
			var flags hostile.Flags
			if err := json.Unmarshal(res.Extra, &flags); err != nil {
				t.Fatalf("decoding Extra %q: %v", res.Extra, err)
			}
			if flags != tt.want {
				t.Errorf("flags = %+v, want %+v", flags, tt.want)
			}
		})
	}
}

// TestFatalMutantKilledUnderIsolation: arming the "hard" global replacement
// routes the mutant into os.Exit — the case server dies and the parent
// classifies a crash kill, end to end through the mutation wire format.
func TestFatalMutantKilledUnderIsolation(t *testing.T) {
	m := mutation.Mutant{
		ID: "hard", Site: hostile.StepSite, Method: "Step",
		Operator: mutation.OpRepGlob, Replacement: "hard",
	}
	opts := isolatedOpts(t, hostile.Context{Mutant: &m})
	rep, err := testexec.Run(hostile.MutSuite(3), hostile.NewMutFactory(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != testexec.OutcomePanic {
		t.Fatalf("outcome = %s (detail %q), want crash", res.Outcome, res.Detail)
	}
	if !strings.Contains(res.Detail, "exit status 66") {
		t.Errorf("detail = %q", res.Detail)
	}
}
