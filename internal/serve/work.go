// Distributed campaigns, coordinator side. A distributed job's mutants are
// split into shards by their deterministic enumeration index; remote
// `concat work` processes lease shards over POST /work/lease, execute them
// with the same campaign machinery the local path uses, publish every
// verdict into the shared verdict store, and report completion. Shard
// leases reuse the service's recovery vocabulary: a worker that dies or
// wedges loses its lease, the shard is re-leased to the next worker that
// asks, and the stale worker's late completion is rejected by epoch token —
// the per-shard miniature of the job-level lease/epoch protocol.
//
// The merge is deterministic by construction: once every shard has
// landed, the coordinator re-runs the full campaign warm against the store
// (runLocal), where every mutant verdict replays as a cache hit. Because
// cached replay is byte-identical to execution, a 2-worker run's report and
// coverage artifact are byte-identical to a single-process run's — the
// fleet changes wall-clock time, never results. The merge also self-heals:
// any verdict a shard failed to publish is simply executed locally.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"concat/internal/analysis"
	"concat/internal/store"
)

// DefaultShardLease bounds one worker's lease on one shard when Config
// leaves ShardLease zero. Shards are fractions of a campaign, so the
// default is well under the job-level DefaultLease.
const DefaultShardLease = 2 * time.Minute

// ShardLease is the wire form of one leased shard: everything a worker
// needs to execute its fraction of the campaign and report back.
type ShardLease struct {
	// Job is the coordinator's campaign ID, addressed in the completion POST.
	Job string `json:"job"`
	// Req is the campaign submission; the worker derives the suite and
	// execution options from it exactly as the coordinator would.
	Req Request `json:"req"`
	// Shard/Shards select the mutant subset: enumeration indices congruent
	// to Shard mod Shards.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Epoch is the lease's validity token: a completion carrying a stale
	// epoch (the shard was reclaimed and re-leased meanwhile) is rejected.
	Epoch int `json:"epoch"`
	// LeaseSeconds tells the worker how long it holds the shard.
	LeaseSeconds int `json:"leaseSeconds"`
}

// ShardDone is the completion body a worker posts for a finished shard.
type ShardDone struct {
	Epoch int `json:"epoch"`
	// Error, when non-empty, reports shard execution failure; the
	// coordinator re-leases the shard while the attempt budget lasts.
	Error string `json:"error,omitempty"`
}

// Shard states.
const (
	shardPending = iota
	shardLeased
	shardDone
)

// Completion verdicts surfaced to the HTTP layer.
var (
	errNoShardSet = errors.New("serve: no distributed campaign with that id")
	errBadShard   = errors.New("serve: shard index out of range")
	errStaleShard = errors.New("serve: stale shard lease")
)

// shardSet tracks one distributed job's shards through
// pending -> leased -> done, with per-shard epochs and lease deadlines.
type shardSet struct {
	jobID       string
	req         Request
	count       int
	lease       time.Duration
	maxAttempts int

	mu        sync.Mutex
	state     []int
	epoch     []int
	deadline  []time.Time
	attempts  []int // leases granted per shard, counting the one in flight
	remaining int
	failMsg   string
	finished  bool
	done      chan struct{}
}

// tryLease reclaims any expired leases, then leases the first pending
// shard. reclaims reports how many expired leases it took back (for the
// server's counter) regardless of whether a lease was granted.
func (set *shardSet) tryLease(now time.Time) (lease ShardLease, reclaims int, ok bool) {
	set.mu.Lock()
	defer set.mu.Unlock()
	if set.finished {
		return ShardLease{}, 0, false
	}
	for i := range set.state {
		if set.state[i] != shardLeased || now.Before(set.deadline[i]) {
			continue
		}
		// The holder is presumed dead; bump the epoch so its late
		// completion becomes a no-op.
		reclaims++
		set.epoch[i]++
		if set.attempts[i] >= set.maxAttempts {
			set.failLocked(fmt.Sprintf("shard %d/%d abandoned after %d attempts", i, set.count, set.attempts[i]))
			return ShardLease{}, reclaims, false
		}
		set.state[i] = shardPending
	}
	for i := range set.state {
		if set.state[i] != shardPending {
			continue
		}
		set.state[i] = shardLeased
		set.epoch[i]++
		set.attempts[i]++
		set.deadline[i] = now.Add(set.lease)
		return ShardLease{
			Job:          set.jobID,
			Req:          set.req,
			Shard:        i,
			Shards:       set.count,
			Epoch:        set.epoch[i],
			LeaseSeconds: int(set.lease / time.Second),
		}, reclaims, true
	}
	return ShardLease{}, reclaims, false
}

// complete applies a worker's completion report. A failed shard goes back
// to pending while its attempt budget lasts; spending the budget fails the
// whole set (and with it the job).
func (set *shardSet) complete(shard int, d ShardDone) error {
	set.mu.Lock()
	defer set.mu.Unlock()
	if shard < 0 || shard >= set.count {
		return errBadShard
	}
	if set.finished || set.state[shard] != shardLeased || set.epoch[shard] != d.Epoch {
		return errStaleShard
	}
	set.epoch[shard]++
	if d.Error != "" {
		if set.attempts[shard] >= set.maxAttempts {
			set.failLocked(fmt.Sprintf("shard %d/%d failed after %d attempts: %s", shard, set.count, set.attempts[shard], d.Error))
		} else {
			set.state[shard] = shardPending
		}
		return nil
	}
	set.state[shard] = shardDone
	set.remaining--
	if set.remaining == 0 {
		set.finished = true
		close(set.done)
	}
	return nil
}

// failLocked marks the set failed and releases the waiting coordinator.
// Callers hold set.mu.
func (set *shardSet) failLocked(msg string) {
	if set.finished {
		return
	}
	set.failMsg = msg
	set.finished = true
	close(set.done)
}

// failure returns the terminal failure message ("" on success or while
// running).
func (set *shardSet) failure() string {
	set.mu.Lock()
	defer set.mu.Unlock()
	return set.failMsg
}

// progress reports completed and total shards.
func (set *shardSet) progress() (completed, total int) {
	set.mu.Lock()
	defer set.mu.Unlock()
	return set.count - set.remaining, set.count
}

// registerShards publishes a distributed job's shards for leasing.
func (s *Server) registerShards(j *Job, count int) *shardSet {
	set := &shardSet{
		jobID:       j.ID,
		req:         j.Req,
		count:       count,
		lease:       s.cfg.shardLease(),
		maxAttempts: s.cfg.retryPolicy().Attempts,
		state:       make([]int, count),
		epoch:       make([]int, count),
		deadline:    make([]time.Time, count),
		attempts:    make([]int, count),
		remaining:   count,
		done:        make(chan struct{}),
	}
	s.workMu.Lock()
	s.shardSets = append(s.shardSets, set)
	s.workMu.Unlock()
	return set
}

// unregisterShards retires a set once its campaign attempt concludes.
func (s *Server) unregisterShards(set *shardSet) {
	s.workMu.Lock()
	kept := s.shardSets[:0]
	for _, c := range s.shardSets {
		if c != set {
			kept = append(kept, c)
		}
	}
	s.shardSets = kept
	s.workMu.Unlock()
}

// shardSetOf finds the newest registered set for a job ID — a retried
// attempt may briefly coexist with its abandoned predecessor, and new
// completions belong to the newest.
func (s *Server) shardSetOf(jobID string) *shardSet {
	s.workMu.Lock()
	defer s.workMu.Unlock()
	for i := len(s.shardSets) - 1; i >= 0; i-- {
		if s.shardSets[i].jobID == jobID {
			return s.shardSets[i]
		}
	}
	return nil
}

// leaseShard scans registered sets in job order and leases the first
// available shard.
func (s *Server) leaseShard(now time.Time) (ShardLease, bool) {
	s.workMu.Lock()
	sets := append([]*shardSet(nil), s.shardSets...)
	s.workMu.Unlock()
	for _, set := range sets {
		lease, reclaims, ok := set.tryLease(now)
		if reclaims > 0 {
			s.nShardReclaims.Add(int64(reclaims))
			s.logf("serve: %s reclaimed %d expired shard lease(s)", set.jobID, reclaims)
		}
		if ok {
			s.nShardLeases.Add(1)
			s.logf("serve: %s shard %d/%d leased (epoch %d)", lease.Job, lease.Shard, lease.Shards, lease.Epoch)
			return lease, true
		}
	}
	return ShardLease{}, false
}

// status is Job.Status plus the server-side overlay: shard progress for a
// running distributed campaign.
func (s *Server) status(j *Job) Status {
	st := j.Status()
	if set := s.shardSetOf(j.ID); set != nil {
		st.ShardsDone, st.Shards = set.progress()
	}
	return st
}

// runDistributed coordinates one distributed campaign attempt: publish the
// shards, wait for workers to complete them, then merge by running the
// campaign warm against the shared store. The wait is backstopped just
// past the job lease — if workers never show up, the job-level lease
// reclaims the attempt anyway, and the backstop keeps this goroutine (and
// its shard set) from leaking.
func (s *Server) runDistributed(j *Job) (*analysis.Result, []byte, error) {
	if !store.Enabled(s.cfg.Store) {
		return nil, nil, errors.New("serve: distributed campaigns require a verdict store")
	}
	count := j.Req.shardCount()
	set := s.registerShards(j, count)
	defer s.unregisterShards(set)
	s.logf("serve: %s distributed across %d shard(s), lease %s", j.ID, count, s.cfg.shardLease())
	backstop := time.NewTimer(s.cfg.lease() + time.Second)
	defer backstop.Stop()
	select {
	case <-set.done:
	case <-backstop.C:
		return nil, nil, fmt.Errorf("serve: %s: shards incomplete after %s — are any workers connected?", j.ID, s.cfg.lease())
	case <-s.stop:
		return nil, nil, errors.New("serve: shutdown during distributed campaign")
	}
	if msg := set.failure(); msg != "" {
		return nil, nil, fmt.Errorf("serve: %s: %s", j.ID, msg)
	}
	s.logf("serve: %s all %d shard(s) complete; merging warm from the store", j.ID, count)
	return s.runLocal(j)
}

// handleWorkLease hands one shard to an asking worker, 204 when no work is
// available.
func (s *Server) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	lease, ok := s.leaseShard(time.Now())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

// handleShardDone applies a worker's completion report: 204 applied, 404
// unknown campaign, 400 malformed, 409 stale lease.
func (s *Server) handleShardDone(w http.ResponseWriter, r *http.Request) {
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed shard index " + r.PathValue("shard")})
		return
	}
	var d ShardDone
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding completion: " + err.Error()})
		return
	}
	id := r.PathValue("id")
	set := s.shardSetOf(id)
	if set == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no distributed campaign " + id})
		return
	}
	switch err := set.complete(shard, d); {
	case errors.Is(err, errBadShard):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, errStaleShard):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	default:
		if d.Error != "" {
			s.logf("serve: %s shard %d reported failure: %s", id, shard, d.Error)
		} else {
			s.logf("serve: %s shard %d complete", id, shard)
		}
		w.WriteHeader(http.StatusNoContent)
	}
}
