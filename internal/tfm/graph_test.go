package tfm

import (
	"strings"
	"testing"
)

// linear builds n1(start) -> n2 -> n3(final).
func linear(t *testing.T) *Graph {
	t.Helper()
	g := New("Linear")
	mustAddNode(t, g, Node{ID: "n1", Methods: []string{"m1"}, Start: true})
	mustAddNode(t, g, Node{ID: "n2", Methods: []string{"m2"}})
	mustAddNode(t, g, Node{ID: "n3", Methods: []string{"m3"}, Final: true})
	mustAddEdge(t, g, "n1", "n2")
	mustAddEdge(t, g, "n2", "n3")
	return g
}

// diamond builds n1(start) -> {n2,n3} -> n4(final) with a n2->n2 self loop.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("Diamond")
	mustAddNode(t, g, Node{ID: "n1", Methods: []string{"ctor"}, Start: true})
	mustAddNode(t, g, Node{ID: "n2", Methods: []string{"update"}})
	mustAddNode(t, g, Node{ID: "n3", Methods: []string{"query"}})
	mustAddNode(t, g, Node{ID: "n4", Methods: []string{"dtor"}, Final: true})
	mustAddEdge(t, g, "n1", "n2")
	mustAddEdge(t, g, "n1", "n3")
	mustAddEdge(t, g, "n2", "n2")
	mustAddEdge(t, g, "n2", "n4")
	mustAddEdge(t, g, "n3", "n4")
	return g
}

func mustAddNode(t *testing.T, g *Graph, n Node) {
	t.Helper()
	if err := g.AddNode(n); err != nil {
		t.Fatalf("AddNode(%s): %v", n.ID, err)
	}
}

func mustAddEdge(t *testing.T, g *Graph, from, to NodeID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatalf("AddEdge(%s,%s): %v", from, to, err)
	}
}

func TestAddNodeValidation(t *testing.T) {
	g := New("X")
	if err := g.AddNode(Node{ID: ""}); err == nil {
		t.Error("empty node ID should fail")
	}
	mustAddNode(t, g, Node{ID: "n1", Methods: []string{"m"}})
	if err := g.AddNode(Node{ID: "n1"}); err == nil {
		t.Error("duplicate node ID should fail")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("X")
	mustAddNode(t, g, Node{ID: "a", Methods: []string{"m"}})
	mustAddNode(t, g, Node{ID: "b", Methods: []string{"m"}})
	if err := g.AddEdge("zz", "b"); err == nil {
		t.Error("unknown source should fail")
	}
	if err := g.AddEdge("a", "zz"); err == nil {
		t.Error("unknown target should fail")
	}
	mustAddEdge(t, g, "a", "b")
	if err := g.AddEdge("a", "b"); err == nil {
		t.Error("duplicate edge should fail")
	}
	// Self loop allowed.
	if err := g.AddEdge("b", "b"); err != nil {
		t.Errorf("self loop: %v", err)
	}
}

func TestNodeAccessors(t *testing.T) {
	g := diamond(t)
	n, ok := g.Node("n2")
	if !ok || n.ID != "n2" || len(n.Methods) != 1 {
		t.Fatalf("Node(n2) = %+v, %v", n, ok)
	}
	if _, ok := g.Node("nope"); ok {
		t.Error("unknown node should report !ok")
	}
	// Mutating the returned copy must not affect the graph.
	n.Methods[0] = "hacked"
	n2, _ := g.Node("n2")
	if n2.Methods[0] != "update" {
		t.Error("Node() should return a defensive copy")
	}
	all := g.Nodes()
	if len(all) != 4 || all[0].ID != "n1" || all[3].ID != "n4" {
		t.Errorf("Nodes() = %+v", all)
	}
	if len(g.Edges()) != 5 {
		t.Errorf("Edges() = %v", g.Edges())
	}
	if got := g.Successors("n1"); len(got) != 2 {
		t.Errorf("Successors(n1) = %v", got)
	}
	if got := g.Predecessors("n4"); len(got) != 2 {
		t.Errorf("Predecessors(n4) = %v", got)
	}
}

func TestStartFinalNodes(t *testing.T) {
	g := diamond(t)
	if s := g.StartNodes(); len(s) != 1 || s[0] != "n1" {
		t.Errorf("StartNodes() = %v", s)
	}
	if f := g.FinalNodes(); len(f) != 1 || f[0] != "n4" {
		t.Errorf("FinalNodes() = %v", f)
	}
}

func TestStats(t *testing.T) {
	g := diamond(t)
	s := g.Stats()
	want := Stats{Nodes: 4, Edges: 5, StartNodes: 1, FinalNodes: 1}
	if s != want {
		t.Errorf("Stats() = %+v, want %+v", s, want)
	}
	if !strings.Contains(s.String(), "4 nodes, 5 links") {
		t.Errorf("Stats.String() = %q", s.String())
	}
}

func TestValidateOK(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Errorf("diamond should validate: %v", err)
	}
	if err := linear(t).Validate(); err != nil {
		t.Errorf("linear should validate: %v", err)
	}
}

func TestValidateProblems(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := New("E").Validate(); err == nil || !strings.Contains(err.Error(), "no nodes") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no start", func(t *testing.T) {
		g := New("X")
		mustAddNode(t, g, Node{ID: "n1", Methods: []string{"m"}, Final: true})
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "no start") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no final", func(t *testing.T) {
		g := New("X")
		mustAddNode(t, g, Node{ID: "n1", Methods: []string{"m"}, Start: true})
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "no final") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("node without methods", func(t *testing.T) {
		g := New("X")
		mustAddNode(t, g, Node{ID: "n1", Start: true})
		mustAddNode(t, g, Node{ID: "n2", Methods: []string{"m"}, Final: true})
		mustAddEdge(t, g, "n1", "n2")
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "lists no methods") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("start and final", func(t *testing.T) {
		g := New("X")
		mustAddNode(t, g, Node{ID: "n1", Methods: []string{"m"}, Start: true, Final: true})
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "both start and final") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unreachable node", func(t *testing.T) {
		g := linear(t)
		mustAddNode(t, g, Node{ID: "orphan", Methods: []string{"m"}})
		mustAddEdge(t, g, "orphan", "n3")
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("dead end node", func(t *testing.T) {
		g := linear(t)
		mustAddNode(t, g, Node{ID: "sink", Methods: []string{"m"}})
		mustAddEdge(t, g, "n2", "sink")
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "cannot reach any final") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("start with incoming", func(t *testing.T) {
		g := linear(t)
		mustAddEdge(t, g, "n2", "n1")
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "start node n1 has incoming") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("final with outgoing", func(t *testing.T) {
		g := linear(t)
		mustAddEdge(t, g, "n3", "n2")
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "final node n3 has outgoing") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestClone(t *testing.T) {
	g := diamond(t)
	cp := g.Clone()
	if cp.Stats() != g.Stats() {
		t.Fatalf("clone stats %+v != original %+v", cp.Stats(), g.Stats())
	}
	// Mutating the clone must not affect the original.
	mustAddNode(t, cp, Node{ID: "extra", Methods: []string{"m"}})
	if g.NumNodes() != 4 {
		t.Error("mutating clone affected original")
	}
}
