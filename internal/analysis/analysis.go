// Package analysis runs the paper's interface-mutation experiments (§4):
// it executes a suite against the original component to record the golden
// outputs, then once per mutant, and decides killed/alive by the paper's
// three criteria — crash, assertion violation absent in the original, and
// output difference. Tabulate/Render reproduce the layout of Tables 2-3.
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/component"
	"concat/internal/core/canon"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/obs"
	"concat/internal/sandbox"
	"concat/internal/store"
	"concat/internal/testexec"
)

// IsolationContext is the wire form the analysis ships to a subprocess case
// server (testexec.Options.IsolationContext) so the child can re-arm the
// active mutant. A resolver serving mutation campaigns decodes this shape;
// a nil Mutant (the reference run) means "original program".
type IsolationContext struct {
	Mutant *mutation.Mutant `json:"mutant,omitempty"`
}

// CaseFlags is the per-case Extra payload a mutation-aware case server ships
// back (testexec.Resolved.Finish): the child engine's reach/infection record.
// Under isolation the parent's engine never sees the instrumented uses, so
// the analysis reconstructs Reached/Infected by OR-ing these across cases.
type CaseFlags struct {
	Reached  bool `json:"reached"`
	Infected bool `json:"infected"`
}

// KillReason classifies how a mutant was killed, matching the paper's three
// criteria in §4.
type KillReason int

// Kill reasons.
const (
	// KillCrash — "the program (driver + mutant class) crashed while running
	// the test cases" (recovered panic).
	KillCrash KillReason = iota + 1
	// KillAssertion — "an exception was raised due to assertion violation,
	// during a mutant execution, given that this was not the case with the
	// original program".
	KillAssertion
	// KillOutputDiff — "the output of the program that finished execution
	// was different of the output of the original program".
	KillOutputDiff
)

// String names the reason.
func (k KillReason) String() string {
	switch k {
	case KillCrash:
		return "crash"
	case KillAssertion:
		return "assertion"
	case KillOutputDiff:
		return "output-diff"
	default:
		return fmt.Sprintf("reason(%d)", int(k))
	}
}

// MutantResult is the verdict on one mutant.
type MutantResult struct {
	Mutant mutation.Mutant
	Killed bool
	Reason KillReason // set when Killed
	// KillingCase is the first test case that killed the mutant.
	KillingCase string
	// Reached: the mutant's site executed at least once during the run.
	Reached bool
	// Infected: the mutation changed at least one value during the run.
	// A mutant that ran the entire suite without infecting any state cannot
	// be killed by this test set; it is an equivalence candidate, automating
	// the paper's manual marking of equivalent mutants.
	Infected bool
}

// Equivalent reports whether the surviving mutant is an equivalence
// candidate: its site executed (the fault was reached) yet the mutation
// never changed a value — the replacement is indistinguishable from the
// original on every execution of this suite. An unreached mutant is NOT
// equivalent, merely unexercised; it counts as a plain survivor, which is
// how the paper's Table 3 arrives at 0 equivalents despite 58 survivors.
func (r MutantResult) Equivalent() bool {
	return !r.Killed && r.Reached && !r.Infected
}

// Analysis runs the interface-mutation experiment: execute the suite once
// against the original component to record the golden outputs, then once per
// mutant, deciding killed/alive per the paper's three criteria.
type Analysis struct {
	// mutation.Engine carries the site table; the factory's instances must route
	// their instrumented uses through the same engine.
	Engine *mutation.Engine
	// Factory builds the component under test.
	Factory component.Factory
	// Suite is the test set under evaluation.
	Suite *driver.Suite
	// Exec configures suite execution (providers, seeds); the Oracle field
	// is managed by the analysis itself.
	Exec testexec.Options
	// Progress, if non-nil, receives one line per mutant verdict.
	Progress io.Writer
	// Parallelism > 1 analyzes mutants concurrently. Because an engine
	// holds the single active mutant, parallel workers need independent
	// engine+factory pairs — factory-scoped engines, one per worker, built
	// by cloning Engine's site table and binding a fresh factory to the
	// clone via NewFactory (or by a custom Provision). Results are
	// index-aligned with the input, so parallel and sequential runs produce
	// identical tables, kill matrices and killing cases.
	Parallelism int
	// NewFactory binds a component factory to the given engine. With it
	// set, parallel workers are provisioned automatically: each gets
	// Engine.Clone() plus NewFactory(clone). This is the standard way to
	// run a parallel campaign; Provision remains for components whose
	// worker state cannot be expressed as an engine clone.
	NewFactory func(*mutation.Engine) component.Factory
	// Provision builds one worker's private engine and factory, overriding
	// the NewFactory-based default. The engine must carry the same site
	// table as Engine.
	Provision func() (*mutation.Engine, component.Factory, error)
	// Store, when enabled, is the content-addressed verdict cache: before
	// executing a mutant the analysis looks up (spec-hash, suite-hash,
	// mutant-hash, seed, options-hash) and serves the recorded verdict on a
	// hit instead of running the suite. A mutant verdict is a pure function
	// of those inputs — parallelism, isolation and tracing are
	// determinism-neutral — so cached campaigns produce byte-identical
	// tables while re-executing only mutants whose hash inputs changed.
	// Hits and misses are tallied into Result.CacheHits/CacheMisses. Any
	// store.Backend works — file-backed, in-memory, or a remote peer's
	// store over HTTP — since verdicts are machine-independent.
	Store store.Backend
}

// provision resolves the worker-provisioning function: an explicit
// Provision wins, otherwise NewFactory over an engine clone, otherwise nil
// (parallel runs are then rejected).
func (a *Analysis) provision() func() (*mutation.Engine, component.Factory, error) {
	if a.Provision != nil {
		return a.Provision
	}
	if a.NewFactory != nil {
		return func() (*mutation.Engine, component.Factory, error) {
			eng := a.Engine.Clone()
			return eng, a.NewFactory(eng), nil
		}
	}
	return nil
}

// Result aggregates an analysis run.
type Result struct {
	Component string
	Operators []mutation.Operator
	Mutants   []MutantResult
	// Reference is the original program's report (no mutant active).
	Reference *testexec.Report
	// CacheHits/CacheMisses count the verdict-store lookups of this run
	// (both zero when no Store was configured). Hits are mutants served
	// from the store without execution; misses were executed and recorded.
	CacheHits   int
	CacheMisses int
}

// cacheState carries the campaign-constant parts of a verdict-store key plus
// the run's hit/miss tallies. The base key is computed once per Run — only
// the mutant hash varies between lookups — and the counters are atomics so
// parallel workers can share one state.
type cacheState struct {
	base         store.Key
	hits, misses atomic.Int64
}

// cacheState hashes the campaign-constant key components (spec, suite, seed,
// options). Returns nil when no Store is configured.
func (a *Analysis) cacheState() (*cacheState, error) {
	if !store.Enabled(a.Store) {
		return nil, nil
	}
	spec := a.Factory.Spec()
	if spec == nil {
		return nil, errors.New("mutation: verdict store requires a factory with a t-spec (the spec hash is part of the cache key)")
	}
	specHash, err := spec.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("mutation: hashing spec: %w", err)
	}
	suiteHash, err := canon.Hash(a.Suite)
	if err != nil {
		return nil, fmt.Errorf("mutation: hashing suite: %w", err)
	}
	optHash, err := a.Exec.ResultFingerprint()
	if err != nil {
		return nil, fmt.Errorf("mutation: fingerprinting options: %w", err)
	}
	return &cacheState{base: store.Key{
		Kind:    store.KindMutantVerdict,
		Spec:    specHash,
		Suite:   suiteHash,
		Seed:    a.Exec.Seed,
		Options: optHash,
	}}, nil
}

// Run executes the analysis over the given mutants. It fails fast if the
// original (unmutated) run does not complete cleanly — an unreliable
// reference invalidates every verdict.
func (a *Analysis) Run(mutants []mutation.Mutant) (*Result, error) {
	if a.Engine == nil || a.Factory == nil || a.Suite == nil {
		return nil, errors.New("mutation: analysis requires engine, factory and suite")
	}
	cache, err := a.cacheState()
	if err != nil {
		return nil, err
	}
	a.Engine.Deactivate()
	if a.Exec.Isolation == testexec.IsolatePool && a.Exec.WorkerPool == nil {
		// One warm worker pool for the whole campaign: the reference run and
		// every mutant dispatch batches to the same long-lived workers, so a
		// provisioned worker executes many mutants between restarts
		// (mutant-schemata-style amortization). Each batch carries its own
		// isolation context, which is what re-arms the right mutant child-side.
		size := a.Exec.PoolSize
		if size <= 0 {
			size = a.Parallelism
		}
		p, err := testexec.NewWorkerPool(a.Exec, size)
		if err != nil {
			return nil, fmt.Errorf("mutation: building worker pool: %w", err)
		}
		defer p.Close()
		a.Exec.WorkerPool = p
		defer func() { a.Exec.WorkerPool = nil }()
	}
	// The campaign span roots the whole analysis: the reference run and
	// every mutant hang under it. Trace/Metrics ride on a.Exec so the same
	// Options plumbing reaches suites, cases and isolated children.
	campaign := a.Exec.Trace.Start(a.Exec.TraceParent, obs.KindCampaign, a.Suite.Component)
	campaign.SetAttr("mutants", strconv.Itoa(len(mutants)))
	defer campaign.End()
	refOpts := a.Exec
	refOpts.Oracle = nil
	refSpan := a.Exec.Trace.Start(campaign.ID(), obs.KindReference, a.Suite.Component)
	refOpts.TraceParent = refSpan.ID()
	ref, err := testexec.Run(a.Suite, a.Factory, refOpts)
	refSpan.End()
	if err != nil {
		return nil, fmt.Errorf("mutation: reference run: %w", err)
	}
	for _, res := range ref.Results {
		if res.Outcome == testexec.OutcomeError {
			return nil, fmt.Errorf("mutation: reference run has harness error in %s: %s", res.CaseID, res.Detail)
		}
	}
	golden := testexec.NewGolden(ref)

	out := &Result{Component: a.Suite.Component, Reference: ref}
	var results []MutantResult
	if a.Parallelism > 1 && len(mutants) > 1 {
		results, err = a.runParallel(mutants, golden, campaign.ID(), cache)
		if err != nil {
			return nil, err
		}
	} else {
		for _, m := range mutants {
			res, err := a.runMutant(a.Engine, a.Factory, m, golden, campaign.ID(), cache)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}
	if cache != nil {
		out.CacheHits = int(cache.hits.Load())
		out.CacheMisses = int(cache.misses.Load())
	}
	seenOps := map[mutation.Operator]bool{}
	for i, res := range results {
		m := mutants[i]
		if !seenOps[m.Operator] {
			seenOps[m.Operator] = true
			out.Operators = append(out.Operators, m.Operator)
		}
		out.Mutants = append(out.Mutants, res)
		if a.Progress != nil {
			status := "ALIVE"
			if res.Killed {
				status = "killed by " + res.Reason.String()
			} else if res.Equivalent() {
				status = "ALIVE (equivalence candidate)"
			}
			fmt.Fprintf(a.Progress, "%-60s %s\n", m.ID, status)
		}
	}
	sort.Slice(out.Operators, func(i, j int) bool { return out.Operators[i] < out.Operators[j] })
	return out, nil
}

// runParallel fans the mutants over Parallelism workers, each with its own
// engine and factory from Provision. The results slice is index-aligned
// with the input so every downstream table matches the sequential run.
func (a *Analysis) runParallel(mutants []mutation.Mutant, golden *testexec.Golden, campaignSpan obs.SpanID, cache *cacheState) ([]MutantResult, error) {
	provision := a.provision()
	if provision == nil {
		return nil, errors.New("mutation: parallel analysis requires NewFactory or Provision")
	}
	workers := a.Parallelism
	if workers > len(mutants) {
		workers = len(mutants)
	}
	results := make([]MutantResult, len(mutants))
	errs := make([]error, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Provisioning can hit the same transient host contention as process
		// spawning (a factory that opens files or forks helpers); retry under
		// the sandbox policy so a momentary EAGAIN does not abort a campaign.
		var eng *mutation.Engine
		var factory component.Factory
		err := sandbox.Retry(sandbox.DefaultRetryPolicy(), func() error {
			var perr error
			eng, factory, perr = provision()
			return perr
		})
		if err != nil {
			close(jobs)
			wg.Wait()
			return nil, fmt.Errorf("mutation: provisioning worker %d: %w", w, err)
		}
		wg.Add(1)
		go func(w int, eng *mutation.Engine, factory component.Factory) {
			defer wg.Done()
			for idx := range jobs {
				if errs[w] != nil {
					continue // keep draining so the sender never blocks
				}
				res, err := a.runMutant(eng, factory, mutants[idx], golden, campaignSpan, cache)
				if err != nil {
					errs[w] = err
					continue
				}
				results[idx] = res
			}
		}(w, eng, factory)
	}
	for i := range mutants {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runMutant executes the suite against one activated mutant on the given
// engine/factory pair. With a verdict store configured it first looks the
// mutant up by content address and, on a hit, replays the recorded verdict
// without executing the suite.
func (a *Analysis) runMutant(eng *mutation.Engine, factory component.Factory, m mutation.Mutant, golden *testexec.Golden, campaignSpan obs.SpanID, cache *cacheState) (MutantResult, error) {
	var key store.Key
	if cache != nil {
		mhash, err := m.Hash()
		if err != nil {
			return MutantResult{}, fmt.Errorf("mutation: hashing mutant %s: %w", m.ID, err)
		}
		key = cache.base
		key.Mutant = mhash
		var v store.Verdict
		// A lookup error (corrupt entry) is a miss: the campaign re-executes
		// and the Put below repairs the entry.
		if hit, _ := a.Store.Get(key, &v); hit {
			cache.hits.Add(1)
			res := MutantResult{
				Mutant:      m,
				Killed:      v.Killed,
				Reason:      KillReason(v.Reason),
				KillingCase: v.KillingCase,
				Reached:     v.Reached,
				Infected:    v.Infected,
			}
			span := a.Exec.Trace.Start(campaignSpan, obs.KindMutant, m.ID)
			span.SetAttr("operator", m.Operator.String())
			span.SetAttr("cached", "true")
			span.SetAttr("killed", strconv.FormatBool(res.Killed))
			if res.Killed {
				span.SetAttr("reason", res.Reason.String())
				span.SetAttr("killingCase", res.KillingCase)
			} else if res.Equivalent() {
				span.SetAttr("equivalent", "true")
			}
			span.End()
			if met := a.Exec.Metrics; met != nil {
				met.Inc("mutant.cache-hit", 1)
				switch {
				case res.Killed:
					met.Inc("mutant.killed", 1)
					met.Inc("mutant.kill."+res.Reason.String(), 1)
				case res.Equivalent():
					met.Inc("mutant.equivalent", 1)
				default:
					met.Inc("mutant.alive", 1)
				}
			}
			return res, nil
		}
		cache.misses.Add(1)
		if met := a.Exec.Metrics; met != nil {
			met.Inc("mutant.cache-miss", 1)
		}
	}

	if err := eng.Activate(m); err != nil {
		return MutantResult{}, fmt.Errorf("mutation: %w", err)
	}
	defer eng.Deactivate()

	mspan := a.Exec.Trace.Start(campaignSpan, obs.KindMutant, m.ID)
	mspan.SetAttr("operator", m.Operator.String())
	defer mspan.End()
	var began time.Time
	if a.Exec.Metrics != nil {
		began = time.Now()
	}

	opts := a.Exec
	opts.Oracle = nil // compare via golden.Differs below, on full results
	opts.TraceParent = mspan.ID()
	isolated := opts.Isolation == testexec.IsolateSubprocess || opts.Isolation == testexec.IsolatePool
	if isolated {
		// The mutant executes inside the case server, not in this process:
		// ship it through the opaque isolation context so the child's
		// resolver can re-arm it on its own engine.
		raw, err := json.Marshal(IsolationContext{Mutant: &m})
		if err != nil {
			return MutantResult{}, fmt.Errorf("mutation: encoding mutant %s for isolation: %w", m.ID, err)
		}
		opts.IsolationContext = raw
	}
	rep, err := testexec.Run(a.Suite, factory, opts)
	if err != nil {
		return MutantResult{}, fmt.Errorf("mutation: mutant %s: %w", m.ID, err)
	}
	res := MutantResult{Mutant: m, Reached: eng.Reached(), Infected: eng.Infected()}
	if isolated {
		// Reach/infection happened in the children; reconstruct the flags
		// from the per-case Extra payloads. A case that died fatally ships
		// no flags — reaching a fault that kills the process still counts,
		// but only via cases that lived to report, so fatal mutants rely on
		// the crash kill, not the equivalence bookkeeping.
		for _, caseRes := range rep.Results {
			var f CaseFlags
			if len(caseRes.Extra) > 0 && json.Unmarshal(caseRes.Extra, &f) == nil {
				res.Reached = res.Reached || f.Reached
				res.Infected = res.Infected || f.Infected
			}
		}
	}
	for _, caseRes := range rep.Results {
		refOutcome := golden.Outcomes[caseRes.CaseID]
		switch {
		case caseRes.Outcome == testexec.OutcomePanic && refOutcome != testexec.OutcomePanic.String():
			res.Killed, res.Reason, res.KillingCase = true, KillCrash, caseRes.CaseID
		case caseRes.Outcome == testexec.OutcomeTimeout && refOutcome != testexec.OutcomeTimeout.String():
			// A hanging mutant is killed by timeout — the paper's testbed
			// equivalent of criterion (i), "the program crashed".
			res.Killed, res.Reason, res.KillingCase = true, KillCrash, caseRes.CaseID
		case caseRes.Outcome == testexec.OutcomeResourceExhausted && refOutcome != testexec.OutcomeResourceExhausted.String():
			// A mutant that burns the step budget or floods the transcript
			// is a runaway caught at a deterministic point — criterion (i)
			// again, like the timeout, but reproducible bit-for-bit.
			res.Killed, res.Reason, res.KillingCase = true, KillCrash, caseRes.CaseID
		case caseRes.Outcome == testexec.OutcomeViolation && refOutcome != testexec.OutcomeViolation.String():
			res.Killed, res.Reason, res.KillingCase = true, KillAssertion, caseRes.CaseID
		case golden.Differs(caseRes):
			res.Killed, res.Reason, res.KillingCase = true, KillOutputDiff, caseRes.CaseID
		}
		if res.Killed {
			break
		}
	}
	mspan.SetAttr("killed", strconv.FormatBool(res.Killed))
	if res.Killed {
		mspan.SetAttr("reason", res.Reason.String())
		mspan.SetAttr("killingCase", res.KillingCase)
		if kc, ok := rep.Result(res.KillingCase); ok {
			mspan.SetAttr("killingOutcome", kc.Outcome.String())
		}
	} else if res.Equivalent() {
		mspan.SetAttr("equivalent", "true")
	}
	if met := a.Exec.Metrics; met != nil {
		switch {
		case res.Killed:
			met.Inc("mutant.killed", 1)
			met.Inc("mutant.kill."+res.Reason.String(), 1)
			// Per-operator kill latency: wall time from activation to
			// verdict, labelled by mutant so the slowest kills are visible.
			met.Observe("mutant.kill-latency."+m.Operator.String(), m.ID, time.Since(began))
		case res.Equivalent():
			met.Inc("mutant.equivalent", 1)
		default:
			met.Inc("mutant.alive", 1)
		}
	}
	if cache != nil {
		v := store.Verdict{
			Killed:      res.Killed,
			Reason:      int(res.Reason),
			KillingCase: res.KillingCase,
			Reached:     res.Reached,
			Infected:    res.Infected,
		}
		// A verdict we computed but cannot record poisons the next warm run's
		// accounting, so a Put failure is a campaign error, not a warning.
		if err := a.Store.Put(key, v); err != nil {
			return MutantResult{}, fmt.Errorf("mutation: recording verdict for %s: %w", m.ID, err)
		}
	}
	return res, nil
}

// OperatorRow is one line of the paper's Tables 2/3: per-operator totals.
type OperatorRow struct {
	Operator   mutation.Operator
	Mutants    int
	Killed     int
	Equivalent int
}

// Score is the mutation score: killed / (mutants - equivalent). It returns
// 1 when there are no scoreable mutants.
func (r OperatorRow) Score() float64 {
	denom := r.Mutants - r.Equivalent
	if denom <= 0 {
		return 1
	}
	return float64(r.Killed) / float64(denom)
}

// Table is the Tables 2/3 data structure: per-method mutant counts, then
// per-operator kill totals and scores.
type Table struct {
	Component string
	// MethodCounts[method][operator] is the number of mutants generated.
	MethodCounts map[string]map[mutation.Operator]int
	Methods      []string // sorted
	Rows         []OperatorRow
	Total        OperatorRow // operator field unset
	// KillsByReason breaks down the kills (the paper: "from the 652 mutants
	// killed, 59 were due to assertion violation").
	KillsByReason map[KillReason]int
}

// Tabulate builds the Tables 2/3 summary from an analysis result.
func (r *Result) Tabulate() *Table {
	t := &Table{
		Component:     r.Component,
		MethodCounts:  map[string]map[mutation.Operator]int{},
		KillsByReason: map[KillReason]int{},
	}
	rows := map[mutation.Operator]*OperatorRow{}
	for _, op := range mutation.AllOperators {
		rows[op] = &OperatorRow{Operator: op}
	}
	methodSeen := map[string]bool{}
	for _, mr := range r.Mutants {
		op := mr.Mutant.Operator
		row, ok := rows[op]
		if !ok {
			row = &OperatorRow{Operator: op}
			rows[op] = row
		}
		row.Mutants++
		if mr.Killed {
			row.Killed++
			t.KillsByReason[mr.Reason]++
		} else if mr.Equivalent() {
			row.Equivalent++
		}
		method := mr.Mutant.Method
		if !methodSeen[method] {
			methodSeen[method] = true
			t.Methods = append(t.Methods, method)
		}
		if t.MethodCounts[method] == nil {
			t.MethodCounts[method] = map[mutation.Operator]int{}
		}
		t.MethodCounts[method][op]++
	}
	sort.Strings(t.Methods)
	for _, op := range mutation.AllOperators {
		row := rows[op]
		if row.Mutants == 0 {
			continue
		}
		t.Rows = append(t.Rows, *row)
		t.Total.Mutants += row.Mutants
		t.Total.Killed += row.Killed
		t.Total.Equivalent += row.Equivalent
	}
	return t
}

// Render prints the table in the paper's layout.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Results obtained for the %s class\n", t.Component)
	fmt.Fprintf(&b, "%-12s", "Method")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, " %14s", row.Operator)
	}
	fmt.Fprintf(&b, " %8s\n", "Total")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, "%-12s", m)
		rowTotal := 0
		for _, row := range t.Rows {
			n := t.MethodCounts[m][row.Operator]
			rowTotal += n
			fmt.Fprintf(&b, " %14d", n)
		}
		fmt.Fprintf(&b, " %8d\n", rowTotal)
	}
	fmt.Fprintf(&b, "%-12s", "#mutants")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, " %14d", row.Mutants)
	}
	fmt.Fprintf(&b, " %8d\n", t.Total.Mutants)
	fmt.Fprintf(&b, "%-12s", "#killed")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, " %14d", row.Killed)
	}
	fmt.Fprintf(&b, " %8d\n", t.Total.Killed)
	fmt.Fprintf(&b, "%-12s", "#equivalent")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, " %14d", row.Equivalent)
	}
	fmt.Fprintf(&b, " %8d\n", t.Total.Equivalent)
	fmt.Fprintf(&b, "%-12s", "Score")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, " %13.1f%%", row.Score()*100)
	}
	fmt.Fprintf(&b, " %7.1f%%\n", t.Total.Score()*100)
	if n := t.KillsByReason[KillAssertion]; n > 0 {
		fmt.Fprintf(&b, "(%d of %d kills due to assertion violation, %d to crash, %d to output difference)\n",
			n, t.Total.Killed, t.KillsByReason[KillCrash], t.KillsByReason[KillOutputDiff])
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("mutation: rendering table: %w", err)
	}
	return nil
}
