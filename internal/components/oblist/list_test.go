package oblist

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/mutation"
)

func ints(vs ...int64) []domain.Value {
	out := make([]domain.Value, len(vs))
	for i, v := range vs {
		out[i] = domain.Int(v)
	}
	return out
}

func listOf(t *testing.T, vs ...int64) *ObList {
	t.Helper()
	l := NewObList(10, nil)
	for _, v := range vs {
		l.AddTail(domain.Int(v))
	}
	return l
}

func valuesEqual(t *testing.T, l *ObList, want ...int64) {
	t.Helper()
	got := l.Values()
	if len(got) != len(want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].MustInt() != w {
			t.Fatalf("values[%d] = %v, want %d", i, got[i], w)
		}
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatalf("invariant after operation: %v", err)
	}
}

func TestNewObListDefaults(t *testing.T) {
	l := NewObList(0, nil)
	if l.blockSize != 10 {
		t.Errorf("default blockSize = %d", l.blockSize)
	}
	if !l.IsEmpty() || l.GetCount() != 0 {
		t.Error("new list should be empty")
	}
	if l.Engine() != nil {
		t.Error("engine should be nil")
	}
}

func TestAddHeadAddTail(t *testing.T) {
	l := NewObList(10, nil)
	l.AddHead(domain.Int(2))
	l.AddHead(domain.Int(1))
	l.AddTail(domain.Int(3))
	valuesEqual(t, l, 1, 2, 3)
	if l.GetCount() != 3 || l.IsEmpty() {
		t.Errorf("count = %d", l.GetCount())
	}
}

func TestRemoveHeadTail(t *testing.T) {
	l := listOf(t, 1, 2, 3)
	v, err := l.RemoveHead()
	if err != nil || v.MustInt() != 1 {
		t.Fatalf("RemoveHead = %v, %v", v, err)
	}
	v, err = l.RemoveTail()
	if err != nil || v.MustInt() != 3 {
		t.Fatalf("RemoveTail = %v, %v", v, err)
	}
	valuesEqual(t, l, 2)
	if _, err := l.RemoveHead(); err != nil {
		t.Fatalf("RemoveHead last: %v", err)
	}
	valuesEqual(t, l)
	if _, err := l.RemoveHead(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty RemoveHead err = %v", err)
	}
	if _, err := l.RemoveTail(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty RemoveTail err = %v", err)
	}
}

func TestGetHeadTail(t *testing.T) {
	l := listOf(t, 5, 6)
	if v, err := l.GetHead(); err != nil || v.MustInt() != 5 {
		t.Errorf("GetHead = %v, %v", v, err)
	}
	if v, err := l.GetTail(); err != nil || v.MustInt() != 6 {
		t.Errorf("GetTail = %v, %v", v, err)
	}
	valuesEqual(t, l, 5, 6) // observers do not mutate
	empty := listOf(t)
	if _, err := empty.GetHead(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty GetHead err = %v", err)
	}
	if _, err := empty.GetTail(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty GetTail err = %v", err)
	}
}

func TestGetAtSetAt(t *testing.T) {
	l := listOf(t, 10, 20, 30)
	for i, want := range []int64{10, 20, 30} {
		v, err := l.GetAt(int64(i))
		if err != nil || v.MustInt() != want {
			t.Errorf("GetAt(%d) = %v, %v", i, v, err)
		}
	}
	if _, err := l.GetAt(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("GetAt(-1) err = %v", err)
	}
	if _, err := l.GetAt(3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("GetAt(3) err = %v", err)
	}
	if err := l.SetAt(1, domain.Int(99)); err != nil {
		t.Fatalf("SetAt: %v", err)
	}
	valuesEqual(t, l, 10, 99, 30)
	if err := l.SetAt(9, domain.Int(1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetAt(9) err = %v", err)
	}
}

func TestRemoveAt(t *testing.T) {
	l := listOf(t, 1, 2, 3, 4)
	v, err := l.RemoveAt(0) // head
	if err != nil || v.MustInt() != 1 {
		t.Fatalf("RemoveAt(0) = %v, %v", v, err)
	}
	valuesEqual(t, l, 2, 3, 4)
	v, err = l.RemoveAt(2) // tail
	if err != nil || v.MustInt() != 4 {
		t.Fatalf("RemoveAt(tail) = %v, %v", v, err)
	}
	valuesEqual(t, l, 2, 3)
	v, err = l.RemoveAt(1) // middle/tail
	if err != nil || v.MustInt() != 3 {
		t.Fatalf("RemoveAt(1) = %v, %v", v, err)
	}
	valuesEqual(t, l, 2)
	if _, err := l.RemoveAt(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("RemoveAt(5) err = %v", err)
	}
	if _, err := l.RemoveAt(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("RemoveAt(-1) err = %v", err)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	l := listOf(t, 2, 4)
	if err := l.InsertBefore(0, domain.Int(1)); err != nil {
		t.Fatalf("InsertBefore(0): %v", err)
	}
	valuesEqual(t, l, 1, 2, 4)
	if err := l.InsertBefore(2, domain.Int(3)); err != nil {
		t.Fatalf("InsertBefore(2): %v", err)
	}
	valuesEqual(t, l, 1, 2, 3, 4)
	if err := l.InsertAfter(3, domain.Int(5)); err != nil {
		t.Fatalf("InsertAfter(tail): %v", err)
	}
	valuesEqual(t, l, 1, 2, 3, 4, 5)
	if err := l.InsertAfter(0, domain.Int(9)); err != nil {
		t.Fatalf("InsertAfter(0): %v", err)
	}
	valuesEqual(t, l, 1, 9, 2, 3, 4, 5)
	if err := l.InsertBefore(99, domain.Int(0)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("InsertBefore(99) err = %v", err)
	}
	if err := l.InsertAfter(-1, domain.Int(0)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("InsertAfter(-1) err = %v", err)
	}
}

func TestFind(t *testing.T) {
	l := listOf(t, 7, 8, 7)
	if i := l.Find(domain.Int(7)); i != 0 {
		t.Errorf("Find(7) = %d", i)
	}
	if i := l.Find(domain.Int(8)); i != 1 {
		t.Errorf("Find(8) = %d", i)
	}
	if i := l.Find(domain.Int(9)); i != -1 {
		t.Errorf("Find(9) = %d", i)
	}
}

func TestRemoveAllAndSetValues(t *testing.T) {
	l := listOf(t, 1, 2, 3)
	l.RemoveAll()
	valuesEqual(t, l)
	l.SetValues(ints(9, 8))
	valuesEqual(t, l, 9, 8)
}

func TestInvariantDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*ObList)
	}{
		{"negative count", func(l *ObList) { l.count = -1 }},
		{"count too high", func(l *ObList) { l.count = 5 }},
		{"count too low", func(l *ObList) { l.count = 1 }},
		{"dangling head", func(l *ObList) { l.head = nil }},
		{"dangling tail next", func(l *ObList) { l.tail.next = &node{val: domain.Int(0)} }},
		{"head prev set", func(l *ObList) { l.head.prev = l.tail }},
		{"broken backward chain", func(l *ObList) { l.tail.prev = nil }},
		{"empty with node", func(l *ObList) { l.count = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := listOf(t, 1, 2, 3)
			if err := l.CheckInvariant(); err != nil {
				t.Fatalf("healthy invariant: %v", err)
			}
			tc.corrupt(l)
			if err := l.CheckInvariant(); !errors.Is(err, bit.ErrViolation) {
				t.Errorf("corruption undetected: %v", err)
			}
		})
	}
}

func TestInstanceLifecycle(t *testing.T) {
	f := NewFactory()
	inst, err := f.New("ObList", nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	if _, err := inst.Invoke("AddHead", ints(4)); err != nil {
		t.Fatalf("AddHead: %v", err)
	}
	if _, err := inst.Invoke("AddTail", ints(5)); err != nil {
		t.Fatalf("AddTail: %v", err)
	}
	out, err := inst.Invoke("GetCount", nil)
	if err != nil || out[0].MustInt() != 2 {
		t.Fatalf("GetCount = %v, %v", out, err)
	}
	out, err = inst.Invoke("IsEmpty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := out[0].AsBool(); b {
		t.Error("IsEmpty should be false")
	}
	if err := inst.InvariantTest(); err != nil {
		t.Errorf("InvariantTest: %v", err)
	}
	var sb strings.Builder
	if err := inst.Reporter(&sb); err != nil {
		t.Fatalf("Reporter: %v", err)
	}
	if !strings.Contains(sb.String(), "ObList{count: 2") {
		t.Errorf("report = %q", sb.String())
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("GetCount", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy err = %v", err)
	}
}

func TestInstanceDispatchErrors(t *testing.T) {
	f := NewFactory()
	inst, _ := f.New("ObList", nil)
	if _, err := inst.Invoke("Nope", nil); !errors.Is(err, component.ErrUnknownMethod) {
		t.Errorf("unknown method err = %v", err)
	}
	if _, err := inst.Invoke("AddHead", nil); err == nil {
		t.Error("AddHead without args should fail")
	}
	if _, err := inst.Invoke("SetAt", ints(0)); err == nil {
		t.Error("SetAt with one arg should fail")
	}
}

func TestFactoryConstructors(t *testing.T) {
	f := NewFactory()
	if f.Name() != Name {
		t.Errorf("Name() = %q", f.Name())
	}
	if _, err := f.New("Nope", nil); err == nil {
		t.Error("unknown ctor should fail")
	}
	inst, err := f.New("ObListSized", ints(32))
	if err != nil {
		t.Fatal(err)
	}
	if inst.(*Instance).blockSize != 32 {
		t.Error("sized ctor ignored block size")
	}
	if _, err := f.New("ObListSized", nil); err == nil {
		t.Error("ObListSized without args should fail")
	}
}

func TestSpecValidAndModelSize(t *testing.T) {
	s := Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	g, err := s.TFM()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 || g.NumEdges() != 24 {
		t.Errorf("model = %v (experiments assume 10 nodes / 24 links)", g.Stats())
	}
}

func TestSitesRegistrable(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	methods := eng.Methods()
	want := []string{"AddHead", "RemoveAt", "RemoveHead"}
	if len(methods) != len(want) {
		t.Fatalf("methods = %v", methods)
	}
	for i, m := range want {
		if methods[i] != m {
			t.Errorf("methods[%d] = %s, want %s", i, methods[i], m)
		}
	}
	if n := len(eng.Enumerate(nil, nil)); n == 0 {
		t.Fatal("no mutants")
	}
}

func TestMutatedAddHeadBreaksInvariant(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	// newCount := oldCount + 1 replaced by global count (pre-increment value):
	// the count stops growing.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepGlob}, []string{"AddHead"}) {
		if m.Site == "AddHead/newCount" && m.Replacement == "count" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	l := NewObList(10, eng)
	l.AddHead(domain.Int(1))
	if err := l.CheckInvariant(); !errors.Is(err, bit.ErrViolation) {
		t.Errorf("mutated AddHead should break the invariant, got %v", err)
	}
	if !eng.Infected() {
		t.Error("mutant should have infected state")
	}
}

func TestMutatedRemoveAtChangesOutput(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepLoc}, []string{"RemoveAt"}) {
		if m.Site == "RemoveAt/out" && m.Replacement == "idx" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	l := NewObList(10, eng)
	l.SetValues(ints(100, 200, 300))
	v, err := l.RemoveAt(1)
	if err != nil {
		t.Fatalf("RemoveAt: %v", err)
	}
	// The returned value is replaced by the index (1), not the element (200).
	if v.MustInt() != 1 {
		t.Errorf("mutated RemoveAt returned %v", v)
	}
}

func TestListBehavesLikeSliceProperty(t *testing.T) {
	// Model-based property: the list agrees with a plain slice model under
	// random op sequences, and the invariant holds throughout.
	type op struct {
		Kind  uint8
		Val   int16
		Index uint8
	}
	prop := func(ops []op) bool {
		l := NewObList(10, nil)
		var model []int64
		for _, o := range ops {
			v := int64(o.Val)
			switch o.Kind % 6 {
			case 0:
				l.AddHead(domain.Int(v))
				model = append([]int64{v}, model...)
			case 1:
				l.AddTail(domain.Int(v))
				model = append(model, v)
			case 2:
				got, err := l.RemoveHead()
				if len(model) == 0 {
					if !errors.Is(err, ErrEmpty) {
						return false
					}
				} else {
					if err != nil || got.MustInt() != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				got, err := l.RemoveTail()
				if len(model) == 0 {
					if !errors.Is(err, ErrEmpty) {
						return false
					}
				} else {
					if err != nil || got.MustInt() != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			case 4:
				i := int64(o.Index)
				got, err := l.RemoveAt(i)
				if i >= int64(len(model)) {
					if !errors.Is(err, ErrOutOfRange) {
						return false
					}
				} else {
					if err != nil || got.MustInt() != model[i] {
						return false
					}
					model = append(model[:i], model[i+1:]...)
				}
			case 5:
				i := int64(o.Index)
				err := l.SetAt(i, domain.Int(v))
				if i >= int64(len(model)) {
					if !errors.Is(err, ErrOutOfRange) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model[i] = v
				}
			}
			if l.GetCount() != int64(len(model)) {
				return false
			}
			if err := l.CheckInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetTestState(t *testing.T) {
	f := NewFactory()
	inst, _ := f.New("ObList", nil)
	ss, ok := inst.(component.StateSettable)
	if !ok {
		t.Fatal("ObList instance should implement StateSettable")
	}
	if err := ss.SetTestState(nil); !errors.Is(err, bit.ErrBITDisabled) {
		t.Errorf("off-mode err = %v", err)
	}
	inst.SetBITMode(bit.ModeTest)
	err := ss.SetTestState(map[string]domain.Value{
		"items":     domain.Object(ints(5, 6, 7)),
		"blockSize": domain.Int(32),
	})
	if err != nil {
		t.Fatalf("SetTestState: %v", err)
	}
	out, _ := inst.Invoke("GetCount", nil)
	if out[0].MustInt() != 3 {
		t.Errorf("count after set = %v", out)
	}
	out, _ = inst.Invoke("GetHead", nil)
	if out[0].MustInt() != 5 {
		t.Errorf("head after set = %v", out)
	}
	if err := inst.InvariantTest(); err != nil {
		t.Errorf("invariant after set: %v", err)
	}
	// Bad payload types.
	if err := ss.SetTestState(map[string]domain.Value{"items": domain.Int(1)}); err == nil {
		t.Error("non-slice items should fail")
	}
	if err := ss.SetTestState(map[string]domain.Value{"blockSize": domain.Str("x")}); err == nil {
		t.Error("string blockSize should fail")
	}
	// Reset.
	if err := ss.ResetTestState(); err != nil {
		t.Fatalf("ResetTestState: %v", err)
	}
	out, _ = inst.Invoke("IsEmpty", nil)
	if b, _ := out[0].AsBool(); !b {
		t.Error("reset should empty the list")
	}
}
