package sandbox

import "sync/atomic"

// Budget is a cooperative resource budget with two dimensions: steps
// (units of work — method dispatches, BIT guard entries, walk nodes) and
// bytes (allocation — transcript output, reporter dumps). A dimension with
// a non-positive limit is unlimited. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Budget never exhausts), so callers
// can thread an optional budget without nil checks at every charge point.
//
// Exhaustion is deterministic: the Nth charge against a limit of N-1 fails
// no matter how the work is scheduled, which is what keeps resource-bounded
// reports bit-for-bit identical between serial and parallel runs.
type Budget struct {
	steps     atomic.Int64
	bytes     atomic.Int64
	stepLimit int64
	byteLimit int64
}

// NewBudget returns a budget with the given limits; a non-positive limit
// leaves that dimension unbounded.
func NewBudget(steps, bytes int64) *Budget {
	return &Budget{stepLimit: steps, byteLimit: bytes}
}

// Step charges one unit of work. It returns an ExhaustedError once the
// step limit is exceeded.
func (b *Budget) Step() error {
	if b == nil || b.stepLimit <= 0 {
		return nil
	}
	if b.steps.Add(1) > b.stepLimit {
		return &ExhaustedError{Resource: "step", Limit: b.stepLimit}
	}
	return nil
}

// Charge charges n bytes of allocation. It returns an ExhaustedError once
// the byte limit is exceeded.
func (b *Budget) Charge(n int64) error {
	if b == nil || b.byteLimit <= 0 {
		return nil
	}
	if b.bytes.Add(n) > b.byteLimit {
		return &ExhaustedError{Resource: "alloc", Limit: b.byteLimit}
	}
	return nil
}

// StepsUsed returns the units of work charged so far.
func (b *Budget) StepsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// BytesUsed returns the bytes charged so far.
func (b *Budget) BytesUsed() int64 {
	if b == nil {
		return 0
	}
	return b.bytes.Load()
}
