// Reusekit: the three reuse mechanisms of the paper's §2.1 — "by
// inheritance (as is the case with abstract classes), by parameterization
// (as is the case with generic or template classes) or by composition" —
// each exercised with the test-reuse machinery it enables.
//
//   - Abstract classes: a suite generated from an abstract container spec is
//     adapted to two concrete components and passes on both (§3.2 iii).
//   - Parameterization: a generic Stack[T]'s spec template is instantiated
//     for int and string elements; the model is shared, only the element
//     domain differs (§3.4.1's "indicate a set of possible types").
//   - Composition: the Product component uses Provider objects as method
//     parameters; its test resources work unchanged, with the structured
//     parameters completed by a provider map.
package main

import (
	"fmt"
	"os"

	"concat"
	"concat/internal/components/oblist"
	"concat/internal/components/product"
	"concat/internal/components/sortlist"
	"concat/internal/components/stack"
	"concat/internal/history"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reusekit:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := abstractReuse(); err != nil {
		return fmt.Errorf("abstract-class reuse: %w", err)
	}
	if err := parameterizedReuse(); err != nil {
		return fmt.Errorf("parameterization reuse: %w", err)
	}
	if err := compositionReuse(); err != nil {
		return fmt.Errorf("composition reuse: %w", err)
	}
	return nil
}

// abstractReuse generates once from an abstract spec and runs the adapted
// suite against two concrete classes.
func abstractReuse() error {
	fmt.Println("— reuse by inheritance: tests generated for an abstract class —")
	elem := tspec.RangeInt(0, 999)
	abs, err := tspec.NewBuilder("AbstractList").
		Abstract().
		Attribute("count", tspec.RangeInt(0, 1_000_000)).
		Method("a1", "AbstractList", "", tspec.CatConstructor).
		Method("a2", "~AbstractList", "", tspec.CatDestructor).
		Method("a3", "AddHead", "", tspec.CatUpdate).
		Param("v", elem).
		Method("a4", "RemoveHead", "int", tspec.CatUpdate).
		Method("a5", "GetCount", "int", tspec.CatAccess).
		Node("n1", true, "a1").
		Node("n2", false, "a3").
		Node("n3", false, "a4").
		Node("n4", false, "a5").
		Node("n5", false, "a2").
		Edge("n1", "n2").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n3", "n4").
		Edge("n3", "n5").
		Edge("n4", "n5").
		Build()
	if err != nil {
		return err
	}
	suite, err := concat.Generate(abs, concat.GenOptions{Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("  abstract spec %q: %s\n", abs.Class.Name, suite.Stats())
	for _, target := range []concat.Factory{oblist.NewFactory(), sortlist.NewFactory()} {
		adapted, err := history.AdaptSuite(abs, target.Spec(), suite)
		if err != nil {
			return err
		}
		rep, err := testexec.Run(adapted, target, testexec.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("  adapted to %-16s %s\n", target.Name()+":", rep.Summary())
		if !rep.AllPassed() {
			return fmt.Errorf("%s failed the abstract suite", target.Name())
		}
	}
	return nil
}

// parameterizedReuse instantiates the generic stack for two element types.
func parameterizedReuse() error {
	fmt.Println("\n— reuse by parameterization: a generic Stack[T] —")
	intStack, err := stack.IntStack()
	if err != nil {
		return err
	}
	strStack, err := stack.StringStack()
	if err != nil {
		return err
	}
	for _, f := range []concat.Factory{intStack, strStack} {
		suite, err := concat.Generate(f.Spec(), concat.GenOptions{
			Seed: 42, ExpandAlternatives: true, MaxAlternatives: 2,
		})
		if err != nil {
			return err
		}
		rep, err := concat.Run(suite, f, concat.ExecOptions{})
		if err != nil {
			return err
		}
		push, _ := f.Spec().MethodByName("Push")
		fmt.Printf("  %-14s element domain %-28s %s\n",
			f.Name()+":", push.Params[0].Domain.Kind, rep.Summary())
		if !rep.AllPassed() {
			return fmt.Errorf("%s failed its suite", f.Name())
		}
	}
	fmt.Println("  (one spec template, one model; only the element domain differs)")
	return nil
}

// compositionReuse runs the Product suite, whose Provider parameters come
// from composition with another class.
func compositionReuse() error {
	fmt.Println("\n— reuse by composition: Product uses Provider objects —")
	f := product.NewFactory()
	f.DB().AddProvider("acme supply co")
	suite, err := concat.Generate(product.Spec(), concat.GenOptions{Seed: 42})
	if err != nil {
		return err
	}
	rep, err := concat.Run(suite, f, concat.ExecOptions{Providers: f.Providers()})
	if err != nil {
		return err
	}
	fmt.Printf("  %s (%d structured-parameter holes completed from the provider map)\n",
		rep.Summary(), suite.Stats().Holes)
	if !rep.AllPassed() {
		return fmt.Errorf("product suite failed")
	}
	return nil
}
