// Assertion-site telemetry: the oracle-observability half of the BIT
// layer. Every assertion the paper's macros check (class invariant,
// pre-condition, post-condition) is a *site* — a (kind, method, predicate)
// triple — and the telemetry counts, per site, how often the predicate was
// evaluated and how often it was violated. The counts make the partial
// oracle itself observable: a site that is never evaluated is dead oracle
// code, and a site whose violations kill mutants is the oracle earning its
// keep (the paper's "59 of 652 kills due to assertion violation").
//
// Telemetry is installed per test case by the executor through
// TelemetrySetter (exactly like the per-case step budget) and merged into a
// per-suite aggregate. Counts are deterministic for a fixed seed: they
// depend only on the calls a case makes, never on timing, ordering or
// parallelism — merging is commutative addition and snapshots sort by site.
package bit

import (
	"sort"
	"sync"
)

// SiteRecord is the exportable per-site aggregate: an assertion site
// identified by kind, method and predicate text, with its evaluation and
// violation counts.
type SiteRecord struct {
	Kind      string `json:"kind"`   // "invariant", "pre-condition", "post-condition"
	Method    string `json:"method"` // method the assertion guards
	Expr      string `json:"expr"`   // the predicate text
	Evaluated int64  `json:"evaluated"`
	Violated  int64  `json:"violated"`
}

type siteKey struct {
	kind   string
	method string
	expr   string
}

type siteCounts struct {
	evaluated int64
	violated  int64
}

// Telemetry accumulates assertion-site counters. All methods are safe for
// concurrent use and safe on a nil receiver (the disabled telemetry),
// mirroring obs.Metrics.
type Telemetry struct {
	mu    sync.Mutex
	sites map[siteKey]*siteCounts
}

// NewTelemetry returns an empty telemetry accumulator.
func NewTelemetry() *Telemetry {
	return &Telemetry{sites: make(map[siteKey]*siteCounts)}
}

// Record counts one evaluation of an assertion site, violated or not.
func (t *Telemetry) Record(kind ViolationKind, method, expr string, violated bool) {
	if t == nil {
		return
	}
	k := siteKey{kind: kind.String(), method: method, expr: expr}
	t.mu.Lock()
	c := t.sites[k]
	if c == nil {
		c = &siteCounts{}
		t.sites[k] = c
	}
	c.evaluated++
	if violated {
		c.violated++
	}
	t.mu.Unlock()
}

// Merge adds another telemetry's counts into t. Merging is commutative, so
// per-case telemetries merged in any completion order produce the same
// aggregate — the parallelism-safety contract.
func (t *Telemetry) Merge(other *Telemetry) {
	if t == nil || other == nil {
		return
	}
	t.MergeRecords(other.Records())
}

// MergeRecords adds exported site records (e.g. shipped back from an
// isolated case server) into t.
func (t *Telemetry) MergeRecords(recs []SiteRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, r := range recs {
		k := siteKey{kind: r.Kind, method: r.Method, expr: r.Expr}
		c := t.sites[k]
		if c == nil {
			c = &siteCounts{}
			t.sites[k] = c
		}
		c.evaluated += r.Evaluated
		c.violated += r.Violated
	}
	t.mu.Unlock()
}

// Records snapshots the per-site counts, sorted by kind, then method, then
// predicate — a deterministic order for reports and canonical artifacts. A
// nil or empty telemetry returns nil.
func (t *Telemetry) Records() []SiteRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.sites) == 0 {
		return nil
	}
	out := make([]SiteRecord, 0, len(t.sites))
	for k, c := range t.sites {
		out = append(out, SiteRecord{
			Kind: k.kind, Method: k.method, Expr: k.expr,
			Evaluated: c.evaluated, Violated: c.violated,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Expr < b.Expr
	})
	return out
}

// TelemetrySetter is the capability the executor uses to install per-case
// assertion telemetry; Base implements it, so every component that embeds
// Base is oracle-observable for free.
type TelemetrySetter interface {
	SetBITTelemetry(*Telemetry)
}

// telemetryBox wraps a Telemetry so atomic.Value stores one concrete type.
type telemetryBox struct{ t *Telemetry }

// SetBITTelemetry implements TelemetrySetter: subsequent AssertInvariant /
// AssertPre / AssertPost calls record their evaluations on t. A nil telemetry
// leaves the checks unrecorded.
func (b *Base) SetBITTelemetry(t *Telemetry) {
	if t != nil {
		b.telemetry.Store(&telemetryBox{t: t})
	}
}

// record counts one assertion evaluation on the installed telemetry, if any.
func (b *Base) record(kind ViolationKind, method, expr string, violated bool) {
	if box, _ := b.telemetry.Load().(*telemetryBox); box != nil {
		box.t.Record(kind, method, expr, violated)
	}
}

// AssertInvariant is ClassInvariant routed through the component's embedded
// telemetry: the evaluation is counted per site, then the same *Violation
// (or nil) is returned. Components use these Base methods instead of the
// free functions to make their assertion sites observable.
func (b *Base) AssertInvariant(exp bool, method, expr string) error {
	b.record(KindInvariant, method, expr, !exp)
	return ClassInvariant(exp, method, expr)
}

// AssertPre is PreCondition routed through the embedded telemetry.
func (b *Base) AssertPre(exp bool, method, expr string) error {
	b.record(KindPrecondition, method, expr, !exp)
	return PreCondition(exp, method, expr)
}

// AssertPost is PostCondition routed through the embedded telemetry.
func (b *Base) AssertPost(exp bool, method, expr string) error {
	b.record(KindPostcondition, method, expr, !exp)
	return PostCondition(exp, method, expr)
}
