package oblist

import (
	"fmt"
	"io"
	"sync"

	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/mutation"
	"concat/internal/tspec"
)

// Name is the component (class) name.
const Name = "ObList"

// Instance adapts an ObList to the component runtime: name-based dispatch
// plus the built-in test interface.
type Instance struct {
	*ObList
	disp      component.Dispatcher
	destroyed bool
}

var _ component.Instance = (*Instance)(nil)

// NewInstance wraps a list for the test runtime.
func NewInstance(l *ObList) *Instance {
	inst := &Instance{ObList: l}
	RegisterListMethods(&inst.disp, l)
	return inst
}

// RegisterListMethods wires the shared CObList method set onto a dispatcher;
// the sortable subclass reuses it for its inherited methods.
func RegisterListMethods(d *component.Dispatcher, l *ObList) {
	d.Register("AddHead", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("AddHead", args, domain.KindInt); err != nil {
			return nil, err
		}
		l.AddHead(args[0])
		return nil, nil
	})
	d.Register("AddTail", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("AddTail", args, domain.KindInt); err != nil {
			return nil, err
		}
		l.AddTail(args[0])
		return nil, nil
	})
	d.Register("RemoveHead", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("RemoveHead", args); err != nil {
			return nil, err
		}
		v, err := l.RemoveHead()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("RemoveTail", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("RemoveTail", args); err != nil {
			return nil, err
		}
		v, err := l.RemoveTail()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("GetHead", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("GetHead", args); err != nil {
			return nil, err
		}
		v, err := l.GetHead()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("GetTail", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("GetTail", args); err != nil {
			return nil, err
		}
		v, err := l.GetTail()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("GetCount", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("GetCount", args); err != nil {
			return nil, err
		}
		return []domain.Value{domain.Int(l.GetCount())}, nil
	})
	d.Register("IsEmpty", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("IsEmpty", args); err != nil {
			return nil, err
		}
		return []domain.Value{domain.Bool(l.IsEmpty())}, nil
	})
	d.Register("GetAt", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("GetAt", args, domain.KindInt); err != nil {
			return nil, err
		}
		v, err := l.GetAt(args[0].MustInt())
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("SetAt", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("SetAt", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, l.SetAt(args[0].MustInt(), args[1])
	})
	d.Register("RemoveAt", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("RemoveAt", args, domain.KindInt); err != nil {
			return nil, err
		}
		v, err := l.RemoveAt(args[0].MustInt())
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	d.Register("InsertBefore", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("InsertBefore", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, l.InsertBefore(args[0].MustInt(), args[1])
	})
	d.Register("InsertAfter", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("InsertAfter", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, l.InsertAfter(args[0].MustInt(), args[1])
	})
	d.Register("Find", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Find", args, domain.KindInt); err != nil {
			return nil, err
		}
		return []domain.Value{domain.Int(l.Find(args[0]))}, nil
	})
	d.Register("RemoveAll", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("RemoveAll", args); err != nil {
			return nil, err
		}
		l.RemoveAll()
		return nil, nil
	})
}

// Invoke implements component.Instance.
func (i *Instance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if i.destroyed {
		return nil, fmt.Errorf("%w: %s", component.ErrDestroyed, Name)
	}
	return i.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (i *Instance) Destroy() error {
	i.RemoveAll()
	i.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable.
func (i *Instance) InvariantTest() error {
	if err := i.Guard(); err != nil {
		return err
	}
	return i.CheckInvariant()
}

// Reporter implements bit.SelfTestable.
func (i *Instance) Reporter(w io.Writer) error {
	if err := i.Guard(); err != nil {
		return err
	}
	return i.WriteReport(w, Name)
}

// Factory builds ObList instances.
type Factory struct {
	eng *mutation.Engine
}

var _ component.Factory = (*Factory)(nil)

// NewFactory returns a production factory.
func NewFactory() *Factory { return &Factory{} }

// NewFactoryWithEngine returns a factory whose instances route instrumented
// uses through eng (which must carry Sites()).
func NewFactoryWithEngine(eng *mutation.Engine) *Factory { return &Factory{eng: eng} }

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory. Constructors: "ObList" (default block
// size) and "ObListSized" (explicit block size).
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	switch ctor {
	case "ObList":
		if err := component.WantArgs(ctor, args); err != nil {
			return nil, err
		}
		return NewInstance(NewObList(10, f.eng)), nil
	case "ObListSized":
		if err := component.WantArgs(ctor, args, domain.KindInt); err != nil {
			return nil, err
		}
		return NewInstance(NewObList(args[0].MustInt(), f.eng)), nil
	default:
		return nil, fmt.Errorf("oblist: unknown constructor %q", ctor)
	}
}

var specOnce = sync.OnceValue(buildSpec)

// Spec returns the component's embedded t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

// buildSpec declares the CObList interface and its transaction flow model.
// The element domain is small non-negative integers and index parameters
// range over small positions, so generated transactions exercise both valid
// and out-of-range paths.
func buildSpec() *tspec.Spec {
	elem := tspec.RangeInt(0, 999)
	idx := tspec.RangeInt(0, 5)
	return tspec.NewBuilder(Name).
		Attribute("count", tspec.RangeInt(0, 1_000_000)).
		Attribute("blockSize", tspec.RangeInt(1, 1_000)).
		Method("m1", "ObList", "", tspec.CatConstructor).
		Method("m2", "ObListSized", "", tspec.CatConstructor).
		Param("blockSize", tspec.RangeInt(1, 64)).
		Uses("blockSize").
		Method("m3", "~ObList", "", tspec.CatDestructor).
		Method("m4", "AddHead", "", tspec.CatUpdate).
		Param("v", elem).
		Uses("count").
		Method("m5", "AddTail", "", tspec.CatUpdate).
		Param("v", elem).
		Uses("count").
		Method("m6", "RemoveHead", "int", tspec.CatUpdate).
		Uses("count").
		Method("m7", "RemoveTail", "int", tspec.CatUpdate).
		Uses("count").
		Method("m8", "GetHead", "int", tspec.CatAccess).
		Method("m9", "GetTail", "int", tspec.CatAccess).
		Method("m10", "GetCount", "int", tspec.CatAccess).
		Uses("count").
		Method("m11", "IsEmpty", "bool", tspec.CatAccess).
		Uses("count").
		Method("m12", "GetAt", "int", tspec.CatAccess).
		Param("i", idx).
		Method("m13", "SetAt", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Method("m14", "RemoveAt", "int", tspec.CatUpdate).
		Param("i", idx).
		Uses("count").
		Method("m15", "InsertBefore", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Uses("count").
		Method("m16", "InsertAfter", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Uses("count").
		Method("m17", "Find", "int", tspec.CatAccess).
		Param("v", elem).
		Method("m18", "RemoveAll", "", tspec.CatUpdate).
		Uses("count").
		// Transaction flow model: grow -> {shrink, observe, position ops} -> death.
		Node("n1", true, "m1", "m2").
		Node("n2", false, "m4", "m5").               // grow (AddHead/AddTail)
		Node("n3", false, "m6", "m7").               // shrink at ends
		Node("n4", false, "m8", "m9", "m10", "m11"). // observe
		Node("n5", false, "m12", "m17").             // query by position/value
		Node("n6", false, "m13").                    // modify in place
		Node("n7", false, "m15", "m16").             // positional insert
		Node("n8", false, "m14").                    // positional remove
		Node("n9", false, "m18").                    // clear
		Node("n10", false, "m3").                    // death
		Edge("n1", "n2").
		Edge("n1", "n4").
		Edge("n1", "n10").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n5").
		Edge("n2", "n6").
		Edge("n2", "n7").
		Edge("n2", "n8").
		Edge("n2", "n9").
		Edge("n3", "n4").
		Edge("n3", "n10").
		Edge("n4", "n10").
		Edge("n5", "n6").
		Edge("n5", "n10").
		Edge("n6", "n8").
		Edge("n6", "n10").
		Edge("n7", "n8").
		Edge("n8", "n9").
		Edge("n8", "n4").
		Edge("n8", "n10").
		Edge("n9", "n2").
		Edge("n9", "n10").
		MustBuild()
}

// SetTestState implements component.StateSettable (§3.3's set/reset
// capability). The key "items" carries a domain.Object wrapping
// []domain.Value, replacing the list contents; "blockSize" (int) adjusts
// the construction parameter. The resulting state must satisfy the class
// invariant (it does by construction, since SetValues rebuilds the links).
func (i *Instance) SetTestState(state map[string]domain.Value) error {
	if err := i.Guard(); err != nil {
		return err
	}
	if v, ok := state["items"]; ok {
		items, good := v.Ref().([]domain.Value)
		if !good {
			return fmt.Errorf("oblist: SetTestState items: got %T, want []domain.Value", v.Ref())
		}
		i.SetValues(items)
	}
	if v, ok := state["blockSize"]; ok {
		n, err := v.AsInt()
		if err != nil {
			return fmt.Errorf("oblist: SetTestState blockSize: %w", err)
		}
		i.Init(n, i.Engine())
	}
	return i.CheckInvariant()
}

// ResetTestState implements component.StateSettable.
func (i *Instance) ResetTestState() error {
	if err := i.Guard(); err != nil {
		return err
	}
	i.RemoveAll()
	return nil
}

var _ component.StateSettable = (*Instance)(nil)
