package canon

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMarshalSortsKeys(t *testing.T) {
	got, err := Marshal(map[string]any{"zeta": 1, "alpha": 2, "mid": map[string]any{"b": 1, "a": 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":2,"mid":{"a":2,"b":1},"zeta":1}`
	if string(got) != want {
		t.Errorf("canonical form = %s, want %s", got, want)
	}
}

func TestKeyOrderIndependence(t *testing.T) {
	a, err := Canonicalize([]byte(`{"x": 1, "y": [true, null, {"k": "v", "j": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize([]byte(`{"y":[true,null,{"j":2,"k":"v"}],"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same document, different canonical forms:\n%s\n%s", a, b)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	docs := []string{
		`{"b":1,"a":[1,2.5,-3e10,"s",null,true]}`,
		`[]`, `{}`, `null`, `"plain"`, `42`, `-0.125`,
		`{"nested":{"deep":{"deeper":[{"z":0,"a":9}]}}}`,
		`{"esc":"a\"b\\c<&>"}`,
	}
	for _, doc := range docs {
		once, err := Canonicalize([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		twice, err := Canonicalize(once)
		if err != nil {
			t.Fatalf("%s: second pass: %v", doc, err)
		}
		if !bytes.Equal(once, twice) {
			t.Errorf("%s: not idempotent:\n%s\n%s", doc, once, twice)
		}
	}
}

func TestNumbersPreserveLiteral(t *testing.T) {
	// The number literal passes through untouched — no float re-parse drift.
	got, err := Canonicalize([]byte(`{"n": 0.1, "big": 9007199254740993, "exp": 1e100}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, lit := range []string{"0.1", "9007199254740993", "1e100"} {
		if !strings.Contains(string(got), lit) {
			t.Errorf("literal %q lost: %s", lit, got)
		}
	}
}

func TestStableFloatAndNilHandling(t *testing.T) {
	type payload struct {
		F   float64  `json:"f"`
		P   *int     `json:"p"`
		Arr []string `json:"arr"`
	}
	x, y := 0.1, 0.2
	a, err := Marshal(payload{F: 0.30000000000000004})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(payload{F: x + y})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same float value, different encodings: %s vs %s", a, b)
	}
	if !strings.Contains(string(a), `"p":null`) || !strings.Contains(string(a), `"arr":null`) {
		t.Errorf("nil handling changed: %s", a)
	}
}

func TestHashDiffersOnContent(t *testing.T) {
	h1, err := Hash(map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(map[string]int{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("different content, same hash")
	}
	if len(h1) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(h1))
	}
	h3, err := Hash(map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h3 {
		t.Error("same content, different hash")
	}
}

func TestRejectsInvalid(t *testing.T) {
	for _, doc := range []string{``, `{`, `{"a":1} trailing`, `nan`} {
		if _, err := Canonicalize([]byte(doc)); err == nil {
			t.Errorf("Canonicalize(%q) should fail", doc)
		}
	}
	// NaN cannot become part of a cache key.
	if _, err := Marshal(map[string]float64{"f": nan()}); err == nil {
		t.Error("Marshal of NaN should fail")
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

// FuzzCanonicalize checks, for arbitrary JSON documents, that
// canonicalization is idempotent and preserves the decoded value.
func FuzzCanonicalize(f *testing.F) {
	for _, seed := range []string{
		`{"b":1,"a":2}`, `[1,2,3]`, `"s"`, `null`, `true`, `-1.5e-3`,
		`{"deep":[{"z":null,"a":[{}]},"x"]}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		once, err := Canonicalize([]byte(doc))
		if err != nil {
			t.Skip() // not a single valid JSON document
		}
		twice, err := Canonicalize(once)
		if err != nil {
			t.Fatalf("canonical output not re-canonicalizable: %q -> %s: %v", doc, once, err)
		}
		if !bytes.Equal(once, twice) {
			t.Fatalf("not idempotent: %q -> %s -> %s", doc, once, twice)
		}
		var orig, canon any
		d := json.NewDecoder(strings.NewReader(doc))
		d.UseNumber()
		if err := d.Decode(&orig); err != nil {
			t.Skip()
		}
		d = json.NewDecoder(bytes.NewReader(once))
		d.UseNumber()
		if err := d.Decode(&canon); err != nil {
			t.Fatalf("canonical form does not parse: %s", once)
		}
	})
}
