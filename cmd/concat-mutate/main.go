// Command concat-mutate applies the paper's interface-mutation operators
// (Table 1) to a real Go source file, writing one mutant file per fault and
// verifying that every emitted mutant still type-checks — the source-level
// counterpart of the in-process analysis run by `concat mutate`.
//
// Usage:
//
//	concat-mutate -src file.go [-out DIR] [-methods M1,M2] [-ops IndVarBitNeg,...] [-max N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"concat/internal/mutation"
	"concat/internal/srcmut"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "concat-mutate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("concat-mutate", flag.ContinueOnError)
	src := fs.String("src", "", "Go source file to mutate")
	out := fs.String("out", "", "directory to write mutant files (default: list only)")
	methods := fs.String("methods", "", "comma-separated function names to mutate")
	ops := fs.String("ops", "", "comma-separated Table 1 operator names")
	maxPerSite := fs.Int("max", 0, "cap replacement candidates per site and operator")
	list := fs.Bool("list", false, "list mutants without writing files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" {
		return fmt.Errorf("need -src FILE")
	}
	data, err := os.ReadFile(*src)
	if err != nil {
		return fmt.Errorf("reading source: %w", err)
	}

	opts := srcmut.Options{MaxPerSite: *maxPerSite}
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			opts.Methods = append(opts.Methods, strings.TrimSpace(m))
		}
	}
	if *ops != "" {
		for _, name := range strings.Split(*ops, ",") {
			op, err := mutation.ParseOperator(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Operators = append(opts.Operators, op)
		}
	}

	mutants, err := srcmut.MutateFile(filepath.Base(*src), data, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d mutants generated from %s\n", len(mutants), *src)

	stillborn := 0
	for i, m := range mutants {
		if err := m.TypeCheck(filepath.Base(*src)); err != nil {
			stillborn++
			fmt.Printf("  STILLBORN %s: %v\n", m.ID, err)
			continue
		}
		if *list || *out == "" {
			fmt.Printf("  %-60s %s\n", m.ID, m.Position)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, m.FileName(i))
		if err := os.WriteFile(path, m.Source, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Printf("  %-60s -> %s\n", m.ID, path)
	}
	if stillborn > 0 {
		fmt.Printf("%d mutants did not compile cleanly and were discarded\n", stillborn)
	}
	return nil
}
