package concat

import (
	"bytes"
	"strings"
	"testing"
)

const miniSpec = `
Class('Counter', No, <empty>, <empty>)
Attribute('n', range, 0, 100)
Method(m1, 'Counter', <empty>, constructor, 0)
Method(m2, '~Counter', <empty>, destructor, 0)
Method(m3, 'Inc', <empty>, update, 1)
Parameter(m3, 'by', range, 1, 10)
Node(n1, Yes, 1, [m1])
Node(n2, No, 1, [m3])
Node(n3, No, 0, [m2])
Edge(n1, n2)
Edge(n2, n3)
`

func TestParseSpecAndFormat(t *testing.T) {
	s, err := ParseSpec(miniSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Class.Name != "Counter" {
		t.Errorf("name = %q", s.Class.Name)
	}
	text := FormatSpec(s)
	if !strings.Contains(text, "Class('Counter'") {
		t.Errorf("FormatSpec = %q", text)
	}
	back, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Class.Name != s.Class.Name {
		t.Error("round trip changed the class")
	}
}

func TestParseSpecRejectsInvalid(t *testing.T) {
	if _, err := ParseSpec("Class('X', No, <empty>, <empty>)"); err == nil {
		t.Error("spec without methods should fail validation")
	}
	if _, err := ParseSpec("not a spec"); err == nil {
		t.Error("garbage should fail parsing")
	}
}

func TestReadSpec(t *testing.T) {
	s, err := ReadSpec(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if s.Class.Name != "Counter" {
		t.Errorf("name = %q", s.Class.Name)
	}
}

func TestTargetAndSelfTest(t *testing.T) {
	names := TargetNames()
	if len(names) != 7 {
		t.Fatalf("TargetNames = %v", names)
	}
	if Target("Nope") != nil {
		t.Error("unknown target should be nil")
	}
	comp := Target("Account")
	if comp == nil {
		t.Fatal("Account target missing")
	}
	suite, report, err := comp.SelfTest(GenOptions{Seed: 42}, ExecOptions{})
	if err != nil {
		t.Fatalf("SelfTest: %v", err)
	}
	if len(suite.Cases) == 0 || !report.AllPassed() {
		t.Errorf("self-test: %d cases, passed=%v", len(suite.Cases), report.AllPassed())
	}
}

func TestGenerateRunEmitViaFacade(t *testing.T) {
	comp := Target("ObList")
	suite, err := Generate(comp.Spec(), GenOptions{Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	report, err := Run(suite, comp.Factory, ExecOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.AllPassed() {
		t.Fatalf("failures: %+v", report.Failures()[:1])
	}
	var buf bytes.Buffer
	err = EmitDriver(&buf, suite, EmitOptions{
		ComponentImport: "concat/internal/components/oblist",
		FactoryExpr:     "oblist.NewFactory()",
	})
	if err != nil {
		t.Fatalf("EmitDriver: %v", err)
	}
	if !strings.Contains(buf.String(), "package main") {
		t.Error("emitted driver malformed")
	}
}

func TestDeriveViaFacade(t *testing.T) {
	parent := Target("ObList")
	child := Target("SortableObList")
	opts := GenOptions{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 2}
	parentSuite, err := Generate(parent.Spec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Derive(parent.Spec(), child.Spec(), parentSuite, opts)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if d.NumNew == 0 || d.NumReused == 0 || d.NumSkipped == 0 {
		t.Errorf("derived = %d/%d/%d", d.NumNew, d.NumReused, d.NumSkipped)
	}
}

func TestMutateViaFacade(t *testing.T) {
	comp := Target("Account")
	suite, err := Generate(comp.Spec(), GenOptions{Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mutate("Account", suite, nil, nil)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	table := res.Tabulate()
	if table.Total.Mutants == 0 || table.Total.Killed == 0 {
		t.Errorf("table totals = %+v", table.Total)
	}
	var sb strings.Builder
	if err := table.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Score") {
		t.Error("rendered table missing score row")
	}
}

func TestNewSpecBuilderFacade(t *testing.T) {
	s, err := NewSpec("Tiny").
		Method("m1", "Tiny", "", 1 /* constructor */).
		Method("m2", "~Tiny", "", 2 /* destructor */).
		Node("n1", true, "m1").
		Node("n2", false, "m2").
		Edge("n1", "n2").
		Build()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	suite, err := Generate(s, GenOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(suite.Cases) != 1 {
		t.Errorf("cases = %d", len(suite.Cases))
	}
}
