// HostileMut: a mutation-instrumented component whose mutants include
// genuinely fatal ones. The mutation engine substitutes the step delta at
// the instrumented site; specific substituted values trigger os.Exit or
// unbounded recursion — faults that kill the hosting process and therefore
// can only be observed as kills under subprocess isolation. This is the
// end-to-end proof for the sandbox: a mutation campaign over HostileMut
// completes, classifies the fatal mutants as crash kills, and produces the
// same report serially and in parallel.
package hostile

import (
	"fmt"
	"io"
	"os"
	"sync"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/mutation"
	"concat/internal/tspec"
)

// MutName is the instrumented component's class name.
const MutName = "HostileMut"

// The live values the mutation operators can substitute for the step delta.
// "soft" is an equivalent mutant (same value as the original delta);
// "hard" routes execution into os.Exit; "boom" into unbounded recursion.
const (
	deltaOriginal = 1
	deltaSoft     = 1 // equivalent: L(R2) candidate with the original's value
	deltaExit     = 2 // G(R2) candidate: fatal os.Exit path
	deltaRecurse  = 3 // E(R2) candidate: fatal stack-exhaustion path
)

// StepSite is the single instrumented use point in Step.
const StepSite mutation.SiteID = "Step/delta.use1"

// MutSites returns the HostileMut site table.
func MutSites() []mutation.Site {
	return []mutation.Site{{
		ID: StepSite, Method: "Step", Var: "delta",
		Kind:      domain.KindInt,
		Locals:    []string{"soft"},
		Globals:   []string{"hard"},
		Externals: []string{"boom"},
	}}
}

// mutInstance counts steps; the invariant is counter >= 0, so a RepReq
// mutant substituting a negative constant is killed by assertion violation,
// while the "hard"/"boom" candidates are killed by process death.
type mutInstance struct {
	bit.Base
	eng       *mutation.Engine
	counter   int64
	destroyed bool
}

var _ component.Instance = (*mutInstance)(nil)

func (m *mutInstance) InvariantTest() error {
	if err := m.Guard(); err != nil {
		return err
	}
	return m.AssertInvariant(m.counter >= 0, "InvariantTest", "counter >= 0")
}

func (m *mutInstance) Reporter(w io.Writer) error {
	if err := m.Guard(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "HostileMut{counter: %d}\n", m.counter)
	return err
}

func (m *mutInstance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if m.destroyed {
		return nil, fmt.Errorf("%w: HostileMut", component.ErrDestroyed)
	}
	if method != "Step" {
		return nil, fmt.Errorf("%w: %q", component.ErrUnknownMethod, method)
	}
	delta := int64(deltaOriginal)
	if m.eng != nil && m.eng.Armed() {
		delta = m.eng.UseInt(StepSite, delta, mutation.Env{
			Locals:    map[string]domain.Value{"soft": domain.Int(deltaSoft)},
			Globals:   map[string]domain.Value{"hard": domain.Int(deltaExit)},
			Externals: map[string]domain.Value{"boom": domain.Int(deltaRecurse)},
		})
	}
	switch delta {
	case deltaExit:
		os.Exit(66)
	case deltaRecurse:
		return []domain.Value{domain.Int(recurse(0))}, nil
	}
	m.counter += delta
	return []domain.Value{domain.Int(m.counter)}, nil
}

func (m *mutInstance) Destroy() error {
	m.destroyed = true
	return nil
}

// MutFactory builds HostileMut instances routed through one engine.
type MutFactory struct {
	eng *mutation.Engine
}

var _ component.Factory = (*MutFactory)(nil)

// NewMutFactory returns a factory whose instances use eng; nil disables the
// instrumentation (original-program behaviour).
func NewMutFactory(eng *mutation.Engine) *MutFactory { return &MutFactory{eng: eng} }

// Name implements component.Factory.
func (f *MutFactory) Name() string { return MutName }

// Spec implements component.Factory.
func (f *MutFactory) Spec() *tspec.Spec { return mutSpecOnce() }

// New implements component.Factory.
func (f *MutFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	if ctor != "HostileMut" {
		return nil, fmt.Errorf("hostile: unknown constructor %q", ctor)
	}
	return &mutInstance{eng: f.eng}, nil
}

var mutSpecOnce = sync.OnceValue(func() *tspec.Spec {
	return tspec.NewBuilder(MutName).
		Attribute("counter", tspec.RangeInt(0, 1<<20)).
		Method("m1", "HostileMut", "", tspec.CatConstructor).
		Uses("counter").
		Method("m2", "Step", "int", tspec.CatUpdate).
		Uses("counter").
		Method("m3", "~HostileMut", "", tspec.CatDestructor).
		Node("n1", true, "m1").
		Node("n2", false, "m2").
		Node("n3", false, "m3").
		Edge("n1", "n2").
		Edge("n2", "n2").
		Edge("n2", "n3").
		MustBuild()
})

// MutSuite returns a fixed HostileMut suite: construct, step n times,
// destroy.
func MutSuite(steps int) *driver.Suite {
	calls := []driver.Call{{MethodID: "m1", Method: "HostileMut"}}
	for i := 0; i < steps; i++ {
		calls = append(calls, driver.Call{MethodID: "m2", Method: "Step"})
	}
	calls = append(calls, driver.Call{MethodID: "m3", Method: "~HostileMut"})
	return &driver.Suite{
		Component: MutName,
		Cases: []driver.TestCase{{
			ID:          "M0",
			Transaction: "n1>n2>n3",
			Path:        []string{"n1", "n2", "n3"},
			Calls:       calls,
		}},
	}
}
