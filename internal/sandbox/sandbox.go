// Package sandbox is the execution-hardening layer under the test executor:
// the paper's mutant-kill criterion (i) — "the program crashed while running
// the test cases" — only works if the harness itself survives arbitrarily
// hostile code under test. The substrates here let the executor convert
// fatal behaviour into recorded per-case outcomes instead of harness
// failures:
//
//   - Budget: cooperative step/allocation budgets, charged by the executor's
//     call dispatch and by the BIT access-control guard, so a runaway
//     component is stopped at a deterministic point.
//   - Ledger: a goroutine-leak ledger. Go cannot kill a runaway goroutine,
//     so a timed-out case's goroutine is abandoned; the ledger counts the
//     abandonments (and the eventual completions) instead of losing track
//     of them.
//   - Retry: deterministic retry with exponential backoff for harness-level
//     transient errors (subprocess spawn failure, fork contention).
//   - RunProcess: a resource-bounded subprocess runner with deterministic
//     classification of abnormal exits, the substrate of the executor's
//     crash-containment isolation mode.
//
// Everything here is deliberately free of policy: the executor decides what
// a budget covers and how an exit status maps onto a case outcome; sandbox
// provides the mechanisms and keeps their behaviour reproducible.
package sandbox

import (
	"errors"
	"fmt"
)

// ExhaustedError reports that a sandbox resource budget ran out. The
// executor classifies it as a resource-exhaustion case outcome rather than
// a harness error: running out of budget is a verdict on the code under
// test, not on the harness.
type ExhaustedError struct {
	// Resource names the exhausted dimension: "step", "alloc", "transcript".
	Resource string
	// Limit is the configured budget.
	Limit int64
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("sandbox: %s budget exhausted (limit %d)", e.Resource, e.Limit)
}

// IsExhausted reports whether err carries an ExhaustedError anywhere in its
// chain.
func IsExhausted(err error) bool {
	var ex *ExhaustedError
	return errors.As(err, &ex)
}
