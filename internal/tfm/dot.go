package tfm

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the model in Graphviz DOT syntax, the medium we use to
// regenerate the paper's Figure 2. Nodes are labelled with their method
// lists; start nodes are drawn as double circles and final nodes as double
// octagons. highlight, if non-empty, is a transaction whose edges are drawn
// bold red — the paper highlights the example use-case path this way.
func (g *Graph) WriteDOT(w io.Writer, highlight Transaction) error {
	hl := make(map[Edge]bool, len(highlight.Path))
	for i := 0; i+1 < len(highlight.Path); i++ {
		hl[Edge{From: highlight.Path[i], To: highlight.Path[i+1]}] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		shape := "circle"
		switch {
		case n.Start:
			shape = "doublecircle"
		case n.Final:
			shape = "doubleoctagon"
		}
		label := string(n.ID)
		if len(n.Methods) > 0 {
			label += "\\n" + strings.Join(n.Methods, ", ")
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", string(n.ID), shape, label)
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		attr := ""
		if hl[e] {
			attr = " [color=red, penwidth=2.0]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", string(e.From), string(e.To), attr)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("tfm: writing DOT: %w", err)
	}
	return nil
}
