// The warm worker pool isolation mode (IsolatePool). Spawn-per-case
// isolation pays a fork+exec per test case; under a mutation campaign that
// cost dominates the run. IsolatePool keeps the same case-server contract
// — fresh world per case, fatal deaths classified from the exit status —
// but dispatches *batches* of cases to long-lived worker processes over
// length-prefixed NDJSON frames, restarting a worker only when it crashes,
// blows its deadline, or finishes a batch dirty (a timed-out case leaves
// an abandoned goroutine in the worker; reusing that address space would
// break the fresh-world guarantee). One warm worker also serves many
// mutants back to back: each batch frame carries its own isolation
// context, so a campaign re-arms mutants on the child side without any
// per-mutant provisioning — the mutant-schemata amortization.
package testexec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"concat/internal/bit"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/sandbox/pool"
)

// BatchServerValue is the ServerEnv value that selects the batch case
// server (ServeCaseBatches). Any other non-empty value selects the
// single-case server (ServeCase), preserving the PR-2 wire contract.
const BatchServerValue = "batch"

// DefaultBatchSize is the number of cases dispatched per worker
// round-trip when Options.BatchSize is unset. Large enough to amortize a
// frame round-trip over real work, small enough that a mid-batch crash
// re-dispatches little.
const DefaultBatchSize = 16

// batchRequest is one parent-to-worker frame: the run-level knobs plus a
// slice of cases to execute in order. The per-batch Context lets one warm
// worker serve many mutants — each batch re-arms its own.
type batchRequest struct {
	Component           string          `json:"component"`
	SkipInvariantChecks bool            `json:"skipInvariantChecks,omitempty"`
	SkipReporter        bool            `json:"skipReporter,omitempty"`
	CaseTimeoutMS       int64           `json:"caseTimeoutMs,omitempty"`
	StepBudget          int64           `json:"stepBudget,omitempty"`
	MaxTranscriptBytes  int64           `json:"maxTranscriptBytes,omitempty"`
	Context             json.RawMessage `json:"context,omitempty"`
	Trace               bool            `json:"trace,omitempty"`
	Items               []batchItem     `json:"items"`
}

// batchItem is one case in a batch.
type batchItem struct {
	Case driver.TestCase `json:"case"`
	Seed int64           `json:"seed"`
}

// batchResponse is one worker-to-parent frame: either the result of the
// item at Index (streamed as each case completes, in item order), or the
// end-of-batch marker (Done). Dirty on the Done frame tells the parent the
// worker's address space is no longer a fresh world (an abandoned timeout
// goroutine lives there) and must be recycled. Error without Done is a
// per-item resolution failure; Error with Done poisons the whole batch
// (the worker could not decode the request).
type batchResponse struct {
	Index    int              `json:"index"`
	Result   *CaseResult      `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
	BITSites []bit.SiteRecord `json:"bitSites,omitempty"`
	Done     bool             `json:"done,omitempty"`
	Dirty    bool             `json:"dirty,omitempty"`
}

// ServeFromEnv checks the ServerEnv sentinel and, when set, turns the
// current process into a case server on r/w: the batch server when the
// value is BatchServerValue, the single-case server otherwise. It returns
// false (doing nothing) when the sentinel is unset — call it first thing
// in main or TestMain of any binary that should be usable as its own
// sandbox, and exit when it returns true.
func ServeFromEnv(r io.Reader, w io.Writer, resolve Resolver) (bool, error) {
	switch os.Getenv(ServerEnv) {
	case "":
		return false, nil
	case BatchServerValue:
		return true, ServeCaseBatches(r, w, resolve)
	default:
		return true, ServeCase(r, w, resolve)
	}
}

// ServeCaseBatches is the warm worker's serve loop: read a batchRequest
// frame, execute its cases in order — each against a freshly resolved
// component, so every case keeps the fresh-world semantics of
// spawn-per-case isolation — streaming one batchResponse frame per case
// plus a Done frame, until stdin closes. Fatal failures of the code under
// test kill this process mid-batch by design; the parent classifies the
// death and re-dispatches the batch's remaining cases to a fresh worker.
func ServeCaseBatches(r io.Reader, w io.Writer, resolve Resolver) error {
	// Same small stack cap as ServeCase: stack-exhaustion mutants die fast
	// with the same deterministic "fatal error: stack overflow".
	debug.SetMaxStack(64 << 20)
	br := bufio.NewReader(r)
	send := func(resp batchResponse) error {
		payload, err := json.Marshal(resp)
		if err != nil {
			return fmt.Errorf("testexec: batch server encoding response: %w", err)
		}
		if err := pool.WriteFrame(w, payload); err != nil {
			return fmt.Errorf("testexec: batch server writing response: %w", err)
		}
		return nil
	}
	for {
		frame, err := pool.ReadFrame(br, pool.DefaultMaxFrameBytes)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("testexec: batch server reading request: %w", err)
		}
		var req batchRequest
		if err := json.Unmarshal(frame, &req); err != nil {
			// The stream is still frame-aligned; poison this batch and keep
			// serving.
			if err := send(batchResponse{Done: true, Error: fmt.Sprintf("decoding batch request: %v", err)}); err != nil {
				return err
			}
			continue
		}
		dirty := false
		for i, item := range req.Items {
			resp := serveBatchItem(req, item, resolve)
			resp.Index = i
			if resp.Result != nil && resp.Result.Outcome == OutcomeTimeout {
				// The timed-out case's goroutine is abandoned inside this
				// process; the batch finishes, but the worker must not be
				// reused as anyone's fresh world.
				dirty = true
			}
			if err := send(resp); err != nil {
				return err
			}
		}
		if err := send(batchResponse{Index: len(req.Items), Done: true, Dirty: dirty}); err != nil {
			return err
		}
	}
}

// serveBatchItem executes one batch case exactly the way ServeCase would:
// fresh resolution (fresh factory, fresh mutation engine), bounded run,
// Finish/trace piggybacked on Extra, telemetry dropped on timeout.
func serveBatchItem(req batchRequest, item batchItem, resolve Resolver) batchResponse {
	if resolve == nil {
		return batchResponse{Error: "case server has no resolver"}
	}
	resolved, err := resolve(req.Component, req.Context)
	if err != nil {
		return batchResponse{Error: fmt.Sprintf("resolving %q: %v", req.Component, err)}
	}
	f := resolved.Factory
	if f == nil {
		return batchResponse{Error: fmt.Sprintf("resolver returned no factory for %q", req.Component)}
	}
	opts := Options{
		Providers:           resolved.Providers,
		SkipInvariantChecks: req.SkipInvariantChecks,
		SkipReporter:        req.SkipReporter,
		CaseTimeout:         time.Duration(req.CaseTimeoutMS) * time.Millisecond,
		StepBudget:          req.StepBudget,
		MaxTranscriptBytes:  req.MaxTranscriptBytes,
	}
	if req.Trace {
		opts.Trace = obs.NewCollector()
	}
	caseTel := bit.NewTelemetry()
	res := runCaseBounded(item.Case, f, f.Spec(), opts, item.Seed, nil, 0, caseTel)
	res.Seed = item.Seed
	if resolved.Finish != nil {
		res.Extra = resolved.Finish()
	}
	if req.Trace {
		res.Extra = obs.WrapExtra(res.Extra, opts.Trace.Spans())
	}
	resp := batchResponse{Result: &res}
	if res.Outcome != OutcomeTimeout {
		resp.BITSites = caseTel.Records()
	}
	return resp
}

// NewWorkerPool builds the warm worker pool Run uses under IsolatePool,
// resolving the worker argv the same way spawn-per-case isolation does
// (Options.IsolationCommand, defaulting to re-executing this binary with
// `run-case`) and setting ServerEnv to the batch value. size <= 0 falls
// back to Options.PoolSize, then Options.Parallelism, then 1. Callers that
// share one pool across many Run invocations (a mutation campaign) own
// Close; pass the pool via Options.WorkerPool.
func NewWorkerPool(opts Options, size int) (*pool.Pool, error) {
	argv := opts.IsolationCommand
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("testexec: resolving executable for isolation: %w", err)
		}
		argv = []string{exe, "run-case"}
	}
	if size <= 0 {
		size = opts.PoolSize
	}
	if size <= 0 {
		size = opts.Parallelism
	}
	if size <= 0 {
		size = 1
	}
	return pool.New(pool.Config{
		Argv:  argv,
		Env:   append([]string{ServerEnv + "=" + BatchServerValue}, opts.IsolationEnv...),
		Size:  size,
		Retry: opts.SpawnRetry,
	})
}

// poolDispatcher carries the per-run state the batch dispatch loop needs.
type poolDispatcher struct {
	s         *driver.Suite
	opts      Options
	pool      *pool.Pool
	suiteSpan *obs.ActiveSpan
	suiteTel  *bit.Telemetry
	deadline  time.Duration
	results   []CaseResult
}

// runPooled executes the suite under IsolatePool: cases are cut into
// batches in suite order, batches are dispatched to warm workers (one
// dispatcher per Options.Parallelism), and each case's classification is
// byte-identical to what the spawn-per-case path records — same outcomes,
// same details, same seeds, same telemetry merge rule.
func runPooled(s *driver.Suite, opts Options, suiteSpan *obs.ActiveSpan, suiteTel *bit.Telemetry) ([]CaseResult, error) {
	p := opts.WorkerPool
	if p == nil {
		var err error
		p, err = NewWorkerPool(opts, 0)
		if err != nil {
			return nil, err
		}
		defer p.Close()
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	type span struct{ start, end int }
	var batches []span
	for i := 0; i < len(s.Cases); i += batchSize {
		j := i + batchSize
		if j > len(s.Cases) {
			j = len(s.Cases)
		}
		batches = append(batches, span{i, j})
	}
	d := &poolDispatcher{
		s:         s,
		opts:      opts,
		pool:      p,
		suiteSpan: suiteSpan,
		suiteTel:  suiteTel,
		deadline:  isolationDeadline(opts),
		results:   make([]CaseResult, len(s.Cases)),
	}
	workers := opts.Parallelism
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers <= 1 {
		for _, b := range batches {
			d.dispatchBatch(b.start, b.end)
		}
		return d.results, nil
	}
	jobs := make(chan span)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				d.dispatchBatch(b.start, b.end)
			}
		}()
	}
	for _, b := range batches {
		jobs <- b
	}
	close(jobs)
	wg.Wait()
	return d.results, nil
}

// dispatchBatch runs cases [start, end) of the suite on pool workers. A
// worker death mid-batch consumes exactly the in-flight case (classified
// from the worker's fate, like a spawn-per-case child death) and
// re-dispatches the batch's remaining cases to a fresh worker exactly
// once each — a case is never executed twice and never lost.
func (d *poolDispatcher) dispatchBatch(start, end int) {
	remaining := start
	sendFailures := 0
	for remaining < end {
		w, err := d.pool.Acquire()
		if err != nil {
			for i := remaining; i < end; i++ {
				d.finishCase(i, d.baseResult(i, OutcomeError, fmt.Sprintf("spawning case server: %v", err)), "spawn-error", nil, time.Now())
			}
			return
		}
		next, ok := d.runBatchOn(w, remaining, end)
		if !ok {
			// Send failed on an idle worker that died between batches. The
			// pool spawns a fresh worker on re-acquire; a bounded number of
			// consecutive failures means spawning itself is broken.
			if sendFailures++; sendFailures >= 3 {
				for i := remaining; i < end; i++ {
					d.finishCase(i, d.baseResult(i, OutcomeError, "case server pipe failed repeatedly"), "spawn-error", nil, time.Now())
				}
				return
			}
			continue
		}
		if next < end {
			d.opts.Metrics.Inc("pool.redispatches", 1)
		}
		remaining = next
	}
}

// runBatchOn dispatches cases [start, end) to one worker and consumes its
// item frames. It returns the next case index still to run (end when the
// batch completed) and whether the request was delivered at all; ok=false
// means no case was consumed and the batch should be retried whole.
func (d *poolDispatcher) runBatchOn(w *pool.Worker, start, end int) (next int, ok bool) {
	req := batchRequest{
		Component:           d.s.Component,
		SkipInvariantChecks: d.opts.SkipInvariantChecks,
		SkipReporter:        d.opts.SkipReporter,
		CaseTimeoutMS:       d.opts.CaseTimeout.Milliseconds(),
		StepBudget:          d.opts.StepBudget,
		MaxTranscriptBytes:  d.opts.MaxTranscriptBytes,
		Context:             d.opts.IsolationContext,
		Trace:               d.opts.Trace != nil,
	}
	for i := start; i < end; i++ {
		tc := d.s.Cases[i]
		req.Items = append(req.Items, batchItem{Case: tc, Seed: CaseSeed(d.opts.Seed, tc.ID)})
	}
	payload, err := json.Marshal(req)
	if err != nil {
		d.pool.Release(w)
		for i := start; i < end; i++ {
			d.finishCase(i, d.baseResult(i, OutcomeError, fmt.Sprintf("encoding isolated case request: %v", err)), "encode-error", nil, time.Now())
		}
		return end, true
	}
	if err := w.Send(payload); err != nil {
		d.pool.Discard(w)
		return start, false
	}
	d.opts.Metrics.Inc("pool.batches", 1)

	begin := time.Now()
	for i := start; i < end; i++ {
		tc := d.s.Cases[i]
		frame, err := w.Recv(d.deadline)
		if err == pool.ErrRecvTimeout {
			// The worker is wedged beyond cooperation: the parent-side
			// backstop kill, classified exactly like the spawn path's.
			d.pool.Discard(w)
			d.opts.Metrics.Inc("isolation.backstop-timeouts", 1)
			res := d.baseResult(i, OutcomeTimeout, fmt.Sprintf("isolated case exceeded the %v harness deadline; subprocess killed", d.deadline))
			d.finishCase(i, res, "backstop-timeout", nil, begin)
			return i + 1, true
		}
		if err != nil {
			// The worker's stream ended mid-batch: the in-flight case killed
			// it. Classify from the fate, spawn-path style.
			code, summary := w.Fate()
			d.pool.Discard(w)
			var res CaseResult
			exit := "fatal"
			if code != 0 {
				res = d.baseResult(i, OutcomePanic, "fatal subprocess failure: "+summary)
			} else {
				exit = "no-result"
				res = d.baseResult(i, OutcomeError, "case server exited without a result")
			}
			d.finishCase(i, res, exit, nil, begin)
			return i + 1, true
		}
		var resp batchResponse
		if err := json.Unmarshal(frame, &resp); err != nil {
			d.pool.Discard(w)
			d.finishCase(i, d.baseResult(i, OutcomeError, fmt.Sprintf("decoding batch response: %v", err)), "decode-error", nil, begin)
			return i + 1, true
		}
		if resp.Done {
			if resp.Error != "" {
				// The worker could not decode the request; every case of this
				// batch gets the server error, worker stays healthy.
				for j := i; j < end; j++ {
					d.finishCase(j, d.baseResult(j, OutcomeError, "case server: "+resp.Error), "server-error", nil, begin)
					begin = time.Now()
				}
				d.pool.Release(w)
				return end, true
			}
			d.pool.Discard(w)
			d.finishCase(i, d.baseResult(i, OutcomeError, "case server ended batch early"), "protocol-error", nil, begin)
			return i + 1, true
		}
		if resp.Error != "" {
			// Per-item resolution failure; the worker keeps serving.
			d.finishCase(i, d.baseResult(i, OutcomeError, "case server: "+resp.Error), "server-error", nil, begin)
			begin = time.Now()
			continue
		}
		if resp.Result == nil {
			d.pool.Discard(w)
			d.finishCase(i, d.baseResult(i, OutcomeError, "case server sent an empty item response"), "protocol-error", nil, begin)
			return i + 1, true
		}
		res := *resp.Result
		res.CaseID, res.Transaction = tc.ID, tc.Transaction
		d.finishCase(i, res, "ok", resp.BITSites, begin)
		begin = time.Now()
	}
	// All items answered; consume the Done frame and honor its Dirty flag.
	frame, err := w.Recv(d.deadline)
	if err == nil {
		var done batchResponse
		if jsonErr := json.Unmarshal(frame, &done); jsonErr == nil && done.Done && !done.Dirty {
			d.pool.Release(w)
			return end, true
		}
	}
	// Missing or dirty Done frame: every result is in, but the worker is
	// not a trustworthy fresh world anymore — recycle it.
	d.opts.Metrics.Inc("pool.recycles", 1)
	d.pool.Discard(w)
	return end, true
}

// baseResult builds the parent-side classification shell for case i,
// matching the fields the spawn path stamps.
func (d *poolDispatcher) baseResult(i int, outcome Outcome, detail string) CaseResult {
	tc := d.s.Cases[i]
	return CaseResult{
		CaseID:      tc.ID,
		Transaction: tc.Transaction,
		Seed:        CaseSeed(d.opts.Seed, tc.ID),
		Outcome:     outcome,
		Detail:      detail,
	}
}

// finishCase applies the per-case bookkeeping Run's in-process/spawn paths
// do in runOne: case + dispatch spans, child-span re-parenting, oracle
// check (with harness-hook panic containment), telemetry merge (timeouts
// contribute nothing), metrics, and the index-aligned result store.
func (d *poolDispatcher) finishCase(i int, res CaseResult, exit string, sites []bit.SiteRecord, begin time.Time) {
	tc := d.s.Cases[i]
	caseSpan := d.opts.Trace.Start(d.suiteSpan.ID(), obs.KindCase, tc.ID)
	caseSpan.SetAttr("transaction", tc.Transaction)
	dispatch := d.opts.Trace.Start(caseSpan.ID(), obs.KindSpawn, tc.ID)
	dispatch.SetAttr("exit", exit)
	if d.opts.Trace != nil && exit == "ok" {
		// Split the worker's piggybacked spans off Extra and re-parent them
		// under the dispatch span; the report keeps the exact payload bytes
		// an untraced run would have carried.
		payload, childSpans := obs.UnwrapExtra(res.Extra)
		res.Extra = payload
		d.opts.Trace.EmitChildren(dispatch.ID(), childSpans)
	}
	dispatch.End()
	if d.opts.Oracle != nil && res.Outcome == OutcomePass {
		// Oracle panics must become recorded per-case outcomes, never
		// harness crashes — same containment as runCaseInner's hook guard.
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.Outcome = OutcomePanic
					res.Detail = fmt.Sprintf("panic in harness hook: %v", p)
				}
			}()
			if err := d.opts.Oracle.Check(tc.ID, res.Transcript); err != nil {
				res.Outcome = OutcomeOutputDiff
				res.Detail = err.Error()
			}
		}()
	}
	if res.Outcome != OutcomeTimeout {
		d.suiteTel.MergeRecords(sites)
	}
	caseSpan.SetAttr("outcome", res.Outcome.String())
	if res.Method != "" {
		caseSpan.SetAttr("method", res.Method)
	}
	caseSpan.End()
	if d.opts.Metrics != nil {
		d.opts.Metrics.Inc("case.total", 1)
		d.opts.Metrics.Inc("case.outcome."+res.Outcome.String(), 1)
		d.opts.Metrics.Observe("case.duration", tc.ID, time.Since(begin))
	}
	d.results[i] = res
}
