package bit

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeOff, "off"},
		{ModeTest, "test"},
		{Mode(9), "mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestViolationKindString(t *testing.T) {
	tests := []struct {
		k    ViolationKind
		want string
	}{
		{KindInvariant, "invariant"},
		{KindPrecondition, "pre-condition"},
		{KindPostcondition, "post-condition"},
		{ViolationKind(7), "violation(7)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Kind: KindInvariant, Method: "Sort1", Expr: "count >= 0", Detail: "count=-1"}
	msg := v.Error()
	for _, want := range []string{"invariant is violated!", "Sort1", "count >= 0", "count=-1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
	// Minimal violation still renders the macro wording.
	if got := (&Violation{Kind: KindPrecondition}).Error(); got != "pre-condition is violated!" {
		t.Errorf("minimal Error() = %q", got)
	}
}

func TestAssertionHelpers(t *testing.T) {
	if err := ClassInvariant(true, "m", "x"); err != nil {
		t.Errorf("passing invariant: %v", err)
	}
	if err := PreCondition(true, "m", "x"); err != nil {
		t.Errorf("passing pre: %v", err)
	}
	if err := PostCondition(true, "m", "x"); err != nil {
		t.Errorf("passing post: %v", err)
	}
	cases := []struct {
		err  error
		kind ViolationKind
	}{
		{ClassInvariant(false, "m", "e"), KindInvariant},
		{PreCondition(false, "m", "e"), KindPrecondition},
		{PostCondition(false, "m", "e"), KindPostcondition},
	}
	for _, c := range cases {
		v, ok := AsViolation(c.err)
		if !ok || v.Kind != c.kind {
			t.Errorf("violation = %+v, ok=%v, want kind %s", v, ok, c.kind)
		}
	}
}

func TestViolationErrorsIs(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", ClassInvariant(false, "Sort1", "ordered"))
	if !errors.Is(err, ErrViolation) {
		t.Error("errors.Is(err, ErrViolation) should match any violation")
	}
	if !errors.Is(err, &Violation{Kind: KindInvariant}) {
		t.Error("kind-only target should match")
	}
	if errors.Is(err, &Violation{Kind: KindPrecondition}) {
		t.Error("different kind should not match")
	}
	if !errors.Is(err, &Violation{Kind: KindInvariant, Method: "Sort1"}) {
		t.Error("kind+method target should match")
	}
	if errors.Is(err, &Violation{Kind: KindInvariant, Method: "Other"}) {
		t.Error("different method should not match")
	}
	if errors.Is(errors.New("x"), ErrViolation) {
		t.Error("non-violation should not match ErrViolation")
	}
}

func TestAsViolation(t *testing.T) {
	if _, ok := AsViolation(errors.New("plain")); ok {
		t.Error("plain error should not be a violation")
	}
	if _, ok := AsViolation(nil); ok {
		t.Error("nil should not be a violation")
	}
	wrapped := fmt.Errorf("outer: %w", PreCondition(false, "m", "e"))
	v, ok := AsViolation(wrapped)
	if !ok || v.Kind != KindPrecondition {
		t.Errorf("AsViolation(wrapped) = %+v, %v", v, ok)
	}
}

func TestBaseModeDefaultsOff(t *testing.T) {
	var b Base
	if b.BITMode() != ModeOff {
		t.Errorf("zero Base mode = %s, want off", b.BITMode())
	}
	if b.InTestMode() {
		t.Error("zero Base should not be in test mode")
	}
	if err := b.Guard(); !errors.Is(err, ErrBITDisabled) {
		t.Errorf("Guard() = %v, want ErrBITDisabled", err)
	}
}

func TestBaseModeSwitch(t *testing.T) {
	var b Base
	b.SetBITMode(ModeTest)
	if b.BITMode() != ModeTest || !b.InTestMode() {
		t.Error("mode switch to test failed")
	}
	if err := b.Guard(); err != nil {
		t.Errorf("Guard in test mode: %v", err)
	}
	b.SetBITMode(ModeOff)
	if b.InTestMode() {
		t.Error("mode switch back to off failed")
	}
}

func TestBaseModeConcurrent(t *testing.T) {
	var b Base
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if i%2 == 0 {
					b.SetBITMode(ModeTest)
				} else {
					b.SetBITMode(ModeOff)
				}
				_ = b.BITMode()
				_ = b.Guard()
			}
		}(i)
	}
	wg.Wait()
}

// demo is a minimal self-testable component used to exercise the interface.
type demo struct {
	Base
	count int
}

func (d *demo) InvariantTest() error {
	if err := d.Guard(); err != nil {
		return err
	}
	return ClassInvariant(d.count >= 0, "InvariantTest", "count >= 0")
}

func (d *demo) Reporter(w io.Writer) error {
	if err := d.Guard(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "demo{count: %d}\n", d.count)
	return err
}

var _ SelfTestable = (*demo)(nil)

func TestSelfTestableComponent(t *testing.T) {
	d := &demo{}
	// Outside test mode every BIT service is gated.
	if err := d.InvariantTest(); !errors.Is(err, ErrBITDisabled) {
		t.Errorf("InvariantTest off-mode = %v", err)
	}
	if err := d.Reporter(io.Discard); !errors.Is(err, ErrBITDisabled) {
		t.Errorf("Reporter off-mode = %v", err)
	}
	d.SetBITMode(ModeTest)
	if err := d.InvariantTest(); err != nil {
		t.Errorf("InvariantTest valid state: %v", err)
	}
	var sb strings.Builder
	if err := d.Reporter(&sb); err != nil {
		t.Errorf("Reporter: %v", err)
	}
	if !strings.Contains(sb.String(), "count: 0") {
		t.Errorf("report = %q", sb.String())
	}
	// Corrupt the state: the invariant must now fail.
	d.count = -5
	err := d.InvariantTest()
	if v, ok := AsViolation(err); !ok || v.Kind != KindInvariant {
		t.Errorf("corrupted InvariantTest = %v", err)
	}
}

func TestContractCheckedHappyPath(t *testing.T) {
	c := Contract{
		Name: "Add",
		Pre:  func(args []any) error { return PreCondition(args[0].(int) > 0, "Add", "v > 0") },
		Post: func(args, results []any) error {
			return PostCondition(results[0].(int) >= args[0].(int), "Add", "sum >= v")
		},
	}
	inv := func() error { return nil }
	results, err := c.Checked(inv, []any{3}, func() ([]any, error) { return []any{7}, nil })
	if err != nil {
		t.Fatalf("Checked: %v", err)
	}
	if results[0].(int) != 7 {
		t.Errorf("results = %v", results)
	}
}

func TestContractCheckedFailures(t *testing.T) {
	boom := errors.New("boom")
	t.Run("entry invariant", func(t *testing.T) {
		c := Contract{Name: "m"}
		calls := 0
		_, err := c.Checked(
			func() error { return ClassInvariant(false, "m", "inv") },
			nil,
			func() ([]any, error) { calls++; return nil, nil },
		)
		if !errors.Is(err, &Violation{Kind: KindInvariant}) {
			t.Errorf("err = %v", err)
		}
		if !strings.Contains(err.Error(), "entering m") {
			t.Errorf("err = %v", err)
		}
		if calls != 0 {
			t.Error("body should not run after entry invariant failure")
		}
	})
	t.Run("precondition", func(t *testing.T) {
		c := Contract{Name: "m", Pre: func([]any) error { return PreCondition(false, "m", "p") }}
		calls := 0
		_, err := c.Checked(nil, nil, func() ([]any, error) { calls++; return nil, nil })
		if !errors.Is(err, &Violation{Kind: KindPrecondition}) || calls != 0 {
			t.Errorf("err = %v, calls = %d", err, calls)
		}
	})
	t.Run("body error propagates", func(t *testing.T) {
		c := Contract{Name: "m", Post: func(_, _ []any) error { t.Error("post should not run"); return nil }}
		_, err := c.Checked(nil, nil, func() ([]any, error) { return nil, boom })
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("postcondition", func(t *testing.T) {
		c := Contract{Name: "m", Post: func(_, _ []any) error { return PostCondition(false, "m", "q") }}
		_, err := c.Checked(nil, nil, func() ([]any, error) { return []any{1}, nil })
		if !errors.Is(err, &Violation{Kind: KindPostcondition}) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("exit invariant", func(t *testing.T) {
		c := Contract{Name: "m"}
		broken := false
		inv := func() error {
			if broken {
				return ClassInvariant(false, "m", "inv")
			}
			return nil
		}
		_, err := c.Checked(inv, nil, func() ([]any, error) { broken = true; return nil, nil })
		if !errors.Is(err, &Violation{Kind: KindInvariant}) || !strings.Contains(err.Error(), "leaving m") {
			t.Errorf("err = %v", err)
		}
	})
}

// stepLimiter is a minimal Charger for the guard-budget tests.
type stepLimiter struct {
	left int
	err  error
}

func (s *stepLimiter) Step() error {
	if s.left <= 0 {
		return s.err
	}
	s.left--
	return nil
}

func TestGuardChargesBudget(t *testing.T) {
	var b Base
	b.SetBITMode(ModeTest)
	exhausted := errors.New("budget exhausted")
	b.SetBITBudget(&stepLimiter{left: 2, err: exhausted})
	for i := 0; i < 2; i++ {
		if err := b.Guard(); err != nil {
			t.Fatalf("guard %d within budget: %v", i, err)
		}
	}
	if err := b.Guard(); !errors.Is(err, exhausted) {
		t.Fatalf("guard beyond budget = %v, want wrapped %v", err, exhausted)
	}
}

func TestGuardModeCheckedBeforeBudget(t *testing.T) {
	var b Base
	exhausted := errors.New("budget exhausted")
	b.SetBITBudget(&stepLimiter{left: 0, err: exhausted})
	if err := b.Guard(); !errors.Is(err, ErrBITDisabled) {
		t.Fatalf("guard outside test mode = %v, want ErrBITDisabled", err)
	}
}

func TestGuardWithoutBudgetUnmetered(t *testing.T) {
	var b Base
	b.SetBITMode(ModeTest)
	b.SetBITBudget(nil) // explicit nil must be a no-op
	for i := 0; i < 1000; i++ {
		if err := b.Guard(); err != nil {
			t.Fatalf("unmetered guard: %v", err)
		}
	}
}
