package sortlist

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/components/oblist"
	"concat/internal/domain"
	"concat/internal/mutation"
	"concat/internal/tspec"
)

func ints(vs ...int64) []domain.Value {
	out := make([]domain.Value, len(vs))
	for i, v := range vs {
		out[i] = domain.Int(v)
	}
	return out
}

func sortableOf(vs ...int64) *SortableObList {
	s := NewSortableObList(10, nil)
	s.SetValues(ints(vs...))
	return s
}

func assertSorted(t *testing.T, s *SortableObList, want ...int64) {
	t.Helper()
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].MustInt() != w {
			t.Fatalf("values[%d] = %v, want %d", i, got[i], w)
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
}

func TestSortsOnKnownInputs(t *testing.T) {
	inputs := [][]int64{
		{},
		{1},
		{2, 1},
		{3, 1, 2},
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
		{7, 7, 7},
		{9, 1, 8, 2, 7, 3},
	}
	sorters := []struct {
		name string
		run  func(*SortableObList) error
	}{
		{"Sort1", (*SortableObList).Sort1},
		{"Sort2", (*SortableObList).Sort2},
		{"ShellSort", (*SortableObList).ShellSort},
	}
	for _, srt := range sorters {
		for _, in := range inputs {
			s := sortableOf(in...)
			if err := srt.run(s); err != nil {
				t.Fatalf("%s(%v): %v", srt.name, in, err)
			}
			want := append([]int64(nil), in...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			assertSorted(t, s, want...)
			if !s.SortedHint() {
				t.Errorf("%s should set the sorted hint", srt.name)
			}
		}
	}
}

func TestSortsAgreeProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		a, b, c := sortableOf(in...), sortableOf(in...), sortableOf(in...)
		if a.Sort1() != nil || b.Sort2() != nil || c.ShellSort() != nil {
			return false
		}
		va, vb, vc := a.Values(), b.Values(), c.Values()
		for i := range va {
			if !va[i].Equal(vb[i]) || !va[i].Equal(vc[i]) {
				return false
			}
		}
		// And against the reference sort.
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, w := range want {
			if va[i].MustInt() != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFindMaxMin(t *testing.T) {
	s := sortableOf(3, 9, 1, 7)
	maxV, err := s.FindMax()
	if err != nil || maxV.MustInt() != 9 {
		t.Errorf("FindMax = %v, %v", maxV, err)
	}
	minV, err := s.FindMin()
	if err != nil || minV.MustInt() != 1 {
		t.Errorf("FindMin = %v, %v", minV, err)
	}
	empty := sortableOf()
	if _, err := empty.FindMax(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty FindMax err = %v", err)
	}
	if _, err := empty.FindMin(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty FindMin err = %v", err)
	}
}

func TestFindMaxMinProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]int64, len(raw))
		hi, lo := int64(raw[0]), int64(raw[0])
		for i, v := range raw {
			in[i] = int64(v)
			if in[i] > hi {
				hi = in[i]
			}
			if in[i] < lo {
				lo = in[i]
			}
		}
		s := sortableOf(in...)
		maxV, err1 := s.FindMax()
		minV, err2 := s.FindMin()
		return err1 == nil && err2 == nil && maxV.MustInt() == hi && minV.MustInt() == lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRedefinedMutatorsTrackMods(t *testing.T) {
	s := sortableOf(1, 2, 3)
	if err := s.Sort1(); err != nil {
		t.Fatal(err)
	}
	if !s.SortedHint() || s.Mods() != 0 {
		t.Fatalf("after sort: hint=%v mods=%d", s.SortedHint(), s.Mods())
	}
	if err := s.SetAt(0, domain.Int(9)); err != nil {
		t.Fatal(err)
	}
	if s.SortedHint() || s.Mods() != 1 {
		t.Errorf("after SetAt: hint=%v mods=%d", s.SortedHint(), s.Mods())
	}
	if err := s.InsertBefore(0, domain.Int(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertAfter(0, domain.Int(6)); err != nil {
		t.Fatal(err)
	}
	if s.Mods() != 3 {
		t.Errorf("mods = %d, want 3", s.Mods())
	}
	// Errors do not bump the counter.
	if err := s.SetAt(99, domain.Int(0)); err == nil {
		t.Fatal("out-of-range SetAt should fail")
	}
	if s.Mods() != 3 {
		t.Errorf("failed SetAt bumped mods to %d", s.Mods())
	}
}

func TestInstanceDispatchesSubclassMethods(t *testing.T) {
	f := NewFactory()
	inst, err := f.New("SortableObList", nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	for _, v := range []int64{3, 1, 2} {
		if _, err := inst.Invoke("AddTail", ints(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inst.Invoke("Sort1", nil); err != nil {
		t.Fatalf("Sort1: %v", err)
	}
	out, err := inst.Invoke("GetHead", nil)
	if err != nil || out[0].MustInt() != 1 {
		t.Errorf("after sort GetHead = %v, %v", out, err)
	}
	out, err = inst.Invoke("FindMax", nil)
	if err != nil || out[0].MustInt() != 3 {
		t.Errorf("FindMax = %v, %v", out, err)
	}
	out, err = inst.Invoke("FindMin", nil)
	if err != nil || out[0].MustInt() != 1 {
		t.Errorf("FindMin = %v, %v", out, err)
	}
	// Redefined SetAt goes through the subclass (mods counter moves).
	if _, err := inst.Invoke("SetAt", ints(0, 42)); err != nil {
		t.Fatal(err)
	}
	if inst.(*Instance).Mods() != 1 {
		t.Error("dispatched SetAt did not go through the subclass override")
	}
	if err := inst.InvariantTest(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	var sb strings.Builder
	if err := inst.Reporter(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SortableObList{count: 3") {
		t.Errorf("report = %q", sb.String())
	}
	if err := inst.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("GetCount", nil); !errors.Is(err, component.ErrDestroyed) {
		t.Errorf("post-destroy err = %v", err)
	}
}

func TestInstanceSortVariants(t *testing.T) {
	for _, m := range []string{"Sort1", "Sort2", "ShellSort"} {
		f := NewFactory()
		inst, _ := f.New("SortableObListSized", ints(16))
		inst.SetBITMode(bit.ModeTest)
		for _, v := range []int64{5, 2, 9, 2} {
			if _, err := inst.Invoke("AddHead", ints(v)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := inst.Invoke(m, nil); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		out, err := inst.Invoke("GetHead", nil)
		if err != nil || out[0].MustInt() != 2 {
			t.Errorf("%s head = %v, %v", m, out, err)
		}
	}
}

func TestFactoryErrors(t *testing.T) {
	f := NewFactory()
	if f.Name() != Name {
		t.Errorf("Name() = %q", f.Name())
	}
	if _, err := f.New("Nope", nil); err == nil {
		t.Error("unknown ctor should fail")
	}
	if _, err := f.New("SortableObList", ints(1)); err == nil {
		t.Error("no-arg ctor with args should fail")
	}
	if _, err := f.New("SortableObListSized", nil); err == nil {
		t.Error("sized ctor without args should fail")
	}
}

func TestSpecValidAndExtendsParent(t *testing.T) {
	s := Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	if s.Class.Superclass != oblist.Name {
		t.Errorf("superclass = %q", s.Class.Superclass)
	}
	cls, err := tspec.Classify(oblist.Spec(), s)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	wantNew := []string{"FindMax", "FindMin", "ShellSort", "Sort1", "Sort2",
		"SortableObList", "SortableObListSized", "~SortableObList"}
	gotNew := cls.Names(tspec.StatusNew)
	if len(gotNew) != len(wantNew) {
		t.Fatalf("new methods = %v, want %v", gotNew, wantNew)
	}
	wantRedef := []string{"InsertAfter", "InsertBefore", "SetAt"}
	gotRedef := cls.Names(tspec.StatusRedefined)
	if len(gotRedef) != len(wantRedef) {
		t.Fatalf("redefined = %v, want %v", gotRedef, wantRedef)
	}
	for _, m := range []string{"AddHead", "AddTail", "RemoveHead", "RemoveAt", "Find", "RemoveAll"} {
		if cls[m] != tspec.StatusInherited {
			t.Errorf("%s = %s, want inherited", m, cls[m])
		}
	}
}

func TestSitesCoverTheFiveMethods(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	got := eng.Methods()
	want := []string{"FindMax", "FindMin", "ShellSort", "Sort1", "Sort2"}
	if len(got) != len(want) {
		t.Fatalf("methods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("methods[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestMutatedSortViolatesPostcondition(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	// Sort1/i replaced by global mods (always 0 here): outer loop exits
	// immediately, the list stays unsorted.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepGlob}, []string{"Sort1"}) {
		if m.Site == "Sort1/i" && m.Replacement == "mods" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	s := NewSortableObList(10, eng)
	s.SetValues(ints(3, 1, 2))
	err := s.Sort1()
	if !errors.Is(err, &bit.Violation{Kind: bit.KindPostcondition}) {
		t.Errorf("mutated Sort1 err = %v, want postcondition violation", err)
	}
}

func TestRunawayMutantPanics(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	// Sort1/j pinned to constant 1: the inner loop can never terminate
	// normally; the iteration bound must fire.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepReq}, []string{"Sort1"}) {
		if m.Site == "Sort1/j" && m.Constant.Equal(domain.Int(1)) {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("runaway mutant should panic at the iteration bound")
		}
	}()
	s := NewSortableObList(10, eng)
	s.SetValues(ints(5, 4, 3, 2, 1, 9, 8, 7))
	_ = s.Sort1()
}

func TestEquivalentMutantStaysClean(t *testing.T) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(Sites()...)
	// Sort2/minIdx starts as i, so RepLoc(i) is the original program.
	var target mutation.Mutant
	for _, m := range eng.Enumerate([]mutation.Operator{mutation.OpRepLoc}, []string{"Sort2"}) {
		if m.Site == "Sort2/minIdx" && m.Replacement == "i" {
			target = m
		}
	}
	if target.ID == "" {
		t.Fatal("target mutant not found")
	}
	if err := eng.Activate(target); err != nil {
		t.Fatal(err)
	}
	s := NewSortableObList(10, eng)
	s.SetValues(ints(3, 1, 2))
	if err := s.Sort2(); err != nil {
		t.Fatalf("equivalent mutant changed behaviour: %v", err)
	}
	assertSorted(t, s, 1, 2, 3)
	if eng.Infected() {
		t.Error("equivalent mutant should never infect")
	}
	if !eng.Reached() {
		t.Error("equivalent mutant site should be reached")
	}
}
