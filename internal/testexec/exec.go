// Package testexec is the consumer-side test infrastructure of §3.4: it
// executes generated suites against a self-testable component, checks the
// class invariant around every call (the built-in partial oracle), captures
// the reporter dump, writes the run log (the paper's "Result.txt"), and
// compares observable output against a recorded reference run (the manual
// oracle the paper's experimenters validated by hand, automated here as a
// golden-output oracle).
//
// The per-case outcomes map onto the paper's mutant-kill criteria: a panic
// is criterion (i) "the program crashed", an assertion violation is
// criterion (ii), and an output difference against the reference run is
// criterion (iii).
package testexec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/sandbox"
	"concat/internal/sandbox/pool"
	"concat/internal/tspec"
)

// Outcome classifies one executed test case.
type Outcome int

// Case outcomes.
const (
	// OutcomePass: the case ran to completion with no assertion violation
	// and (if an oracle was installed) matching output.
	OutcomePass Outcome = iota + 1
	// OutcomeViolation: an assertion (invariant/pre/post) was violated.
	OutcomeViolation
	// OutcomePanic: the component crashed; the executor recovered it.
	OutcomePanic
	// OutcomeError: the harness could not run the case (unfillable hole,
	// constructor failure, unknown method).
	OutcomeError
	// OutcomeOutputDiff: the case completed but its observable output
	// differs from the installed oracle's reference.
	OutcomeOutputDiff
	// OutcomeTimeout: the case exceeded Options.CaseTimeout. In mutation
	// analysis a timeout is a kill — the paper's testbed would hang on a
	// runaway mutant and be killed externally.
	OutcomeTimeout
	// OutcomeResourceExhausted: the case ran out of a sandbox budget — the
	// cooperative step budget (Options.StepBudget) or the transcript
	// allocation cap (Options.MaxTranscriptBytes). Like a timeout it is a
	// kill in mutation analysis: a mutant that burns unbounded resources
	// is a crash in the paper's criterion (i) sense, caught at a
	// deterministic point instead of by an external kill.
	OutcomeResourceExhausted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeViolation:
		return "assertion-violation"
	case OutcomePanic:
		return "crash"
	case OutcomeError:
		return "harness-error"
	case OutcomeOutputDiff:
		return "output-diff"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeResourceExhausted:
		return "resource-exhausted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// CaseResult is the record of one executed test case.
type CaseResult struct {
	CaseID      string
	Transaction string
	Outcome     Outcome
	// Seed is the per-case RNG seed the executor derived for this case
	// (see CaseSeed). It depends only on the suite seed and the case ID,
	// never on execution order, so serial and parallel runs record the
	// same value.
	Seed int64
	// Method is the method being executed when the case failed (the log's
	// "Method called:" line); empty on pass.
	Method string
	// ViolationKind is set when Outcome is OutcomeViolation.
	ViolationKind bit.ViolationKind
	// Detail carries the failure message.
	Detail string
	// Transcript is the case's observable output: every call's results and
	// errors plus the final reporter dump. It is what the golden oracle
	// compares.
	Transcript string
	// Extra is opaque per-case data a subprocess case server's resolver
	// shipped back (see Resolved.Finish) — e.g. mutation reach/infection
	// flags. Empty for in-process execution.
	Extra json.RawMessage
}

// Report aggregates a suite run.
type Report struct {
	Component string
	Results   []CaseResult
	// AbandonedGoroutines counts the cases whose in-process execution
	// exceeded CaseTimeout: their goroutines cannot be killed and were
	// abandoned (and recorded in the leak ledger). Deterministic — one per
	// in-process timeout — so serial and parallel runs agree. Subprocess
	// isolation never abandons goroutines in the harness (the leak dies
	// with the child), so the count stays zero there.
	AbandonedGoroutines int
	// BITSites is the suite's aggregated assertion-site telemetry: for every
	// (kind, method, predicate) assertion the component evaluated through its
	// embedded bit.Base, how often it was evaluated and how often it was
	// violated. The executor installs a private bit.Telemetry per case and
	// merges completed cases' counts here, sorted by site — deterministic for
	// a fixed seed, identical across serial/parallel, in-process/isolated and
	// traced/untraced runs. Timed-out cases contribute nothing: their
	// abandoned goroutines may still be evaluating assertions, so their
	// counts are unordered by construction and are dropped on both the
	// in-process and the subprocess path.
	BITSites []bit.SiteRecord `json:",omitempty"`

	// indexOnce/index back Result's by-ID lookup. The index is built
	// lazily on the first Result call — after Results is final — so
	// resolving many case IDs (per-killing-case resolution over a large
	// campaign) is linear instead of quadratic. Results keeps its suite
	// order; the index is a read-side cache only.
	indexOnce sync.Once
	index     map[string]int
}

// Counts returns the number of cases per outcome.
func (r *Report) Counts() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, c := range r.Results {
		out[c.Outcome]++
	}
	return out
}

// AllPassed reports whether every case passed.
func (r *Report) AllPassed() bool {
	for _, c := range r.Results {
		if c.Outcome != OutcomePass {
			return false
		}
	}
	return true
}

// Failures returns the non-passing case results.
func (r *Report) Failures() []CaseResult {
	var out []CaseResult
	for _, c := range r.Results {
		if c.Outcome != OutcomePass {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders a one-line human summary plus per-outcome counts.
func (r *Report) Summary() string {
	counts := r.Counts()
	var keys []int
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", Outcome(k), counts[Outcome(k)]))
	}
	return fmt.Sprintf("%s: %d cases (%s)", r.Component, len(r.Results), strings.Join(parts, ", "))
}

// Result returns the result for a case ID. The first call builds a
// CaseID index over Results (first occurrence wins, matching the old
// linear scan), so repeated lookups are O(1). Call it only once the report
// is complete — results appended after the first lookup are not indexed.
func (r *Report) Result(caseID string) (CaseResult, bool) {
	r.indexOnce.Do(func() {
		r.index = make(map[string]int, len(r.Results))
		for i, c := range r.Results {
			if _, dup := r.index[c.CaseID]; !dup {
				r.index[c.CaseID] = i
			}
		}
	})
	i, ok := r.index[caseID]
	if !ok {
		return CaseResult{}, false
	}
	return r.Results[i], true
}

// Oracle checks a completed case's observable output. The golden oracle
// (see Golden) is the standard implementation.
type Oracle interface {
	// Check returns nil if the transcript is acceptable for the case, or an
	// error describing the difference.
	Check(caseID, transcript string) error
}

// Options configure a suite run.
type Options struct {
	// LogWriter receives the run log ("Result.txt" analog); nil discards.
	LogWriter io.Writer
	// Providers complete structured-parameter holes by component type name.
	Providers map[string]domain.Provider
	// Seed drives the providers' randomness; with the same seed hole
	// completion is reproducible.
	Seed int64
	// Oracle, if non-nil, checks every completed case's transcript.
	Oracle Oracle
	// SkipInvariantChecks disables the around-call invariant checking; used
	// by the assertions-oracle ablation.
	SkipInvariantChecks bool
	// SkipReporter disables the end-of-case reporter dump.
	SkipReporter bool
	// CaseTimeout, when positive, bounds each test case's wall-clock time.
	// A case that exceeds it is recorded as OutcomeTimeout. The runaway
	// case's goroutine is abandoned (Go cannot kill it); use this as a
	// last-resort guard for components without their own iteration bounds.
	CaseTimeout time.Duration
	// Parallelism fans the suite's cases over a bounded worker pool when
	// greater than 1; zero or one executes serially. Every case derives its
	// RNG seed from the suite seed and its own ID (CaseSeed), each case
	// constructs its own component instance, and the merged Report lists
	// results in suite order — so for any Parallelism the Report is
	// bit-for-bit identical to the serial run. The factory and oracle must
	// tolerate concurrent calls (the bundled factories and the Golden
	// oracle do); factories whose instances share mutable context should
	// implement component.Forker so every case gets a fresh world.
	Parallelism int
	// StepBudget, when positive, bounds the cooperative work one case may
	// do: the executor charges a step per dispatched call and the BIT
	// guard charges one per guarded service entry (invariant check,
	// reporter dump). A case that exhausts the budget is recorded as
	// OutcomeResourceExhausted at a deterministic point.
	StepBudget int64
	// MaxTranscriptBytes, when positive, caps a case's transcript. A case
	// that exceeds it is recorded as OutcomeResourceExhausted and its
	// transcript carries a truncation marker.
	MaxTranscriptBytes int64
	// LeakLedger receives the abandonment record of every timed-out case's
	// goroutine. Nil uses a private per-run ledger; pass a shared
	// sandbox.Ledger to watch Outstanding() across runs (a live gauge of
	// goroutines still spinning past their deadline). Either way the
	// per-run abandonment count lands in Report.AbandonedGoroutines.
	LeakLedger *sandbox.Ledger
	// Isolation selects the crash-containment mode. IsolateSubprocess
	// re-executes every case in a child case server so fatal mutant
	// failures (stack exhaustion, os.Exit, OOM kill) become recorded
	// OutcomePanic results instead of harness deaths.
	Isolation IsolationMode
	// IsolationCommand is the argv of the case server to spawn under
	// IsolateSubprocess. Empty defaults to re-executing this binary with a
	// `run-case` argument (the concat CLI's hidden subcommand); test
	// binaries typically pass their own os.Executable() plus a ServerEnv
	// check in TestMain.
	IsolationCommand []string
	// IsolationEnv is appended to the case server's environment (ServerEnv
	// is always set).
	IsolationEnv []string
	// IsolationContext is forwarded opaquely to the case server's Resolver
	// — mutation analysis ships the active mutant through it.
	IsolationContext json.RawMessage
	// SpawnRetry overrides the retry policy for transient case-server
	// spawn failures (fork contention); the zero value uses
	// sandbox.DefaultRetryPolicy. Retries never change a case's
	// classification — only deterministic errors reach the report.
	SpawnRetry sandbox.RetryPolicy
	// IsolationBackstop overrides the parent-side deadline applied to an
	// isolated case server. Zero derives it from CaseTimeout when that is
	// set, and falls back to DefaultIsolationBackstop when it is not — a
	// wedged child (a hang the cooperative timeout cannot reach) is always
	// killed eventually; no campaign blocks forever on one case.
	IsolationBackstop time.Duration
	// PoolSize bounds the number of warm worker processes under
	// IsolatePool; zero derives it from Parallelism (minimum 1). Like the
	// other scheduling knobs it never changes results — only wall-clock.
	PoolSize int
	// BatchSize is the number of cases dispatched to a pool worker per
	// round-trip under IsolatePool; zero applies DefaultBatchSize.
	BatchSize int
	// WorkerPool, when non-nil, is the shared warm worker pool to dispatch
	// IsolatePool batches to. The caller owns its lifecycle (Close); a
	// mutation campaign shares one pool across every mutant's suite run so
	// a provisioned worker serves many mutants between restarts. Nil makes
	// Run build (and close) a private pool via NewWorkerPool.
	WorkerPool *pool.Pool
	// Trace receives the run's structured span stream (suite → case →
	// call / child-spawn); nil disables tracing. Timing lives ONLY in this
	// side channel: the Report, its transcripts and every golden comparison
	// are byte-identical with tracing on or off, serial or parallel.
	Trace *obs.Tracer
	// TraceParent is the span the suite span nests under (a campaign or
	// mutant span); zero makes the suite span a trace root.
	TraceParent obs.SpanID
	// Metrics, when non-nil, accumulates per-outcome counters, duration
	// histograms and slowest-case lists for the run — the aggregate side
	// channel next to Trace, under the same determinism contract.
	Metrics *obs.Metrics
}

// CaseSeed derives the RNG seed for one test case from the suite seed and
// the case ID. Hole completion for a case is a function of this seed alone,
// which is what keeps reports identical across serial and parallel runs:
// the seed depends on the case's identity, not on the order or the worker
// the case happens to run on.
func CaseSeed(suiteSeed int64, caseID string) int64 {
	return domain.DeriveSeed(suiteSeed, "case:"+caseID)
}

// Run executes the suite against the component. Per-case failures are
// recorded in the report, not returned as errors; Run itself fails only on
// harness-level misuse (nil suite/factory, component name mismatch).
//
// With Options.Parallelism > 1 the cases execute concurrently; the report
// is identical to the serial run's (see CaseSeed) and the run log is still
// written in suite order.
func Run(s *driver.Suite, f component.Factory, opts Options) (*Report, error) {
	if s == nil || f == nil {
		return nil, errors.New("testexec: nil suite or factory")
	}
	if s.Component != f.Name() {
		return nil, fmt.Errorf("testexec: suite is for %q but factory builds %q", s.Component, f.Name())
	}
	log := opts.LogWriter
	if log == nil {
		log = io.Discard
	}
	ledger := opts.LeakLedger
	if ledger == nil {
		ledger = sandbox.NewLedger()
	}
	abandonedAtStart := ledger.Abandoned()
	spec := f.Spec()

	// The suite span roots the run's trace; every case span hangs off it.
	// Span attrs carry only deterministic labels — wall-clock lives in the
	// span timings, which normalization ignores.
	suiteSpan := opts.Trace.Start(opts.TraceParent, obs.KindSuite, s.Component)
	suiteSpan.SetAttr("cases", strconv.Itoa(len(s.Cases)))
	if opts.Isolation == IsolateSubprocess {
		suiteSpan.SetAttr("isolation", "subprocess")
	} else if opts.Isolation == IsolatePool {
		suiteSpan.SetAttr("isolation", "pool")
	}

	// suiteTel aggregates every completed case's assertion-site counts into
	// Report.BITSites. Merging is commutative addition over sorted records,
	// so the aggregate is independent of worker scheduling.
	suiteTel := bit.NewTelemetry()

	runCaseInner := func(tc driver.TestCase, caseSpan *obs.ActiveSpan, caseTel *bit.Telemetry) (res CaseResult) {
		seed := CaseSeed(opts.Seed, tc.ID)
		// Harness hooks run outside runCase's recovery: a panicking
		// Forker.Fork, provider map, or Oracle.Check must become a recorded
		// per-case outcome, never a harness crash.
		defer func() {
			if p := recover(); p != nil {
				res.CaseID, res.Transaction, res.Seed = tc.ID, tc.Transaction, seed
				res.Outcome = OutcomePanic
				res.Detail = fmt.Sprintf("panic in harness hook: %v", p)
			}
		}()
		if opts.Isolation == IsolateSubprocess {
			// The child process is the case's fresh world; forking and
			// provider resolution happen behind the case server's resolver.
			res = runCaseIsolated(s.Component, tc, opts, seed, caseSpan, caseTel)
		} else {
			// Components whose instances share mutable context
			// (component.Forker) get a fresh world per case: without this, a
			// case's transcript depends on what earlier — or, under
			// parallelism, concurrent — cases left behind in the shared state.
			cf, caseOpts := f, opts
			if fk, ok := f.(component.Forker); ok {
				cf = fk.Fork()
				if ps, ok := cf.(interface {
					Providers() map[string]domain.Provider
				}); ok && caseOpts.Providers != nil {
					caseOpts.Providers = ps.Providers()
				}
			}
			res = runCaseBounded(tc, cf, spec, caseOpts, seed, ledger, caseSpan.ID(), caseTel)
		}
		res.Seed = seed
		if opts.Oracle != nil && res.Outcome == OutcomePass {
			if err := opts.Oracle.Check(tc.ID, res.Transcript); err != nil {
				res.Outcome = OutcomeOutputDiff
				res.Detail = err.Error()
			}
		}
		return res
	}
	runOne := func(tc driver.TestCase) CaseResult {
		caseSpan := opts.Trace.Start(suiteSpan.ID(), obs.KindCase, tc.ID)
		caseSpan.SetAttr("transaction", tc.Transaction)
		var begin time.Time
		if opts.Metrics != nil {
			begin = time.Now()
		}
		// Each case gets a private telemetry; its counts join the suite
		// aggregate only when the case completed. A timed-out case's
		// abandoned goroutine keeps writing into its private telemetry
		// harmlessly — merging it would make the aggregate racy.
		caseTel := bit.NewTelemetry()
		res := runCaseInner(tc, caseSpan, caseTel)
		if res.Outcome != OutcomeTimeout {
			suiteTel.Merge(caseTel)
		}
		caseSpan.SetAttr("outcome", res.Outcome.String())
		if res.Method != "" {
			caseSpan.SetAttr("method", res.Method)
		}
		caseSpan.End()
		if opts.Metrics != nil {
			opts.Metrics.Inc("case.total", 1)
			opts.Metrics.Inc("case.outcome."+res.Outcome.String(), 1)
			opts.Metrics.Observe("case.duration", tc.ID, time.Since(begin))
		}
		return res
	}

	report := &Report{Component: s.Component}
	workers := opts.Parallelism
	if workers > len(s.Cases) {
		workers = len(s.Cases)
	}
	finish := func() {
		report.AbandonedGoroutines = int(ledger.Abandoned() - abandonedAtStart)
		report.BITSites = suiteTel.Records()
		suiteSpan.End()
		opts.Metrics.Inc("suite.runs", 1)
	}
	if opts.Isolation == IsolatePool {
		// Warm worker pool: batched dispatch replaces the per-case runOne
		// loop; all per-case bookkeeping (spans, oracle, telemetry, metrics)
		// happens inside the dispatcher with the same rules.
		results, err := runPooled(s, opts, suiteSpan, suiteTel)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			writeLog(log, res)
		}
		report.Results = results
		if workers > 1 {
			suiteSpan.SetAttr("parallelism", strconv.Itoa(workers))
		}
		finish()
		return report, nil
	}
	if workers <= 1 {
		for _, tc := range s.Cases {
			res := runOne(tc)
			writeLog(log, res)
			report.Results = append(report.Results, res)
		}
		finish()
		return report, nil
	}

	// Parallel path: workers pull case indices from a channel and store
	// results into an index-aligned slice, so the merged report (and the
	// log, written afterwards) are in suite order regardless of which
	// worker finished which case when.
	results := make([]CaseResult, len(s.Cases))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(s.Cases[i])
			}
		}()
	}
	for i := range s.Cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, res := range results {
		writeLog(log, res)
	}
	report.Results = results
	suiteSpan.SetAttr("parallelism", strconv.Itoa(workers))
	finish()
	return report, nil
}

// Case-goroutine states for the timeout watchdog's handover.
const (
	caseRunning int32 = iota
	caseFinished
	caseAbandoned
)

// runCaseBounded applies Options.CaseTimeout around runCase. A timed-out
// case's goroutine cannot be killed; it is abandoned into the leak ledger
// (and settles its entry if it ever completes), while the timeout result
// keeps the case's seed and the partial transcript written so far — a
// timeout kill is as diagnosable as a panic.
func runCaseBounded(tc driver.TestCase, f component.Factory, spec *tspec.Spec, opts Options, seed int64, ledger *sandbox.Ledger, caseSpan obs.SpanID, tel *bit.Telemetry) CaseResult {
	tb := newTranscript(opts.MaxTranscriptBytes)
	if opts.CaseTimeout <= 0 {
		return runCase(tc, f, spec, opts, seed, tb, caseSpan, tel)
	}
	done := make(chan CaseResult, 1)
	var state atomic.Int32
	go func() {
		res := runCase(tc, f, spec, opts, seed, tb, caseSpan, tel)
		if state.CompareAndSwap(caseRunning, caseFinished) {
			done <- res
			return
		}
		// The watchdog already abandoned this goroutine; settle the ledger
		// so Outstanding() tracks only goroutines still running.
		ledger.Settle()
	}()
	timer := time.NewTimer(opts.CaseTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		if !state.CompareAndSwap(caseRunning, caseAbandoned) {
			// The case finished in the instant the timer fired; its result
			// is already in the channel.
			return <-done
		}
		ledger.Abandon()
		return CaseResult{
			CaseID:      tc.ID,
			Transaction: tc.Transaction,
			Outcome:     OutcomeTimeout,
			Seed:        seed,
			Detail:      fmt.Sprintf("case exceeded %v; goroutine abandoned (leak ledger)", opts.CaseTimeout),
			Transcript:  tb.Snapshot(fmt.Sprintf("[case timed out after %v: partial transcript]", opts.CaseTimeout)),
		}
	}
}

// runCase executes one test case: construct, invariant-wrapped calls,
// reporter, destroy. Panics anywhere inside are recovered into
// OutcomePanic — the paper's "the program crashed while running the test
// cases" kill criterion. The transcript accumulates in tb so the timeout
// watchdog can snapshot a partial transcript, and so the cap
// (Options.MaxTranscriptBytes) cuts flooding cases off deterministically.
func runCase(tc driver.TestCase, f component.Factory, spec *tspec.Spec, opts Options, seed int64, tb *transcript, caseSpan obs.SpanID, tel *bit.Telemetry) (res CaseResult) {
	res = CaseResult{CaseID: tc.ID, Transaction: tc.Transaction, Outcome: OutcomePass}
	currentMethod := ""
	// curCall is the call span of the dispatch in flight: on a panic the
	// deferred recovery closes it with a "panic" status, so the crashing
	// call is visible in the trace instead of a dangling un-emitted span.
	var curCall *obs.ActiveSpan
	startCall := func(method string) *obs.ActiveSpan {
		sp := opts.Trace.Start(caseSpan, obs.KindCall, method)
		curCall = sp
		return sp
	}
	endCall := func(sp *obs.ActiveSpan, status string) {
		sp.SetAttr("status", status)
		sp.End()
		curCall = nil
	}
	defer func() {
		res.Transcript = tb.String()
		if p := recover(); p != nil {
			res.Outcome = OutcomePanic
			res.Method = currentMethod
			res.Detail = fmt.Sprintf("panic: %v", p)
			if curCall != nil {
				endCall(curCall, "panic")
			}
		}
	}()

	if len(tc.Calls) == 0 {
		res.Outcome = OutcomeError
		res.Detail = "test case has no calls"
		return res
	}
	rng := domain.NewRand(seed)

	// The cooperative step budget: the executor charges one step per
	// dispatched call, and — via bit.BudgetSetter — the component's own BIT
	// guard charges one per guarded service entry.
	var budget *sandbox.Budget
	if opts.StepBudget > 0 {
		budget = sandbox.NewBudget(opts.StepBudget, 0)
	}
	exhausted := func(where string, err error) CaseResult {
		res.Outcome = OutcomeResourceExhausted
		res.Method = where
		res.Detail = err.Error()
		return res
	}

	// Complete holes in every call up front.
	calls := make([]driver.Call, len(tc.Calls))
	for i, c := range tc.Calls {
		cc := c
		cc.Args = append([]domain.Value(nil), c.Args...)
		for _, h := range c.Holes {
			v, err := completeHole(h, opts.Providers, rng)
			if err != nil {
				res.Outcome = OutcomeError
				res.Method = c.Method
				res.Detail = err.Error()
				return res
			}
			if h.Arg < 0 || h.Arg >= len(cc.Args) {
				res.Outcome = OutcomeError
				res.Method = c.Method
				res.Detail = fmt.Sprintf("hole index %d out of range", h.Arg)
				return res
			}
			cc.Args[h.Arg] = v
		}
		calls[i] = cc
	}

	// Birth: the first call is the constructor.
	ctor := calls[0]
	currentMethod = ctor.Method
	ctorSpan := startCall(ctor.Method)
	if err := budget.Step(); err != nil {
		endCall(ctorSpan, "resource-exhausted")
		return exhausted(ctor.Method, err)
	}
	cut, err := f.New(ctor.Method, ctor.Args)
	if err != nil {
		endCall(ctorSpan, "harness-error")
		res.Outcome = OutcomeError
		res.Method = ctor.Method
		res.Detail = fmt.Sprintf("constructor failed: %v", err)
		return res
	}
	destroyed := false
	defer func() {
		if !destroyed {
			_ = cut.Destroy()
		}
	}()
	cut.SetBITMode(bit.ModeTest)
	if budget != nil {
		if bs, ok := cut.(bit.BudgetSetter); ok {
			bs.SetBITBudget(budget)
		}
	}
	if tel != nil {
		if ts, ok := cut.(bit.TelemetrySetter); ok {
			ts.SetBITTelemetry(tel)
		}
	}
	fmt.Fprintf(tb, "NEW %s(%s)\n", ctor.Method, argList(ctor.Args))
	if tb.Truncated() {
		endCall(ctorSpan, "resource-exhausted")
		return exhausted(ctor.Method, errors.New(tb.limitDetail()))
	}
	endCall(ctorSpan, "ok")

	// checkInvariant classifies an invariant-check failure: nil (holds),
	// a *bit.Violation (the partial oracle's verdict), or a sandbox
	// exhaustion error bubbled up through the BIT guard's budget.
	checkInvariant := func(when string) error {
		if opts.SkipInvariantChecks {
			return nil
		}
		if err := cut.InvariantTest(); err != nil {
			if v, ok := bit.AsViolation(err); ok {
				return v
			}
			if sandbox.IsExhausted(err) {
				return err
			}
			// Guard errors and the like are harness problems, surfaced as a
			// synthetic violation detail so they are visible in logs.
			return &bit.Violation{Kind: bit.KindInvariant, Method: when, Detail: err.Error()}
		}
		return nil
	}
	// classify turns a checkInvariant error into the case's final result.
	classify := func(when string, err error) CaseResult {
		if sandbox.IsExhausted(err) {
			return exhausted(when, err)
		}
		v, _ := bit.AsViolation(err)
		res.Outcome = OutcomeViolation
		res.Method = when
		res.ViolationKind = v.Kind
		res.Detail = v.Error()
		return res
	}

	if err := checkInvariant(ctor.Method); err != nil {
		return classify(currentMethod, err)
	}

	// Processing and death: remaining calls, invariant around each.
	for _, call := range calls[1:] {
		currentMethod = call.Method
		callSpan := startCall(call.Method)
		if err := budget.Step(); err != nil {
			endCall(callSpan, "resource-exhausted")
			return exhausted(call.Method, err)
		}
		if isDestructor(spec, call) {
			fmt.Fprintf(tb, "DESTROY %s\n", call.Method)
			if err := cut.Destroy(); err != nil {
				if v, ok := bit.AsViolation(err); ok {
					endCall(callSpan, "assertion-violation")
					res.Outcome = OutcomeViolation
					res.Method = call.Method
					res.ViolationKind = v.Kind
					res.Detail = v.Error()
					return res
				}
				endCall(callSpan, "harness-error")
				res.Outcome = OutcomeError
				res.Method = call.Method
				res.Detail = fmt.Sprintf("destructor failed: %v", err)
				return res
			}
			destroyed = true
			endCall(callSpan, "ok")
			continue
		}
		results, err := cut.Invoke(call.Method, call.Args)
		if err != nil {
			if v, ok := bit.AsViolation(err); ok {
				endCall(callSpan, "assertion-violation")
				res.Outcome = OutcomeViolation
				res.Method = call.Method
				res.ViolationKind = v.Kind
				res.Detail = v.Error()
				return res
			}
			if sandbox.IsExhausted(err) {
				endCall(callSpan, "resource-exhausted")
				return exhausted(call.Method, err)
			}
			// A non-contract error is observable behaviour: record it in
			// the transcript and continue the transaction, so the golden
			// oracle can compare error behaviour between runs.
			fmt.Fprintf(tb, "CALL %s(%s) -> error: %v\n", call.Method, argList(call.Args), err)
			if tb.Truncated() {
				endCall(callSpan, "resource-exhausted")
				return exhausted(call.Method, errors.New(tb.limitDetail()))
			}
			endCall(callSpan, "error")
			continue
		}
		fmt.Fprintf(tb, "CALL %s(%s) -> [%s]\n", call.Method, argList(call.Args), argList(results))
		if tb.Truncated() {
			endCall(callSpan, "resource-exhausted")
			return exhausted(call.Method, errors.New(tb.limitDetail()))
		}
		endCall(callSpan, "ok")
		if err := checkInvariant(call.Method); err != nil {
			return classify(call.Method, err)
		}
	}

	// Reporter dump: the object's final internal state, part of the
	// observable output (the paper's driver calls Reporter at case end). The
	// dump buffers in a metered builder — each write charges the transcript
	// cap — so a flooding Reporter is stopped cooperatively and never
	// interleaves a partial dump into the transcript.
	if !opts.SkipReporter && !destroyed {
		repSpan := startCall("reporter")
		mb := &meteredBuilder{t: tb}
		err := cut.Reporter(mb)
		if sandbox.IsExhausted(err) || tb.Truncated() {
			// Truncated() also catches a Reporter that swallowed the metered
			// writer's exhaustion error and returned nil.
			endCall(repSpan, "resource-exhausted")
			return exhausted("reporter", errors.New(tb.limitDetail()))
		}
		if err == nil {
			dump := mb.b.String()
			tb.writeRaw("REPORT " + dump)
			if !strings.HasSuffix(dump, "\n") {
				tb.writeRaw("\n")
			}
		}
		endCall(repSpan, "ok")
	}
	if !destroyed {
		dtorSpan := startCall("destroy")
		if err := cut.Destroy(); err != nil {
			if v, ok := bit.AsViolation(err); ok {
				endCall(dtorSpan, "assertion-violation")
				res.Outcome = OutcomeViolation
				res.Method = "destroy"
				res.ViolationKind = v.Kind
				res.Detail = v.Error()
				return res
			}
			endCall(dtorSpan, "harness-error")
			res.Outcome = OutcomeError
			res.Method = "destroy"
			res.Detail = fmt.Sprintf("destructor failed: %v", err)
			return res
		}
		destroyed = true
		endCall(dtorSpan, "ok")
	}
	return res
}

func completeHole(h driver.Hole, providers map[string]domain.Provider, rng *rand.Rand) (domain.Value, error) {
	if p, ok := providers[h.TypeName]; ok {
		v, err := p.Provide(rng)
		if err != nil {
			return domain.Value{}, fmt.Errorf("provider for %q: %w", h.TypeName, err)
		}
		return v, nil
	}
	if h.Nullable {
		return domain.Nil(), nil
	}
	return domain.Value{}, fmt.Errorf("no provider for structured parameter of type %q (manual completion required)", h.TypeName)
}

func isDestructor(spec *tspec.Spec, call driver.Call) bool {
	if spec == nil {
		return false
	}
	if m, ok := spec.MethodByID(call.MethodID); ok {
		return m.Category == tspec.CatDestructor
	}
	if m, ok := spec.MethodByName(call.Method); ok {
		return m.Category == tspec.CatDestructor
	}
	return false
}

func argList(vs []domain.Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// writeLog appends one case's entry in the paper's Result.txt style.
func writeLog(w io.Writer, res CaseResult) {
	if res.Outcome == OutcomePass {
		fmt.Fprintf(w, "TestCase%s OK!\n\n", res.CaseID)
		return
	}
	fmt.Fprintf(w, "TestCase%s\n", res.CaseID)
	fmt.Fprintf(w, "%s\n", res.Detail)
	if res.Method != "" {
		fmt.Fprintf(w, "Method called: %s\n", res.Method)
	}
	fmt.Fprintf(w, "\n")
}
