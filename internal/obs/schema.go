package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Validate checks one span against the schema: a positive ID, a known
// kind, a non-empty name, non-negative timings and a non-negative parent.
func (s Span) Validate() error {
	if s.ID <= 0 {
		return fmt.Errorf("obs: span has non-positive id %d", s.ID)
	}
	if s.Parent < 0 {
		return fmt.Errorf("obs: span %d has negative parent %d", s.ID, s.Parent)
	}
	if !KnownKind(s.Kind) {
		return fmt.Errorf("obs: span %d has unknown kind %q", s.ID, s.Kind)
	}
	if s.Name == "" {
		return fmt.Errorf("obs: span %d (%s) has empty name", s.ID, s.Kind)
	}
	if s.StartUS < 0 || s.DurUS < 0 {
		return fmt.Errorf("obs: span %d (%s %q) has negative timing", s.ID, s.Kind, s.Name)
	}
	return nil
}

// ValidateTrace checks a whole trace: every span valid, IDs unique, and
// every non-zero parent reference resolving to a span in the trace.
// Emission order is not constrained — a parent's line legitimately follows
// its children's (spans are emitted on End).
func ValidateTrace(spans []Span) error {
	ids := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if err := s.Validate(); err != nil {
			return err
		}
		if ids[s.ID] {
			return fmt.Errorf("obs: duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
	for _, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			return fmt.Errorf("obs: span %d (%s %q) references missing parent %d",
				s.ID, s.Kind, s.Name, s.Parent)
		}
	}
	return nil
}

// ReadTrace parses an NDJSON trace stream into spans. Blank lines and
// retention-truncation markers ({"truncated":true,...}, emitted by a capped
// Broadcast when a late subscriber missed dropped bytes) are skipped; any
// other malformed line is an error. Truncated streams may reference parents
// whose lines were dropped — ValidateTrace will report those, which is the
// correct verdict for a lossy capture; ReadTrace itself stays permissive.
func ReadTrace(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Truncated bool `json:"truncated"`
		}
		if err := json.Unmarshal(raw, &probe); err == nil && probe.Truncated {
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return spans, nil
}

// ValidateNDJSON reads an NDJSON trace stream and validates it against the
// span schema, returning the number of spans.
func ValidateNDJSON(r io.Reader) (int, error) {
	spans, err := ReadTrace(r)
	if err != nil {
		return 0, err
	}
	if err := ValidateTrace(spans); err != nil {
		return len(spans), err
	}
	return len(spans), nil
}
