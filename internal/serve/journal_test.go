package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []JobRecord{
		{Seq: 1, ID: "c1", Req: Request{Component: "Account"}, State: StateDone,
			Attempts: 1, Report: []byte("report\n"), Artifact: []byte(`{"v":1}`),
			Summary: &Status{ID: "c1", Component: "Account", State: StateDone, Mutants: 8, Killed: 8}},
		{Seq: 2, ID: "c2", Req: Request{Component: "Account", Seed: 7}, State: StateRunning, Attempts: 2},
		{Seq: 3, ID: "c3", Req: Request{Component: "Product"}, State: StateQueued},
	}
	// Append out of order; replay must sort by Seq.
	for _, i := range []int{2, 0, 1} {
		if err := jn.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, corrupt, err := jn.Replay()
	if err != nil || corrupt != 0 {
		t.Fatalf("Replay = corrupt %d, err %v", corrupt, err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, rec := range got {
		if rec.Seq != i+1 {
			t.Errorf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if !bytes.Equal(got[0].Report, recs[0].Report) || got[0].Summary == nil || got[0].Summary.Mutants != 8 {
		t.Errorf("terminal record lost its payload: %+v", got[0])
	}
	if got[1].State != StateRunning || got[1].Attempts != 2 {
		t.Errorf("running record = %+v", got[1])
	}
}

func TestJournalLatestStateWins(t *testing.T) {
	jn, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := JobRecord{Seq: 1, ID: "c1", Req: Request{Component: "Account"}, State: StateQueued}
	for _, state := range []string{StateQueued, StateRunning, StateDone} {
		rec.State = state
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := jn.Replay()
	if err != nil || len(got) != 1 {
		t.Fatalf("Replay = %d records, %v; want 1", len(got), err)
	}
	if got[0].State != StateDone {
		t.Errorf("state = %q, want the latest (done)", got[0].State)
	}
}

func TestJournalCanonicalBytes(t *testing.T) {
	// The same record journals byte-identical files — the property that
	// makes journal directories diffable across runs and machines.
	write := func() []byte {
		dir := t.TempDir()
		jn, err := OpenJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		rec := JobRecord{Seq: 4, ID: "c4", Req: Request{Component: "Account", Seed: 9, Expand: true},
			State: StateDone, Attempts: 1, Report: []byte("tbl\n")}
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "job-00000004.json"))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := write(), write(); !bytes.Equal(a, b) {
		t.Errorf("same record, different bytes:\n%s\n%s", a, b)
	}
}

func TestJournalCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := JobRecord{Seq: 1, ID: "c1", Req: Request{Component: "Account"}, State: StateQueued}
	if err := jn.Append(good); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"job-00000002.json": "{torn",                          // invalid JSON
		"job-00000003.json": `{"seq":0,"id":"","state":""}`,   // fails validation
		"job-00000004.json": `{"seq":4,"id":"c4","state":""}`, // missing state
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	recs, corrupt, err := jn.Replay()
	if err != nil {
		t.Fatalf("Replay must not fail on corrupt records: %v", err)
	}
	if corrupt != 3 {
		t.Errorf("corrupt = %d, want 3", corrupt)
	}
	if len(recs) != 1 || recs[0].ID != "c1" {
		t.Errorf("good record lost: %+v", recs)
	}
	aside, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil || len(aside) != 3 {
		t.Errorf("corrupt records renamed aside = %v (%v), want 3", aside, err)
	}
	// A second replay is stable: quarantined files stay out of the way.
	if _, corrupt2, _ := jn.Replay(); corrupt2 != 0 {
		t.Errorf("second replay found %d corrupt records, want 0", corrupt2)
	}
}

func TestJournalRejectsInvalidRecord(t *testing.T) {
	jn, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []JobRecord{
		{},
		{Seq: 1, State: StateQueued},
		{Seq: 1, ID: "c1"},
	} {
		if err := jn.Append(rec); err == nil {
			t.Errorf("Append(%+v) succeeded, want validation error", rec)
		}
	}
}

func TestJournalCheckpointRoundTrip(t *testing.T) {
	jn, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := jn.LastCheckpoint(); ok {
		t.Error("fresh journal has a checkpoint")
	}
	if err := jn.Checkpoint(Checkpoint{Clean: true, Active: 0}); err != nil {
		t.Fatal(err)
	}
	cp, ok := jn.LastCheckpoint()
	if !ok || !cp.Clean || cp.Active != 0 {
		t.Errorf("checkpoint = %+v, %v", cp, ok)
	}
	if err := jn.Checkpoint(Checkpoint{Clean: false, Active: 2}); err != nil {
		t.Fatal(err)
	}
	if cp, ok := jn.LastCheckpoint(); !ok || cp.Clean || cp.Active != 2 {
		t.Errorf("overwritten checkpoint = %+v, %v", cp, ok)
	}
}

func TestNilJournalDisabled(t *testing.T) {
	var jn *Journal
	if err := jn.Append(JobRecord{Seq: 1, ID: "c1", State: StateQueued}); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if recs, corrupt, err := jn.Replay(); recs != nil || corrupt != 0 || err != nil {
		t.Errorf("nil Replay = %v, %d, %v", recs, corrupt, err)
	}
	if err := jn.Checkpoint(Checkpoint{}); err != nil {
		t.Errorf("nil Checkpoint: %v", err)
	}
	if _, ok := jn.LastCheckpoint(); ok {
		t.Error("nil journal has a checkpoint")
	}
	if jn.Dir() != "" {
		t.Error("nil journal has a dir")
	}
}

func TestOpenJournalValidates(t *testing.T) {
	if _, err := OpenJournal(""); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("OpenJournal(\"\") = %v, want error", err)
	}
}
