// Warehouse: the paper's running example (Figures 1-3). Class Product from
// a stock-control system is a self-testable component whose transaction
// flow model is Figure 2; this program walks the highlighted use-case path
// by hand, renders the model as DOT, and then lets the Driver Generator
// exercise every transaction — including the ones a designer forgets, like
// removing a product that was never inserted.
package main

import (
	"fmt"
	"os"
	"strings"

	"concat"
	"concat/internal/bit"
	"concat/internal/components/product"
	"concat/internal/domain"
	"concat/internal/tfm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "warehouse:", err)
		os.Exit(1)
	}
}

func run() error {
	factory := product.NewFactory()
	db := factory.DB()
	acme := db.AddProvider("acme supply co")

	// --- The Figure 2 use case, step by step -------------------------------
	// 1. Create a Product object.  2. Obtain data about this product.
	// 3. Remove the product from the database.  4. Destroy the object.
	fmt.Println("use case: add and remove a product (Figure 2 highlighted path)")
	inst, err := factory.New("ProductFull", []domain.Value{
		domain.Int(120), domain.Str("p1"), domain.Float(9.99), domain.Pointer(acme),
	})
	if err != nil {
		return err
	}
	inst.SetBITMode(bit.ModeTest) // compile the component "in test mode"

	if _, err := inst.Invoke("InsertProduct", nil); err != nil {
		return err
	}
	out, err := inst.Invoke("ShowAttributes", nil)
	if err != nil {
		return err
	}
	fmt.Printf("  obtained: %s\n", out[0])
	if _, err := inst.Invoke("RemoveProduct", nil); err != nil {
		return err
	}
	if err := inst.InvariantTest(); err != nil {
		return fmt.Errorf("invariant after use case: %w", err)
	}
	var dump strings.Builder
	if err := inst.Reporter(&dump); err != nil {
		return err
	}
	fmt.Printf("  reporter: %s", dump.String())
	if err := inst.Destroy(); err != nil {
		return err
	}

	// --- The model behind the use case -------------------------------------
	g, err := product.Spec().TFM()
	if err != nil {
		return err
	}
	fmt.Printf("\ntransaction flow model: %s\n", g.Stats())
	var hl tfm.Transaction
	for _, n := range product.UseCasePath() {
		hl.Path = append(hl.Path, tfm.NodeID(n))
	}
	fmt.Println("DOT rendering with the use case highlighted (pipe to `dot -Tsvg`):")
	if err := g.WriteDOT(os.Stdout, hl); err != nil {
		return err
	}

	// --- Specification-based testing of every transaction ------------------
	suite, err := concat.Generate(product.Spec(), concat.GenOptions{
		Seed:               7,
		ExpandAlternatives: true,
		MaxAlternatives:    3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ndriver generator: %s\n", suite.Stats())

	// The prv parameters are structured: the generator leaves holes and the
	// executor completes them from the provider map — the paper's "completed
	// manually by the tester" step.
	report, err := concat.Run(suite, factory, concat.ExecOptions{
		Providers: factory.Providers(),
	})
	if err != nil {
		return err
	}
	fmt.Println(report.Summary())
	if !report.AllPassed() {
		for _, f := range report.Failures() {
			fmt.Printf("  FAIL %s: %s\n", f.CaseID, f.Detail)
		}
		return fmt.Errorf("suite failed")
	}

	// Spec-based testing finds the paths the designer did not consider:
	// count the transactions whose transcript contains a not-found removal.
	surprises := 0
	for _, res := range report.Results {
		if strings.Contains(res.Transcript, "error: stockdb: product not found") {
			surprises++
		}
	}
	fmt.Printf("%d transactions removed a product that was never inserted — observable, specified behaviour\n", surprises)
	return nil
}
