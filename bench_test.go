package concat

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) and measures the
// ablations of DESIGN.md §5. Scores and counts are attached to each bench
// as custom metrics so `go test -bench . -benchmem` prints the reproduced
// numbers alongside the timings:
//
//	kill_score_%      mutation score of the evaluated test set
//	mutants           mutants analyzed
//	cases             test cases in the suite under evaluation
//	assertion_kills   kills attributable to assertion violations alone
//
// Paper targets: Table 2 ≈ 95.7% (our harness: ~93%), Table 3 ≈ 63.5%
// (ours: ~74%), with the experiment-2 baseline ≈ 96% quantifying the
// paper's warning. EXPERIMENTS.md records the full comparison.

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"testing"

	"concat/internal/analysis"
	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/components/account"
	"concat/internal/components/oblist"
	"concat/internal/components/product"
	"concat/internal/components/sortlist"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/experiments"
	"concat/internal/mutation"
	"concat/internal/srcmut"
	"concat/internal/testexec"
	"concat/internal/tfm"
	"concat/internal/tspec"
)

// benchSetup builds the frozen experiment setup once per benchmark.
func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	s, err := experiments.NewSetup(experiments.Default())
	if err != nil {
		b.Fatalf("setup: %v", err)
	}
	return s
}

func reportTable(b *testing.B, res *analysis.Result) {
	b.Helper()
	t := res.Tabulate()
	b.ReportMetric(t.Total.Score()*100, "kill_score_%")
	b.ReportMetric(float64(t.Total.Mutants), "mutants")
	b.ReportMetric(float64(t.KillsByReason[analysis.KillAssertion]), "assertion_kills")
}

// BenchmarkTable1OperatorEnumeration regenerates Table 1: enumerating the
// interface-mutation operator set over the experiment subjects' sites.
func BenchmarkTable1OperatorEnumeration(b *testing.B) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(oblist.Sites()...)
	eng.MustRegisterSites(sortlist.Sites()...)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(eng.Enumerate(nil, nil))
	}
	b.ReportMetric(float64(n), "mutants")
	b.ReportMetric(float64(len(mutation.AllOperators)), "operators")
}

// BenchmarkFigure2ProductTFM regenerates Figure 2: the Product transaction
// flow model, its DOT rendering and transaction enumeration.
func BenchmarkFigure2ProductTFM(b *testing.B) {
	spec := product.Spec()
	var transactions int
	for i := 0; i < b.N; i++ {
		g, err := spec.TFM()
		if err != nil {
			b.Fatal(err)
		}
		ts, err := g.Transactions(tfm.EnumOptions{LoopBound: 1})
		if err != nil {
			b.Fatal(err)
		}
		transactions = len(ts)
		if err := g.WriteDOT(io.Discard, tfm.Transaction{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(transactions), "transactions")
}

// BenchmarkFigure3SpecRoundTrip regenerates Figure 3: the t-spec notation,
// formatted and re-parsed.
func BenchmarkFigure3SpecRoundTrip(b *testing.B) {
	spec := product.Spec()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := spec.Format(&sb); err != nil {
			b.Fatal(err)
		}
		back, err := tspec.Parse(sb.String())
		if err != nil {
			b.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6DriverEmission regenerates Figures 6-7: the generated
// Go-source driver for the Product component.
func BenchmarkFigure6DriverEmission(b *testing.B) {
	suite, err := driver.Generate(product.Spec(), driver.Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	opts := driver.EmitOptions{
		ComponentImport: "concat/internal/components/product",
		FactoryExpr:     "product.NewFactory()",
	}
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := driver.Emit(&buf, suite, opts); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
	}
	b.ReportMetric(float64(size), "driver_bytes")
}

// BenchmarkSuiteGeneration regenerates the §4 counts: the parent suite and
// the incrementally derived subclass suite with its new/reused provenance.
func BenchmarkSuiteGeneration(b *testing.B) {
	cfg := experiments.Default()
	var c experiments.Counts
	for i := 0; i < b.N; i++ {
		setup, err := experiments.NewSetup(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c, err = setup.Counts()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.NewCases), "new_cases")       // paper: 233
	b.ReportMetric(float64(c.ReusedCases), "reused_cases") // paper: 329
	b.ReportMetric(float64(c.Skipped), "skipped_cases")
}

// BenchmarkTable2SortableMutation regenerates Table 2 (experiment 1):
// mutants in the five SortableObList methods under the full subclass suite.
func BenchmarkTable2SortableMutation(b *testing.B) {
	setup := benchSetup(b)
	b.ResetTimer()
	var res *analysis.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = setup.Experiment1(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportTable(b, res) // paper: score 95.7%, 700 mutants, 59 assertion kills
}

// BenchmarkTable3BaseClassMutation regenerates Table 3 (experiment 2):
// mutants in the inherited ObList methods under the reduced subclass suite.
func BenchmarkTable3BaseClassMutation(b *testing.B) {
	setup := benchSetup(b)
	b.ResetTimer()
	var res *analysis.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = setup.Experiment2(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportTable(b, res) // paper: score 63.5%, 159 mutants, 0 equivalent
}

// BenchmarkExperiment2Baseline runs the same base-class mutants under the
// parent's own full suite — the reference point for the Table 3 shortfall.
func BenchmarkExperiment2Baseline(b *testing.B) {
	setup := benchSetup(b)
	b.ResetTimer()
	var res *analysis.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = setup.Experiment2Baseline(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportTable(b, res)
}

// BenchmarkAblationOracle measures the oracle-ingredient ablation
// (DESIGN.md §5.3): full oracle vs no assertions vs assertions-only.
func BenchmarkAblationOracle(b *testing.B) {
	setup := benchSetup(b)
	b.ResetTimer()
	var oa experiments.OracleAblation
	for i := 0; i < b.N; i++ {
		var err error
		oa, err = setup.RunOracleAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(oa.FullScore*100, "full_%")
	b.ReportMetric(oa.NoAssertionsScore*100, "no_assertions_%")
	b.ReportMetric(oa.AssertionsOnlyScore*100, "assertions_only_%")
}

// BenchmarkAblationLoopBound measures suite size and experiment-1 score as
// the enumeration loop bound varies (DESIGN.md §5.2).
func BenchmarkAblationLoopBound(b *testing.B) {
	setup := benchSetup(b)
	b.ResetTimer()
	var rows []experiments.LoopBoundAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = setup.RunLoopBoundAblation([]int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.LoopBound {
		case 1:
			b.ReportMetric(r.Score*100, "k1_score_%")
		case 2:
			b.ReportMetric(r.Score*100, "k2_score_%")
		case 3:
			b.ReportMetric(r.Score*100, "k3_score_%")
		}
	}
}

// BenchmarkAblationCriterion compares the coverage criteria's suite sizes
// and kill power on the base component.
func BenchmarkAblationCriterion(b *testing.B) {
	var rows []experiments.CriterionAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunCriterionAblation(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Criterion {
		case "all-transactions":
			b.ReportMetric(r.Score*100, "transactions_score_%")
			b.ReportMetric(float64(r.Cases), "transactions_cases")
		case "all-links":
			b.ReportMetric(r.Score*100, "links_score_%")
			b.ReportMetric(float64(r.Cases), "links_cases")
		case "all-nodes":
			b.ReportMetric(r.Score*100, "nodes_score_%")
			b.ReportMetric(float64(r.Cases), "nodes_cases")
		}
	}
}

// BenchmarkAblationSiteOverhead measures the cost of the mutation
// instrumentation when no analysis is running (DESIGN.md §5.4): AddHead on
// a plain list vs a list wired to an inactive engine.
func BenchmarkAblationSiteOverhead(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) {
		l := oblist.NewObList(10, nil)
		v := domain.Int(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.AddHead(v)
			if l.GetCount() > 1024 {
				l.RemoveAll()
			}
		}
	})
	b.Run("engine-attached-inactive", func(b *testing.B) {
		eng := mutation.NewEngine()
		eng.MustRegisterSites(oblist.Sites()...)
		l := oblist.NewObList(10, eng)
		v := domain.Int(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.AddHead(v)
			if l.GetCount() > 1024 {
				l.RemoveAll()
			}
		}
	})
}

// BenchmarkAblationEmittedDriver compares the two driver architectures:
// in-process suite execution vs emitting the standalone driver source
// (DESIGN.md §5.1; compiling the emitted driver is a build step, measured
// here as emission cost only).
func BenchmarkAblationEmittedDriver(b *testing.B) {
	suite, err := driver.Generate(account.Spec(), driver.Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("in-process-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := testexec.Run(suite, account.NewFactory(), testexec.Options{})
			if err != nil || !rep.AllPassed() {
				b.Fatalf("run: %v", err)
			}
		}
	})
	b.Run("emit-source", func(b *testing.B) {
		opts := driver.EmitOptions{
			ComponentImport: "concat/internal/components/account",
			FactoryExpr:     "account.NewFactory()",
		}
		for i := 0; i < b.N; i++ {
			if err := driver.Emit(io.Discard, suite, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuiteExecution measures raw harness throughput: cases executed
// per second with full invariant checking.
func BenchmarkSuiteExecution(b *testing.B) {
	suite, err := driver.Generate(oblist.Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	factory := oblist.NewFactory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := testexec.Run(suite, factory, testexec.Options{})
		if err != nil || !rep.AllPassed() {
			b.Fatalf("run failed: %v", err)
		}
	}
	b.ReportMetric(float64(len(suite.Cases)), "cases")
}

// BenchmarkTSpecParse measures t-spec parsing throughput.
func BenchmarkTSpecParse(b *testing.B) {
	text := product.Spec().String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tspec.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSrcMutGeneration measures source-level mutant generation over a
// representative method.
func BenchmarkSrcMutGeneration(b *testing.B) {
	src := []byte(`package bench

var ext int64

type L struct {
	count int64
	cap   int64
}

func (l *L) Remove(i int64) int64 {
	idx := i
	old := l.count
	if idx < 0 || idx >= old {
		return -1
	}
	next := old - 1
	l.count = next
	return idx + next
}
`)
	var n int
	for i := 0; i < b.N; i++ {
		ms, err := srcmut.MutateFile("bench.go", src, srcmut.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n = len(ms)
	}
	b.ReportMetric(float64(n), "mutants")
}

// BenchmarkInvariantCheck isolates the built-in partial oracle: one class
// invariant verification on a populated list.
func BenchmarkInvariantCheck(b *testing.B) {
	inst, err := oblist.NewFactory().New("ObList", nil)
	if err != nil {
		b.Fatal(err)
	}
	inst.SetBITMode(bit.ModeTest)
	for i := int64(0); i < 64; i++ {
		if _, err := inst.Invoke("AddTail", []domain.Value{domain.Int(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.InvariantTest(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModelScaling measures the §3.2 model-scaling comparison:
// the FSM's size/test count at growing capacities vs the fixed TFM.
func BenchmarkAblationModelScaling(b *testing.B) {
	var rows []experiments.ModelScaling
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunModelScaling([]int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.FSMTests), "fsm_tests_at_cap16")
	b.ReportMetric(float64(last.TFMTests), "tfm_tests_fixed")
	b.ReportMetric(float64(last.FSMStates), "fsm_states_at_cap16")
	b.ReportMetric(float64(last.TFMNodes), "tfm_nodes_fixed")
}

// BenchmarkAblationParallelism compares sequential and parallel mutation
// analysis on experiment 1 (same verdicts, different wall clock). The
// parallel variants provision one engine clone + factory per worker via
// NewFactory, the standard sharding path.
func BenchmarkAblationParallelism(b *testing.B) {
	setup := benchSetup(b)
	mkAnalysis := func(par int) (*analysis.Analysis, []mutation.Mutant) {
		eng := mutation.NewEngine()
		eng.MustRegisterSites(oblist.Sites()...)
		eng.MustRegisterSites(sortlist.Sites()...)
		a := &analysis.Analysis{
			Engine:      eng,
			Factory:     sortlist.NewFactoryWithEngine(eng),
			Suite:       setup.Derived.Suite,
			Parallelism: par,
			NewFactory: func(e *mutation.Engine) component.Factory {
				return sortlist.NewFactoryWithEngine(e)
			},
		}
		return a, eng.Enumerate(nil, experiments.Experiment1Methods)
	}
	run := func(par int) func(b *testing.B) {
		return func(b *testing.B) {
			a, mutants := mkAnalysis(par)
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(mutants); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", run(1))
	b.Run("parallel-8", run(8))
	b.Run("parallel-gomaxprocs", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkParallelSuiteExecution measures the tentpole executor path:
// the same suite run serially and through the bounded worker pool. The
// reports are bit-for-bit identical (see internal/testexec's determinism
// suite); only wall clock may differ.
func BenchmarkParallelSuiteExecution(b *testing.B) {
	suite, err := driver.Generate(oblist.Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	factory := oblist.NewFactory()
	run := func(par int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := testexec.Run(suite, factory, testexec.Options{Seed: 42, Parallelism: par})
				if err != nil || !rep.AllPassed() {
					b.Fatalf("run failed: %v", err)
				}
			}
			b.ReportMetric(float64(len(suite.Cases)), "cases")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel-4", run(4))
	b.Run("parallel-gomaxprocs", run(runtime.GOMAXPROCS(0)))
}

// BenchmarkParallelSoakGeneration measures random-walk suite generation
// serially and sharded; per-case seed derivation keeps the generated suite
// identical at any parallelism.
func BenchmarkParallelSoakGeneration(b *testing.B) {
	spec := oblist.Spec()
	run := func(par int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := driver.GenerateSoak(spec, driver.SoakOptions{
					Seed: 42, Cases: 400, Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Cases) != 400 {
					b.Fatalf("generated %d cases", len(s.Cases))
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel-4", run(4))
	b.Run("parallel-gomaxprocs", run(runtime.GOMAXPROCS(0)))
}
