package driver

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"concat/internal/domain"
	"concat/internal/obs"
	"concat/internal/sandbox"
	"concat/internal/tspec"
)

// SoakOptions configure random-walk suite generation.
type SoakOptions struct {
	// Seed drives both the walks and the argument sampling.
	Seed int64
	// Cases is the number of random transactions to generate.
	Cases int
	// MaxLength bounds each walk; zero means 4x the node count.
	MaxLength int
	// Parallelism fans case generation over a bounded worker pool when
	// greater than 1; zero or one generates serially. Every case draws from
	// its own RNG stream seeded by f(Seed, case index), so the generated
	// suite is identical at any parallelism — sharding changes wall clock,
	// never content.
	Parallelism int
	// StepBudget, when positive, bounds the generation work of each case:
	// one step is charged per walk node. The budget is per-case (not shared
	// across the suite) so exhaustion is a function of the case's own seed
	// and the result is identical at any parallelism. A case that exhausts
	// it fails generation with a sandbox exhaustion error — the guard for
	// degenerate models whose random walks rarely reach a death node.
	StepBudget int64
	// Trace, when set, records one soak-generate span with a soak-case
	// child per generated case; TraceParent roots the soak-generate span.
	// Timing lives only in the trace — the generated suite is identical
	// with tracing on or off.
	Trace       *obs.Tracer
	TraceParent obs.SpanID
	// Metrics, when set, aggregates per-case generation timings.
	Metrics *obs.Metrics
}

// GenerateSoak produces a suite of random transactions: each test case is
// one random walk through the TFM from a birth node to a death node, with
// arguments drawn from the declared domains. Where the systematic generator
// (Generate) enumerates the bounded transaction space once, the soak
// generator samples the unbounded space — long, repetitive method sequences
// the enumeration's loop bound excludes. It is the load/endurance-testing
// complement the transaction flow model supports "for free".
//
// Each case derives its own seed from (Seed, index), so cases are
// independent units of work: GenerateSoak shards them over
// SoakOptions.Parallelism workers and the output is bit-for-bit identical
// to the serial run.
func GenerateSoak(spec *tspec.Spec, opts SoakOptions) (*Suite, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
	}
	if opts.Cases <= 0 {
		opts.Cases = 100
	}
	g, err := spec.TFM()
	if err != nil {
		return nil, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
	}
	genSpan := opts.Trace.Start(opts.TraceParent, obs.KindSoakGen, spec.Class.Name)
	genSpan.SetAttr("cases", strconv.Itoa(opts.Cases))
	defer genSpan.End()
	genCase := func(i int) (tc TestCase, err error) {
		label := "soak:" + strconv.Itoa(i)
		caseSpan := opts.Trace.Start(genSpan.ID(), obs.KindSoakCase, label)
		var began time.Time
		if opts.Metrics != nil {
			began = time.Now()
		}
		defer func() {
			if err != nil {
				caseSpan.SetAttr("status", "error")
			} else {
				caseSpan.SetAttr("status", "ok")
				caseSpan.SetAttr("calls", strconv.Itoa(len(tc.Calls)))
			}
			caseSpan.End()
			if opts.Metrics != nil {
				opts.Metrics.Inc("soak.cases", 1)
				opts.Metrics.Observe("soak.case-gen", label, time.Since(began))
			}
		}()
		var budget *sandbox.Budget
		if opts.StepBudget > 0 {
			budget = sandbox.NewBudget(opts.StepBudget, 0)
		}
		rng := domain.NewRand(domain.DeriveSeed(opts.Seed, "soak:"+strconv.Itoa(i)))
		tr, err := g.RandomWalk(rng, opts.MaxLength)
		if err != nil {
			return TestCase{}, fmt.Errorf("driver: soak generation for %q: %w", spec.Class.Name, err)
		}
		combo := make([]string, len(tr.Path))
		for j, nodeID := range tr.Path {
			if err := budget.Step(); err != nil {
				return TestCase{}, fmt.Errorf("driver: soak case %d: %w", i, err)
			}
			n, ok := spec.NodeByID(string(nodeID))
			if !ok || len(n.Methods) == 0 {
				return TestCase{}, fmt.Errorf("driver: walk visited unusable node %s", nodeID)
			}
			combo[j] = n.Methods[rng.IntN(len(n.Methods))]
		}
		return buildCase(spec, tr, combo, rng, i)
	}

	suite := &Suite{
		Component: spec.Class.Name,
		Seed:      opts.Seed,
		Criterion: "random-walk",
	}
	cases := make([]TestCase, opts.Cases)
	workers := opts.Parallelism
	if workers > opts.Cases {
		workers = opts.Cases
	}
	if workers <= 1 {
		for i := range cases {
			tc, err := genCase(i)
			if err != nil {
				return nil, err
			}
			cases[i] = tc
		}
		suite.Cases = cases
		return suite, nil
	}

	// Parallel path: workers pull indices and fill the index-aligned slice;
	// per-case seeds make the result order- and scheduling-independent.
	errs := make([]error, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if errs[w] != nil {
					continue // keep draining so the sender never blocks
				}
				tc, err := genCase(i)
				if err != nil {
					errs[w] = err
					continue
				}
				cases[i] = tc
			}
		}(w)
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	suite.Cases = cases
	return suite, nil
}
