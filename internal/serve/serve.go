// Package serve exposes mutation campaigns as a long-running HTTP/JSON
// service: submit a campaign, poll its status, stream its trace live as
// NDJSON, and fetch the finished report. It is the "components with
// built-in test capabilities as infrastructure" reading of the paper — the
// same analysis the `concat mutate` subcommand runs once, kept resident
// behind a bounded job queue and a worker pool, with the content-addressed
// verdict store (internal/store) making warm resubmissions re-execute only
// mutants whose inputs changed.
//
// The service is crash-safe end to end. Submissions are written ahead to a
// durable job journal (canonical JSON, temp+rename+fsync) before they
// become runnable, so a process death at any point — including SIGKILL
// between the journal append and execution — replays every pending and
// running campaign on restart, where warm verdict-store hits make the
// replay cheap and byte-identical. Each execution attempt runs under a
// lease: a worker that panics, wedges past the lease, or dies mid-campaign
// has its job reclaimed and retried with deterministic capped exponential
// backoff (sandbox.Retry semantics), and a poison job that keeps failing is
// quarantined after its attempt budget instead of crash-looping forever.
// Drain stops admission with an accurate Retry-After and lets in-flight
// jobs finish before shutdown. The chaos kit (internal/serve/chaos) injects
// every one of those faults in regression tests.
//
// The service deliberately reuses the deterministic campaign machinery
// unchanged: a report fetched over HTTP is the table the CLI prints for the
// same request plus one coverage-summary line, the coverage artifact it
// stores is byte-identical to what the CLI writes, and the streamed trace
// validates against the obs span schema. A live /metrics endpoint exposes
// the accumulated campaign counters, kill-latency histograms, and the
// recovery counters (journal replays, lease reclaims, retries, quarantines)
// in the Prometheus text format, and net/http/pprof can be mounted behind a
// flag.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/analysis"
	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/impact"
	"concat/internal/mutation"
	"concat/internal/obs"
	"concat/internal/sandbox"
	"concat/internal/serve/chaos"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
	"concat/internal/tspec"
)

// Version identifies this build of the campaign service on the
// concat_build_info metric and in client User-Agent strings.
const Version = "0.10.0"

// ErrQueueFull is returned by Submit when the pending-campaign queue is at
// capacity; the HTTP layer maps it to 503 Service Unavailable with a
// Retry-After computed from the queue depth and recent job durations.
var ErrQueueFull = errors.New("serve: campaign queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrDraining is returned by Submit while the server drains toward
// shutdown: admission is closed but in-flight jobs are still finishing. The
// HTTP layer maps it to 503 with Retry-After, same as a full queue.
var ErrDraining = errors.New("serve: draining, not accepting campaigns")

// Request is a campaign submission: which built-in component to mutate and
// how to generate its suite. The zero values of the generation knobs mean
// the CLI defaults (seed 42, no expansion, alternative cap 4, loop bound 1),
// so `{"component": "Account"}` is a complete request.
type Request struct {
	Component string   `json:"component"`
	Methods   []string `json:"methods,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Expand    bool     `json:"expand,omitempty"`
	Alt       int      `json:"alt,omitempty"`
	LoopBound int      `json:"loopBound,omitempty"`
	// Isolate runs every case in a crash-contained child process. It needs
	// the serving binary to double as the case server (concat does), so it
	// is off by default.
	Isolate bool `json:"isolate,omitempty"`
	// Pool runs the campaign on a pool of warm worker processes with
	// batched case dispatch instead of one spawn per case — same crash
	// containment, amortized process cost. Wins over Isolate when both
	// are set.
	Pool bool `json:"pool,omitempty"`
	// PoolSize bounds the warm worker pool (0 = the server's parallelism).
	PoolSize int `json:"poolSize,omitempty"`
	// Distributed splits the campaign's mutants into shards leased to
	// remote `concat work` processes over /work/lease; the coordinator
	// merges by re-running warm against the shared verdict store, so the
	// report and coverage artifact are byte-identical to a single-process
	// run. Requires the server to have a store configured.
	Distributed bool `json:"distributed,omitempty"`
	// Shards is the shard count of a distributed campaign (default 2).
	Shards int `json:"shards,omitempty"`
	// OldSpec/NewSpec, both present, make this an impact submission
	// (POST /impact): instead of a mutation campaign the job diffs the two
	// t-spec revisions (canonical JSON wire form, `concat spec` output),
	// re-executes only the cases the edit invalidated, and replays the rest
	// warm from the server's store. Impact jobs cannot be distributed.
	OldSpec json.RawMessage `json:"oldSpec,omitempty"`
	NewSpec json.RawMessage `json:"newSpec,omitempty"`
}

// Impact reports whether the request is an impact submission.
func (r Request) Impact() bool {
	return len(r.OldSpec) > 0 && len(r.NewSpec) > 0
}

// impactSpecs parses an impact submission's spec revisions and checks the
// new one names the requested component.
func (r Request) impactSpecs() (oldSpec, newSpec *tspec.Spec, err error) {
	oldSpec, err = tspec.LoadJSON(bytes.NewReader(r.OldSpec))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: old spec: %w", err)
	}
	newSpec, err = tspec.LoadJSON(bytes.NewReader(r.NewSpec))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: new spec: %w", err)
	}
	if newSpec.Class.Name != r.Component {
		return nil, nil, fmt.Errorf("serve: new spec is for %q but the request names %q",
			newSpec.Class.Name, r.Component)
	}
	return oldSpec, newSpec, nil
}

// genOptions resolves the request's generation knobs to driver options.
func (r Request) genOptions() driver.Options {
	seed := r.Seed
	if seed == 0 {
		seed = 42
	}
	alt := r.Alt
	if alt == 0 {
		alt = 4
	}
	lb := r.LoopBound
	if lb == 0 {
		lb = 1
	}
	return driver.Options{
		Seed:               seed,
		ExpandAlternatives: r.Expand,
		MaxAlternatives:    alt,
		Enum:               tfm.EnumOptions{LoopBound: lb},
	}
}

// execOptions resolves the request's execution knobs. Both the
// coordinator's local path and remote shard workers build from this same
// base, and everything layered on top afterwards (tracing, metrics,
// parallelism) is determinism-neutral and outside the verdict-store
// fingerprint — which is what lets a worker's cache keys match the
// coordinator's exactly.
func (r Request) execOptions() testexec.Options {
	var o testexec.Options
	if r.Pool {
		o.Isolation = testexec.IsolatePool
		o.PoolSize = r.PoolSize
	} else if r.Isolate {
		o.Isolation = testexec.IsolateSubprocess
	}
	return o
}

// shardCount resolves the shard count of a distributed request.
func (r Request) shardCount() int {
	if r.Shards > 0 {
		return r.Shards
	}
	return 2
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateQuarantined marks a poison job: every attempt in its retry
	// budget crashed or wedged, so the service parked it instead of
	// crash-looping. Quarantined jobs are terminal and keep their last
	// failure cause in Error.
	StateQuarantined = "quarantined"
)

// jobStates lists every state for gauge exposition, lifecycle order.
var jobStates = []string{StateQueued, StateRunning, StateDone, StateFailed, StateQuarantined}

// Job is one submitted campaign. Its trace broadcast fills while the
// campaign runs and closes when it finishes, so any number of HTTP clients
// can replay or follow the NDJSON span stream.
type Job struct {
	ID  string
	Req Request

	// seq is the numeric suffix of ID, journaled so replayed servers keep
	// allocating IDs after the highest seen.
	seq int

	mu       sync.Mutex
	state    string
	attempts int // execution attempts begun
	epoch    int // current attempt token; stale attempts fail endAttempt
	terminal bool
	errMsg   string
	result   *analysis.Result
	report   []byte
	coverage *cover.SuiteCoverage
	artifact []byte
	// impactRep/impactArt hold an impact job's decoded report and its
	// canonical artifact bytes; both nil for mutation campaigns.
	impactRep *impact.Report
	impactArt []byte
	// restored holds the terminal status snapshot of a job replayed from
	// the journal, whose *analysis.Result no longer exists in memory.
	restored *Status
	// enqueuedAt is when the job last entered the queued state, feeding
	// the queue-age gauge. Wall-clock; never journaled.
	enqueuedAt time.Time

	trace *obs.Broadcast
	done  chan struct{}
}

// beginAttempt starts one execution attempt: bumps the attempt counter,
// invalidates any stale attempt's token, and moves the job to running. It
// returns the new attempt's token and ordinal.
func (j *Job) beginAttempt() (token, attempt int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	j.epoch++
	j.state = StateRunning
	return j.epoch, j.attempts
}

// endAttempt claims the right to conclude the job for the attempt holding
// token. Exactly one concluder wins per attempt: a lease reclaim that beat
// the (wedged, now stale) worker makes the worker's late result a no-op,
// and vice versa.
func (j *Job) endAttempt(token int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal || j.epoch != token {
		return false
	}
	j.epoch++
	return true
}

// setQueued parks the job in the queued state (admission, replay, retry)
// and stamps the queue-age clock.
func (j *Job) setQueued() {
	j.mu.Lock()
	j.state = StateQueued
	j.enqueuedAt = time.Now()
	j.mu.Unlock()
}

// queuedSince returns when the job entered the queue; ok is false unless
// the job is currently queued.
func (j *Job) queuedSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enqueuedAt, j.state == StateQueued && !j.enqueuedAt.IsZero()
}

// finishDone moves the job to its terminal done state and releases waiters.
func (j *Job) finishDone(res *analysis.Result, report []byte) {
	j.mu.Lock()
	j.state = StateDone
	j.result = res
	j.report = report
	j.terminal = true
	j.mu.Unlock()
	// Close the trace stream before publishing the verdict so a client that
	// saw "done" never blocks on a still-open stream.
	j.trace.Close()
	close(j.done)
}

// finishFailed moves the job to a terminal failure state (failed or
// quarantined) and releases waiters.
func (j *Job) finishFailed(state, msg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = msg
	j.terminal = true
	j.mu.Unlock()
	j.trace.Close()
	close(j.done)
}

// Attempts returns how many execution attempts have begun.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// setCoverage records the campaign's coverage summary and its encoded
// canonical artifact; runCampaign calls it before the job finishes. A
// stale attempt's late write is dropped once the job is terminal.
func (j *Job) setCoverage(sc *cover.SuiteCoverage, artifact []byte) {
	j.mu.Lock()
	if !j.terminal {
		j.coverage = sc
		j.artifact = artifact
	}
	j.mu.Unlock()
}

// Coverage returns the job's suite coverage (nil until the campaign
// computed it) and the encoded canonical artifact.
func (j *Job) Coverage() (*cover.SuiteCoverage, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.coverage, j.artifact
}

// setImpact records an impact job's report and canonical artifact;
// runImpact calls it before the job finishes. Like setCoverage, a stale
// attempt's late write is dropped once the job is terminal.
func (j *Job) setImpact(rep *impact.Report, artifact []byte) {
	j.mu.Lock()
	if !j.terminal {
		j.impactRep = rep
		j.impactArt = artifact
	}
	j.mu.Unlock()
}

// Impact returns the encoded impact artifact (nil for mutation campaigns
// and until the impact run finished).
func (j *Job) Impact() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.impactArt
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Trace returns the job's NDJSON trace broadcast.
func (j *Job) Trace() *obs.Broadcast { return j.trace }

// record snapshots the job as its durable journal form. Terminal done
// records embed the report and coverage artifact bytes so a restarted
// server keeps serving them verbatim.
func (j *Job) record() JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := JobRecord{
		Seq:      j.seq,
		ID:       j.ID,
		Req:      j.Req,
		State:    j.state,
		Attempts: j.attempts,
		Error:    j.errMsg,
	}
	if j.state == StateDone {
		rec.Report = j.report
		rec.Artifact = j.artifact
		rec.Impact = j.impactArt
		st := j.statusLocked()
		rec.Summary = &st
	}
	return rec
}

// Status is the wire form of a job's state.
type Status struct {
	ID          string `json:"id"`
	Component   string `json:"component"`
	State       string `json:"state"`
	Attempts    int    `json:"attempts,omitempty"`
	Mutants     int    `json:"mutants"`
	Killed      int    `json:"killed"`
	Equivalent  int    `json:"equivalent"`
	Survivors   int    `json:"survivors"`
	CacheHits   int    `json:"cacheHits"`
	CacheMisses int    `json:"cacheMisses"`
	// Kept/Rerun/Regenerated are an impact job's case-partition counts
	// (POST /impact); all zero for mutation campaigns.
	Kept        int `json:"kept,omitempty"`
	Rerun       int `json:"rerun,omitempty"`
	Regenerated int `json:"regenerated,omitempty"`
	// Coverage is the campaign's one-line coverage summary ("coverage:
	// transactions 4/4 (100.0%), ..."), present once the campaign finished.
	Coverage string `json:"coverage,omitempty"`
	Error    string `json:"error,omitempty"`
	// Shards/ShardsDone report a running distributed campaign's shard
	// progress; both zero for local campaigns and once the job is terminal.
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shardsDone,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{ID: j.ID, Component: j.Req.Component, State: j.state, Attempts: j.attempts, Error: j.errMsg}
	switch {
	case j.result != nil:
		tab := j.result.Tabulate()
		st.Mutants = tab.Total.Mutants
		st.Killed = tab.Total.Killed
		st.Equivalent = tab.Total.Equivalent
		st.Survivors = tab.Total.Mutants - tab.Total.Killed - tab.Total.Equivalent
		st.CacheHits = j.result.CacheHits
		st.CacheMisses = j.result.CacheMisses
	case j.impactRep != nil:
		st.Kept = j.impactRep.Kept
		st.Rerun = j.impactRep.Rerun
		st.Regenerated = j.impactRep.Regenerated
		st.CacheHits = j.impactRep.CacheHits
		st.CacheMisses = j.impactRep.CacheMisses
	case j.restored != nil:
		st.Mutants = j.restored.Mutants
		st.Killed = j.restored.Killed
		st.Equivalent = j.restored.Equivalent
		st.Survivors = j.restored.Survivors
		st.CacheHits = j.restored.CacheHits
		st.CacheMisses = j.restored.CacheMisses
		st.Kept = j.restored.Kept
		st.Rerun = j.restored.Rerun
		st.Regenerated = j.restored.Regenerated
	}
	if j.coverage != nil {
		st.Coverage = j.coverage.Summary()
	} else if j.restored != nil {
		st.Coverage = j.restored.Coverage
	}
	return st
}

// Config tunes the campaign service.
type Config struct {
	// Store, when enabled, is the shared verdict cache threaded into every
	// campaign, making warm resubmissions re-execute only changed mutants.
	// Any store.Backend works; a RawBackend additionally gets the
	// remote-store endpoints (/store/{id}) mounted on the handler so
	// remote workers can share this node's cache. Distributed campaigns
	// require an enabled store.
	Store store.Backend
	// Journal, when non-nil, is the write-ahead job journal: submissions
	// are journaled before they become runnable, every state transition is
	// recorded, and New replays pending/running records into the queue.
	Journal *Journal
	// QueueDepth bounds the pending campaigns (default 16). A full queue
	// rejects submissions with ErrQueueFull instead of blocking or growing.
	QueueDepth int
	// Workers is the number of campaigns running concurrently (default 1).
	Workers int
	// Parallelism is the per-campaign mutant-worker count (0 = GOMAXPROCS).
	Parallelism int
	// Retry bounds execution attempts per job, reusing the sandbox's
	// deterministic jitter-free policy: Attempts total attempts before the
	// job is quarantined (default 3, i.e. two retries), BaseDelay/MaxDelay
	// the capped exponential backoff between them (default 100ms/5s).
	Retry sandbox.RetryPolicy
	// Lease bounds one execution attempt (default DefaultLease). An attempt
	// still running past its lease is presumed wedged: the job is reclaimed
	// and retried, and the stale attempt's eventual result is discarded.
	Lease time.Duration
	// ShardLease bounds one worker's lease on one shard of a distributed
	// campaign (default DefaultShardLease). A shard not completed within
	// its lease is reclaimed and re-leased to the next worker that asks,
	// with the stale worker's late completion rejected by epoch.
	ShardLease time.Duration
	// TraceBuffer caps each job's retained NDJSON trace replay buffer in
	// bytes (0 = the 16 MiB default, negative = unbounded). A client that
	// subscribes after the cap dropped data receives an explicit truncation
	// marker before the retained suffix.
	TraceBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the handler.
	// Off by default: profiling endpoints are opt-in surface.
	EnablePprof bool
	// AccessLog, when non-nil, receives one NDJSON line per completed HTTP
	// request (AccessLogEntry schema): request ID, method, route pattern,
	// status, bytes, latency. A side channel with the tracing determinism
	// bar — logged and unlogged requests produce byte-identical campaign
	// results.
	AccessLog io.Writer
	// Faults is the chaos kit's injection surface; nil in production.
	Faults *chaos.Faults
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

// DefaultTraceBuffer is the per-job trace retention cap when Config leaves
// TraceBuffer zero.
const DefaultTraceBuffer = 16 << 20

// DefaultLease bounds one execution attempt when Config leaves Lease zero.
const DefaultLease = 5 * time.Minute

// traceCap resolves Config.TraceBuffer to a Broadcast cap.
func (c Config) traceCap() int {
	switch {
	case c.TraceBuffer > 0:
		return c.TraceBuffer
	case c.TraceBuffer < 0:
		return 0 // unbounded
	default:
		return DefaultTraceBuffer
	}
}

// retryPolicy resolves Config.Retry to its defaults.
func (c Config) retryPolicy() sandbox.RetryPolicy {
	p := c.Retry
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// lease resolves Config.Lease to its default.
func (c Config) lease() time.Duration {
	if c.Lease > 0 {
		return c.Lease
	}
	return DefaultLease
}

// shardLease resolves Config.ShardLease to its default.
func (c Config) shardLease() time.Duration {
	if c.ShardLease > 0 {
		return c.ShardLease
	}
	return DefaultShardLease
}

// backoffDelay is the deterministic capped exponential backoff slept before
// re-enqueueing a job whose attempt'th try failed — sandbox.Retry's
// jitter-free doubling, applied at the job level.
func backoffDelay(p sandbox.RetryPolicy, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d > p.MaxDelay {
			return p.MaxDelay
		}
	}
	return d
}

// recentDurations bounds the completed-job duration ring feeding the
// Retry-After estimate.
const recentDurations = 32

// Server is the campaign service: a bounded job queue drained by a worker
// pool, with every job's state, report and trace retained for the
// process's lifetime — and, with a journal configured, across process
// lifetimes.
type Server struct {
	cfg     Config
	queue   chan *Job
	stop    chan struct{}
	stopped sync.Once
	metrics *obs.Metrics
	journal *Journal
	wg      sync.WaitGroup

	// ready is closed once the journal replay completed and the server
	// accepts work; /readyz answers 503 until then. New closes it before
	// returning; NewStarting closes it from the background start goroutine.
	ready chan struct{}

	// store is the verdict backend the campaign paths actually use: the
	// configured Config.Store wrapped with read-path timing when enabled.
	// Config.Store keeps its original dynamic type for the RawBackend
	// /store mount and Enabled checks.
	store store.Backend

	// HTTP observability (middleware.go).
	nRequests atomic.Int64 // per-request ID allocator
	inFlight  atomic.Int64 // requests currently being served
	busy      atomic.Int64 // workers currently executing a job
	accessLog *accessLogger
	subMu     sync.Mutex
	subs      map[*subscriber]struct{}

	// Recovery counters, exposed on /metrics from process start.
	nReplayed       atomic.Int64
	nJournalCorrupt atomic.Int64
	nReclaims       atomic.Int64
	nRetries        atomic.Int64
	nQuarantined    atomic.Int64

	// Distributed-campaign counters (work.go).
	nShardLeases   atomic.Int64
	nShardReclaims atomic.Int64

	// Impact-analysis counters: cases kept (replayed or replayable warm),
	// re-run and regenerated across every impact job this process ran.
	nImpactKept  atomic.Int64
	nImpactRerun atomic.Int64
	nImpactRegen atomic.Int64

	// workMu guards the shard sets of in-flight distributed campaigns,
	// appended in job order so /work/lease serves older campaigns first.
	workMu    sync.Mutex
	shardSets []*shardSet

	// campaign executes one job's analysis; tests substitute a stub to pin
	// workers at a controlled point. Set before the first Submit.
	campaign func(*Job) (*analysis.Result, []byte, error)

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queued   int // jobs occupying admission (queue) slots
	active   int // jobs in any non-terminal state
	closed   bool
	draining bool
	durs     []time.Duration // ring of recent completed-job durations
	durIdx   int
}

// New starts the worker pool, replays the journal, and returns the server
// ready to accept work. With a journal configured the replay restores
// terminal jobs verbatim (report, artifact, status) and reclaims queued or
// running jobs — running means the previous process died mid-campaign —
// into the queue to execute again, warm against the store.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.start()
	return s
}

// NewStarting returns the server immediately and runs the journal replay in
// the background — the daemon path: the HTTP listener can come up at once,
// with /readyz answering 503 until the replay completes and every Submit
// blocking for readiness so job IDs stay sequential across restarts.
func NewStarting(cfg Config) *Server {
	s := newServer(cfg)
	go s.start()
	return s
}

// newServer builds the server without starting it: no journal replay has
// run and the ready channel is still open.
func newServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Server{
		cfg:     cfg,
		metrics: obs.NewMetrics(),
		journal: cfg.Journal,
		jobs:    map[string]*Job{},
		ready:   make(chan struct{}),
	}
	s.campaign = s.runCampaign
	s.store = cfg.Store
	if store.Enabled(cfg.Store) {
		s.store = &timedStore{inner: cfg.Store, metrics: s.metrics}
	}
	if cfg.AccessLog != nil {
		s.accessLog = &accessLogger{w: cfg.AccessLog}
	}
	if s.journal != nil {
		s.journal.Faults = cfg.Faults
	}
	// Channel headroom beyond the admission bound: one slot per worker and
	// retry re-enqueues never block the senders; the replay loop in start
	// may block on a deep journal, but the workers are already draining.
	s.queue = make(chan *Job, cfg.QueueDepth+cfg.Workers+8)
	s.stop = make(chan struct{})
	return s
}

// start spins up the workers, replays the journal into the queue, and
// marks the server ready. New runs it synchronously; NewStarting in a
// background goroutine, during which /readyz reports the server unready.
func (s *Server) start() {
	defer close(s.ready)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if f := s.cfg.Faults; f != nil && f.JournalReplay != nil {
		f.JournalReplay()
	}
	pending := s.replayJournal()
	for _, j := range pending {
		s.mu.Lock()
		s.queued++
		s.active++
		s.mu.Unlock()
		j.setQueued()
		s.nReplayed.Add(1)
		s.journalJob(j) // persist running -> queued reclaims
		s.logf("serve: %s replayed from journal (%s, attempts %d)", j.ID, j.Req.Component, j.Attempts())
		select {
		case s.queue <- j:
		case <-s.stop:
			return // still journaled queued; the next process replays it
		}
	}
}

// replayJournal loads the journal into the jobs map and returns the jobs
// that must run (again). Corrupt records were quarantined by Replay and
// only counted here.
func (s *Server) replayJournal() []*Job {
	recs, corrupt, err := s.journal.Replay()
	if err != nil {
		s.logf("serve: journal replay: %v", err)
		return nil
	}
	s.nJournalCorrupt.Add(int64(corrupt))
	if corrupt > 0 {
		s.logf("serve: quarantined %d corrupt journal record(s)", corrupt)
	}
	var pending []*Job
	for _, rec := range recs {
		j := &Job{
			ID:       rec.ID,
			Req:      rec.Req,
			seq:      rec.Seq,
			attempts: rec.Attempts,
			trace:    obs.NewBroadcastCapped(s.cfg.traceCap()),
			done:     make(chan struct{}),
		}
		switch rec.State {
		case StateDone, StateFailed, StateQuarantined:
			j.state = rec.State
			j.errMsg = rec.Error
			j.report = rec.Report
			j.artifact = rec.Artifact
			j.impactArt = rec.Impact
			j.restored = rec.Summary
			if len(rec.Artifact) > 0 {
				if art, err := cover.Decode(rec.Artifact); err == nil {
					j.coverage = art.Suite
				}
			}
			j.terminal = true
			j.trace.Close()
			close(j.done)
		default:
			// Queued, or running in a process that no longer exists: the
			// write-ahead record is the job now. Re-queue it; attempts
			// keeps counting the interrupted try, so a job that kills the
			// process on every attempt converges to quarantine instead of
			// crash-looping the service forever.
			j.state = StateQueued
			pending = append(pending, j)
		}
		// NewStarting replays with the HTTP surface already live, so the
		// jobs map mutates under the lock like everywhere else.
		s.mu.Lock()
		if rec.Seq > s.nextID {
			s.nextID = rec.Seq
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.mu.Unlock()
	}
	return pending
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// journalJob appends the job's current state to the journal. Transition
// records after admission are best-effort: losing one means a restart
// replays from an earlier state, which the warm store makes cheap and
// byte-identical; refusing to proceed would trade availability for nothing.
func (s *Server) journalJob(j *Job) {
	if err := s.journal.Append(j.record()); err != nil {
		s.logf("serve: journaling %s: %v", j.ID, err)
	}
}

// Submit validates and enqueues a campaign. Job IDs are sequential (c1,
// c2, ...) in submission order — across restarts when a journal is
// configured, so a deterministic client script addresses deterministic
// IDs. The queued record is journaled before the job becomes runnable:
// once Submit returns, the campaign survives any process death.
func (s *Server) Submit(req Request) (*Job, error) {
	if req.Component == "" {
		return nil, errors.New("serve: request needs a component")
	}
	if _, err := core.LookupTarget(req.Component); err != nil {
		return nil, err
	}
	if req.Shards < 0 {
		return nil, fmt.Errorf("serve: negative shard count %d", req.Shards)
	}
	if req.Distributed && !store.Enabled(s.cfg.Store) {
		return nil, errors.New("serve: distributed campaigns require a verdict store (start the coordinator with a cache directory)")
	}
	if (len(req.OldSpec) > 0) != (len(req.NewSpec) > 0) {
		return nil, errors.New("serve: impact submissions need both oldSpec and newSpec")
	}
	if req.Impact() {
		if req.Distributed {
			return nil, errors.New("serve: impact analysis cannot be distributed")
		}
		// Reject unparseable or mismatched specs at admission: running them
		// could only fail deterministically.
		if _, _, err := req.impactSpecs(); err != nil {
			return nil, err
		}
	}
	// Admission waits for the journal replay so job IDs stay sequential
	// across restarts even when the daemon took submissions while starting.
	select {
	case <-s.ready:
	case <-s.stop:
		return nil, ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.draining {
		return nil, ErrDraining
	}
	if s.queued >= s.cfg.QueueDepth {
		return nil, ErrQueueFull
	}
	seq := s.nextID + 1
	j := &Job{
		ID:         fmt.Sprintf("c%d", seq),
		seq:        seq,
		Req:        req,
		state:      StateQueued,
		enqueuedAt: time.Now(),
		trace:      obs.NewBroadcastCapped(s.cfg.traceCap()),
		done:       make(chan struct{}),
	}
	// Write-ahead: the journal append precedes every other effect. A
	// submission the journal cannot make durable is refused outright.
	if err := s.journal.Append(j.record()); err != nil {
		return nil, err
	}
	chaos.Kill(chaos.PointSubmitJournaled)
	s.nextID = seq
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	s.active++
	select {
	case s.queue <- j:
	default:
		// Unreachable while admission holds queued below QueueDepth and the
		// channel keeps headroom beyond it; never block under the lock.
		go func() {
			select {
			case s.queue <- j:
			case <-s.stop:
			}
		}()
	}
	s.logf("serve: %s queued (%s)", j.ID, req.Component)
	return j, nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Close stops accepting submissions, waits for every admitted job to reach
// a terminal state (the retry budget bounds that wait even for poison
// jobs), then stops the workers.
func (s *Server) Close() {
	s.shutdown(true)
}

// Drain is the graceful-shutdown path: stop admission (Submit returns
// ErrDraining, the HTTP layer 503 + Retry-After), wait up to timeout for
// in-flight and queued jobs to finish, write the journal checkpoint, and
// stop the workers. It reports whether the queue fully quiesced; jobs
// still queued or running past the deadline stay journaled in those states
// and replay on the next start.
func (s *Server) Drain(timeout time.Duration) bool {
	<-s.ready // never checkpoint mid-replay
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.logf("serve: draining (timeout %s)", timeout)
	drained := s.waitIdle(time.Now().Add(timeout))
	s.mu.Lock()
	active := s.active
	s.mu.Unlock()
	if err := s.journal.Checkpoint(Checkpoint{Clean: drained, Active: active}); err != nil {
		s.logf("serve: checkpoint: %v", err)
	}
	s.shutdown(false)
	if drained {
		s.logf("serve: drained cleanly")
	} else {
		s.logf("serve: drain deadline passed with %d active job(s); they will replay from the journal", active)
	}
	return drained
}

func (s *Server) shutdown(waitIdle bool) {
	// Wait out a background start: every worker is registered on the wait
	// group and the replay has finished enqueueing before stop closes.
	<-s.ready
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if waitIdle && !alreadyClosed {
		s.waitIdle(time.Time{})
	}
	s.stopped.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// waitIdle polls until no job is in a non-terminal state, or the deadline
// (zero = none) passes.
func (s *Server) waitIdle(deadline time.Time) bool {
	for {
		s.mu.Lock()
		idle := s.active == 0
		s.mu.Unlock()
		if idle {
			return true
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// recordDuration feeds the completed-job duration ring for Retry-After.
func (s *Server) recordDuration(d time.Duration) {
	s.mu.Lock()
	if len(s.durs) < recentDurations {
		s.durs = append(s.durs, d)
	} else {
		s.durs[s.durIdx%recentDurations] = d
	}
	s.durIdx++
	s.mu.Unlock()
}

// maxRetryAfterSeconds caps the Retry-After estimate: past five minutes
// the number is a queue-health signal, not a schedule, and a well-behaved
// client honoring a multi-hour value would effectively never retry.
const maxRetryAfterSeconds = 300

// retryAfterSeconds estimates when a rejected client should retry: the
// current queue depth times the mean recent job duration, divided across
// the workers, floored at one second and capped at maxRetryAfterSeconds.
// With no completed jobs yet the floor is the estimate.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := time.Second
	if len(s.durs) > 0 {
		var sum time.Duration
		for _, d := range s.durs {
			sum += d
		}
		mean = sum / time.Duration(len(s.durs))
	}
	pending := s.queued
	// Compare before converting: a deep queue of slow campaigns can push
	// the float estimate past integer range.
	estimate := math.Ceil(float64(pending) * mean.Seconds() / float64(s.cfg.Workers))
	if estimate >= maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	secs := int(estimate)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// worker drains the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			// A closed stop channel and a non-empty queue race in this
			// select; once shutdown has begun no new attempt may start, or
			// a hard drain would journal a fresh "running" record after the
			// checkpoint. The job stays journaled as queued and replays.
			select {
			case <-s.stop:
				return
			default:
			}
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			s.runJob(j)
		}
	}
}

// jobOutcome is one attempt's result, shipped from the campaign goroutine
// to the lease-holding worker.
type jobOutcome struct {
	res      *analysis.Result
	report   []byte
	err      error
	panicked bool
}

// runJob executes one lease-bounded attempt of the job: journal the
// running state, run the campaign in a goroutine the worker can abandon,
// and conclude with exactly one of done / failed / retry / quarantine. A
// wedged campaign loses its lease and its late result is discarded; a
// panicking campaign is contained and retried; shutdown mid-attempt leaves
// the job journaled as running for the next process to reclaim.
func (s *Server) runJob(j *Job) {
	s.busy.Add(1)
	defer s.busy.Add(-1)
	token, attempt := j.beginAttempt()
	s.logf("serve: %s running (attempt %d)", j.ID, attempt)
	s.journalJob(j)
	chaos.Kill(chaos.PointJobRunning)
	start := time.Now()
	ch := make(chan jobOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- jobOutcome{err: fmt.Errorf("worker panic: %v", r), panicked: true}
			}
		}()
		if f := s.cfg.Faults; f != nil && f.CampaignStart != nil {
			f.CampaignStart(j.ID, attempt)
		}
		res, report, err := s.campaign(j)
		ch <- jobOutcome{res: res, report: report, err: err}
	}()
	lease := time.NewTimer(s.cfg.lease())
	defer lease.Stop()
	select {
	case o := <-ch:
		if !j.endAttempt(token) {
			return // the attempt was reclaimed; drop the stale result
		}
		switch {
		case o.err == nil:
			chaos.Kill(chaos.PointDonePrejournal)
			j.finishDone(o.res, o.report)
			s.metrics.Inc("job.outcome.done", 1)
			s.jobTerminal(j, time.Since(start))
			s.logf("serve: %s done", j.ID)
		case o.panicked || sandbox.Transient(o.err):
			s.retryOrQuarantine(j, attempt, o.err.Error())
		default:
			// A deterministic campaign error: retrying would fail the same
			// way (sandbox.Retry's contract), so fail immediately.
			j.finishFailed(StateFailed, o.err.Error())
			s.metrics.Inc("job.outcome.failed", 1)
			s.jobTerminal(j, time.Since(start))
			s.logf("serve: %s failed: %v", j.ID, o.err)
		}
	case <-lease.C:
		if !j.endAttempt(token) {
			return
		}
		s.nReclaims.Add(1)
		s.retryOrQuarantine(j, attempt, fmt.Sprintf("lease expired after %s", s.cfg.lease()))
	case <-s.stop:
		// Shutdown mid-attempt: the job stays journaled as running and the
		// next process reclaims it.
	}
}

// jobTerminal journals the job's terminal record, retires it from the
// active set, and (for completed attempts) feeds the duration ring.
func (s *Server) jobTerminal(j *Job, dur time.Duration) {
	s.journalJob(j)
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	if dur > 0 {
		s.recordDuration(dur)
	}
}

// retryOrQuarantine concludes a crashed or reclaimed attempt: re-queue the
// job after its deterministic backoff while the retry budget lasts, park it
// in quarantine once the budget is spent.
func (s *Server) retryOrQuarantine(j *Job, attempt int, cause string) {
	p := s.cfg.retryPolicy()
	if attempt >= p.Attempts {
		j.finishFailed(StateQuarantined, fmt.Sprintf("quarantined after %d attempts: %s", attempt, cause))
		s.nQuarantined.Add(1)
		s.metrics.Inc("job.outcome.quarantined", 1)
		s.jobTerminal(j, 0)
		s.logf("serve: %s quarantined after %d attempts: %s", j.ID, attempt, cause)
		return
	}
	s.nRetries.Add(1)
	j.setQueued()
	s.journalJob(j)
	delay := backoffDelay(p, attempt)
	s.logf("serve: %s attempt %d failed (%s); retry %d/%d in %s", j.ID, attempt, cause, attempt+1, p.Attempts, delay)
	go func() {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.stop:
			return // still journaled queued; the next process replays it
		}
		s.mu.Lock()
		s.queued++
		s.mu.Unlock()
		select {
		case s.queue <- j:
		case <-s.stop:
		}
	}()
}

// runCampaign executes one job, dispatching impact submissions to the
// impact engine, distributed submissions to the shard coordinator
// (work.go) and everything else to the local path.
func (s *Server) runCampaign(j *Job) (*analysis.Result, []byte, error) {
	if j.Req.Impact() {
		return s.runImpact(j)
	}
	if j.Req.Distributed {
		return s.runDistributed(j)
	}
	return s.runLocal(j)
}

// runImpact is the impact-analysis path: diff the submission's two spec
// revisions, re-execute only the invalidated cases (warm against the
// server's store), and reassemble the final report and coverage artifact —
// byte-identical to a cold full run of the new spec's suite. The job's
// report is the rendered impact table plus the suite report and coverage
// summary; the canonical impact artifact is served on /campaigns/{id}/impact.
func (s *Server) runImpact(j *Job) (*analysis.Result, []byte, error) {
	t, err := core.LookupTarget(j.Req.Component)
	if err != nil {
		return nil, nil, err
	}
	oldSpec, newSpec, err := j.Req.impactSpecs()
	if err != nil {
		return nil, nil, err
	}
	comp := t.New(nil)
	exec := j.Req.execOptions()
	exec.Trace = obs.NewTracer(j.trace)
	exec.Metrics = s.metrics
	r := &impact.Runner{
		Factory:       comp.Factory,
		Providers:     comp.Providers,
		Gen:           j.Req.genOptions(),
		Exec:          exec,
		Store:         s.store,
		Parallelism:   s.cfg.Parallelism,
		MutantMethods: mutantMethods(t),
	}
	res, err := r.Run(oldSpec, newSpec)
	if err != nil {
		return nil, nil, err
	}
	if err := exec.Trace.Err(); err != nil {
		return nil, nil, err
	}
	s.nImpactKept.Add(int64(res.Report.Kept))
	s.nImpactRerun.Add(int64(res.Report.Rerun))
	s.nImpactRegen.Add(int64(res.Report.Regenerated))
	encodedCov, err := res.Coverage.Encode()
	if err != nil {
		return nil, nil, err
	}
	j.setCoverage(res.Coverage.Suite, encodedCov)
	encodedImpact, err := res.Report.Encode()
	if err != nil {
		return nil, nil, err
	}
	j.setImpact(res.Report, encodedImpact)
	var buf strings.Builder
	if err := res.Report.Render(&buf); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(&buf, "%s: %s\n", j.Req.Component, res.Suite.Stats())
	fmt.Fprintln(&buf, res.Final.Summary())
	for _, f := range res.Final.Failures() {
		fmt.Fprintf(&buf, "  FAIL %s (%s): %s — %s\n", f.CaseID, f.Transaction, f.Outcome, f.Detail)
	}
	buf.WriteString(res.Coverage.Suite.Summary())
	buf.WriteString("\n")
	return nil, []byte(buf.String()), nil
}

// mutantMethods enumerates the target's mutants over its experiment
// methods, one method name per mutant, for the impact report's mutant
// accounting. Components without instrumentation yield nil.
func mutantMethods(t core.Target) []string {
	if len(t.Sites) == 0 || len(t.ExperimentMethods) == 0 {
		return nil
	}
	eng := mutation.NewEngine()
	for _, site := range t.Sites {
		if err := eng.RegisterSite(site); err != nil {
			return nil
		}
	}
	var out []string
	for _, m := range eng.Enumerate(nil, t.ExperimentMethods) {
		out = append(out, m.Method)
	}
	return out
}

// runLocal is the single-process campaign path. It doubles as the
// deterministic merge of a distributed campaign: once every shard has
// published its verdicts into the shared store, this same code re-runs the
// full campaign warm — all cache hits — and renders the byte-identical
// report and coverage artifact a single process would have produced.
func (s *Server) runLocal(j *Job) (*analysis.Result, []byte, error) {
	t, err := core.LookupTarget(j.Req.Component)
	if err != nil {
		return nil, nil, err
	}
	suite, err := t.New(nil).GenerateSuite(j.Req.genOptions())
	if err != nil {
		return nil, nil, err
	}
	exec := j.Req.execOptions()
	exec.Trace = obs.NewTracer(j.trace)
	exec.Metrics = s.metrics
	res, err := core.MutationRunOpts(j.Req.Component, suite, j.Req.Methods, nil, core.MutationOptions{
		Exec:        exec,
		Parallelism: s.cfg.Parallelism,
		Store:       s.store,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := exec.Trace.Err(); err != nil {
		return nil, nil, err
	}
	g, err := t.New(nil).Spec().TFM()
	if err != nil {
		return nil, nil, err
	}
	art, err := cover.FromCampaign(g, suite, res)
	if err != nil {
		return nil, nil, err
	}
	encoded, err := art.Encode()
	if err != nil {
		return nil, nil, err
	}
	j.setCoverage(art.Suite, encoded)
	var buf strings.Builder
	if err := res.Tabulate().Render(&buf); err != nil {
		return nil, nil, err
	}
	buf.WriteString(art.Suite.Summary())
	buf.WriteString("\n")
	return res, []byte(buf.String()), nil
}

// Handler returns the HTTP API:
//
//	POST /campaigns            submit (JSON Request) -> 202 Status, 503 on full queue or drain
//	POST /impact               submit an impact analysis (Request with oldSpec/newSpec) -> 202 Status
//	GET  /campaigns            all statuses, submission order
//	GET  /campaigns/{id}       one status
//	GET  /campaigns/{id}/report   rendered table + coverage summary (blocks until done)
//	GET  /campaigns/{id}/coverage canonical coverage artifact JSON (blocks until done)
//	GET  /campaigns/{id}/impact   canonical impact artifact JSON (impact jobs; blocks until done)
//	GET  /campaigns/{id}/events   live NDJSON trace stream (replays from the start)
//	POST /work/lease           lease one shard of a distributed campaign (204 when none)
//	POST /work/{id}/shards/{shard} report a leased shard's completion
//	GET  /store/{id}           verdict-store entry document (RawBackend stores only)
//	PUT  /store/{id}           publish a verified entry document
//	GET  /store                store entry counts and lookup stats
//	GET  /metrics              Prometheus text-format metrics
//	GET  /healthz              liveness
//	GET  /readyz               readiness: 503 while starting (journal replay) or draining
//	     /debug/pprof/...      net/http/pprof (only with Config.EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every route registers through the RED middleware: the route label is
	// the registration pattern (bounded cardinality), and the handler runs
	// wrapped with the request counter, latency histogram, in-flight gauge,
	// request ID and access log (middleware.go).
	handle := func(method, route string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+route, s.instrument(route, h))
	}
	handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("GET", "/readyz", s.handleReadyz)
	handle("POST", "/campaigns", s.handleSubmit)
	handle("POST", "/impact", s.handleImpact)
	handle("GET", "/campaigns", s.handleList)
	handle("GET", "/campaigns/{id}", s.handleStatus)
	handle("GET", "/campaigns/{id}/report", s.handleReport)
	handle("GET", "/campaigns/{id}/coverage", s.handleCoverage)
	handle("GET", "/campaigns/{id}/impact", s.handleImpactArtifact)
	handle("GET", "/campaigns/{id}/events", s.handleEvents)
	handle("POST", "/work/lease", s.handleWorkLease)
	handle("POST", "/work/{id}/shards/{shard}", s.handleShardDone)
	if rb, ok := s.cfg.Store.(store.RawBackend); ok && store.Enabled(s.cfg.Store) {
		sh := store.NewHandler(rb)
		handle("GET", "/store", sh.ServeHTTP)
		handle("GET", "/store/{id}", sh.ServeHTTP)
		handle("PUT", "/store/{id}", sh.ServeHTTP)
	}
	handle("GET", "/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Ready reports whether the server finished starting (journal replay
// complete) and is accepting work.
func (s *Server) Ready() bool {
	select {
	case <-s.ready:
	default:
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.closed
}

// handleReadyz is the readiness probe, distinct from /healthz liveness: a
// starting server (journal replay still running) and a draining one both
// answer 503 so load balancers route around them, while /healthz keeps
// reporting the process alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	select {
	case <-s.ready:
	default:
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "starting: journal replay in progress")
		return
	}
	s.mu.Lock()
	draining, closed := s.draining, s.closed
	s.mu.Unlock()
	if draining || closed {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding request: " + err.Error()})
		return
	}
	s.submitAndRespond(w, req)
}

// handleImpact admits an impact submission: the same Request wire form with
// oldSpec and newSpec present. A missing component defaults to the new
// spec's class, so posting just the two spec documents works.
func (s *Server) handleImpact(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding request: " + err.Error()})
		return
	}
	if len(req.OldSpec) == 0 || len(req.NewSpec) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "impact submissions need oldSpec and newSpec"})
		return
	}
	if req.Component == "" {
		spec, err := tspec.LoadJSON(bytes.NewReader(req.NewSpec))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "new spec: " + err.Error()})
			return
		}
		req.Component = spec.Class.Name
	}
	s.submitAndRespond(w, req)
}

// submitAndRespond runs Submit and maps its outcome onto the HTTP surface,
// shared by the campaign and impact submission handlers.
func (s *Server) submitAndRespond(w http.ResponseWriter, req Request) {
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrJournal):
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, s.status(j))
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such campaign " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, s.status(j))
	}
}

// handleReport blocks until the job finishes (or the client goes away) and
// serves the rendered table — the same bytes `concat mutate` prints.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	st := j.Status()
	if st.State == StateFailed || st.State == StateQuarantined {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	}
	j.mu.Lock()
	report := j.report
	j.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(report)
}

// handleCoverage blocks until the job finishes and serves the canonical
// coverage artifact — the same bytes `concat mutate -cover` writes.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	st := j.Status()
	if st.State == StateFailed || st.State == StateQuarantined {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	}
	_, artifact := j.Coverage()
	if len(artifact) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "campaign " + j.ID + " has no coverage artifact"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(artifact)
}

// handleImpactArtifact blocks until the job finishes and serves the
// canonical impact artifact — the same bytes `concat impact -json` prints.
// Mutation campaigns have none and answer 404.
func (s *Server) handleImpactArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	st := j.Status()
	if st.State == StateFailed || st.State == StateQuarantined {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	}
	artifact := j.Impact()
	if len(artifact) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "campaign " + j.ID + " has no impact artifact"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(artifact)
}

// handleMetrics renders the live Prometheus text surface: the shared
// campaign metrics (outcome counters, kill-latency histograms), the verdict
// store's hit/miss/quarantine counters, queue, job-state and drain gauges,
// the recovery counters (journal replays, corrupt journal records, lease
// reclaims, retries, quarantined jobs) and the impact-partition counters
// (cases kept/re-run/regenerated) — always present, so their absence can
// never be confused with zero — and per-campaign transaction-coverage
// gauges for every finished job.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	snap := s.metrics.Snapshot()
	if err := snap.WritePrometheus(&b); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	counter := func(family, help string, v int64) {
		b.WriteString(obs.PromFamilyHeader(family, "counter", help))
		fmt.Fprintf(&b, "%s %d\n", family, v)
	}
	gauge := func(family, help string, v any) {
		b.WriteString(obs.PromFamilyHeader(family, "gauge", help))
		fmt.Fprintf(&b, "%s %v\n", family, v)
	}
	b.WriteString(obs.PromFamilyHeader("concat_build_info", "gauge",
		"Build metadata; the value is always 1."))
	fmt.Fprintf(&b, "concat_build_info{version=%q,goversion=%q} 1\n",
		obs.EscapeLabelValue(Version), obs.EscapeLabelValue(runtime.Version()))
	stats := store.BackendStats(s.cfg.Store)
	counter("concat_store_hits_total", "Verdict-store lookups served from the cache.", int64(stats.Hits))
	counter("concat_store_misses_total", "Verdict-store lookups that had to execute.", int64(stats.Misses))
	counter("concat_store_quarantined_total", "Store entries quarantined for failing integrity.", int64(stats.Quarantined))
	counter("concat_shard_leases_total", "Distributed-campaign shard leases granted.", s.nShardLeases.Load())
	counter("concat_shard_reclaims_total", "Shard leases reclaimed from wedged workers.", s.nShardReclaims.Load())
	counter("concat_journal_replayed_total", "Jobs replayed from the journal at startup.", s.nReplayed.Load())
	counter("concat_journal_corrupt_total", "Corrupt journal records quarantined at replay.", s.nJournalCorrupt.Load())
	counter("concat_lease_reclaims_total", "Job leases reclaimed from wedged attempts.", s.nReclaims.Load())
	counter("concat_job_retries_total", "Job attempts retried after a crash or reclaim.", s.nRetries.Load())
	counter("concat_jobs_quarantined_total", "Poison jobs parked after exhausting retries.", s.nQuarantined.Load())
	counter("concat_impact_kept_total", "Impact-analysis cases kept (replayed warm).", s.nImpactKept.Load())
	counter("concat_impact_rerun_total", "Impact-analysis cases re-executed.", s.nImpactRerun.Load())
	counter("concat_impact_regenerated_total", "Impact-analysis cases regenerated and executed.", s.nImpactRegen.Load())
	s.mu.Lock()
	queued := s.queued
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauge("concat_queue_depth", "Jobs occupying admission slots.", queued)
	gauge("concat_draining", "1 while the server drains toward shutdown.", draining)
	gauge("concat_http_in_flight", "HTTP requests currently being served.", s.inFlight.Load())
	gauge("concat_workers", "Configured campaign workers.", s.cfg.Workers)
	gauge("concat_workers_busy", "Workers currently executing a job.", s.busy.Load())
	subCount, maxLag := s.subscriberStats()
	gauge("concat_events_subscribers", "Live /events NDJSON stream subscribers.", subCount)
	gauge("concat_events_broadcast_lag_bytes", "Worst trace bytes written but not yet consumed by a live subscriber.", maxLag)

	jobs := s.Jobs()
	states := map[string]int{}
	var covered []*Job
	var oldestQueued time.Time
	for _, j := range jobs {
		states[j.Status().State]++
		if sc, _ := j.Coverage(); sc != nil {
			covered = append(covered, j)
		}
		if at, ok := j.queuedSince(); ok && (oldestQueued.IsZero() || at.Before(oldestQueued)) {
			oldestQueued = at
		}
	}
	queueAge := 0.0
	if !oldestQueued.IsZero() {
		queueAge = time.Since(oldestQueued).Seconds()
	}
	gauge("concat_queue_oldest_age_seconds", "Age of the oldest job waiting in the queue.", strconv.FormatFloat(queueAge, 'g', -1, 64))
	b.WriteString(obs.PromFamilyHeader("concat_jobs", "gauge", "Jobs by lifecycle state."))
	for _, state := range jobStates {
		fmt.Fprintf(&b, "concat_jobs{state=%q} %d\n", state, states[state])
	}
	if len(covered) > 0 {
		b.WriteString(obs.PromFamilyHeader("concat_campaign_transaction_coverage_ratio", "gauge",
			"Per-campaign TFM transaction coverage, 0 to 1."))
		for _, j := range covered {
			sc, _ := j.Coverage()
			fmt.Fprintf(&b, "concat_campaign_transaction_coverage_ratio{id=%q,component=%q} %g\n",
				j.ID, j.Req.Component, sc.TransactionPercent()/100)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String())
}

// handleEvents streams the job's trace as NDJSON: the full span history so
// far (with an explicit truncation marker when the retention cap dropped
// early lines), then live lines until the campaign ends or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	// Flush the headers before waiting on the trace: a subscriber to a
	// just-submitted, still-quiet campaign must see the 200 and content
	// type immediately, not whenever the first span happens to land.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	sub, done := s.addSubscriber(j)
	defer done()
	off := 0
	for {
		chunk, next, more := j.trace.Next(off, r.Context().Done())
		if !more {
			return
		}
		off = next
		sub.off.Store(int64(next))
		if _, err := w.Write(chunk); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
