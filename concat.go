// Package concat is a Go implementation of the self-testable software
// component methodology of Martins, Toyota and Yanagawa, "Constructing
// Self-Testable Software Components" (DSN 2001), including the Concat
// prototype tool the paper describes.
//
// A self-testable component carries, alongside its implementation:
//
//   - a test specification (t-spec) describing its interface (attributes and
//     method parameters with value domains) and its transaction flow model
//     (TFM) — the allowed method sequences from object birth to death;
//   - built-in test (BIT) capabilities: class-invariant / pre / post
//     assertion checking used as a partial oracle, a Reporter that dumps
//     internal state, and a BIT access control gating the facilities to test
//     mode.
//
// The consumer-side Driver Generator reads the t-spec, enumerates
// transactions under the transaction coverage criterion, draws method
// arguments from the declared domains, and produces an executable suite.
// Suites run through the test infrastructure with the invariant checked
// around every call; subclass suites are derived from parent suites with
// the hierarchical incremental reuse technique; and test-set quality is
// evaluated with the paper's interface-mutation operators (Table 1).
//
// # Quick start
//
//	comp := concat.Target("Account")              // a built-in subject
//	suite, report, err := comp.SelfTest(
//	    concat.GenOptions{Seed: 42},
//	    concat.ExecOptions{},
//	)
//
// See the examples/ directory for complete programs, and cmd/concat for the
// command-line tool.
package concat

import (
	"io"
	"strings"

	"concat/internal/analysis"
	"concat/internal/component"
	"concat/internal/core"
	"concat/internal/driver"
	"concat/internal/history"
	"concat/internal/mutation"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

// Re-exported types: the public API surface is the façade over the
// internal packages. Aliases keep the internal and public types identical
// so values flow freely between the two.
type (
	// Spec is a parsed test specification (t-spec).
	Spec = tspec.Spec
	// SpecBuilder assembles a Spec programmatically.
	SpecBuilder = tspec.Builder
	// Suite is an executable test suite.
	Suite = driver.Suite
	// TestCase is one birth-to-death transaction exercise.
	TestCase = driver.TestCase
	// GenOptions configure the Driver Generator.
	GenOptions = driver.Options
	// EmitOptions configure the Go-source driver emitter.
	EmitOptions = driver.EmitOptions
	// ExecOptions configure suite execution.
	ExecOptions = testexec.Options
	// Report is the result of running a suite.
	Report = testexec.Report
	// CaseResult is one executed test case's record.
	CaseResult = testexec.CaseResult
	// Golden is the golden-output oracle.
	Golden = testexec.Golden
	// Component is a self-testable component with its providers.
	Component = core.Component
	// History is a component's testing history.
	History = history.History
	// DerivedSuite is a subclass suite produced by incremental reuse.
	DerivedSuite = history.DerivedSuite
	// MutationEngine owns mutation sites and the active mutant.
	MutationEngine = mutation.Engine
	// Mutant is one injected interface fault.
	Mutant = mutation.Mutant
	// MutationResult aggregates a mutation analysis.
	MutationResult = analysis.Result
	// MutationTable is the Tables 2/3 summary.
	MutationTable = analysis.Table
	// Factory builds component instances.
	Factory = component.Factory
	// Instance is a live component object.
	Instance = component.Instance
)

// ParseSpec parses a t-spec in the Figure 3 notation and validates it.
func ParseSpec(src string) (*Spec, error) {
	s, err := tspec.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadSpec parses a t-spec from a reader.
func ReadSpec(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseSpec(string(data))
}

// FormatSpec renders a spec back into t-spec notation.
func FormatSpec(s *Spec) string {
	var sb strings.Builder
	if err := s.Format(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// NewSpec starts a programmatic spec for the named class.
func NewSpec(name string) *SpecBuilder { return tspec.NewBuilder(name) }

// Generate runs the Driver Generator on a spec.
func Generate(s *Spec, opts GenOptions) (*Suite, error) {
	return driver.Generate(s, opts)
}

// Run executes a suite against a component factory.
func Run(s *Suite, f Factory, opts ExecOptions) (*Report, error) {
	return testexec.Run(s, f, opts)
}

// EmitDriver renders a suite as a standalone Go driver source file (the
// paper's Figures 6-7 "specific driver").
func EmitDriver(w io.Writer, s *Suite, opts EmitOptions) error {
	return driver.Emit(w, s, opts)
}

// Derive applies the hierarchical incremental reuse technique to produce a
// subclass suite from the parent's.
func Derive(parentSpec, childSpec *Spec, parentSuite *Suite, opts GenOptions) (*DerivedSuite, error) {
	return history.Derive(parentSpec, childSpec, parentSuite, opts)
}

// Target returns a built-in study subject (Account, ObList, SortableObList,
// Product), or nil if the name is unknown.
func Target(name string) *Component {
	t, err := core.LookupTarget(name)
	if err != nil {
		return nil
	}
	return t.New(nil)
}

// TargetNames lists the built-in study subjects.
func TargetNames() []string {
	reg, err := core.Registry()
	if err != nil {
		return nil
	}
	return reg.Names()
}

// Mutate runs the paper's interface-mutation analysis on a built-in target:
// mutants are generated for the given methods (the target's experiment
// methods when empty) and the suite's fault-revealing power is scored.
func Mutate(targetName string, suite *Suite, methods []string, progress io.Writer) (*MutationResult, error) {
	return core.MutationRun(targetName, suite, methods, progress)
}
