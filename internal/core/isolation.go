// Subprocess-isolation support for the built-in targets: the resolver a
// `concat run-case` case server uses to rebuild the component under test —
// optionally with a mutant re-armed on a fresh engine — inside the child
// process, and the main() hook that turns any binary linking core into its
// own crash-containment sandbox.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"concat/internal/analysis"
	"concat/internal/mutation"
	"concat/internal/testexec"
)

// CaseResolver returns the testexec.Resolver for the built-in study
// subjects. The isolation context, when present, carries the shape mutation
// analysis ships (analysis.IsolationContext): an armed mutant to re-activate
// on a child-local engine. The resolver then wires the engine's
// reach/infection record back to the parent through Resolved.Finish.
func CaseResolver() testexec.Resolver {
	return func(componentName string, context json.RawMessage) (testexec.Resolved, error) {
		t, err := LookupTarget(componentName)
		if err != nil {
			return testexec.Resolved{}, err
		}
		var ctx analysis.IsolationContext
		if len(context) > 0 {
			if err := json.Unmarshal(context, &ctx); err != nil {
				return testexec.Resolved{}, fmt.Errorf("core: decoding isolation context: %w", err)
			}
		}
		if ctx.Mutant == nil {
			comp := t.New(nil)
			return testexec.Resolved{Factory: comp.Factory, Providers: comp.Providers}, nil
		}
		if len(t.Sites) == 0 {
			return testexec.Resolved{}, fmt.Errorf("core: component %q has no mutation instrumentation", componentName)
		}
		eng := mutation.NewEngine()
		for _, s := range t.Sites {
			if err := eng.RegisterSite(s); err != nil {
				return testexec.Resolved{}, fmt.Errorf("core: %w", err)
			}
		}
		if err := eng.Activate(*ctx.Mutant); err != nil {
			return testexec.Resolved{}, fmt.Errorf("core: arming mutant in case server: %w", err)
		}
		comp := t.New(eng)
		return testexec.Resolved{
			Factory:   comp.Factory,
			Providers: comp.Providers,
			Finish: func() json.RawMessage {
				raw, _ := json.Marshal(analysis.CaseFlags{
					Reached:  eng.Reached(),
					Infected: eng.Infected(),
				})
				return raw
			},
		}, nil
	}
}

// ServeOneCase serves exactly one isolated case over the given streams —
// the body of the hidden `concat run-case` subcommand.
func ServeOneCase(r io.Reader, w io.Writer) error {
	return testexec.ServeCase(r, w, CaseResolver())
}

// MaybeServeCase checks the executor's ServerEnv sentinel and, when set,
// turns the current process into a case server on stdin/stdout and exits:
// the warm-pool batch server when the sentinel selects it, the one-shot
// single-case server otherwise. Call it first thing in main() of any
// binary that should be usable as its own sandbox; it returns (doing
// nothing) in a normal invocation.
func MaybeServeCase() {
	served, err := testexec.ServeFromEnv(os.Stdin, os.Stdout, CaseResolver())
	if !served {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "concat case server:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
