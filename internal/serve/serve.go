// Package serve exposes mutation campaigns as a long-running HTTP/JSON
// service: submit a campaign, poll its status, stream its trace live as
// NDJSON, and fetch the finished report. It is the "components with
// built-in test capabilities as infrastructure" reading of the paper — the
// same analysis the `concat mutate` subcommand runs once, kept resident
// behind a bounded job queue and a worker pool, with the content-addressed
// verdict store (internal/store) making warm resubmissions re-execute only
// mutants whose inputs changed.
//
// The service deliberately reuses the deterministic campaign machinery
// unchanged: a report fetched over HTTP is the table the CLI prints for the
// same request plus one coverage-summary line, the coverage artifact it
// stores is byte-identical to what the CLI writes, and the streamed trace
// validates against the obs span schema. A live /metrics endpoint exposes
// the accumulated campaign counters and kill-latency histograms in the
// Prometheus text format, and net/http/pprof can be mounted behind a flag.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"

	"concat/internal/analysis"
	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

// ErrQueueFull is returned by Submit when the pending-campaign queue is at
// capacity; the HTTP layer maps it to 503 Service Unavailable.
var ErrQueueFull = errors.New("serve: campaign queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// Request is a campaign submission: which built-in component to mutate and
// how to generate its suite. The zero values of the generation knobs mean
// the CLI defaults (seed 42, no expansion, alternative cap 4, loop bound 1),
// so `{"component": "Account"}` is a complete request.
type Request struct {
	Component string   `json:"component"`
	Methods   []string `json:"methods,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Expand    bool     `json:"expand,omitempty"`
	Alt       int      `json:"alt,omitempty"`
	LoopBound int      `json:"loopBound,omitempty"`
	// Isolate runs every case in a crash-contained child process. It needs
	// the serving binary to double as the case server (concat does), so it
	// is off by default.
	Isolate bool `json:"isolate,omitempty"`
	// Pool runs the campaign on a pool of warm worker processes with
	// batched case dispatch instead of one spawn per case — same crash
	// containment, amortized process cost. Wins over Isolate when both
	// are set.
	Pool bool `json:"pool,omitempty"`
	// PoolSize bounds the warm worker pool (0 = the server's parallelism).
	PoolSize int `json:"poolSize,omitempty"`
}

// genOptions resolves the request's generation knobs to driver options.
func (r Request) genOptions() driver.Options {
	seed := r.Seed
	if seed == 0 {
		seed = 42
	}
	alt := r.Alt
	if alt == 0 {
		alt = 4
	}
	lb := r.LoopBound
	if lb == 0 {
		lb = 1
	}
	return driver.Options{
		Seed:               seed,
		ExpandAlternatives: r.Expand,
		MaxAlternatives:    alt,
		Enum:               tfm.EnumOptions{LoopBound: lb},
	}
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted campaign. Its trace broadcast fills while the
// campaign runs and closes when it finishes, so any number of HTTP clients
// can replay or follow the NDJSON span stream.
type Job struct {
	ID  string
	Req Request

	mu       sync.Mutex
	state    string
	errMsg   string
	result   *analysis.Result
	report   []byte
	coverage *cover.SuiteCoverage
	artifact []byte

	trace *obs.Broadcast
	done  chan struct{}
}

func (j *Job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *Job) finish(res *analysis.Result, report []byte, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = res
		j.report = report
	}
	j.mu.Unlock()
	close(j.done)
}

// setCoverage records the campaign's coverage summary and its encoded
// canonical artifact; runCampaign calls it before the job finishes.
func (j *Job) setCoverage(sc *cover.SuiteCoverage, artifact []byte) {
	j.mu.Lock()
	j.coverage = sc
	j.artifact = artifact
	j.mu.Unlock()
}

// Coverage returns the job's suite coverage (nil until the campaign
// computed it) and the encoded canonical artifact.
func (j *Job) Coverage() (*cover.SuiteCoverage, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.coverage, j.artifact
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Trace returns the job's NDJSON trace broadcast.
func (j *Job) Trace() *obs.Broadcast { return j.trace }

// Status is the wire form of a job's state.
type Status struct {
	ID          string `json:"id"`
	Component   string `json:"component"`
	State       string `json:"state"`
	Mutants     int    `json:"mutants"`
	Killed      int    `json:"killed"`
	Equivalent  int    `json:"equivalent"`
	Survivors   int    `json:"survivors"`
	CacheHits   int    `json:"cacheHits"`
	CacheMisses int    `json:"cacheMisses"`
	// Coverage is the campaign's one-line coverage summary ("coverage:
	// transactions 4/4 (100.0%), ..."), present once the campaign finished.
	Coverage string `json:"coverage,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{ID: j.ID, Component: j.Req.Component, State: j.state, Error: j.errMsg}
	if j.result != nil {
		tab := j.result.Tabulate()
		st.Mutants = tab.Total.Mutants
		st.Killed = tab.Total.Killed
		st.Equivalent = tab.Total.Equivalent
		st.Survivors = tab.Total.Mutants - tab.Total.Killed - tab.Total.Equivalent
		st.CacheHits = j.result.CacheHits
		st.CacheMisses = j.result.CacheMisses
	}
	if j.coverage != nil {
		st.Coverage = j.coverage.Summary()
	}
	return st
}

// Config tunes the campaign service.
type Config struct {
	// Store, when non-nil, is the shared verdict cache threaded into every
	// campaign, making warm resubmissions re-execute only changed mutants.
	Store *store.Store
	// QueueDepth bounds the pending campaigns (default 16). A full queue
	// rejects submissions with ErrQueueFull instead of blocking or growing.
	QueueDepth int
	// Workers is the number of campaigns running concurrently (default 1).
	Workers int
	// Parallelism is the per-campaign mutant-worker count (0 = GOMAXPROCS).
	Parallelism int
	// TraceBuffer caps each job's retained NDJSON trace replay buffer in
	// bytes (0 = the 16 MiB default, negative = unbounded). A client that
	// subscribes after the cap dropped data receives an explicit truncation
	// marker before the retained suffix.
	TraceBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the handler.
	// Off by default: profiling endpoints are opt-in surface.
	EnablePprof bool
	// Logf, when non-nil, receives one line per job transition.
	Logf func(format string, args ...any)
}

// DefaultTraceBuffer is the per-job trace retention cap when Config leaves
// TraceBuffer zero.
const DefaultTraceBuffer = 16 << 20

// traceCap resolves Config.TraceBuffer to a Broadcast cap.
func (c Config) traceCap() int {
	switch {
	case c.TraceBuffer > 0:
		return c.TraceBuffer
	case c.TraceBuffer < 0:
		return 0 // unbounded
	default:
		return DefaultTraceBuffer
	}
}

// Server is the campaign service: a bounded job queue drained by a worker
// pool, with every job's state, report and trace retained for the
// process's lifetime.
type Server struct {
	cfg     Config
	queue   chan *Job
	metrics *obs.Metrics
	wg      sync.WaitGroup

	// campaign executes one job's analysis; tests substitute a stub to pin
	// workers at a controlled point. Set before the first Submit.
	campaign func(*Job) (*analysis.Result, []byte, error)

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	closed bool
}

// New starts the worker pool and returns the server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		metrics: obs.NewMetrics(),
		jobs:    map[string]*Job{},
	}
	s.campaign = s.runCampaign
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates and enqueues a campaign. Job IDs are sequential (c1,
// c2, ...) in submission order, so a deterministic client script addresses
// deterministic IDs.
func (s *Server) Submit(req Request) (*Job, error) {
	if req.Component == "" {
		return nil, errors.New("serve: request needs a component")
	}
	if _, err := core.LookupTarget(req.Component); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	j := &Job{
		ID:    fmt.Sprintf("c%d", s.nextID+1),
		Req:   req,
		state: StateQueued,
		trace: obs.NewBroadcastCapped(s.cfg.traceCap()),
		done:  make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.logf("serve: %s queued (%s)", j.ID, req.Component)
	return j, nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Close stops accepting submissions, drains the queued jobs and waits for
// the workers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// runJob executes one campaign: generate the suite from the embedded
// t-spec, run the mutation analysis with the job's broadcast as the NDJSON
// trace sink, and record the rendered table.
func (s *Server) runJob(j *Job) {
	j.setState(StateRunning)
	s.logf("serve: %s running", j.ID)
	res, report, err := s.campaign(j)
	// Close the trace stream before publishing the verdict so a client that
	// saw "done" never blocks on a still-open stream.
	j.trace.Close()
	j.finish(res, report, err)
	if err != nil {
		s.logf("serve: %s failed: %v", j.ID, err)
	} else {
		s.logf("serve: %s done", j.ID)
	}
}

func (s *Server) runCampaign(j *Job) (*analysis.Result, []byte, error) {
	t, err := core.LookupTarget(j.Req.Component)
	if err != nil {
		return nil, nil, err
	}
	suite, err := t.New(nil).GenerateSuite(j.Req.genOptions())
	if err != nil {
		return nil, nil, err
	}
	exec := testexec.Options{Trace: obs.NewTracer(j.trace), Metrics: s.metrics}
	if j.Req.Pool {
		exec.Isolation = testexec.IsolatePool
		exec.PoolSize = j.Req.PoolSize
	} else if j.Req.Isolate {
		exec.Isolation = testexec.IsolateSubprocess
	}
	res, err := core.MutationRunOpts(j.Req.Component, suite, j.Req.Methods, nil, core.MutationOptions{
		Exec:        exec,
		Parallelism: s.cfg.Parallelism,
		Store:       s.cfg.Store,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := exec.Trace.Err(); err != nil {
		return nil, nil, err
	}
	g, err := t.New(nil).Spec().TFM()
	if err != nil {
		return nil, nil, err
	}
	art, err := cover.FromCampaign(g, suite, res)
	if err != nil {
		return nil, nil, err
	}
	encoded, err := art.Encode()
	if err != nil {
		return nil, nil, err
	}
	j.setCoverage(art.Suite, encoded)
	var buf strings.Builder
	if err := res.Tabulate().Render(&buf); err != nil {
		return nil, nil, err
	}
	buf.WriteString(art.Suite.Summary())
	buf.WriteString("\n")
	return res, []byte(buf.String()), nil
}

// Handler returns the HTTP API:
//
//	POST /campaigns            submit (JSON Request) -> 202 Status, 503 on full queue
//	GET  /campaigns            all statuses, submission order
//	GET  /campaigns/{id}       one status
//	GET  /campaigns/{id}/report   rendered table + coverage summary (blocks until done)
//	GET  /campaigns/{id}/coverage canonical coverage artifact JSON (blocks until done)
//	GET  /campaigns/{id}/events   live NDJSON trace stream (replays from the start)
//	GET  /metrics              Prometheus text-format metrics
//	GET  /healthz              liveness
//	     /debug/pprof/...      net/http/pprof (only with Config.EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /campaigns/{id}/coverage", s.handleCoverage)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding request: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such campaign " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleReport blocks until the job finishes (or the client goes away) and
// serves the rendered table — the same bytes `concat mutate` prints.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	st := j.Status()
	if st.State == StateFailed {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	}
	j.mu.Lock()
	report := j.report
	j.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(report)
}

// handleCoverage blocks until the job finishes and serves the canonical
// coverage artifact — the same bytes `concat mutate -cover` writes.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	st := j.Status()
	if st.State == StateFailed {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	}
	_, artifact := j.Coverage()
	if len(artifact) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "campaign " + j.ID + " has no coverage artifact"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(artifact)
}

// handleMetrics renders the live Prometheus text surface: the shared
// campaign metrics (outcome counters, kill-latency histograms), the verdict
// store's hit/miss counters, queue and job-state gauges, and per-campaign
// transaction-coverage gauges for every finished job.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	snap := s.metrics.Snapshot()
	if err := snap.WritePrometheus(&b); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	stats := s.cfg.Store.Stats()
	fmt.Fprintf(&b, "# TYPE concat_store_hits_total counter\nconcat_store_hits_total %d\n", stats.Hits)
	fmt.Fprintf(&b, "# TYPE concat_store_misses_total counter\nconcat_store_misses_total %d\n", stats.Misses)
	fmt.Fprintf(&b, "# TYPE concat_queue_depth gauge\nconcat_queue_depth %d\n", len(s.queue))

	jobs := s.Jobs()
	states := map[string]int{}
	var covered []*Job
	for _, j := range jobs {
		states[j.Status().State]++
		if sc, _ := j.Coverage(); sc != nil {
			covered = append(covered, j)
		}
	}
	fmt.Fprintf(&b, "# TYPE concat_jobs gauge\n")
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(&b, "concat_jobs{state=%q} %d\n", state, states[state])
	}
	if len(covered) > 0 {
		fmt.Fprintf(&b, "# TYPE concat_campaign_transaction_coverage_ratio gauge\n")
		for _, j := range covered {
			sc, _ := j.Coverage()
			fmt.Fprintf(&b, "concat_campaign_transaction_coverage_ratio{id=%q,component=%q} %g\n",
				j.ID, j.Req.Component, sc.TransactionPercent()/100)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String())
}

// handleEvents streams the job's trace as NDJSON: the full span history so
// far (with an explicit truncation marker when the retention cap dropped
// early lines), then live lines until the campaign ends or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, next, more := j.trace.Next(off, r.Context().Done())
		if !more {
			return
		}
		off = next
		if _, err := w.Write(chunk); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
