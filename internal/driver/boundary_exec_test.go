package driver_test

// External test package: testexec imports driver, so executing generated
// suites must be tested from outside the driver package.

import (
	"testing"

	"concat/internal/components/account"
	"concat/internal/driver"
	"concat/internal/testexec"
)

func TestBoundarySuiteRunsClean(t *testing.T) {
	suite, err := driver.Generate(account.Spec(), driver.Options{Seed: 2, BoundaryCases: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testexec.Run(suite, account.NewFactory(), testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("boundary suite failures: %+v", rep.Failures()[:1])
	}
}

func TestSoakSuiteRunsClean(t *testing.T) {
	suite, err := driver.GenerateSoak(account.Spec(), driver.SoakOptions{Seed: 11, Cases: 100, MaxLength: 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testexec.Run(suite, account.NewFactory(), testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("soak suite failures: %+v", rep.Failures()[:1])
	}
}
