// Prometheus text-format rendering of a metrics snapshot: the live
// /metrics surface of the campaign service. The internal metric namespace
// ("case.outcome.pass", "mutant.kill-latency.IndVarBitNeg") translates into
// conventional Prometheus families — outcome and kill-reason counters
// become one family with a label, kill-latency histograms become one
// histogram family labelled by operator, and everything else maps
// mechanically. Output is sorted, so identical snapshots render identical
// bytes.

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promSanitize maps an internal metric name segment onto the Prometheus
// name charset [a-zA-Z0-9_].
func promSanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// splitLabeled splits an obs.Labeled name ("family{k=\"v\",...}") into its
// family and its brace-enclosed label body. ok is false for plain names.
func splitLabeled(name string) (family, label string, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return "", "", false
	}
	return name[:i], name[i+1 : len(name)-1], true
}

// promCounter maps one internal counter name to (family, label) — label is
// empty for plain counters.
func promCounter(name string) (family, label string) {
	if fam, lbl, ok := splitLabeled(name); ok {
		return "concat_" + promSanitize(fam) + "_total", lbl
	}
	if rest, ok := strings.CutPrefix(name, "case.outcome."); ok {
		return "concat_case_outcome_total", fmt.Sprintf("outcome=%q", rest)
	}
	if rest, ok := strings.CutPrefix(name, "mutant.kill."); ok {
		return "concat_mutant_kills_total", fmt.Sprintf("reason=%q", rest)
	}
	if rest, ok := strings.CutPrefix(name, "job.outcome."); ok {
		return "concat_job_outcome_total", fmt.Sprintf("state=%q", rest)
	}
	return "concat_" + promSanitize(name) + "_total", ""
}

// promHist maps one internal histogram name to (family, label).
func promHist(name string) (family, label string) {
	if fam, lbl, ok := splitLabeled(name); ok {
		return "concat_" + promSanitize(fam) + "_seconds", lbl
	}
	if rest, ok := strings.CutPrefix(name, "mutant.kill-latency."); ok {
		return "concat_mutant_kill_latency_seconds", fmt.Sprintf("operator=%q", rest)
	}
	return "concat_" + promSanitize(name) + "_seconds", ""
}

// promLE renders a microsecond bound as a Prometheus le= seconds value.
func promLE(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// joinLabels merges label fragments into a {...} selector, or "".
func joinLabels(labels ...string) string {
	var parts []string
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// EscapeHelp escapes a HELP line's docstring per the text exposition
// format: backslash and line feed become \\ and \n (quotes are not special
// in HELP text).
func EscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promHelp documents the well-known families; unknown families fall back to
// a generic line naming the internal metric.
var promHelp = map[string]string{
	"concat_case_outcome_total":            "Test-case outcomes by verdict across every run this process executed.",
	"concat_mutant_kills_total":            "Mutants killed, by the oracle reason that caught them.",
	"concat_job_outcome_total":             "Campaign-service jobs reaching a terminal state, by state.",
	"concat_mutant_kill_latency_seconds":   "Wall-clock time from mutant start to its killing verdict, by operator.",
	"concat_http_requests_total":           "HTTP requests served, by route pattern, method and status code.",
	"concat_http_request_duration_seconds": "HTTP request latency by route pattern and method.",
	"concat_store_get_duration_seconds":    "Verdict-store read-path latency as observed by the campaign service.",
}

// PromFamilyHeader renders the HELP and TYPE header lines introducing one
// metric family, with the help text escaped for the exposition format. An
// empty help falls back to the well-known-family table or a generic line.
func PromFamilyHeader(family, kind, help string) string {
	if help == "" {
		help = promHelp[family]
	}
	if help == "" {
		help = "Internal concat metric " + family + "."
	}
	return fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", family, EscapeHelp(help), family, kind)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter as a *_total family, every duration
// histogram as a *_seconds histogram with cumulative le buckets. Families
// are emitted in sorted order with one HELP and one TYPE header each.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	typed := make(map[string]bool)
	header := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			b.WriteString(PromFamilyHeader(family, kind, ""))
		}
	}

	counters := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		counters = append(counters, k)
	}
	sort.Strings(counters)
	for _, k := range counters {
		family, label := promCounter(k)
		header(family, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", family, joinLabels(label), s.Counters[k])
	}

	hists := make([]string, 0, len(s.Durations))
	for k := range s.Durations {
		hists = append(hists, k)
	}
	sort.Strings(hists)
	for _, k := range hists {
		family, label := promHist(k)
		header(family, "histogram")
		h := s.Durations[k]
		var cum int64
		for _, bound := range histBounds {
			cum += h.Buckets[bucketLabel(bound)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				family, joinLabels(label, fmt.Sprintf("le=%q", promLE(bound))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", family, joinLabels(label, `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", family, joinLabels(label),
			strconv.FormatFloat(float64(h.SumUS)/1e6, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count%s %d\n", family, joinLabels(label), h.Count)
	}

	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: writing prometheus metrics: %w", err)
	}
	return nil
}
