package tspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"concat/internal/core/canon"
	"concat/internal/domain"
)

// The JSON wire form of a spec is an alternative to the Figure 3 text
// notation for tooling that prefers structured data (editors, registries).
// Both forms are lossless; SaveJSON/LoadJSON round-trip, property-tested
// against the text round trip.

type specJSON struct {
	Class              classJSON  `json:"class"`
	Attributes         []attrJSON `json:"attributes,omitempty"`
	Methods            []methJSON `json:"methods,omitempty"`
	Nodes              []nodeJSON `json:"nodes,omitempty"`
	Edges              []edgeJSON `json:"edges,omitempty"`
	Redefined          []string   `json:"redefined,omitempty"`
	ModifiedAttributes []string   `json:"modifiedAttributes,omitempty"`
}

type classJSON struct {
	Name       string   `json:"name"`
	Abstract   bool     `json:"abstract,omitempty"`
	Superclass string   `json:"superclass,omitempty"`
	Sources    []string `json:"sources,omitempty"`
}

type attrJSON struct {
	Name   string     `json:"name"`
	Domain domainJSON `json:"domain"`
}

type methJSON struct {
	ID       string      `json:"id"`
	Name     string      `json:"name"`
	Return   string      `json:"return,omitempty"`
	Category string      `json:"category"`
	Params   []paramJSON `json:"params,omitempty"`
	Uses     []string    `json:"uses,omitempty"`
}

type paramJSON struct {
	Name   string     `json:"name"`
	Domain domainJSON `json:"domain"`
}

type nodeJSON struct {
	ID      string   `json:"id"`
	Start   bool     `json:"start,omitempty"`
	Methods []string `json:"methods"`
}

type edgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

type domainJSON struct {
	Kind       string         `json:"kind"`
	Lo         *float64       `json:"lo,omitempty"`
	Hi         *float64       `json:"hi,omitempty"`
	Float      bool           `json:"float,omitempty"`
	Members    []domain.Value `json:"members,omitempty"`
	Candidates []string       `json:"candidates,omitempty"`
	MinLen     int            `json:"minLen,omitempty"`
	MaxLen     int            `json:"maxLen,omitempty"`
	TypeName   string         `json:"typeName,omitempty"`
	Nullable   bool           `json:"nullable,omitempty"`
}

func domainToJSON(d DomainDecl) domainJSON {
	out := domainJSON{
		Kind:       d.Kind.String(),
		Float:      d.Float,
		Members:    d.Members,
		Candidates: d.Candidates,
		MinLen:     d.MinLen,
		MaxLen:     d.MaxLen,
		TypeName:   d.TypeName,
		Nullable:   d.Nullable,
	}
	if d.Kind == DomRange {
		lo, hi := d.Lo, d.Hi
		out.Lo, out.Hi = &lo, &hi
	}
	return out
}

func domainFromJSON(j domainJSON) (DomainDecl, error) {
	kind, err := ParseDomainKind(j.Kind)
	if err != nil {
		return DomainDecl{}, err
	}
	d := DomainDecl{
		Kind:       kind,
		Float:      j.Float,
		Members:    j.Members,
		Candidates: j.Candidates,
		MinLen:     j.MinLen,
		MaxLen:     j.MaxLen,
		TypeName:   j.TypeName,
		Nullable:   j.Nullable,
	}
	if kind == DomRange {
		if j.Lo == nil || j.Hi == nil {
			return DomainDecl{}, fmt.Errorf("tspec: range domain missing limits")
		}
		d.Lo, d.Hi = *j.Lo, *j.Hi
	}
	return d, nil
}

// SaveJSON writes the spec in its JSON wire form.
func (s *Spec) SaveJSON(w io.Writer) error {
	out := specJSON{
		Class: classJSON{
			Name:       s.Class.Name,
			Abstract:   s.Class.Abstract,
			Superclass: s.Class.Superclass,
			Sources:    s.Class.Sources,
		},
		Redefined:          s.Redefined,
		ModifiedAttributes: s.ModifiedAttributes,
	}
	for _, a := range s.Attributes {
		out.Attributes = append(out.Attributes, attrJSON{Name: a.Name, Domain: domainToJSON(a.Domain)})
	}
	for _, m := range s.Methods {
		mj := methJSON{
			ID:       m.ID,
			Name:     m.Name,
			Return:   m.Return,
			Category: m.Category.String(),
			Uses:     m.Uses,
		}
		for _, p := range m.Params {
			mj.Params = append(mj.Params, paramJSON{Name: p.Name, Domain: domainToJSON(p.Domain)})
		}
		out.Methods = append(out.Methods, mj)
	}
	for _, n := range s.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON{ID: n.ID, Start: n.Start, Methods: n.Methods})
	}
	for _, e := range s.Edges {
		out.Edges = append(out.Edges, edgeJSON{From: e.From, To: e.To})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("tspec: encoding spec: %w", err)
	}
	return nil
}

// CanonicalHash returns the spec's content address: the hex SHA-256 of its
// canonicalized JSON wire form. It is the spec component of a verdict-store
// key (internal/store) — any change to the spec's methods, domains or model
// moves the hash and invalidates every cached verdict derived from it.
//
// The hash is memoized: mutation campaigns compute it once per mutant
// lookup on the store hot path, and a spec is treated as immutable from its
// first hashing on. Mutate only specs that have not been hashed yet (use
// Clone to get a copy with a fresh memo).
func (s *Spec) CanonicalHash() (string, error) {
	s.canonOnce.Do(func() {
		var buf bytes.Buffer
		if err := s.SaveJSON(&buf); err != nil {
			s.canonErr = err
			return
		}
		s.canonHash, s.canonErr = canon.HashRaw(buf.Bytes())
	})
	return s.canonHash, s.canonErr
}

// LoadJSON reads a spec saved with SaveJSON and validates it. Declared
// parameter counts and node out-degrees are synthesized like the Builder
// does, so the wire form stays minimal.
func LoadJSON(r io.Reader) (*Spec, error) {
	var in specJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("tspec: decoding spec: %w", err)
	}
	s := &Spec{
		Class: Class{
			Name:       in.Class.Name,
			Abstract:   in.Class.Abstract,
			Superclass: in.Class.Superclass,
			Sources:    in.Class.Sources,
		},
		Redefined:          in.Redefined,
		ModifiedAttributes: in.ModifiedAttributes,
	}
	for _, a := range in.Attributes {
		d, err := domainFromJSON(a.Domain)
		if err != nil {
			return nil, fmt.Errorf("tspec: attribute %q: %w", a.Name, err)
		}
		s.Attributes = append(s.Attributes, Attribute{Name: a.Name, Domain: d})
	}
	for _, mj := range in.Methods {
		cat, err := ParseCategory(mj.Category)
		if err != nil {
			return nil, fmt.Errorf("tspec: method %q: %w", mj.ID, err)
		}
		m := Method{ID: mj.ID, Name: mj.Name, Return: mj.Return, Category: cat, Uses: mj.Uses}
		for _, p := range mj.Params {
			d, err := domainFromJSON(p.Domain)
			if err != nil {
				return nil, fmt.Errorf("tspec: parameter %q of %s: %w", p.Name, mj.ID, err)
			}
			m.Params = append(m.Params, Param{Name: p.Name, Domain: d})
		}
		m.DeclaredParams = len(m.Params)
		s.Methods = append(s.Methods, m)
	}
	outDeg := map[string]int{}
	for _, e := range in.Edges {
		s.Edges = append(s.Edges, EdgeDecl{From: e.From, To: e.To})
		outDeg[e.From]++
	}
	for _, n := range in.Nodes {
		s.Nodes = append(s.Nodes, NodeDecl{ID: n.ID, Start: n.Start, Methods: n.Methods, OutDeg: outDeg[n.ID]})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
