package core

import (
	"bytes"
	"strings"
	"testing"

	"concat/internal/components/account"
	"concat/internal/components/oblist"
	"concat/internal/components/product"
	"concat/internal/components/sortlist"
	"concat/internal/driver"
	"concat/internal/testexec"
)

func TestTargetsComplete(t *testing.T) {
	targets := Targets()
	for _, name := range []string{account.Name, oblist.Name, sortlist.Name, product.Name} {
		tgt, ok := targets[name]
		if !ok {
			t.Fatalf("target %q missing", name)
		}
		comp := tgt.New(nil)
		if comp.Factory.Name() != name {
			t.Errorf("factory for %q builds %q", name, comp.Factory.Name())
		}
		if err := comp.Spec().Validate(); err != nil {
			t.Errorf("spec for %q invalid: %v", name, err)
		}
	}
}

func TestLookupTarget(t *testing.T) {
	if _, err := LookupTarget("Nope"); err == nil {
		t.Error("unknown target should fail")
	}
	tgt, err := LookupTarget(account.Name)
	if err != nil || tgt.Name != account.Name {
		t.Errorf("LookupTarget = %+v, %v", tgt, err)
	}
}

func TestRegistryHasAllBuiltins(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 7 {
		t.Errorf("registry names = %v", names)
	}
}

func TestSelfTestWorkflow(t *testing.T) {
	for name, tgt := range Targets() {
		t.Run(name, func(t *testing.T) {
			comp := tgt.New(nil)
			suite, report, err := comp.SelfTest(
				driver.Options{Seed: 21, ExpandAlternatives: true, MaxAlternatives: 3},
				testexec.Options{},
			)
			if err != nil {
				t.Fatalf("SelfTest: %v", err)
			}
			if len(suite.Cases) == 0 {
				t.Fatal("no cases generated")
			}
			if !report.AllPassed() {
				t.Fatalf("failures: %+v", report.Failures()[:1])
			}
			h := comp.History(suite)
			if len(h.Entries) != len(suite.Cases) {
				t.Errorf("history entries = %d", len(h.Entries))
			}
		})
	}
}

func TestSelfTestInvalidOptions(t *testing.T) {
	comp := Targets()[account.Name].New(nil)
	// A broken generation option set: criterion unknown.
	_, _, err := comp.SelfTest(driver.Options{Criterion: 99}, testexec.Options{})
	if err == nil {
		t.Error("unknown criterion should fail")
	}
}

func TestDeriveSubclassWorkflow(t *testing.T) {
	parent := Targets()[oblist.Name].New(nil)
	child := Targets()[sortlist.Name].New(nil)
	opts := driver.Options{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 3}
	parentSuite, err := parent.GenerateSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeriveSubclass(parent, child, parentSuite, opts)
	if err != nil {
		t.Fatalf("DeriveSubclass: %v", err)
	}
	if d.NumNew == 0 || d.NumReused == 0 {
		t.Errorf("derived = new %d reused %d", d.NumNew, d.NumReused)
	}
	rep, err := child.RunSuite(d.Suite, testexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("derived suite failures: %+v", rep.Failures()[:1])
	}
}

func TestMutationRunWorkflow(t *testing.T) {
	comp := Targets()[account.Name].New(nil)
	suite, err := comp.GenerateSuite(driver.Options{Seed: 5, ExpandAlternatives: true, MaxAlternatives: 4})
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	res, err := MutationRun(account.Name, suite, nil, &progress)
	if err != nil {
		t.Fatalf("MutationRun: %v", err)
	}
	if len(res.Mutants) == 0 {
		t.Fatal("no mutants analyzed")
	}
	table := res.Tabulate()
	if table.Total.Killed == 0 {
		t.Error("account suite should kill some withdraw mutants")
	}
	if !strings.Contains(progress.String(), "killed") {
		t.Error("progress output missing verdicts")
	}
}

func TestMutationRunErrors(t *testing.T) {
	if _, err := MutationRun("Nope", nil, nil, nil); err == nil {
		t.Error("unknown target should fail")
	}
	comp := Targets()[product.Name].New(nil)
	suite, err := comp.GenerateSuite(driver.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MutationRun(product.Name, suite, nil, nil); err == nil {
		t.Error("uninstrumented component should fail")
	}
	// Suite/target mismatch surfaces from the reference run.
	if _, err := MutationRun(account.Name, suite, nil, nil); err == nil {
		t.Error("mismatched suite should fail")
	}
}
