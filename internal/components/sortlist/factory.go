package sortlist

import (
	"fmt"
	"io"
	"sync"

	"concat/internal/component"
	"concat/internal/components/oblist"
	"concat/internal/domain"
	"concat/internal/mutation"
	"concat/internal/tspec"
)

// Name is the component (class) name.
const Name = "SortableObList"

// Instance adapts a SortableObList to the component runtime.
type Instance struct {
	*SortableObList
	disp      component.Dispatcher
	destroyed bool
}

var _ component.Instance = (*Instance)(nil)

// NewInstance wraps a sortable list for the test runtime: the inherited
// method set is wired first, then the subclass's redefinitions and new
// methods replace/extend it — the dispatch analog of C++ overriding.
func NewInstance(s *SortableObList) *Instance {
	inst := &Instance{SortableObList: s}
	oblist.RegisterListMethods(&inst.disp, s.List())
	// Redefined mutators: same contract, subclass implementation.
	inst.disp.Register("SetAt", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("SetAt", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, s.SetAt(args[0].MustInt(), args[1])
	})
	inst.disp.Register("InsertBefore", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("InsertBefore", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, s.InsertBefore(args[0].MustInt(), args[1])
	})
	inst.disp.Register("InsertAfter", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("InsertAfter", args, domain.KindInt, domain.KindInt); err != nil {
			return nil, err
		}
		return nil, s.InsertAfter(args[0].MustInt(), args[1])
	})
	// New methods.
	inst.disp.Register("Sort1", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Sort1", args); err != nil {
			return nil, err
		}
		return nil, s.Sort1()
	})
	inst.disp.Register("Sort2", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("Sort2", args); err != nil {
			return nil, err
		}
		return nil, s.Sort2()
	})
	inst.disp.Register("ShellSort", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("ShellSort", args); err != nil {
			return nil, err
		}
		return nil, s.ShellSort()
	})
	inst.disp.Register("FindMax", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("FindMax", args); err != nil {
			return nil, err
		}
		v, err := s.FindMax()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	inst.disp.Register("FindMin", func(args []domain.Value) ([]domain.Value, error) {
		if err := component.WantArgs("FindMin", args); err != nil {
			return nil, err
		}
		v, err := s.FindMin()
		if err != nil {
			return nil, err
		}
		return []domain.Value{v}, nil
	})
	return inst
}

// Invoke implements component.Instance.
func (i *Instance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if i.destroyed {
		return nil, fmt.Errorf("%w: %s", component.ErrDestroyed, Name)
	}
	return i.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (i *Instance) Destroy() error {
	i.RemoveAll()
	i.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable: the inherited structural
// invariant plus the subclass's modification-counter consistency.
func (i *Instance) InvariantTest() error {
	if err := i.Guard(); err != nil {
		return err
	}
	if err := i.CheckInvariant(); err != nil {
		return err
	}
	return nil
}

// Reporter implements bit.SelfTestable.
func (i *Instance) Reporter(w io.Writer) error {
	if err := i.Guard(); err != nil {
		return err
	}
	return i.WriteReport(w, Name)
}

// Factory builds SortableObList instances.
type Factory struct {
	eng *mutation.Engine
}

var _ component.Factory = (*Factory)(nil)

// NewFactory returns a production factory.
func NewFactory() *Factory { return &Factory{} }

// NewFactoryWithEngine attaches a mutation engine to all built instances.
func NewFactoryWithEngine(eng *mutation.Engine) *Factory { return &Factory{eng: eng} }

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory.
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	switch ctor {
	case "SortableObList":
		if err := component.WantArgs(ctor, args); err != nil {
			return nil, err
		}
		return NewInstance(NewSortableObList(10, f.eng)), nil
	case "SortableObListSized":
		if err := component.WantArgs(ctor, args, domain.KindInt); err != nil {
			return nil, err
		}
		return NewInstance(NewSortableObList(args[0].MustInt(), f.eng)), nil
	default:
		return nil, fmt.Errorf("sortlist: unknown constructor %q", ctor)
	}
}

var specOnce = sync.OnceValue(buildSpec)

// Spec returns the component's embedded t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

// buildSpec declares the subclass interface: the inherited CObList methods
// (same node IDs as the parent model, so shared transactions carry the same
// keys and parent test cases can be matched for reuse), the three redefined
// mutators, and the five new methods on two new nodes.
func buildSpec() *tspec.Spec {
	elem := tspec.RangeInt(0, 999)
	idx := tspec.RangeInt(0, 5)
	return tspec.NewBuilder(Name).
		Extends(oblist.Name).
		Attribute("count", tspec.RangeInt(0, 1_000_000)).
		Attribute("blockSize", tspec.RangeInt(1, 1_000)).
		Attribute("mods", tspec.RangeInt(0, 1_000_000)). // new in the subclass
		Method("m1", "SortableObList", "", tspec.CatConstructor).
		Method("m2", "SortableObListSized", "", tspec.CatConstructor).
		Param("blockSize", tspec.RangeInt(1, 64)).
		Uses("blockSize").
		Method("m3", "~SortableObList", "", tspec.CatDestructor).
		Method("m4", "AddHead", "", tspec.CatUpdate).
		Param("v", elem).
		Uses("count").
		Method("m5", "AddTail", "", tspec.CatUpdate).
		Param("v", elem).
		Uses("count").
		Method("m6", "RemoveHead", "int", tspec.CatUpdate).
		Uses("count").
		Method("m7", "RemoveTail", "int", tspec.CatUpdate).
		Uses("count").
		Method("m8", "GetHead", "int", tspec.CatAccess).
		Method("m9", "GetTail", "int", tspec.CatAccess).
		Method("m10", "GetCount", "int", tspec.CatAccess).
		Uses("count").
		Method("m11", "IsEmpty", "bool", tspec.CatAccess).
		Uses("count").
		Method("m12", "GetAt", "int", tspec.CatAccess).
		Param("i", idx).
		Method("m13", "SetAt", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Uses("mods").
		Method("m14", "RemoveAt", "int", tspec.CatUpdate).
		Param("i", idx).
		Uses("count").
		Method("m15", "InsertBefore", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Uses("count", "mods").
		Method("m16", "InsertAfter", "", tspec.CatUpdate).
		Param("i", idx).
		Param("v", elem).
		Uses("count", "mods").
		Method("m17", "Find", "int", tspec.CatAccess).
		Param("v", elem).
		Method("m18", "RemoveAll", "", tspec.CatUpdate).
		Uses("count").
		// New methods of the subclass (experiment 1 targets).
		Method("m19", "Sort1", "", tspec.CatUpdate).
		Uses("count").
		Method("m20", "Sort2", "", tspec.CatUpdate).
		Uses("count").
		Method("m21", "ShellSort", "", tspec.CatUpdate).
		Uses("count").
		Method("m22", "FindMax", "int", tspec.CatAccess).
		Method("m23", "FindMin", "int", tspec.CatAccess).
		Redefines("SetAt", "InsertBefore", "InsertAfter").
		// Transaction flow model: the parent's shape (same node IDs) plus
		// n11 (sorts) and n12 (finds).
		Node("n1", true, "m1", "m2").
		Node("n2", false, "m4", "m5").
		Node("n3", false, "m6", "m7").
		Node("n4", false, "m8", "m9", "m10", "m11").
		Node("n5", false, "m12", "m17").
		Node("n6", false, "m13").
		Node("n7", false, "m15", "m16").
		Node("n8", false, "m14").
		Node("n9", false, "m18").
		Node("n10", false, "m3").
		Node("n11", false, "m19", "m20", "m21").
		Node("n12", false, "m22", "m23").
		Edge("n1", "n2").
		Edge("n1", "n4").
		Edge("n1", "n10").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n5").
		Edge("n2", "n6").
		Edge("n2", "n7").
		Edge("n2", "n8").
		Edge("n2", "n9").
		Edge("n3", "n4").
		Edge("n3", "n10").
		Edge("n5", "n6").
		Edge("n5", "n10").
		Edge("n6", "n8").
		Edge("n6", "n10").
		Edge("n7", "n8").
		Edge("n8", "n9").
		Edge("n8", "n4").
		Edge("n8", "n10").
		Edge("n9", "n10").
		Edge("n4", "n10").
		// Subclass additions. The sorting use cases the subclass exists for
		// are create -> populate -> sort/find -> inspect -> destroy; they do
		// not interleave with the positional update/remove activities, which
		// keeps the inherited interaction transactions in the skip class —
		// the situation experiment 2 (Table 3) measures.
		Edge("n2", "n11").
		Edge("n2", "n12").
		Edge("n11", "n4").
		Edge("n11", "n5").
		Edge("n11", "n12").
		Edge("n11", "n10").
		Edge("n12", "n4").
		Edge("n12", "n10").
		MustBuild()
}
