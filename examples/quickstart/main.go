// Quickstart: the consumer workflow of §3.1 on a built-in self-testable
// component. The component (a bank account) carries its own t-spec and
// built-in test capabilities; the consumer generates test cases from the
// embedded specification, compiles the component "in test mode" (here: the
// BIT mode switch), executes, and analyzes the results.
package main

import (
	"fmt"
	"os"
	"strings"

	"concat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Pick a self-testable component. Its specification travels with it.
	comp := concat.Target("Account")
	if comp == nil {
		return fmt.Errorf("Account component not registered")
	}
	spec := comp.Spec()
	fmt.Printf("component %s: %d attributes, %d methods\n",
		spec.Class.Name, len(spec.Attributes), len(spec.Methods))

	// 2. The embedded t-spec is ordinary text (Figure 3 notation); a
	// consumer can read it to understand what the component promises.
	text := concat.FormatSpec(spec)
	fmt.Printf("\nembedded t-spec (first lines):\n%s...\n",
		strings.Join(strings.SplitN(text, "\n", 6)[:5], "\n"))

	// 3. Generate an executable suite from the t-spec: one test case per
	// transaction (all-transactions coverage), arguments drawn from the
	// declared parameter domains.
	suite, err := concat.Generate(spec, concat.GenOptions{
		Seed:               42,
		ExpandAlternatives: true,
		MaxAlternatives:    4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ngenerated %s\n", suite.Stats())
	tc := suite.Cases[0]
	fmt.Printf("first case %s exercises transaction %s:\n", tc.ID, tc.Transaction)
	for _, call := range tc.Calls {
		fmt.Printf("  %s\n", call.Method)
	}

	// 4. Execute. The harness puts the object in test mode, checks the
	// class invariant before and after every call, and captures the
	// reporter dump — the paper's built-in partial oracle at work.
	var log strings.Builder
	report, err := comp.RunSuite(suite, concat.ExecOptions{LogWriter: &log})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n", report.Summary())
	fmt.Printf("log (Result.txt style, first lines):\n%s\n",
		strings.Join(strings.SplitN(log.String(), "\n", 4)[:3], "\n"))

	// 5. The suite is data: save it, reload it, rerun it — the test history
	// a self-testable component accumulates.
	h := comp.History(suite)
	fmt.Printf("test history: %d entries, e.g. %s -> %v\n",
		len(h.Entries), h.Entries[0].CaseID, h.Entries[0].Methods)

	if !report.AllPassed() {
		return fmt.Errorf("self-test failed")
	}
	fmt.Println("\nself-test passed: the component behaves as its specification demands")
	return nil
}
