package component

import "concat/internal/domain"

// StateSettable is the optional set/reset capability of the paper's §3.3:
// "A set/reset method could also be defined, to set an object to a
// predefined internal state, independent of the object's current state."
// The paper's study does not use it (each transaction constructs and
// destroys its object); it is provided as the documented extension, and —
// like every BIT service — implementations must gate it behind the BIT
// access control (return bit.ErrBITDisabled outside test mode).
//
// State keys are the component's t-spec attribute names; the value kinds
// must match the declared attribute domains. Components with aggregate
// state document their own convention (e.g. the list components accept the
// key "items" carrying a domain.Object wrapping []domain.Value).
type StateSettable interface {
	// SetTestState forces the object into the given state, bypassing the
	// normal method protocol. The object must satisfy its class invariant
	// afterwards; implementations return the invariant violation otherwise.
	SetTestState(state map[string]domain.Value) error
	// ResetTestState returns the object to its post-construction state.
	ResetTestState() error
}
