package mutation

import (
	"bytes"
	"encoding/json"
	"testing"

	"concat/internal/domain"
)

func sampleMutants() []Mutant {
	return []Mutant{
		{ID: "Withdraw/amount.use1#IndVarBitNeg", Site: "Withdraw/amount.use1", Method: "Withdraw", Operator: OpBitNeg},
		{ID: "Withdraw/amount.use1#IndVarRepLoc:fee", Site: "Withdraw/amount.use1", Method: "Withdraw", Operator: OpRepLoc, Replacement: "fee"},
		{ID: "Sort1/min.use1#IndVarRepReq:0", Site: "Sort1/min.use1", Method: "Sort1", Operator: OpRepReq, Replacement: "0", Constant: domain.Int(0)},
		{ID: "Sort1/min.use1#IndVarRepReq:maxint", Site: "Sort1/min.use1", Method: "Sort1", Operator: OpRepReq, Replacement: "maxint", Constant: domain.Int(1<<63 - 1)},
	}
}

// TestMutantCanonicalRoundTrip is the store's identity contract: canonical
// encode -> decode -> canonical encode is byte-identical, so a mutant that
// travelled through JSON (subprocess isolation, the verdict store) hashes
// the same as the in-memory original.
func TestMutantCanonicalRoundTrip(t *testing.T) {
	for _, m := range sampleMutants() {
		first, err := m.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", m.ID, err)
		}
		var back Mutant
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("%s: decoding canonical form: %v", m.ID, err)
		}
		second, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", m.ID, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: canonical round trip drifted:\n%s\n%s", m.ID, first, second)
		}
		h1, err := m.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash changed across round trip", m.ID)
		}
	}
}

// TestMutantHashDistinguishesIdentity: any component of a mutant's identity
// moves the hash.
func TestMutantHashDistinguishesIdentity(t *testing.T) {
	base := Mutant{ID: "m", Site: "s", Method: "M", Operator: OpRepLoc, Replacement: "x"}
	seen := map[string]string{}
	variants := map[string]Mutant{
		"base":        base,
		"site":        {ID: "m", Site: "s2", Method: "M", Operator: OpRepLoc, Replacement: "x"},
		"operator":    {ID: "m", Site: "s", Method: "M", Operator: OpRepGlob, Replacement: "x"},
		"replacement": {ID: "m", Site: "s", Method: "M", Operator: OpRepLoc, Replacement: "y"},
		"constant":    {ID: "m", Site: "s", Method: "M", Operator: OpRepReq, Replacement: "x", Constant: domain.Int(7)},
	}
	for name, m := range variants {
		h, err := m.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, ph := range seen {
			if ph == h {
				t.Errorf("variants %s and %s collide", prev, name)
			}
		}
		seen[name] = h
	}
}
