package tspec

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's robustness contract: arbitrary input never
// panics, and any input that parses AND validates must round-trip through
// Format into an equivalent spec. Run with `go test -fuzz FuzzParse` for a
// real campaign; the seed corpus runs in ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"Class('A', No, <empty>, <empty>)",
		productSpecText,
		"Class('A', Yes, 'B', ['x.cpp'])\nMethod(m1, 'A', <empty>, constructor, 0)",
		"Attribute('x', range, 1, 2)",
		"Node(n1, Yes, 0, [])",
		"Class('A', No, <empty>, <empty>) Attribute('s', string, ['a','b'])",
		"Class('A', No, <empty>, <empty>) Attribute('s', set, [1, 2.5, 'x'])",
		"// just a comment",
		"/* unterminated",
		"Class('q\\'q', No, <empty>, <empty>)",
		"Class(\x00, No, <empty>, <empty>)",
		strings.Repeat("Edge(n1, n2)\n", 50),
		"Class('A', No, <empty>, <empty>) Uses(m1, ['a'])",
		"Class('A', No, <empty>, <empty>) Redefined(['X']) ModifiedAttributes(['y'])",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if spec.Validate() != nil {
			return
		}
		var sb strings.Builder
		if err := spec.Format(&sb); err != nil {
			t.Fatalf("valid spec failed to format: %v", err)
		}
		back, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("formatted spec does not re-parse: %v\n%s", err, sb.String())
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped spec invalid: %v", err)
		}
		if back.Class.Name != spec.Class.Name ||
			len(back.Methods) != len(spec.Methods) ||
			len(back.Attributes) != len(spec.Attributes) ||
			len(back.Nodes) != len(spec.Nodes) ||
			len(back.Edges) != len(spec.Edges) {
			t.Fatalf("round trip changed the spec shape:\noriginal: %s\nback: %s", spec, back)
		}
	})
}
