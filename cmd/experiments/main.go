// Command experiments regenerates every table and figure of the paper's
// evaluation, printing paper-vs-measured numbers. With no flags it runs the
// full set; individual artifacts are selected with flags.
//
// Usage:
//
//	experiments [-table1] [-figure2] [-figure3] [-figure6] [-counts]
//	            [-table2] [-table3] [-baseline] [-ablations] [-seed N]
//	            [-cache-dir DIR] [-cover-dir DIR] [-v]
//
// With -cache-dir, mutant verdicts are replayed from the content-addressed
// store when the (spec, suite, mutant, seed, options) fingerprint matches a
// prior campaign; warm reruns print byte-identical tables.
//
// With -cover-dir, each tabulated campaign also writes its canonical
// coverage artifact (experiment1.json, experiment2.json,
// experiment2-baseline.json) — transaction coverage, BIT assertion
// telemetry, kill matrix, per-operator oracle attribution — and prints the
// transaction-coverage summary under its table. Render the artifacts with
// `concat cover`.
//
// # Exit codes
//
//	0  every tabulated campaign killed or proved equivalent all its mutants
//	1  an experiment failed to run
//	2  the experiments ran to completion, but non-equivalent mutants
//	   survived (the paper's own Tables 2-3 numbers leave survivors, so
//	   this is the expected status for -table2/-table3 runs)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/experiments"
	"concat/internal/obs"
	"concat/internal/store"
	"concat/internal/testexec"
)

func main() {
	// Serve a single isolated case and exit when spawned as a case server
	// (the -isolate campaigns re-execute this binary).
	core.MaybeServeCase()
	var (
		table1    = flag.Bool("table1", false, "print Table 1 (the interface mutation operators)")
		figure2   = flag.Bool("figure2", false, "print Figure 2 (Product TFM as DOT, use case highlighted)")
		figure3   = flag.Bool("figure3", false, "print Figure 3 (Product t-spec)")
		figure6   = flag.Bool("figure6", false, "print Figures 6-7 (generated Go driver for Product)")
		counts    = flag.Bool("counts", false, "print the §4 test-set size counts")
		table2    = flag.Bool("table2", false, "run experiment 1 (Table 2)")
		table3    = flag.Bool("table3", false, "run experiment 2 (Table 3)")
		baseline  = flag.Bool("baseline", false, "run the experiment-2 baseline (base suite vs base mutants)")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		seed      = flag.Int64("seed", 42, "generation seed")
		parallel  = flag.Int("parallel", 0, "mutation-campaign workers (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		isolate   = flag.Bool("isolate", false, "run every case in a crash-contained child process; results are identical to in-process runs")
		poolMode  = flag.Bool("pool", false, "crash-contained execution on a pool of warm workers with batched dispatch; results are identical to in-process runs")
		verbose   = flag.Bool("v", false, "print per-mutant verdicts")
		tracePath = flag.String("trace", "", "write NDJSON trace spans to this file; tables are byte-identical either way")
		metrics   = flag.String("metrics", "", "write an aggregated metrics snapshot (JSON) to this file")
		cacheDir  = flag.String("cache-dir", "", "content-addressed verdict store directory; warm reruns replay cached verdicts and print byte-identical tables")
		coverDir  = flag.String("cover-dir", "", "write each tabulated campaign's canonical coverage artifact into this directory")
	)
	flag.Parse()

	all := !(*table1 || *figure2 || *figure3 || *figure6 || *counts ||
		*table2 || *table3 || *baseline || *ablations)

	if err := run(os.Stdout, selection{
		all: all, table1: *table1, figure2: *figure2, figure3: *figure3,
		figure6: *figure6, counts: *counts, table2: *table2, table3: *table3,
		baseline: *baseline, ablations: *ablations, seed: *seed,
		parallel: *parallel, isolate: *isolate, pool: *poolMode, verbose: *verbose,
		tracePath: *tracePath, metricsPath: *metrics, cacheDir: *cacheDir,
		coverDir: *coverDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, errSurvivors) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errSurvivors marks a run whose tables are complete but whose mutation
// campaigns left non-equivalent survivors; main maps it to exit code 2 so
// scripted callers can distinguish "gaps in the test set" from "broken run".
var errSurvivors = errors.New("mutants survived")

type selection struct {
	all, table1, figure2, figure3, figure6      bool
	counts, table2, table3, baseline, ablations bool
	seed                                        int64
	parallel                                    int
	isolate, pool                               bool
	verbose                                     bool
	tracePath, metricsPath, cacheDir            string
	coverDir                                    string
}

// writeCoverage encodes a campaign's coverage artifact into dir/name and
// prints its one-line transaction-coverage summary under the table.
func writeCoverage(w io.Writer, dir, name string, art *cover.Artifact, err error) error {
	if err != nil {
		return err
	}
	enc, err := art.Encode()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return fmt.Errorf("writing coverage artifact: %w", err)
	}
	fmt.Fprintf(w, "%s -> %s\n", art.Suite.Summary(), path)
	return nil
}

func run(w io.Writer, sel selection) (err error) {
	cfg := experiments.Default()
	cfg.Seed = sel.seed
	cfg.ParentOpts.Seed = sel.seed
	cfg.ChildOpts.Seed = sel.seed
	cfg.Parallelism = sel.parallel
	if sel.pool {
		cfg.Isolation = testexec.IsolatePool
	} else if sel.isolate {
		cfg.Isolation = testexec.IsolateSubprocess
	}
	if sel.cacheDir != "" {
		st, serr := store.Open(sel.cacheDir)
		if serr != nil {
			return fmt.Errorf("opening verdict store: %w", serr)
		}
		cfg.Store = st
	}
	if sel.tracePath != "" {
		f, cerr := os.Create(sel.tracePath)
		if cerr != nil {
			return fmt.Errorf("creating trace file: %w", cerr)
		}
		cfg.Trace = obs.NewTracer(f)
		defer func() {
			if terr := cfg.Trace.Err(); terr != nil && err == nil {
				err = terr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if sel.metricsPath != "" {
		cfg.Metrics = obs.NewMetrics()
		defer func() {
			f, cerr := os.Create(sel.metricsPath)
			if cerr != nil {
				if err == nil {
					err = fmt.Errorf("creating metrics file: %w", cerr)
				}
				return
			}
			if werr := cfg.Metrics.Snapshot().WriteJSON(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	var progress io.Writer
	if sel.verbose {
		progress = w
	}

	section := func(title string) {
		fmt.Fprintf(w, "\n——— %s ———\n\n", title)
	}

	if sel.all || sel.table1 {
		section("Table 1: interface mutation operators")
		experiments.Table1(w)
	}
	if sel.all || sel.figure2 {
		section("Figure 2: TFM of class Product (DOT; use-case path highlighted)")
		if err := experiments.Figure2(w); err != nil {
			return err
		}
	}
	if sel.all || sel.figure3 {
		section("Figure 3: t-spec of class Product")
		if err := experiments.Figure3(w); err != nil {
			return err
		}
	}
	if sel.all || sel.figure6 {
		section("Figures 6-7: generated driver for class Product (Go source)")
		if err := experiments.Figure6(w, sel.seed); err != nil {
			return err
		}
	}

	needSetup := sel.all || sel.counts || sel.table2 || sel.table3 || sel.baseline || sel.ablations
	if !needSetup {
		return nil
	}
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		return err
	}

	// The tabulated campaigns report how many non-equivalent mutants outlived
	// their test sets; the total decides the exit-code contract.
	survivors := 0

	if sel.all || sel.counts {
		section("§4 test-set sizes")
		c, err := setup.Counts()
		if err != nil {
			return err
		}
		c.Render(w)
	}
	if sel.all || sel.table2 {
		section("Table 2: experiment 1 — mutants in the SortableObList methods, full subclass suite")
		res, err := setup.Experiment1(progress)
		if err != nil {
			return err
		}
		table := res.Tabulate()
		if err := table.Render(w); err != nil {
			return err
		}
		if sel.coverDir != "" {
			art, aerr := setup.ChildCoverage(res)
			if err := writeCoverage(w, sel.coverDir, "experiment1.json", art, aerr); err != nil {
				return err
			}
		}
		survivors += table.Total.Mutants - table.Total.Killed - table.Total.Equivalent
		fmt.Fprintf(w, "(paper: 700 mutants, 652 killed, 19 equivalent, total score 95.7%%; 59 kills by assertion)\n")
	}
	if sel.all || sel.table3 {
		section("Table 3: experiment 2 — mutants in the inherited ObList methods, reduced subclass suite")
		res, err := setup.Experiment2(progress)
		if err != nil {
			return err
		}
		table := res.Tabulate()
		if err := table.Render(w); err != nil {
			return err
		}
		if sel.coverDir != "" {
			art, aerr := setup.ChildCoverage(res)
			if err := writeCoverage(w, sel.coverDir, "experiment2.json", art, aerr); err != nil {
				return err
			}
		}
		survivors += table.Total.Mutants - table.Total.Killed - table.Total.Equivalent
		fmt.Fprintf(w, "(paper: 159 mutants, 101 killed, 0 equivalent, total score 63.5%%)\n")
	}
	if sel.all || sel.baseline {
		section("Experiment 2 baseline: same base-class mutants under ObList's own full suite")
		res, err := setup.Experiment2Baseline(progress)
		if err != nil {
			return err
		}
		table := res.Tabulate()
		if err := table.Render(w); err != nil {
			return err
		}
		if sel.coverDir != "" {
			art, aerr := setup.ParentCoverage(res)
			if err := writeCoverage(w, sel.coverDir, "experiment2-baseline.json", art, aerr); err != nil {
				return err
			}
		}
		survivors += table.Total.Mutants - table.Total.Killed - table.Total.Equivalent
		fmt.Fprintf(w, "(not tabulated in the paper; the Table 3 shortfall below this score is the cost of skipping inherited-only transactions)\n")
	}
	if sel.all || sel.ablations {
		section("Ablation: oracle ingredients (DESIGN.md §5.3)")
		oa, err := setup.RunOracleAblation()
		if err != nil {
			return err
		}
		oa.Render(w)

		section("Ablation: transaction enumeration loop bound (DESIGN.md §5.2)")
		lbs, err := setup.RunLoopBoundAblation([]int{1, 2, 3})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %-8s %s\n", "loop bound", "cases", "experiment-1 score")
		for _, lb := range lbs {
			fmt.Fprintf(w, "  %-10d %-8d %5.1f%%\n", lb.LoopBound, lb.Cases, lb.Score*100)
		}

		section("Ablation: test-model scaling — TFM vs FSM (the §3.2 claim)")
		ms, err := experiments.RunModelScaling([]int{2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-9s %-11s %-16s %-10s %-24s %s\n",
			"capacity", "FSM states", "FSM transitions", "FSM tests", "TFM nodes/links (fixed)", "TFM tests (fixed)")
		for _, r := range ms {
			fmt.Fprintf(w, "  %-9d %-11d %-16d %-10d %-24s %d\n",
				r.Capacity, r.FSMStates, r.FSMTransitions, r.FSMTests,
				fmt.Sprintf("%d/%d", r.TFMNodes, r.TFMEdges), r.TFMTests)
		}

		section("Ablation: coverage criterion (all-transactions vs all-links vs all-nodes)")
		cas, err := experiments.RunCriterionAblation(sel.seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-18s %-8s %s\n", "criterion", "cases", "base-mutant kill score")
		for _, ca := range cas {
			fmt.Fprintf(w, "  %-18s %-8d %5.1f%%\n", ca.Criterion, ca.Cases, ca.Score*100)
		}
	}
	if survivors > 0 {
		return fmt.Errorf("%d non-equivalent %w the tabulated test sets", survivors, errSurvivors)
	}
	return nil
}
