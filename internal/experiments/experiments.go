// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) plus the worked artifacts of §3 (Figures 2-7). Each
// experiment is a function returning structured results; cmd/experiments
// renders them and the repository benchmarks regenerate them under
// `go test -bench`. The configuration is frozen here so the CLI, the
// benchmarks and EXPERIMENTS.md all describe the same runs.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"concat/internal/analysis"
	"concat/internal/component"
	"concat/internal/components/oblist"
	"concat/internal/components/product"
	"concat/internal/components/sortlist"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/fsm"
	"concat/internal/history"
	"concat/internal/mutation"
	"concat/internal/obs"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tfm"
)

// Config freezes the experiment parameters.
type Config struct {
	// Seed drives all generation; the experiments are fully deterministic.
	Seed int64
	// ParentOpts generate the base-class (ObList) suite.
	ParentOpts driver.Options
	// ChildOpts generate the subclass's own cases during derivation. The
	// child uses loop bound 3 so sort transactions populate the list with
	// several elements before sorting.
	ChildOpts driver.Options
	// Parallelism is the mutation-campaign worker count: each worker holds
	// its own engine (a clone of the campaign's site table) and factory, so
	// mutants execute concurrently with no shared mutable state. Zero means
	// GOMAXPROCS; 1 forces the serial campaign. Any value produces the
	// same tables — parallelism changes wall clock, never results.
	Parallelism int
	// Isolation selects crash containment for every case (reference and
	// mutant): testexec.IsolateSubprocess spawns one child per case,
	// testexec.IsolatePool dispatches batches to warm long-lived workers.
	// The published numbers are identical in every mode; isolation exists
	// so a campaign over components with genuinely fatal mutants survives.
	Isolation testexec.IsolationMode
	// Trace/Metrics, when set, thread the observability side channel through
	// every campaign the setup runs. The published tables are byte-identical
	// with or without them.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// Store, when enabled, is the content-addressed verdict store: mutant
	// verdicts from earlier campaigns over the same (spec, suite, mutant,
	// seed, options) replay without re-execution. Warm runs produce
	// byte-identical tables; only the wall clock changes.
	Store store.Backend
}

// exec builds the campaign's execution options from the frozen config.
func (c Config) exec() testexec.Options {
	return testexec.Options{Isolation: c.Isolation, Trace: c.Trace, Metrics: c.Metrics}
}

// parallelism resolves the configured worker count.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Default returns the configuration every published number in
// EXPERIMENTS.md was produced with.
func Default() Config {
	parent := driver.Options{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4}
	child := parent
	child.Enum = tfm.EnumOptions{LoopBound: 3}
	return Config{Seed: 42, ParentOpts: parent, ChildOpts: child}
}

// Experiment1Methods are the subclass methods mutated in Table 2.
var Experiment1Methods = []string{"Sort1", "Sort2", "ShellSort", "FindMax", "FindMin"}

// Experiment2Methods are the base-class methods mutated in Table 3.
var Experiment2Methods = []string{"AddHead", "RemoveAt", "RemoveHead"}

// Setup is the shared experimental state: the parent suite and the derived
// subclass suite (with its provenance counts).
type Setup struct {
	Config      Config
	ParentSuite *driver.Suite
	Derived     *history.DerivedSuite
}

// NewSetup generates the parent suite and derives the subclass suite.
func NewSetup(cfg Config) (*Setup, error) {
	parentSuite, err := driver.Generate(oblist.Spec(), cfg.ParentOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating parent suite: %w", err)
	}
	d, err := history.Derive(oblist.Spec(), sortlist.Spec(), parentSuite, cfg.ChildOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: deriving subclass suite: %w", err)
	}
	return &Setup{Config: cfg, ParentSuite: parentSuite, Derived: d}, nil
}

// newListEngine builds the engine carrying both the base and subclass sites.
func newListEngine() *mutation.Engine {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(oblist.Sites()...)
	eng.MustRegisterSites(sortlist.Sites()...)
	return eng
}

// sortlistFactory binds a subclass factory to a (worker-scoped) engine.
func sortlistFactory(eng *mutation.Engine) component.Factory {
	return sortlist.NewFactoryWithEngine(eng)
}

// listAnalysis assembles the standard subclass campaign: sortable-list
// objects under the derived suite, workers provisioned as factory-scoped
// engine clones.
func (s *Setup) listAnalysis(progress io.Writer) (*analysis.Analysis, *mutation.Engine) {
	eng := newListEngine()
	return &analysis.Analysis{
		Engine:      eng,
		Factory:     sortlistFactory(eng),
		Suite:       s.Derived.Suite,
		Exec:        s.Config.exec(),
		Progress:    progress,
		Parallelism: s.Config.parallelism(),
		NewFactory:  sortlistFactory,
		Store:       s.Config.Store,
	}, eng
}

// Experiment1 is the paper's first experiment (Table 2): interface mutants
// in the five CSortableObList methods, run under the subclass's full test
// set (new + reused cases).
func (s *Setup) Experiment1(progress io.Writer) (*analysis.Result, error) {
	a, eng := s.listAnalysis(progress)
	return a.Run(eng.Enumerate(nil, Experiment1Methods))
}

// Experiment2 is the paper's second experiment (Table 3): interface mutants
// in the three inherited CObList methods, run under the same reduced
// subclass suite — the inherited-only transactions having been skipped by
// the incremental technique.
func (s *Setup) Experiment2(progress io.Writer) (*analysis.Result, error) {
	a, eng := s.listAnalysis(progress)
	return a.Run(eng.Enumerate(nil, Experiment2Methods))
}

// ChildCoverage builds the coverage artifact of a finished subclass
// campaign (Experiment1/Experiment2): the derived CSortableObList suite
// over the subclass's transaction flow model, with the campaign's kill
// matrix and oracle attribution.
func (s *Setup) ChildCoverage(res *analysis.Result) (*cover.Artifact, error) {
	g, err := sortlist.Spec().TFM()
	if err != nil {
		return nil, err
	}
	return cover.FromCampaign(g, s.Derived.Suite, res)
}

// ParentCoverage builds the coverage artifact of a finished base-class
// campaign (Experiment2Baseline): the parent CObList suite over its own
// model.
func (s *Setup) ParentCoverage(res *analysis.Result) (*cover.Artifact, error) {
	g, err := oblist.Spec().TFM()
	if err != nil {
		return nil, err
	}
	return cover.FromCampaign(g, s.ParentSuite, res)
}

// Experiment2Baseline runs the same base-class mutants under the PARENT's
// own full suite (on ObList objects). The paper does not tabulate this run,
// but it is the reference point for its conclusion: the kills lost in
// Table 3 are the price of skipping inherited-only transactions.
func (s *Setup) Experiment2Baseline(progress io.Writer) (*analysis.Result, error) {
	eng := mutation.NewEngine()
	eng.MustRegisterSites(oblist.Sites()...)
	a := &analysis.Analysis{
		Engine:      eng,
		Factory:     oblist.NewFactoryWithEngine(eng),
		Suite:       s.ParentSuite,
		Exec:        s.Config.exec(),
		Progress:    progress,
		Parallelism: s.Config.parallelism(),
		NewFactory: func(e *mutation.Engine) component.Factory {
			return oblist.NewFactoryWithEngine(e)
		},
		Store: s.Config.Store,
	}
	return a.Run(eng.Enumerate(nil, Experiment2Methods))
}

// Counts reproduces §4's test-set size report: "A total of 233 test cases
// were generated for this class, for a test model composed of 16 nodes and
// 43 links. ... the class reused 329 test cases from its superclass."
type Counts struct {
	ParentModel tfm.Stats
	ChildModel  tfm.Stats
	ParentCases int
	NewCases    int
	ReusedCases int
	Skipped     int
}

// Counts summarizes the setup's test-set sizes.
func (s *Setup) Counts() (Counts, error) {
	pg, err := oblist.Spec().TFM()
	if err != nil {
		return Counts{}, err
	}
	cg, err := sortlist.Spec().TFM()
	if err != nil {
		return Counts{}, err
	}
	return Counts{
		ParentModel: pg.Stats(),
		ChildModel:  cg.Stats(),
		ParentCases: len(s.ParentSuite.Cases),
		NewCases:    s.Derived.NumNew,
		ReusedCases: s.Derived.NumReused,
		Skipped:     s.Derived.NumSkipped,
	}, nil
}

// Render prints the counts next to the paper's numbers.
func (c Counts) Render(w io.Writer) {
	fmt.Fprintf(w, "Test model sizes and test-set counts (paper §4)\n")
	fmt.Fprintf(w, "  ObList model:           %s\n", c.ParentModel)
	fmt.Fprintf(w, "  SortableObList model:   %s   (paper: 16 nodes, 43 links)\n", c.ChildModel)
	fmt.Fprintf(w, "  ObList test cases:      %d\n", c.ParentCases)
	fmt.Fprintf(w, "  subclass new cases:     %d   (paper: 233)\n", c.NewCases)
	fmt.Fprintf(w, "  subclass reused cases:  %d   (paper: 329)\n", c.ReusedCases)
	fmt.Fprintf(w, "  parent cases skipped:   %d   (inherited-only transactions)\n", c.Skipped)
}

// Table1 renders the paper's Table 1: the interface mutation operators.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Interface mutation operators applied")
	fmt.Fprintf(w, "  %-15s %s\n", "Operator", "Description")
	for _, op := range mutation.AllOperators {
		fmt.Fprintf(w, "  %-15s %s\n", op, op.Description())
	}
	fmt.Fprintln(w, "  where G(R2) = globals used in R2; L(R2) = locals defined in R2;")
	fmt.Fprintln(w, "  E(R2) = globals not used in R2; RC = required constants (NULL, MAXINT, MININT, ...)")
}

// Figure2 writes the Product TFM in DOT with the use-case path highlighted
// and lists the enumerated transactions.
func Figure2(w io.Writer) error {
	g, err := product.Spec().TFM()
	if err != nil {
		return err
	}
	hl := tfm.Transaction{}
	for _, n := range product.UseCasePath() {
		hl.Path = append(hl.Path, tfm.NodeID(n))
	}
	if err := g.WriteDOT(w, hl); err != nil {
		return err
	}
	ts, err := g.Transactions(tfm.EnumOptions{LoopBound: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n// %d transactions at loop bound 1; highlighted use case: %s\n", len(ts), hl)
	return nil
}

// Figure3 writes the Product t-spec in the paper's notation.
func Figure3(w io.Writer) error {
	return product.Spec().Format(w)
}

// Figure6 emits the generated Go driver source for the Product component —
// the "specific driver" of Figures 6-7.
func Figure6(w io.Writer, seed int64) error {
	suite, err := driver.Generate(product.Spec(), driver.Options{Seed: seed})
	if err != nil {
		return err
	}
	return driver.Emit(w, suite, driver.EmitOptions{
		ComponentImport: "concat/internal/components/product",
		FactoryExpr:     "product.NewFactory()",
	})
}

// OracleAblation measures the contribution of each oracle ingredient to
// experiment 1's kill rate: the full harness, assertions disabled, and
// assertions-only (no golden output comparison). It quantifies the paper's
// observation that "assertions, besides improving testability, help to
// improve fault-revealing effectiveness [but] do not constitute an
// effective oracle" alone.
type OracleAblation struct {
	FullScore           float64
	NoAssertionsScore   float64
	AssertionsOnlyScore float64
}

// RunOracleAblation executes experiment 1 three times under the different
// oracle configurations.
func (s *Setup) RunOracleAblation() (OracleAblation, error) {
	run := func(exec testexec.Options, assertionsOnly bool) (float64, error) {
		a, eng := s.listAnalysis(nil)
		a.Exec = exec
		res, err := a.Run(eng.Enumerate(nil, Experiment1Methods))
		if err != nil {
			return 0, err
		}
		if !assertionsOnly {
			return res.Tabulate().Total.Score(), nil
		}
		// Assertions-only: count only crash and assertion kills.
		killed, equivalent := 0, 0
		for _, mr := range res.Mutants {
			switch {
			case mr.Killed && mr.Reason != analysis.KillOutputDiff:
				killed++
			case mr.Equivalent():
				equivalent++
			}
		}
		denom := len(res.Mutants) - equivalent
		if denom <= 0 {
			return 1, nil
		}
		return float64(killed) / float64(denom), nil
	}
	var out OracleAblation
	var err error
	if out.FullScore, err = run(testexec.Options{}, false); err != nil {
		return out, err
	}
	if out.NoAssertionsScore, err = run(testexec.Options{SkipInvariantChecks: true}, false); err != nil {
		return out, err
	}
	if out.AssertionsOnlyScore, err = run(testexec.Options{}, true); err != nil {
		return out, err
	}
	return out, nil
}

// Render prints the oracle ablation.
func (o OracleAblation) Render(w io.Writer) {
	fmt.Fprintln(w, "Oracle ablation (experiment 1 mutation score)")
	fmt.Fprintf(w, "  full oracle (assertions + output comparison):  %5.1f%%\n", o.FullScore*100)
	fmt.Fprintf(w, "  without invariant checking:                    %5.1f%%\n", o.NoAssertionsScore*100)
	fmt.Fprintf(w, "  assertions/crashes only (no output oracle):    %5.1f%%\n", o.AssertionsOnlyScore*100)
}

// LoopBoundAblation measures suite size and experiment-1 score as the
// enumeration loop bound k varies — the design decision of DESIGN.md §5.2.
type LoopBoundAblation struct {
	LoopBound int
	Cases     int
	Score     float64
}

// RunLoopBoundAblation varies the child generation loop bound.
func (s *Setup) RunLoopBoundAblation(bounds []int) ([]LoopBoundAblation, error) {
	var out []LoopBoundAblation
	for _, k := range bounds {
		cfg := s.Config
		cfg.ChildOpts.Enum.LoopBound = k
		setup, err := NewSetup(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: loop bound %d: %w", k, err)
		}
		res, err := setup.Experiment1(nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: loop bound %d: %w", k, err)
		}
		out = append(out, LoopBoundAblation{
			LoopBound: k,
			Cases:     len(setup.Derived.Suite.Cases),
			Score:     res.Tabulate().Total.Score(),
		})
	}
	return out, nil
}

// CriterionAblation compares coverage criteria on the parent component:
// suite size and base-mutant kill rate under all-transactions, all-links
// and all-nodes.
type CriterionAblation struct {
	Criterion string
	Cases     int
	Score     float64
}

// RunCriterionAblation generates ObList suites under each criterion and
// scores them against the base-method mutants.
func RunCriterionAblation(seed int64) ([]CriterionAblation, error) {
	var out []CriterionAblation
	for _, crit := range []tfm.Criterion{tfm.CoverTransactions, tfm.CoverLinks, tfm.CoverNodes} {
		opts := driver.Options{Seed: seed, Criterion: crit, ExpandAlternatives: true, MaxAlternatives: 4}
		suite, err := driver.Generate(oblist.Spec(), opts)
		if err != nil {
			return nil, err
		}
		eng := mutation.NewEngine()
		eng.MustRegisterSites(oblist.Sites()...)
		a := &analysis.Analysis{
			Engine:      eng,
			Factory:     oblist.NewFactoryWithEngine(eng),
			Suite:       suite,
			Parallelism: runtime.GOMAXPROCS(0),
			NewFactory: func(e *mutation.Engine) component.Factory {
				return oblist.NewFactoryWithEngine(e)
			},
		}
		res, err := a.Run(eng.Enumerate(nil, Experiment2Methods))
		if err != nil {
			return nil, err
		}
		out = append(out, CriterionAblation{
			Criterion: crit.String(),
			Cases:     len(suite.Cases),
			Score:     res.Tabulate().Total.Score(),
		})
	}
	return out, nil
}

// RenderResult renders an analysis result as its paper table plus the
// setup's provenance line.
func RenderResult(w io.Writer, title string, res *analysis.Result) error {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
	return res.Tabulate().Render(w)
}

// ModelScaling compares the two test-model notations on the same component
// at one container capacity: the FSM's size and test count grow with the
// capacity, the TFM's stay fixed — the paper's §3.2 argument for choosing
// the transaction flow model ("it scales up easier than finite state
// machine models"), made measurable.
type ModelScaling struct {
	Capacity       int
	FSMStates      int
	FSMTransitions int
	FSMTests       int
	TFMNodes       int // constant across capacities
	TFMEdges       int
	TFMTests       int // constant: the bounded transaction enumeration
}

// RunModelScaling builds bounded-list FSMs at the given capacities, verifies
// their tours actually pass against the real ObList component, and pairs
// the sizes with the (fixed) TFM numbers.
func RunModelScaling(capacities []int) ([]ModelScaling, error) {
	g, err := oblist.Spec().TFM()
	if err != nil {
		return nil, err
	}
	tfmTests, err := g.Transactions(tfm.EnumOptions{LoopBound: 1})
	if err != nil {
		return nil, err
	}
	var out []ModelScaling
	for _, capacity := range capacities {
		m, err := fsm.BoundedListMachine(capacity)
		if err != nil {
			return nil, err
		}
		tours, err := m.AllTransitionsTour()
		if err != nil {
			return nil, err
		}
		suite := fsm.SuiteFromTour(m, tours, "ObList", "m1", "~ObList", "m3")
		rep, err := testexec.Run(suite, oblist.NewFactory(), testexec.Options{})
		if err != nil {
			return nil, err
		}
		if !rep.AllPassed() {
			return nil, fmt.Errorf("experiments: FSM tour at capacity %d failed against the component", capacity)
		}
		out = append(out, ModelScaling{
			Capacity:       capacity,
			FSMStates:      m.NumStates(),
			FSMTransitions: m.NumTransitions(),
			FSMTests:       len(tours),
			TFMNodes:       g.NumNodes(),
			TFMEdges:       g.NumEdges(),
			TFMTests:       len(tfmTests),
		})
	}
	return out, nil
}
