// Service-level chaos regressions: every injected fault — a crash between
// the journal append and execution, a crash mid-campaign, a journal write
// failure, verdict-store corruption — must leave either a completed
// campaign or a journaled, retryable one. Never a lost submission, never a
// duplicated or wrong verdict. The in-process faults run here; the
// SIGKILL-the-real-binary legs live in the CI chaos job.
package chaos_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"concat/internal/serve"
	"concat/internal/serve/chaos"
	"concat/internal/store"
)

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req serve.Request) (serve.Status, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func fetch(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
	}
	return body
}

func getStatus(t *testing.T, ts *httptest.Server, id string) serve.Status {
	t.Helper()
	var st serve.Status
	if err := json.Unmarshal(fetch(t, ts, "/campaigns/"+id), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// baseline runs one uninterrupted Account campaign and returns its report
// and coverage bytes — the byte-identity reference for every crash leg.
func baseline(t *testing.T) (report, coverage []byte) {
	t.Helper()
	_, ts := newServer(t, serve.Config{})
	st, code := submit(t, ts, serve.Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: HTTP %d", code)
	}
	return fetch(t, ts, "/campaigns/"+st.ID+"/report"),
		fetch(t, ts, "/campaigns/"+st.ID+"/coverage")
}

func TestCrashBetweenJournalAndExecution(t *testing.T) {
	// The narrowest crash window: the process died after the write-ahead
	// append, before the job ever reached a worker. The journal alone must
	// carry the submission to completion on the next start.
	wantReport, wantCover := baseline(t)

	dir := t.TempDir()
	jn, err := serve.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(serve.JobRecord{
		Seq: 1, ID: "c1", Req: serve.Request{Component: "Account"}, State: serve.StateQueued,
	}); err != nil {
		t.Fatal(err)
	}

	jn2, err := serve.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, serve.Config{Journal: jn2})
	report := fetch(t, ts, "/campaigns/c1/report")
	if !bytes.Equal(report, wantReport) {
		t.Errorf("replayed report differs from uninterrupted run:\n--- replayed ---\n%s\n--- baseline ---\n%s", report, wantReport)
	}
	if cov := fetch(t, ts, "/campaigns/c1/coverage"); !bytes.Equal(cov, wantCover) {
		t.Error("replayed coverage artifact differs from uninterrupted run")
	}
}

func TestCrashMidCampaignReplaysWarmByteIdentical(t *testing.T) {
	// A crash mid-execution: the journal still says "running", the store
	// holds every verdict the first process computed. The restart must
	// re-serve the identical report with zero re-executed mutants — the
	// "never a duplicated verdict" half of the crash-safety contract.
	wantReport, _ := baseline(t)

	journalDir, storeDir := t.TempDir(), t.TempDir()
	st1, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	jn1, err := serve.OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newServer(t, serve.Config{Journal: jn1, Store: st1})
	job, code := submit(t, ts1, serve.Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fetch(t, ts1, "/campaigns/"+job.ID+"/report")
	srv1.Close()
	ts1.Close()

	// Rewind the journal record to mid-crash shape: running, one attempt
	// begun, no terminal payload — as if the done record never landed.
	if err := jn1.Append(serve.JobRecord{
		Seq: 1, ID: job.ID, Req: serve.Request{Component: "Account"},
		State: serve.StateRunning, Attempts: 1,
	}); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	jn2, err := serve.OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newServer(t, serve.Config{Journal: jn2, Store: st2})
	report := fetch(t, ts2, "/campaigns/"+job.ID+"/report")
	if !bytes.Equal(report, wantReport) {
		t.Errorf("post-crash replay report differs:\n--- replayed ---\n%s\n--- baseline ---\n%s", report, wantReport)
	}
	final := getStatus(t, ts2, job.ID)
	if final.CacheMisses != 0 || final.CacheHits == 0 {
		t.Errorf("replay re-executed mutants: hits=%d misses=%d, want all hits", final.CacheHits, final.CacheMisses)
	}
	if final.Attempts != 2 {
		t.Errorf("replay attempts = %d, want 2 (interrupted + replay)", final.Attempts)
	}
}

func TestJournalWriteFailureRefusesSubmission(t *testing.T) {
	// A submission the journal cannot make durable is refused outright —
	// no half-admitted job that a crash would silently lose.
	dir := t.TempDir()
	jn, err := serve.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	faults := &chaos.Faults{JournalWrite: func(id string) error {
		return errors.New("injected: disk full")
	}}
	_, ts := newServer(t, serve.Config{Journal: jn, Faults: faults})
	body, _ := json.Marshal(serve.Request{Component: "Account"})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unjournalable submit: HTTP %d, want 500", resp.StatusCode)
	}
	var all []serve.Status
	if err := json.Unmarshal(fetch(t, ts, "/campaigns"), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Errorf("refused submission left %d job(s) behind", len(all))
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "job-*.json")); len(files) != 0 {
		t.Errorf("refused submission left journal records: %v", files)
	}
}

func TestStoreCorruptionQuarantinedAndRecomputed(t *testing.T) {
	// Bit rot in the verdict store between runs: the corrupt entry must be
	// quarantined and recomputed, and the report must come out identical —
	// never a wrong verdict served from a damaged cache.
	wantReport, _ := baseline(t)

	storeDir := t.TempDir()
	st1, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newServer(t, serve.Config{Store: st1})
	job, code := submit(t, ts1, serve.Request{Component: "Account"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fetch(t, ts1, "/campaigns/"+job.ID+"/report")
	srv1.Close()
	ts1.Close()

	entries, err := filepath.Glob(filepath.Join(storeDir, "??", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no store entries to corrupt: %v, %v", entries, err)
	}
	victim := entries[0]
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.FlipByte(victim, int(info.Size()/2)); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newServer(t, serve.Config{Store: st2})
	if _, code := submit(t, ts2, serve.Request{Component: "Account"}); code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	report := fetch(t, ts2, "/campaigns/c1/report")
	if !bytes.Equal(report, wantReport) {
		t.Errorf("report over a corrupted store differs:\n--- got ---\n%s\n--- want ---\n%s", report, wantReport)
	}
	stats := st2.Stats()
	if stats.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", stats.Quarantined)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Errorf("corrupt entry was not renamed aside: %v", err)
	}
}

func TestKillIsInertWithoutEnv(t *testing.T) {
	// Kill must be a no-op unless CONCAT_CHAOS_KILL names this exact point;
	// anything else would make the kit a production hazard.
	t.Setenv(chaos.KillEnv, "")
	chaos.Kill(chaos.PointJobRunning) // reaching the next line is the assertion
	t.Setenv(chaos.KillEnv, chaos.PointSubmitJournaled)
	chaos.Kill(chaos.PointJobRunning)
}
