// Package testexec is the consumer-side test infrastructure of §3.4: it
// executes generated suites against a self-testable component, checks the
// class invariant around every call (the built-in partial oracle), captures
// the reporter dump, writes the run log (the paper's "Result.txt"), and
// compares observable output against a recorded reference run (the manual
// oracle the paper's experimenters validated by hand, automated here as a
// golden-output oracle).
//
// The per-case outcomes map onto the paper's mutant-kill criteria: a panic
// is criterion (i) "the program crashed", an assertion violation is
// criterion (ii), and an output difference against the reference run is
// criterion (iii).
package testexec

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/tspec"
)

// Outcome classifies one executed test case.
type Outcome int

// Case outcomes.
const (
	// OutcomePass: the case ran to completion with no assertion violation
	// and (if an oracle was installed) matching output.
	OutcomePass Outcome = iota + 1
	// OutcomeViolation: an assertion (invariant/pre/post) was violated.
	OutcomeViolation
	// OutcomePanic: the component crashed; the executor recovered it.
	OutcomePanic
	// OutcomeError: the harness could not run the case (unfillable hole,
	// constructor failure, unknown method).
	OutcomeError
	// OutcomeOutputDiff: the case completed but its observable output
	// differs from the installed oracle's reference.
	OutcomeOutputDiff
	// OutcomeTimeout: the case exceeded Options.CaseTimeout. In mutation
	// analysis a timeout is a kill — the paper's testbed would hang on a
	// runaway mutant and be killed externally.
	OutcomeTimeout
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeViolation:
		return "assertion-violation"
	case OutcomePanic:
		return "crash"
	case OutcomeError:
		return "harness-error"
	case OutcomeOutputDiff:
		return "output-diff"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// CaseResult is the record of one executed test case.
type CaseResult struct {
	CaseID      string
	Transaction string
	Outcome     Outcome
	// Seed is the per-case RNG seed the executor derived for this case
	// (see CaseSeed). It depends only on the suite seed and the case ID,
	// never on execution order, so serial and parallel runs record the
	// same value.
	Seed int64
	// Method is the method being executed when the case failed (the log's
	// "Method called:" line); empty on pass.
	Method string
	// ViolationKind is set when Outcome is OutcomeViolation.
	ViolationKind bit.ViolationKind
	// Detail carries the failure message.
	Detail string
	// Transcript is the case's observable output: every call's results and
	// errors plus the final reporter dump. It is what the golden oracle
	// compares.
	Transcript string
}

// Report aggregates a suite run.
type Report struct {
	Component string
	Results   []CaseResult
}

// Counts returns the number of cases per outcome.
func (r *Report) Counts() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, c := range r.Results {
		out[c.Outcome]++
	}
	return out
}

// AllPassed reports whether every case passed.
func (r *Report) AllPassed() bool {
	for _, c := range r.Results {
		if c.Outcome != OutcomePass {
			return false
		}
	}
	return true
}

// Failures returns the non-passing case results.
func (r *Report) Failures() []CaseResult {
	var out []CaseResult
	for _, c := range r.Results {
		if c.Outcome != OutcomePass {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders a one-line human summary plus per-outcome counts.
func (r *Report) Summary() string {
	counts := r.Counts()
	var keys []int
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", Outcome(k), counts[Outcome(k)]))
	}
	return fmt.Sprintf("%s: %d cases (%s)", r.Component, len(r.Results), strings.Join(parts, ", "))
}

// Result returns the result for a case ID.
func (r *Report) Result(caseID string) (CaseResult, bool) {
	for _, c := range r.Results {
		if c.CaseID == caseID {
			return c, true
		}
	}
	return CaseResult{}, false
}

// Oracle checks a completed case's observable output. The golden oracle
// (see Golden) is the standard implementation.
type Oracle interface {
	// Check returns nil if the transcript is acceptable for the case, or an
	// error describing the difference.
	Check(caseID, transcript string) error
}

// Options configure a suite run.
type Options struct {
	// LogWriter receives the run log ("Result.txt" analog); nil discards.
	LogWriter io.Writer
	// Providers complete structured-parameter holes by component type name.
	Providers map[string]domain.Provider
	// Seed drives the providers' randomness; with the same seed hole
	// completion is reproducible.
	Seed int64
	// Oracle, if non-nil, checks every completed case's transcript.
	Oracle Oracle
	// SkipInvariantChecks disables the around-call invariant checking; used
	// by the assertions-oracle ablation.
	SkipInvariantChecks bool
	// SkipReporter disables the end-of-case reporter dump.
	SkipReporter bool
	// CaseTimeout, when positive, bounds each test case's wall-clock time.
	// A case that exceeds it is recorded as OutcomeTimeout. The runaway
	// case's goroutine is abandoned (Go cannot kill it); use this as a
	// last-resort guard for components without their own iteration bounds.
	CaseTimeout time.Duration
	// Parallelism fans the suite's cases over a bounded worker pool when
	// greater than 1; zero or one executes serially. Every case derives its
	// RNG seed from the suite seed and its own ID (CaseSeed), each case
	// constructs its own component instance, and the merged Report lists
	// results in suite order — so for any Parallelism the Report is
	// bit-for-bit identical to the serial run. The factory and oracle must
	// tolerate concurrent calls (the bundled factories and the Golden
	// oracle do); factories whose instances share mutable context should
	// implement component.Forker so every case gets a fresh world.
	Parallelism int
}

// CaseSeed derives the RNG seed for one test case from the suite seed and
// the case ID. Hole completion for a case is a function of this seed alone,
// which is what keeps reports identical across serial and parallel runs:
// the seed depends on the case's identity, not on the order or the worker
// the case happens to run on.
func CaseSeed(suiteSeed int64, caseID string) int64 {
	return domain.DeriveSeed(suiteSeed, "case:"+caseID)
}

// Run executes the suite against the component. Per-case failures are
// recorded in the report, not returned as errors; Run itself fails only on
// harness-level misuse (nil suite/factory, component name mismatch).
//
// With Options.Parallelism > 1 the cases execute concurrently; the report
// is identical to the serial run's (see CaseSeed) and the run log is still
// written in suite order.
func Run(s *driver.Suite, f component.Factory, opts Options) (*Report, error) {
	if s == nil || f == nil {
		return nil, errors.New("testexec: nil suite or factory")
	}
	if s.Component != f.Name() {
		return nil, fmt.Errorf("testexec: suite is for %q but factory builds %q", s.Component, f.Name())
	}
	log := opts.LogWriter
	if log == nil {
		log = io.Discard
	}
	spec := f.Spec()
	runOne := func(tc driver.TestCase) CaseResult {
		seed := CaseSeed(opts.Seed, tc.ID)
		// Components whose instances share mutable context (component.Forker)
		// get a fresh world per case: without this, a case's transcript
		// depends on what earlier — or, under parallelism, concurrent — cases
		// left behind in the shared state.
		cf, caseOpts := f, opts
		if fk, ok := f.(component.Forker); ok {
			cf = fk.Fork()
			if ps, ok := cf.(interface {
				Providers() map[string]domain.Provider
			}); ok && caseOpts.Providers != nil {
				caseOpts.Providers = ps.Providers()
			}
		}
		res := runCaseBounded(tc, cf, spec, caseOpts, seed)
		res.Seed = seed
		if opts.Oracle != nil && res.Outcome == OutcomePass {
			if err := opts.Oracle.Check(tc.ID, res.Transcript); err != nil {
				res.Outcome = OutcomeOutputDiff
				res.Detail = err.Error()
			}
		}
		return res
	}

	report := &Report{Component: s.Component}
	workers := opts.Parallelism
	if workers > len(s.Cases) {
		workers = len(s.Cases)
	}
	if workers <= 1 {
		for _, tc := range s.Cases {
			res := runOne(tc)
			writeLog(log, res)
			report.Results = append(report.Results, res)
		}
		return report, nil
	}

	// Parallel path: workers pull case indices from a channel and store
	// results into an index-aligned slice, so the merged report (and the
	// log, written afterwards) are in suite order regardless of which
	// worker finished which case when.
	results := make([]CaseResult, len(s.Cases))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(s.Cases[i])
			}
		}()
	}
	for i := range s.Cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, res := range results {
		writeLog(log, res)
	}
	report.Results = results
	return report, nil
}

// runCaseBounded applies Options.CaseTimeout around runCase.
func runCaseBounded(tc driver.TestCase, f component.Factory, spec *tspec.Spec, opts Options, seed int64) CaseResult {
	if opts.CaseTimeout <= 0 {
		return runCase(tc, f, spec, opts, seed)
	}
	done := make(chan CaseResult, 1)
	go func() {
		done <- runCase(tc, f, spec, opts, seed)
	}()
	timer := time.NewTimer(opts.CaseTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		return CaseResult{
			CaseID:      tc.ID,
			Transaction: tc.Transaction,
			Outcome:     OutcomeTimeout,
			Detail:      fmt.Sprintf("case exceeded %v", opts.CaseTimeout),
		}
	}
}

// runCase executes one test case: construct, invariant-wrapped calls,
// reporter, destroy. Panics anywhere inside are recovered into
// OutcomePanic — the paper's "the program crashed while running the test
// cases" kill criterion.
func runCase(tc driver.TestCase, f component.Factory, spec *tspec.Spec, opts Options, seed int64) (res CaseResult) {
	res = CaseResult{CaseID: tc.ID, Transaction: tc.Transaction, Outcome: OutcomePass}
	var transcript strings.Builder
	currentMethod := ""
	defer func() {
		res.Transcript = transcript.String()
		if p := recover(); p != nil {
			res.Outcome = OutcomePanic
			res.Method = currentMethod
			res.Detail = fmt.Sprintf("panic: %v", p)
		}
	}()

	if len(tc.Calls) == 0 {
		res.Outcome = OutcomeError
		res.Detail = "test case has no calls"
		return res
	}
	rng := domain.NewRand(seed)

	// Complete holes in every call up front.
	calls := make([]driver.Call, len(tc.Calls))
	for i, c := range tc.Calls {
		cc := c
		cc.Args = append([]domain.Value(nil), c.Args...)
		for _, h := range c.Holes {
			v, err := completeHole(h, opts.Providers, rng)
			if err != nil {
				res.Outcome = OutcomeError
				res.Method = c.Method
				res.Detail = err.Error()
				return res
			}
			if h.Arg < 0 || h.Arg >= len(cc.Args) {
				res.Outcome = OutcomeError
				res.Method = c.Method
				res.Detail = fmt.Sprintf("hole index %d out of range", h.Arg)
				return res
			}
			cc.Args[h.Arg] = v
		}
		calls[i] = cc
	}

	// Birth: the first call is the constructor.
	ctor := calls[0]
	currentMethod = ctor.Method
	cut, err := f.New(ctor.Method, ctor.Args)
	if err != nil {
		res.Outcome = OutcomeError
		res.Method = ctor.Method
		res.Detail = fmt.Sprintf("constructor failed: %v", err)
		return res
	}
	destroyed := false
	defer func() {
		if !destroyed {
			_ = cut.Destroy()
		}
	}()
	cut.SetBITMode(bit.ModeTest)
	fmt.Fprintf(&transcript, "NEW %s(%s)\n", ctor.Method, argList(ctor.Args))

	checkInvariant := func(when string) *bit.Violation {
		if opts.SkipInvariantChecks {
			return nil
		}
		if err := cut.InvariantTest(); err != nil {
			if v, ok := bit.AsViolation(err); ok {
				return v
			}
			// Guard errors and the like are harness problems, surfaced as a
			// synthetic violation detail so they are visible in logs.
			return &bit.Violation{Kind: bit.KindInvariant, Method: when, Detail: err.Error()}
		}
		return nil
	}

	if v := checkInvariant(ctor.Method); v != nil {
		res.Outcome = OutcomeViolation
		res.Method = currentMethod
		res.ViolationKind = v.Kind
		res.Detail = v.Error()
		return res
	}

	// Processing and death: remaining calls, invariant around each.
	for _, call := range calls[1:] {
		currentMethod = call.Method
		if isDestructor(spec, call) {
			fmt.Fprintf(&transcript, "DESTROY %s\n", call.Method)
			if err := cut.Destroy(); err != nil {
				if v, ok := bit.AsViolation(err); ok {
					res.Outcome = OutcomeViolation
					res.Method = call.Method
					res.ViolationKind = v.Kind
					res.Detail = v.Error()
					return res
				}
				res.Outcome = OutcomeError
				res.Method = call.Method
				res.Detail = fmt.Sprintf("destructor failed: %v", err)
				return res
			}
			destroyed = true
			continue
		}
		results, err := cut.Invoke(call.Method, call.Args)
		if err != nil {
			if v, ok := bit.AsViolation(err); ok {
				res.Outcome = OutcomeViolation
				res.Method = call.Method
				res.ViolationKind = v.Kind
				res.Detail = v.Error()
				return res
			}
			// A non-contract error is observable behaviour: record it in
			// the transcript and continue the transaction, so the golden
			// oracle can compare error behaviour between runs.
			fmt.Fprintf(&transcript, "CALL %s(%s) -> error: %v\n", call.Method, argList(call.Args), err)
			continue
		}
		fmt.Fprintf(&transcript, "CALL %s(%s) -> [%s]\n", call.Method, argList(call.Args), argList(results))
		if v := checkInvariant(call.Method); v != nil {
			res.Outcome = OutcomeViolation
			res.Method = call.Method
			res.ViolationKind = v.Kind
			res.Detail = v.Error()
			return res
		}
	}

	// Reporter dump: the object's final internal state, part of the
	// observable output (the paper's driver calls Reporter at case end).
	if !opts.SkipReporter && !destroyed {
		var dump strings.Builder
		if err := cut.Reporter(&dump); err == nil {
			transcript.WriteString("REPORT " + dump.String())
			if !strings.HasSuffix(dump.String(), "\n") {
				transcript.WriteString("\n")
			}
		}
	}
	if !destroyed {
		if err := cut.Destroy(); err != nil {
			if v, ok := bit.AsViolation(err); ok {
				res.Outcome = OutcomeViolation
				res.Method = "destroy"
				res.ViolationKind = v.Kind
				res.Detail = v.Error()
				return res
			}
			res.Outcome = OutcomeError
			res.Method = "destroy"
			res.Detail = fmt.Sprintf("destructor failed: %v", err)
			return res
		}
		destroyed = true
	}
	return res
}

func completeHole(h driver.Hole, providers map[string]domain.Provider, rng *rand.Rand) (domain.Value, error) {
	if p, ok := providers[h.TypeName]; ok {
		v, err := p.Provide(rng)
		if err != nil {
			return domain.Value{}, fmt.Errorf("provider for %q: %w", h.TypeName, err)
		}
		return v, nil
	}
	if h.Nullable {
		return domain.Nil(), nil
	}
	return domain.Value{}, fmt.Errorf("no provider for structured parameter of type %q (manual completion required)", h.TypeName)
}

func isDestructor(spec *tspec.Spec, call driver.Call) bool {
	if spec == nil {
		return false
	}
	if m, ok := spec.MethodByID(call.MethodID); ok {
		return m.Category == tspec.CatDestructor
	}
	if m, ok := spec.MethodByName(call.Method); ok {
		return m.Category == tspec.CatDestructor
	}
	return false
}

func argList(vs []domain.Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// writeLog appends one case's entry in the paper's Result.txt style.
func writeLog(w io.Writer, res CaseResult) {
	if res.Outcome == OutcomePass {
		fmt.Fprintf(w, "TestCase%s OK!\n\n", res.CaseID)
		return
	}
	fmt.Fprintf(w, "TestCase%s\n", res.CaseID)
	fmt.Fprintf(w, "%s\n", res.Detail)
	if res.Method != "" {
		fmt.Fprintf(w, "Method called: %s\n", res.Method)
	}
	fmt.Fprintf(w, "\n")
}
