package mutation

import (
	"encoding/json"
	"fmt"

	"concat/internal/domain"
)

// mutantJSON is the wire form of a Mutant: operators travel by their
// Table 1 name (stable across builds, readable in logs) and the RepReq
// constant is omitted when unset — domain.Value deliberately refuses to
// marshal its zero value, and most mutants carry none.
type mutantJSON struct {
	ID          string        `json:"id"`
	Site        SiteID        `json:"site"`
	Method      string        `json:"method,omitempty"`
	Operator    string        `json:"operator"`
	Replacement string        `json:"replacement,omitempty"`
	Constant    *domain.Value `json:"constant,omitempty"`
}

// MarshalJSON implements json.Marshaler. The encoding is what subprocess
// isolation ships to a case server to re-arm the mutant in the child.
func (m Mutant) MarshalJSON() ([]byte, error) {
	w := mutantJSON{
		ID:          m.ID,
		Site:        m.Site,
		Method:      m.Method,
		Operator:    m.Operator.String(),
		Replacement: m.Replacement,
	}
	if !m.Constant.IsZero() {
		c := m.Constant
		w.Constant = &c
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Mutant) UnmarshalJSON(data []byte) error {
	var w mutantJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("mutation: decoding mutant: %w", err)
	}
	op, err := ParseOperator(w.Operator)
	if err != nil {
		return err
	}
	*m = Mutant{
		ID:          w.ID,
		Site:        w.Site,
		Method:      w.Method,
		Operator:    op,
		Replacement: w.Replacement,
	}
	if w.Constant != nil {
		m.Constant = *w.Constant
	}
	return nil
}
