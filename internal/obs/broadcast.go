package obs

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Broadcast is an append-only byte buffer with any number of late-joining
// readers. Every reader observes the stream from its first retained byte —
// subscribing after N writes replays everything still retained before
// blocking for more — and a reader that has caught up waits until new bytes
// arrive or the stream closes. It is the retention layer under the campaign
// service's live trace streams: the tracer writes each NDJSON span once,
// and every HTTP client replays the trace from its own offset.
//
// A capped broadcast (NewBroadcastCapped) bounds the retained replay
// buffer: once the retained bytes exceed the cap, the oldest complete lines
// are dropped and a late subscriber that missed them receives an explicit
// NDJSON truncation marker ({"truncated":true,...}) before the retained
// suffix. Offsets are absolute stream positions, so truncation never
// silently re-delivers or skips bytes.
//
// Writes and reads are safe for concurrent use. Close is idempotent and
// releases all waiting readers.
type Broadcast struct {
	mu  sync.Mutex
	buf []byte
	// start indexes the first retained byte in buf. Bytes before it were
	// dropped under the retention cap but are compacted away only once the
	// dead prefix outgrows the retained suffix, so a write over the cap
	// costs amortized O(1) instead of one full-buffer copy per line — the
	// difference between a large traced campaign finishing in seconds and
	// grinding quadratically for minutes. Peak memory stays under ~2x cap.
	start int
	// base is the absolute stream offset of buf[start]; bytes below base
	// have been dropped under the retention cap.
	base   int
	cap    int
	closed bool
	// wake is closed and replaced whenever buf grows or the stream closes;
	// a catching-up reader snapshots it under the lock and waits outside.
	wake chan struct{}
}

// NewBroadcast returns an empty open broadcast buffer with unbounded
// retention.
func NewBroadcast() *Broadcast {
	return &Broadcast{wake: make(chan struct{})}
}

// NewBroadcastCapped returns a broadcast buffer retaining at most max bytes
// for replay (max <= 0 means unbounded). The cap bounds retention only;
// readers already past the dropped region are unaffected.
func NewBroadcastCapped(max int) *Broadcast {
	return &Broadcast{wake: make(chan struct{}), cap: max}
}

// Write appends p to the stream and wakes all waiting readers. It never
// blocks. With a retention cap, the oldest complete lines beyond the cap
// are dropped for future late subscribers.
func (b *Broadcast) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, errors.New("obs: write on closed broadcast")
	}
	b.buf = append(b.buf, p...)
	if b.cap > 0 && len(b.buf)-b.start > b.cap {
		// Trim the front to the cap, extended forward to the next newline so
		// the retained suffix starts at a line boundary (the stream is
		// NDJSON; replaying from mid-line would corrupt every reader).
		cut := len(b.buf) - b.cap
		for cut < len(b.buf) && b.buf[cut-1] != '\n' {
			cut++
		}
		b.base += cut - b.start
		b.start = cut
		if b.start >= len(b.buf)-b.start {
			// The dead prefix outweighs the retained suffix: compact. Each
			// compaction copies at most as many bytes as were dropped since
			// the last one, so trimming stays amortized O(1) per byte.
			b.buf = append(b.buf[:0:0], b.buf[b.start:]...)
			b.start = 0
		}
	}
	close(b.wake)
	b.wake = make(chan struct{})
	return len(p), nil
}

// Close marks end-of-stream. Waiting readers drain the remaining bytes and
// then see io.EOF. Close is idempotent and never fails.
func (b *Broadcast) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.wake)
	}
	return nil
}

// Len returns the total number of bytes written so far (including bytes
// dropped under the retention cap).
func (b *Broadcast) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base + len(b.buf) - b.start
}

// Dropped returns how many leading bytes have been discarded under the
// retention cap.
func (b *Broadcast) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base
}

// Bytes returns a copy of the retained stream suffix.
func (b *Broadcast) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.buf)-b.start)
	copy(out, b.buf[b.start:])
	return out
}

// truncationMarker is the NDJSON event a reader receives in place of bytes
// the retention cap discarded. ReadTrace skips these lines.
func truncationMarker(missed int) []byte {
	return []byte(fmt.Sprintf("{\"truncated\":true,\"missedBytes\":%d}\n", missed))
}

// Next returns a copy of the stream bytes past the absolute offset off,
// blocking while the stream is open and has nothing new. It returns the
// chunk plus the absolute offset to resume from; callers loop
// `for chunk, next, ok := b.Next(off, c); ok; ... off = next`. When off
// points below the retained window (the cap dropped those bytes), the chunk
// begins with a truncation marker line and resumes at the retained suffix.
// ok is false once the stream is closed and fully consumed, or as soon as
// cancel fires (a nil cancel never fires).
func (b *Broadcast) Next(off int, cancel <-chan struct{}) ([]byte, int, bool) {
	for {
		b.mu.Lock()
		end := b.base + len(b.buf) - b.start
		if off < b.base {
			chunk := append(truncationMarker(b.base-off), b.buf[b.start:]...)
			b.mu.Unlock()
			return chunk, end, true
		}
		if off < end {
			chunk := make([]byte, end-off)
			copy(chunk, b.buf[b.start+off-b.base:])
			b.mu.Unlock()
			return chunk, end, true
		}
		if b.closed {
			b.mu.Unlock()
			return nil, off, false
		}
		wake := b.wake
		b.mu.Unlock()
		select {
		case <-wake:
		case <-cancel:
			return nil, off, false
		}
	}
}

// Reader returns a new independent reader positioned at the start of the
// stream (or, under a cap, at the truncation marker for anything already
// dropped). Read blocks until bytes past the reader's offset exist and
// returns io.EOF only after Close has been called and the stream is fully
// consumed.
func (b *Broadcast) Reader() io.Reader {
	return &broadcastReader{b: b}
}

type broadcastReader struct {
	b       *Broadcast
	off     int
	pending []byte
}

func (r *broadcastReader) Read(p []byte) (int, error) {
	if len(r.pending) == 0 {
		chunk, next, ok := r.b.Next(r.off, nil)
		if !ok {
			return 0, io.EOF
		}
		r.pending = chunk
		r.off = next
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}
