package obs

import "encoding/json"

// envelope is the wire form a subprocess case server uses to piggyback its
// trace spans on testexec.CaseResult.Extra. The resolver's own payload is
// embedded verbatim (json.RawMessage round-trips bytes exactly), so after
// the parent unwraps it the Extra field is byte-identical to an untraced
// run's — the report never changes because tracing was on. Payload must
// NOT be omitempty: a nil payload marshals to literal null, which is
// exactly what the untraced wire form delivers for a nil Extra.
type envelope struct {
	Payload json.RawMessage `json:"payload"`
	Spans   []Span          `json:"obsSpans,omitempty"`
}

// WrapExtra bundles a case server's Extra payload with its collected
// spans. With no spans the payload passes through untouched.
func WrapExtra(payload json.RawMessage, spans []Span) json.RawMessage {
	if len(spans) == 0 {
		return payload
	}
	raw, err := json.Marshal(envelope{Payload: payload, Spans: spans})
	if err != nil {
		// Spans carry only marshalable types; treat a failure as "no trace"
		// rather than corrupting the payload.
		return payload
	}
	return raw
}

// UnwrapExtra splits a WrapExtra bundle back into the original payload and
// the child's spans. Anything that is not an envelope — including every
// untraced Extra payload — passes through unchanged with no spans.
func UnwrapExtra(extra json.RawMessage) (json.RawMessage, []Span) {
	if len(extra) == 0 {
		return extra, nil
	}
	var env envelope
	if err := json.Unmarshal(extra, &env); err != nil || len(env.Spans) == 0 {
		return extra, nil
	}
	return env.Payload, env.Spans
}
