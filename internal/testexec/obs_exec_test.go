package testexec

// Tests for the observability side channel at the executor level and for
// the two hardening fixes that ride with it: the always-armed isolation
// backstop and the indexed Report.Result lookup.

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
	"time"

	"concat/internal/components/account"
	"concat/internal/obs"
)

func TestIsolationDeadlinePrecedence(t *testing.T) {
	// The regression at the heart of this: with no CaseTimeout the old code
	// armed no parent deadline at all, so a wedged child hung the campaign
	// forever. The default backstop must apply.
	if got := isolationDeadline(Options{}); got != DefaultIsolationBackstop {
		t.Errorf("isolationDeadline(zero) = %v, want %v", got, DefaultIsolationBackstop)
	}
	if got := isolationDeadline(Options{CaseTimeout: 2 * time.Second}); got != 34*time.Second {
		t.Errorf("isolationDeadline(CaseTimeout=2s) = %v, want 34s", got)
	}
	explicit := Options{IsolationBackstop: time.Second, CaseTimeout: 2 * time.Second}
	if got := isolationDeadline(explicit); got != time.Second {
		t.Errorf("isolationDeadline(explicit) = %v, want the explicit 1s", got)
	}
}

func TestReportResultIndexedLookup(t *testing.T) {
	rep := &Report{Results: []CaseResult{
		{CaseID: "TC0", Detail: "first"},
		{CaseID: "TC1"},
		{CaseID: "TC0", Detail: "duplicate"},
	}}
	res, ok := rep.Result("TC1")
	if !ok || res.CaseID != "TC1" {
		t.Fatalf("Result(TC1) = %+v, %v", res, ok)
	}
	// First occurrence wins, matching the linear scan this replaced.
	res, ok = rep.Result("TC0")
	if !ok || res.Detail != "first" {
		t.Errorf("Result(TC0) = %+v, want the first occurrence", res)
	}
	if _, ok := rep.Result("absent"); ok {
		t.Error("Result(absent) reported a hit")
	}
	// The lookup index must not disturb the published order.
	want := []string{"TC0", "TC1", "TC0"}
	for i, r := range rep.Results {
		if r.CaseID != want[i] {
			t.Fatalf("Results order changed at %d: %s", i, r.CaseID)
		}
	}
}

// TestTraceSidechannelKeepsReportIdentical is the layer's core contract:
// a traced run's Report deep-equals an untraced run's, and the trace is
// schema-valid with one case span per executed case.
func TestTraceSidechannelKeepsReportIdentical(t *testing.T) {
	s := accountSuite(t)
	plain, err := Run(s, account.NewFactory(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewCollector()
	met := obs.NewMetrics()
	traced, err := Run(s, account.NewFactory(), Options{Seed: 42, Trace: tr, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Results, traced.Results) {
		t.Errorf("tracing changed the report:\n%+v\nvs\n%+v", plain.Results, traced.Results)
	}
	spans := tr.Spans()
	if err := obs.ValidateTrace(spans); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	caseSpans := map[string]bool{}
	var suiteSpans, callSpans int
	for _, sp := range spans {
		switch sp.Kind {
		case obs.KindSuite:
			suiteSpans++
		case obs.KindCase:
			caseSpans[sp.Name] = true
			if sp.Attrs["outcome"] == "" {
				t.Errorf("case span %s missing outcome attr", sp.Name)
			}
		case obs.KindCall:
			callSpans++
			if sp.Attrs["status"] == "" {
				t.Errorf("call span %s missing status attr", sp.Name)
			}
		}
	}
	if suiteSpans != 1 {
		t.Errorf("suite spans = %d, want 1", suiteSpans)
	}
	if callSpans == 0 {
		t.Error("no call spans recorded")
	}
	for _, tc := range s.Cases {
		if !caseSpans[tc.ID] {
			t.Errorf("case %s has no span", tc.ID)
		}
	}
	snap := met.Snapshot()
	if got := snap.Counters["case.total"]; got != int64(len(s.Cases)) {
		t.Errorf("case.total = %d, want %d", got, len(s.Cases))
	}
	if snap.Durations["case.duration"].Count != int64(len(s.Cases)) {
		t.Errorf("case.duration count = %d", snap.Durations["case.duration"].Count)
	}
}

// TestTraceStructureIdenticalSerialAndParallel: span IDs, emission order
// and timings may differ between worker counts, but the normalized span
// forest may not.
func TestTraceStructureIdenticalSerialAndParallel(t *testing.T) {
	s := accountSuite(t)
	run := func(parallelism int) []obs.Span {
		tr := obs.NewCollector()
		if _, err := Run(s, account.NewFactory(), Options{Seed: 42, Trace: tr, Parallelism: parallelism}); err != nil {
			t.Fatal(err)
		}
		return tr.Spans()
	}
	serial := obs.Tree(run(1))
	parallel := obs.Tree(run(runtime.GOMAXPROCS(0)))
	if !obs.EqualForests(serial, parallel) {
		t.Errorf("span forests differ between serial and parallel runs:\n%s\nvs\n%s",
			obs.RenderForest(serial), obs.RenderForest(parallel))
	}
}

// TestCaseFlagsExtraUnchangedByTracing guards the Extra envelope: a traced
// isolated case's Extra payload must be byte-identical to the untraced
// wire form once the parent strips the span envelope. Exercised here at
// the wire-format level (the full subprocess path is covered by the
// hostile and analysis isolation tests).
func TestCaseFlagsExtraUnchangedByTracing(t *testing.T) {
	payload := json.RawMessage(`{"reached":true,"infected":false}`)
	tr := obs.NewCollector()
	sp := tr.Start(0, obs.KindCall, "Poke")
	sp.End()
	wrapped := obs.WrapExtra(payload, tr.Spans())
	got, spans := obs.UnwrapExtra(wrapped)
	if string(got) != string(payload) {
		t.Errorf("payload bytes changed: %s -> %s", payload, got)
	}
	if len(spans) != 1 {
		t.Errorf("spans lost in round trip: %d", len(spans))
	}
}
