// Package stockdb is the warehouse stock-control substrate behind the
// paper's running example (Figure 1): class Product obtains its data from a
// stock database and references Provider objects. The paper treats both as
// given context ("another class of this system"); this package implements
// them so the Product component's transactions — insert, query, remove —
// run against real state.
package stockdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by database operations.
var (
	ErrDuplicate = errors.New("stockdb: product already in stock")
	ErrNotFound  = errors.New("stockdb: product not found")
)

// Provider is a goods supplier (the Provider class of Figure 1).
type Provider struct {
	ID   int64
	Name string
}

// String identifies the provider in reports.
func (p *Provider) String() string {
	if p == nil {
		return "<no provider>"
	}
	return fmt.Sprintf("Provider{id: %d, name: %q}", p.ID, p.Name)
}

// Record is one product row in the stock database.
type Record struct {
	Name       string
	Qty        int64
	Price      float64
	ProviderID int64 // 0 when the product has no provider
}

// DB is an in-memory stock database. It is safe for concurrent use.
type DB struct {
	mu        sync.Mutex
	nextID    int64
	providers map[int64]*Provider
	products  map[string]Record
}

// New creates an empty database.
func New() *DB {
	return &DB{
		providers: make(map[int64]*Provider),
		products:  make(map[string]Record),
	}
}

// AddProvider registers a supplier and returns it.
func (db *DB) AddProvider(name string) *Provider {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextID++
	p := &Provider{ID: db.nextID, Name: name}
	db.providers[p.ID] = p
	return p
}

// Provider returns a registered supplier.
func (db *DB) Provider(id int64) (*Provider, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.providers[id]
	return p, ok
}

// Providers returns all suppliers ordered by ID.
func (db *DB) Providers() []*Provider {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*Provider, 0, len(db.providers))
	for _, p := range db.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Insert adds a product record; inserting an existing name fails.
func (db *DB) Insert(rec Record) error {
	if rec.Name == "" {
		return errors.New("stockdb: product name is empty")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.products[rec.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, rec.Name)
	}
	db.products[rec.Name] = rec
	return nil
}

// Query returns the record for a product name.
func (db *DB) Query(name string) (Record, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.products[name]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return rec, nil
}

// Remove deletes and returns the record for a product name.
func (db *DB) Remove(name string) (Record, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.products[name]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(db.products, name)
	return rec, nil
}

// Update replaces the record for an existing product name.
func (db *DB) Update(rec Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.products[rec.Name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, rec.Name)
	}
	db.products[rec.Name] = rec
	return nil
}

// Count returns the number of stocked products.
func (db *DB) Count() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.products)
}

// Names returns the stocked product names, sorted.
func (db *DB) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.products))
	for name := range db.products {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Reset empties the database (providers included).
func (db *DB) Reset() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.providers = make(map[int64]*Provider)
	db.products = make(map[string]Record)
	db.nextID = 0
}
