// Package product implements the paper's running example (Figures 1-3):
// class Product from a warehouse stock-control system, built as a
// self-testable component. Its t-spec is the one Figure 3 sketches; its
// transaction flow model is Figure 2's, including the highlighted use-case
// path create -> query -> remove-from-stock -> destroy.
package product

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"sync"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/stockdb"
	"concat/internal/tspec"
)

// Name is the component (class) name.
const Name = "Product"

// Attribute bounds declared in the t-spec (Figure 3: "Attribute('qty',
// range, 1, 99999)").
const (
	MinQty   = 1
	MaxQty   = 99999
	MinPrice = 0.01
	MaxPrice = 10000.0
	MaxName  = 30
)

// Product is the component state: the Figure 1 attributes plus the stock
// database the instance works against.
type Product struct {
	bit.Base
	disp      component.Dispatcher
	db        *stockdb.DB
	qty       int64
	name      string
	price     float64
	prov      *stockdb.Provider
	destroyed bool
}

var _ component.Instance = (*Product)(nil)

func newProduct(db *stockdb.DB, qty int64, name string, price float64, prov *stockdb.Provider) *Product {
	p := &Product{db: db, qty: qty, name: name, price: price, prov: prov}
	p.disp.Register("UpdateName", p.updateName)
	p.disp.Register("UpdateQty", p.updateQty)
	p.disp.Register("UpdatePrice", p.updatePrice)
	p.disp.Register("UpdateProv", p.updateProv)
	p.disp.Register("ShowAttributes", p.showAttributes)
	p.disp.Register("InsertProduct", p.insertProduct)
	p.disp.Register("RemoveProduct", p.removeProduct)
	return p
}

// Invoke implements component.Instance.
func (p *Product) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if p.destroyed {
		return nil, fmt.Errorf("%w: %s", component.ErrDestroyed, Name)
	}
	return p.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (p *Product) Destroy() error {
	p.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable: every attribute stays inside
// its declared domain.
func (p *Product) InvariantTest() error {
	if err := p.Guard(); err != nil {
		return err
	}
	if err := p.AssertInvariant(p.qty >= MinQty && p.qty <= MaxQty,
		"InvariantTest", "1 <= qty <= 99999"); err != nil {
		return err
	}
	if err := p.AssertInvariant(p.price >= MinPrice && p.price <= MaxPrice,
		"InvariantTest", "0.01 <= price <= 10000"); err != nil {
		return err
	}
	return p.AssertInvariant(len(p.name) >= 1 && len(p.name) <= MaxName,
		"InvariantTest", "1 <= len(name) <= 30")
}

// Reporter implements bit.SelfTestable.
func (p *Product) Reporter(w io.Writer) error {
	if err := p.Guard(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Product{name: %q, qty: %d, price: %.2f, prov: %s, stocked: %v}\n",
		p.name, p.qty, p.price, p.prov, p.inStock())
	return err
}

func (p *Product) inStock() bool {
	if p.db == nil {
		return false
	}
	_, err := p.db.Query(p.name)
	return err == nil
}

func (p *Product) updateName(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("UpdateName", args, domain.KindString); err != nil {
		return nil, err
	}
	n := args[0].MustString()
	if err := p.AssertPre(len(n) >= 1 && len(n) <= MaxName, "UpdateName", "1 <= len(n) <= 30"); err != nil {
		return nil, err
	}
	p.name = n
	return nil, nil
}

func (p *Product) updateQty(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("UpdateQty", args, domain.KindInt); err != nil {
		return nil, err
	}
	q := args[0].MustInt()
	if err := p.AssertPre(q >= MinQty && q <= MaxQty, "UpdateQty", "1 <= q <= 99999"); err != nil {
		return nil, err
	}
	p.qty = q
	return nil, nil
}

func (p *Product) updatePrice(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("UpdatePrice", args, domain.KindFloat); err != nil {
		return nil, err
	}
	pr, err := args[0].AsFloat()
	if err != nil {
		return nil, err
	}
	if err := p.AssertPre(pr >= MinPrice && pr <= MaxPrice, "UpdatePrice", "0.01 <= p <= 10000"); err != nil {
		return nil, err
	}
	p.price = pr
	return nil, nil
}

func (p *Product) updateProv(args []domain.Value) ([]domain.Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("component: UpdateProv expects 1 argument, got %d", len(args))
	}
	if args[0].IsNil() {
		p.prov = nil
		return nil, nil
	}
	prov, ok := args[0].Ref().(*stockdb.Provider)
	if !ok {
		return nil, fmt.Errorf("product: UpdateProv argument is %T, want *stockdb.Provider", args[0].Ref())
	}
	p.prov = prov
	return nil, nil
}

func (p *Product) showAttributes(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("ShowAttributes", args); err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "name=%q qty=%d price=%.2f prov=%s", p.name, p.qty, p.price, p.prov)
	return []domain.Value{domain.Str(sb.String())}, nil
}

func (p *Product) insertProduct(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("InsertProduct", args); err != nil {
		return nil, err
	}
	rec := stockdb.Record{Name: p.name, Qty: p.qty, Price: p.price}
	if p.prov != nil {
		rec.ProviderID = p.prov.ID
	}
	if err := p.db.Insert(rec); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(1)}, nil
}

func (p *Product) removeProduct(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("RemoveProduct", args); err != nil {
		return nil, err
	}
	rec, err := p.db.Remove(p.name)
	if err != nil {
		return nil, err
	}
	return []domain.Value{domain.Str(rec.Name), domain.Int(rec.Qty)}, nil
}

// Factory builds Product instances against a shared stock database.
type Factory struct {
	db *stockdb.DB
}

var _ component.Factory = (*Factory)(nil)

// NewFactory returns a factory with a fresh private database.
func NewFactory() *Factory { return &Factory{db: stockdb.New()} }

// NewFactoryWithDB returns a factory against an existing database.
func NewFactoryWithDB(db *stockdb.DB) *Factory { return &Factory{db: db} }

// DB exposes the factory's database (examples inspect it).
func (f *Factory) DB() *stockdb.DB { return f.db }

// Fork implements component.Forker: every fork works against its own fresh
// stock database, so test cases executed against a fork are hermetic —
// InsertProduct/RemoveProduct in one case never leak into another,
// regardless of execution order or parallelism.
func (f *Factory) Fork() component.Factory { return NewFactory() }

var _ component.Forker = (*Factory)(nil)

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory. The three constructors of Figure 1:
// Product(), Product(q, n, p, prv) and Product(n).
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	switch ctor {
	case "Product":
		if err := component.WantArgs(ctor, args); err != nil {
			return nil, err
		}
		return newProduct(f.db, MinQty, "unnamed", MinPrice, nil), nil
	case "ProductFull":
		if err := component.WantArgs(ctor, args,
			domain.KindInt, domain.KindString, domain.KindFloat, domain.KindPointer); err != nil {
			return nil, err
		}
		qty := args[0].MustInt()
		name := args[1].MustString()
		price := args[2].MustFloat()
		if qty < MinQty || qty > MaxQty {
			return nil, fmt.Errorf("product: qty %d out of range", qty)
		}
		if len(name) < 1 || len(name) > MaxName {
			return nil, fmt.Errorf("product: name length %d out of range", len(name))
		}
		if price < MinPrice || price > MaxPrice {
			return nil, fmt.Errorf("product: price %g out of range", price)
		}
		var prov *stockdb.Provider
		if !args[3].IsNil() {
			p, ok := args[3].Ref().(*stockdb.Provider)
			if !ok {
				return nil, fmt.Errorf("product: prv argument is %T, want *stockdb.Provider", args[3].Ref())
			}
			prov = p
		}
		return newProduct(f.db, qty, name, price, prov), nil
	case "ProductNamed":
		if err := component.WantArgs(ctor, args, domain.KindString); err != nil {
			return nil, err
		}
		name := args[0].MustString()
		if len(name) < 1 || len(name) > MaxName {
			return nil, fmt.Errorf("product: name length %d out of range", len(name))
		}
		return newProduct(f.db, MinQty, name, MinPrice, nil), nil
	default:
		return nil, fmt.Errorf("product: unknown constructor %q", ctor)
	}
}

// Providers returns the executor provider map that completes the
// structured "Provider" parameters — the tester's manual-completion step,
// automated here by drawing suppliers from the factory's database.
func (f *Factory) Providers() map[string]domain.Provider {
	return map[string]domain.Provider{
		"Provider": domain.ProviderFunc(func(r *rand.Rand) (domain.Value, error) {
			ps := f.db.Providers()
			if len(ps) == 0 {
				return domain.Pointer(f.db.AddProvider("acme supply co")), nil
			}
			if r == nil {
				return domain.Pointer(ps[0]), nil
			}
			return domain.Pointer(ps[r.IntN(len(ps))]), nil
		}),
	}
}

var specOnce = sync.OnceValue(buildSpec)

// Spec returns the component's embedded t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

// buildSpec is the Figure 3 t-spec, extended with the update/insert/remove
// methods of Figure 1 and the Figure 2 transaction flow model.
func buildSpec() *tspec.Spec {
	return tspec.NewBuilder(Name).
		Attribute("qty", tspec.RangeInt(MinQty, MaxQty)).
		Attribute("name", tspec.StringLen(1, MaxName)).
		Attribute("price", tspec.RangeFloat(MinPrice, MaxPrice)).
		Attribute("prov", tspec.PointerTo("Provider", true)).
		Method("m1", "Product", "", tspec.CatConstructor).
		Method("m2", "ProductFull", "", tspec.CatConstructor).
		Param("q", tspec.RangeInt(MinQty, MaxQty)).
		Param("n", tspec.StringsOf("p1", "p2", "p3")).
		Param("p", tspec.RangeFloat(MinPrice, MaxPrice)).
		Param("prv", tspec.PointerTo("Provider", true)).
		Uses("qty", "name", "price", "prov").
		Method("m3", "ProductNamed", "", tspec.CatConstructor).
		Param("n", tspec.StringsOf("p1", "p2", "p3")).
		Uses("name").
		Method("m4", "~Product", "", tspec.CatDestructor).
		Method("m5", "UpdateName", "", tspec.CatUpdate).
		Param("n", tspec.StringsOf("p1", "p2", "p3")).
		Uses("name").
		Method("m6", "UpdateQty", "", tspec.CatUpdate).
		Param("q", tspec.RangeInt(MinQty, MaxQty)).
		Uses("qty").
		Method("m7", "UpdatePrice", "", tspec.CatUpdate).
		Param("p", tspec.RangeFloat(MinPrice, MaxPrice)).
		Uses("price").
		Method("m8", "UpdateProv", "", tspec.CatUpdate).
		Param("prv", tspec.PointerTo("Provider", true)).
		Uses("prov").
		Method("m9", "ShowAttributes", "string", tspec.CatAccess).
		Uses("qty", "name", "price", "prov").
		Method("m10", "InsertProduct", "int", tspec.CatUpdate).
		Uses("qty", "name", "price", "prov").
		Method("m11", "RemoveProduct", "string", tspec.CatUpdate).
		Uses("name").
		// Figure 2's transaction flow model. The highlighted use case is
		// n1 -> n3 -> n5 -> n6: create, obtain data, remove from stock,
		// destroy.
		Node("n1", true, "m1", "m2", "m3").
		Node("n2", false, "m5", "m6", "m7", "m8"). // update attributes
		Node("n3", false, "m9").                   // obtain data
		Node("n4", false, "m10").                  // insert into stock
		Node("n5", false, "m11").                  // remove from stock
		Node("n6", false, "m4").                   // destroy
		Edge("n1", "n2").
		Edge("n1", "n3").
		Edge("n1", "n4").
		Edge("n1", "n6").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n6").
		Edge("n3", "n4").
		Edge("n3", "n5").
		Edge("n3", "n6").
		Edge("n4", "n3").
		Edge("n4", "n5").
		Edge("n4", "n6").
		Edge("n5", "n6").
		MustBuild()
}

// UseCasePath is the Figure 2 highlighted transaction: create a Product,
// obtain its data, remove it from the database, destroy the object.
func UseCasePath() []string { return []string{"n1", "n3", "n5", "n6"} }
