// Package driver implements the Driver Generator of §3.4.1: it consumes a
// component's t-spec, enumerates transactions under the transaction coverage
// criterion, draws method arguments at random from the declared parameter
// domains, and emits an executable test suite.
//
// In the paper a generated test case is a C++ template function (Figure 6)
// and a driver is a compiled program (Figure 7). Here a suite is data,
// executed by package testexec through the component.Instance interface; an
// emitter that renders a suite as a runnable Go driver source file is
// provided for fidelity with the paper's code-generation architecture.
package driver

import (
	"encoding/json"
	"fmt"
	"io"

	"concat/internal/domain"
)

// Hole marks an argument position the generator could not fill: a
// structured (object/pointer) parameter. The paper: "Structured type
// parameters (including objects, arrays, and pointers) must be completed
// manually by the tester." The executor completes holes from its Provider
// map at run time.
type Hole struct {
	Arg      int    `json:"arg"`      // argument index within the call
	TypeName string `json:"typeName"` // required component type
	Nullable bool   `json:"nullable"` // nil is an acceptable completion
}

// Call is one method invocation within a test case.
type Call struct {
	MethodID string         `json:"methodId"`       // t-spec identifier (m1, ...)
	Method   string         `json:"method"`         // method name
	Args     []domain.Value `json:"args,omitempty"` // generated arguments; hole positions carry nil
	Holes    []Hole         `json:"holes,omitempty"`
}

// TestCase exercises one transaction: a birth-to-death sequence of calls.
// Calls[0] is the constructor and the final call is the destructor, matching
// the paper's rule that a test case "sets the object to an initial state (by
// using one of its constructors) and terminates by destroying it".
type TestCase struct {
	ID          string   `json:"id"`          // TC0, TC1, ... (the paper's TestCase0 naming)
	Transaction string   `json:"transaction"` // canonical transaction key (tfm.Transaction.Key)
	Path        []string `json:"path"`        // node IDs traversed
	Calls       []Call   `json:"calls"`
}

// Methods returns the distinct method names the case invokes, in call order.
func (tc TestCase) Methods() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range tc.Calls {
		if !seen[c.Method] {
			seen[c.Method] = true
			out = append(out, c.Method)
		}
	}
	return out
}

// Holes counts argument positions awaiting manual completion.
func (tc TestCase) NumHoles() int {
	n := 0
	for _, c := range tc.Calls {
		n += len(c.Holes)
	}
	return n
}

// Suite is an executable test suite for one component.
type Suite struct {
	Component string     `json:"component"`
	Seed      int64      `json:"seed"`
	Criterion string     `json:"criterion"`
	Cases     []TestCase `json:"cases"`
}

// Stats summarizes a suite.
type Stats struct {
	Cases, Calls, Holes int
}

// Stats computes the suite summary.
func (s *Suite) Stats() Stats {
	var st Stats
	st.Cases = len(s.Cases)
	for _, tc := range s.Cases {
		st.Calls += len(tc.Calls)
		st.Holes += tc.NumHoles()
	}
	return st
}

// String renders the stats line.
func (st Stats) String() string {
	return fmt.Sprintf("%d test cases, %d calls, %d holes", st.Cases, st.Calls, st.Holes)
}

// CaseByID returns the named test case.
func (s *Suite) CaseByID(id string) (TestCase, bool) {
	for _, tc := range s.Cases {
		if tc.ID == id {
			return tc, true
		}
	}
	return TestCase{}, false
}

// Save writes the suite as JSON — the persistent form the test history
// stores and reloads.
func (s *Suite) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("driver: encoding suite: %w", err)
	}
	return nil
}

// Load reads a suite saved with Save.
func Load(r io.Reader) (*Suite, error) {
	var s Suite
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("driver: decoding suite: %w", err)
	}
	return &s, nil
}
