package pool

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte(`{"component":"Account","items":[]}`),
		bytes.Repeat([]byte("abc\n"), 10000),
		{0, 1, 2, 255, '\n', '\n', 0},
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range payloads {
		got, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(br, 0); err != io.EOF {
		t.Fatalf("expected clean EOF after last frame, got %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix of a full frame must yield a non-nil error and
	// never a payload; cut points inside the header, payload and
	// terminator are all covered.
	for cut := 0; cut < len(full); cut++ {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		_, err := ReadFrame(br, 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut %d: want io.EOF, got %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut %d: truncated frame decoded without error", cut)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, bytes.Repeat([]byte("a"), 1024)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(bufio.NewReader(&buf), 100)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A header claiming an absurd length must fail before allocating.
	huge := strings.NewReader("999999999999999999999999\npayload\n")
	_, err = ReadFrame(bufio.NewReader(huge), 0)
	if err == nil {
		t.Fatal("absurd length header decoded without error")
	}
}

func TestReadFrameMalformed(t *testing.T) {
	cases := []string{
		"\n",          // empty header
		"12x\nabc\n",  // non-digit in header
		"abc\n",       // no digits at all
		"3\nabcX",     // wrong terminator
		"-3\nabc\n",   // negative length
		" 3\nabc\n",   // leading space
		"3 \nabc\n",   // trailing space
		"\x00\nabc\n", // binary garbage header
	}
	for _, in := range cases {
		_, err := ReadFrame(bufio.NewReader(strings.NewReader(in)), 0)
		if err == nil {
			t.Fatalf("malformed input %q decoded without error", in)
		}
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic and never hand back a payload from a stream that was not a valid
// frame prefix. When it does decode a frame, re-encoding must round-trip.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte("5\nhello\n"))
	f.Add([]byte("0\n\n"))
	f.Add([]byte("\n"))
	f.Add([]byte("99999999999999999999\nx\n"))
	f.Add([]byte("3\nab"))
	f.Add([]byte{0, 10, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		payload, err := ReadFrame(br, 1<<20)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-encoding decoded payload: %v", err)
		}
		again, err := ReadFrame(bufio.NewReader(&buf), 1<<20)
		if err != nil {
			t.Fatalf("re-reading re-encoded payload: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("frame round-trip mismatch")
		}
	})
}

// FuzzFrameRoundTrip is the write-side property: any payload under the
// limit encodes to exactly one decodable frame with identical bytes.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"result\":null}"))
	f.Add([]byte{'\n', '0', '\n'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		br := bufio.NewReader(&buf)
		got, err := ReadFrame(br, int64(len(payload))+1)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch after round-trip")
		}
		if _, err := ReadFrame(br, 0); err != io.EOF {
			t.Fatalf("stream not clean after one frame: %v", err)
		}
	})
}
