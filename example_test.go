package concat_test

import (
	"fmt"
	"os"
	"strings"

	"concat"
)

// ExampleParseSpec parses a t-spec in the paper's Figure 3 notation.
func ExampleParseSpec() {
	spec, err := concat.ParseSpec(`
Class('Counter', No, <empty>, <empty>)
Attribute('n', range, 0, 100)
Method(m1, 'Counter', <empty>, constructor, 0)
Method(m2, '~Counter', <empty>, destructor, 0)
Method(m3, 'Inc', <empty>, update, 1)
Parameter(m3, 'by', range, 1, 10)
Node(n1, Yes, 1, [m1])
Node(n2, No, 1, [m3])
Node(n3, No, 0, [m2])
Edge(n1, n2)
Edge(n2, n3)
`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	g, _ := spec.TFM()
	fmt.Printf("%s: %d methods, model %s\n", spec.Class.Name, len(spec.Methods), g.Stats())
	// Output:
	// Counter: 3 methods, model 3 nodes, 2 links (1 start, 1 final)
}

// ExampleGenerate runs the Driver Generator on a built-in component's
// embedded specification.
func ExampleGenerate() {
	comp := concat.Target("Account")
	suite, err := concat.Generate(comp.Spec(), concat.GenOptions{Seed: 42})
	if err != nil {
		fmt.Println("generate error:", err)
		return
	}
	fmt.Println(suite.Stats())
	first := suite.Cases[0]
	fmt.Printf("%s exercises %s\n", first.ID, strings.ReplaceAll(first.Transaction, ">", " -> "))
	// Output:
	// 9 test cases, 39 calls, 0 holes
	// TC0 exercises n1 -> n2 -> n2 -> n3 -> n4 -> n5
}

// ExampleComponent_SelfTest is the paper's §3.1 consumer workflow in one
// call: generate from the embedded t-spec, execute in test mode, report.
func ExampleComponent_SelfTest() {
	comp := concat.Target("Account")
	_, report, err := comp.SelfTest(concat.GenOptions{Seed: 42}, concat.ExecOptions{})
	if err != nil {
		fmt.Println("self-test error:", err)
		return
	}
	fmt.Println(report.Summary())
	// Output:
	// Account: 9 cases (pass=9)
}

// ExampleDerive applies the hierarchical incremental reuse technique
// (§3.4.2) to build a subclass suite from its parent's.
func ExampleDerive() {
	parent := concat.Target("ObList")
	child := concat.Target("SortableObList")
	opts := concat.GenOptions{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 2}
	parentSuite, err := concat.Generate(parent.Spec(), opts)
	if err != nil {
		fmt.Println("generate error:", err)
		return
	}
	d, err := concat.Derive(parent.Spec(), child.Spec(), parentSuite, opts)
	if err != nil {
		fmt.Println("derive error:", err)
		return
	}
	skip, reuse, regen := d.Plan.Counts()
	fmt.Printf("transactions: %d skipped, %d reused, %d regenerated\n", skip, reuse, regen)
	// Output:
	// transactions: 18 skipped, 22 reused, 22 regenerated
}

// ExampleMutate scores a test set with the paper's interface-mutation
// operators (Table 1).
func ExampleMutate() {
	comp := concat.Target("Account")
	suite, err := concat.Generate(comp.Spec(), concat.GenOptions{
		Seed: 3, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		fmt.Println("generate error:", err)
		return
	}
	res, err := concat.Mutate("Account", suite, nil, nil)
	if err != nil {
		fmt.Println("mutate error:", err)
		return
	}
	table := res.Tabulate()
	fmt.Printf("mutants=%d killed=%d equivalent=%d\n",
		table.Total.Mutants, table.Total.Killed, table.Total.Equivalent)
}

// ExampleEmitDriver renders a generated suite as the paper's Figures 6-7
// standalone driver source.
func ExampleEmitDriver() {
	comp := concat.Target("Account")
	suite, _ := concat.Generate(comp.Spec(), concat.GenOptions{Seed: 42})
	err := concat.EmitDriver(os.Stdout, &concat.Suite{
		Component: suite.Component,
		Seed:      suite.Seed,
		Criterion: suite.Criterion,
		Cases:     suite.Cases[:1],
	}, concat.EmitOptions{
		ComponentImport: "concat/internal/components/account",
		FactoryExpr:     "account.NewFactory()",
	})
	if err != nil {
		fmt.Println("emit error:", err)
	}
}
