// The shared backend conformance suite: every Backend implementation —
// filesystem, in-memory, and the HTTP remote client over each of them —
// must satisfy the same observable contract (round-trip, counted clean
// misses, overwrite, key independence, Len, Enabled). New backends join by
// adding one constructor line.

package store

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

// conformanceBackends enumerates every shipped backend; make returns a
// fresh, empty instance per subtest.
func conformanceBackends(t *testing.T) []struct {
	name string
	make func(t *testing.T) Backend
} {
	t.Helper()
	openFS := func(t *testing.T) Backend {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	remoteOver := func(raw func(t *testing.T) RawBackend) func(t *testing.T) Backend {
		return func(t *testing.T) Backend {
			ts := httptest.NewServer(NewHandler(raw(t)))
			t.Cleanup(ts.Close)
			return NewRemote(ts.URL, nil)
		}
	}
	return []struct {
		name string
		make func(t *testing.T) Backend
	}{
		{"fs", openFS},
		{"mem", func(t *testing.T) Backend { return NewMem() }},
		{"remote-over-mem", remoteOver(func(t *testing.T) RawBackend { return NewMem() })},
		{"remote-over-fs", remoteOver(func(t *testing.T) RawBackend {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		})},
	}
}

func TestBackendConformance(t *testing.T) {
	for _, be := range conformanceBackends(t) {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) {
				b := be.make(t)
				want := Verdict{Killed: true, Reason: 3, KillingCase: "c2", Reached: true, Infected: true}
				if err := b.Put(testKey("m1"), want); err != nil {
					t.Fatal(err)
				}
				var got Verdict
				ok, err := b.Get(testKey("m1"), &got)
				if err != nil || !ok {
					t.Fatalf("Get after Put = (%v, %v), want hit", ok, err)
				}
				if got != want {
					t.Errorf("round-trip verdict = %+v, want %+v", got, want)
				}
				if st := b.Stats(); st.Hits != 1 || st.Misses != 0 {
					t.Errorf("stats after one hit = %+v", st)
				}
			})
			t.Run("CleanMissCounted", func(t *testing.T) {
				b := be.make(t)
				var v Verdict
				ok, err := b.Get(testKey("absent"), &v)
				if err != nil || ok {
					t.Fatalf("Get on empty backend = (%v, %v), want clean miss", ok, err)
				}
				if st := b.Stats(); st.Misses != 1 || st.Hits != 0 || st.Quarantined != 0 {
					t.Errorf("stats after one miss = %+v", st)
				}
			})
			t.Run("Overwrite", func(t *testing.T) {
				b := be.make(t)
				if err := b.Put(testKey("m1"), Verdict{Killed: false}); err != nil {
					t.Fatal(err)
				}
				if err := b.Put(testKey("m1"), Verdict{Killed: true, Reason: 1}); err != nil {
					t.Fatal(err)
				}
				var got Verdict
				if ok, err := b.Get(testKey("m1"), &got); err != nil || !ok {
					t.Fatalf("Get = (%v, %v)", ok, err)
				}
				if !got.Killed || got.Reason != 1 {
					t.Errorf("overwrite not visible: %+v", got)
				}
				if entries, _, err := b.Len(); err != nil || entries != 1 {
					t.Errorf("Len after overwrite = (%d, %v), want 1 entry", entries, err)
				}
			})
			t.Run("KeysIndependent", func(t *testing.T) {
				b := be.make(t)
				if err := b.Put(testKey("m1"), Verdict{Killed: true}); err != nil {
					t.Fatal(err)
				}
				if err := b.Put(testKey("m2"), Verdict{Killed: false, Reached: true}); err != nil {
					t.Fatal(err)
				}
				var v1, v2 Verdict
				if ok, _ := b.Get(testKey("m1"), &v1); !ok || !v1.Killed {
					t.Errorf("m1 = (%v, %+v)", ok, v1)
				}
				if ok, _ := b.Get(testKey("m2"), &v2); !ok || v2.Killed || !v2.Reached {
					t.Errorf("m2 = (%v, %+v)", ok, v2)
				}
				if entries, skipped, err := b.Len(); err != nil || entries != 2 || skipped != 0 {
					t.Errorf("Len = (%d, %d, %v), want (2, 0, nil)", entries, skipped, err)
				}
			})
			t.Run("ArbitraryPayload", func(t *testing.T) {
				// The store also caches whole suite reports: any
				// JSON-encodable payload must round-trip, not just Verdict.
				b := be.make(t)
				type payload struct {
					Name  string   `json:"name"`
					Cases []string `json:"cases"`
					N     int      `json:"n"`
				}
				want := payload{Name: "suite", Cases: []string{"a", "b"}, N: 7}
				k := testKey("")
				k.Kind = KindSuiteReport
				if err := b.Put(k, want); err != nil {
					t.Fatal(err)
				}
				var got payload
				if ok, err := b.Get(k, &got); err != nil || !ok {
					t.Fatalf("Get = (%v, %v)", ok, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("payload round-trip = %+v, want %+v", got, want)
				}
			})
			t.Run("Enabled", func(t *testing.T) {
				if b := be.make(t); !Enabled(b) {
					t.Error("a constructed backend must report Enabled")
				}
			})
		})
	}
}

func TestEnabled(t *testing.T) {
	if Enabled(nil) {
		t.Error("Enabled(nil) = true")
	}
	if Enabled((*Store)(nil)) {
		t.Error("Enabled(typed-nil *Store) = true — the disabled cache leaked through the interface")
	}
	if !Enabled(NewMem()) {
		t.Error("Enabled(NewMem()) = false")
	}
	if st := BackendStats((*Store)(nil)); st != (Stats{}) {
		t.Errorf("BackendStats on disabled store = %+v", st)
	}
}
