package sandbox

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"time"
)

// RetryPolicy bounds a retry loop: up to Attempts tries with exponential
// backoff starting at BaseDelay and capped at MaxDelay. The backoff is
// deliberately jitter-free — retries must not introduce nondeterminism
// into otherwise reproducible campaign reports, and the callers retry
// host-level contention (fork storms), not distributed-systems thundering
// herds.
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is the executor's policy for transient spawn errors:
// three attempts, 20ms/40ms between them.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 20 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
}

// Retry runs fn up to p.Attempts times, sleeping the policy's backoff
// between attempts, but only while Transient classifies the error as
// retryable: a deterministic failure is returned immediately so the final
// classification of a case never depends on how many retries ran. The
// returned error is the last attempt's, annotated with the attempt count
// when more than one attempt ran.
func Retry(p RetryPolicy, fn func() error) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if attempt >= p.Attempts || !Transient(err) {
			if attempt > 1 {
				return fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err
		}
		if delay > 0 {
			time.Sleep(delay)
			delay *= 2
			if p.MaxDelay > 0 && delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
	}
}

// Transient classifies harness-level errors worth retrying: resource
// contention around process spawning (EAGAIN from fork, ETXTBSY from a
// concurrently written binary, transient memory pressure). Everything else
// — including every failure of the code under test — is deterministic and
// must not be retried.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	for _, errno := range []syscall.Errno{syscall.EAGAIN, syscall.ETXTBSY, syscall.ENOMEM, syscall.EINTR} {
		if errors.Is(err, errno) {
			return true
		}
	}
	// Fallback for wrapped exec errors that lost their errno identity.
	msg := err.Error()
	for _, s := range []string{"resource temporarily unavailable", "text file busy", "cannot allocate memory"} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}
