// Package loadgen is the traffic harness for the campaign service: N
// concurrent submitters and M /events subscribers drive a live `concat
// serve` for a fixed request budget, measuring client-side throughput and
// latency quantiles per endpoint, verifying the 503 + Retry-After
// backpressure contract under queue saturation, and cross-checking the
// server's /metrics request counters against its own client-side counts —
// the two sides are built from the same label convention (obs.Labeled), so
// every (route, method, code) series the client produced must appear on the
// server with exactly the same delta.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"concat/internal/obs"
	"concat/internal/serve"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8437".
	BaseURL string `json:"baseUrl"`
	// Requests is the campaign-submission budget: the run ends once this
	// many submissions were accepted and reached a terminal state.
	Requests int `json:"requests"`
	// Submitters is the number of concurrent submission workers.
	Submitters int `json:"submitters"`
	// Subscribers is the number of concurrent /events consumers; each
	// streams accepted campaigns' NDJSON events to exhaustion.
	Subscribers int `json:"subscribers"`
	// Component and Seed shape the submitted campaigns. A fixed seed makes
	// every campaign after the first a warm verdict-store replay, so the
	// measured load is the service layer, not mutant execution.
	Component string `json:"component"`
	Seed      int64  `json:"seed"`
	// Logf, when non-nil, receives progress lines. Not serialized.
	Logf func(format string, a ...any) `json:"-"`
}

func (c *Config) setDefaults() {
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.Submitters <= 0 {
		c.Submitters = 4
	}
	if c.Subscribers < 0 {
		c.Subscribers = 0
	}
	if c.Component == "" {
		c.Component = "Account"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

func (c *Config) logf(format string, a ...any) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// EndpointStats is one endpoint's client-side latency summary. Quantiles
// are nearest-rank over every completed request.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	P50US    int64 `json:"p50Us"`
	P95US    int64 `json:"p95Us"`
	P99US    int64 `json:"p99Us"`
	MaxUS    int64 `json:"maxUs"`
}

// Backpressure summarizes the queue-saturation behaviour observed.
type Backpressure struct {
	// Rejected503 counts campaign submissions the server refused with 503.
	Rejected503 int64 `json:"rejected503"`
	// MissingRetryAfter counts 503 responses without a Retry-After header —
	// any nonzero value is a contract violation.
	MissingRetryAfter int64 `json:"missingRetryAfter"`
}

// CrossCheck reports the server-vs-client counter reconciliation.
type CrossCheck struct {
	// Series is how many (route, method, code) series were compared.
	Series int `json:"series"`
	// Agree is true when every compared series matched exactly.
	Agree bool `json:"agree"`
	// Mismatches lists any disagreeing series as "series: server=N client=M".
	Mismatches []string `json:"mismatches,omitempty"`
}

// Result is one load run's measurement, serialized to BENCH_SERVICE.json.
type Result struct {
	Config             Config                   `json:"config"`
	CPUs               int                      `json:"cpus"`
	GoVersion          string                   `json:"goVersion"`
	ServerVersion      string                   `json:"serverVersion"`
	WallSeconds        float64                  `json:"wallSeconds"`
	HTTPRequests       int64                    `json:"httpRequests"`
	RequestsPerSecond  float64                  `json:"requestsPerSecond"`
	CampaignsCompleted int64                    `json:"campaignsCompleted"`
	CampaignsFailed    int64                    `json:"campaignsFailed"`
	CampaignsPerSecond float64                  `json:"campaignsPerSecond"`
	EventBytes         int64                    `json:"eventBytes"`
	Endpoints          map[string]EndpointStats `json:"endpoints"`
	Backpressure       Backpressure             `json:"backpressure"`
	CrossCheck         CrossCheck               `json:"crossCheck"`
}

// recorder accumulates the client-side view of the run: per-series request
// counts keyed exactly like the server's concat_http_requests_total series,
// and latency samples per endpoint.
type recorder struct {
	mu      sync.Mutex
	counts  map[string]int64
	samples map[string][]int64
}

// seriesKey builds the full Prometheus series name for one response, using
// the same obs.Labeled convention the server middleware records with.
func seriesKey(route, method string, code int) string {
	labeled := obs.Labeled("http_requests",
		"route", route, "method", method, "code", fmt.Sprintf("%d", code))
	return "concat_http_requests_total" + strings.TrimPrefix(labeled, "http_requests")
}

func (r *recorder) record(route, method string, code int, d time.Duration) {
	ep := method + " " + route
	r.mu.Lock()
	r.counts[seriesKey(route, method, code)]++
	r.samples[ep] = append(r.samples[ep], d.Microseconds())
	r.mu.Unlock()
}

// quantileUS is the nearest-rank quantile of sorted microsecond samples.
func quantileUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func (r *recorder) endpoints() (map[string]EndpointStats, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]EndpointStats, len(r.samples))
	var total int64
	for ep, samples := range r.samples {
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out[ep] = EndpointStats{
			Requests: int64(len(sorted)),
			P50US:    quantileUS(sorted, 0.50),
			P95US:    quantileUS(sorted, 0.95),
			P99US:    quantileUS(sorted, 0.99),
			MaxUS:    sorted[len(sorted)-1],
		}
		total += int64(len(sorted))
	}
	return out, total
}

// client wraps the HTTP work: every request lands in the recorder under its
// route pattern (the same label the server middleware uses).
type client struct {
	base string
	http *http.Client
	rec  *recorder
}

// do runs one request against path, recording it under route, and returns
// the status, body and headers.
func (c *client) do(method, route, path string, body []byte) (int, []byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", "concat-loadgen/"+serve.Version)
	start := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%s %s: %w", method, path, err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%s %s: reading body: %w", method, path, err)
	}
	c.rec.record(route, method, resp.StatusCode, time.Since(start))
	return resp.StatusCode, payload, resp.Header, nil
}

// scrape fetches and strictly parses /metrics. The scrape itself is
// recorded client-side like any other request, but the /metrics route is
// excluded from the cross-check: the middleware counts a scrape after its
// handler ran, so no scrape can observe itself.
func (c *client) scrape() (*Scrape, error) {
	code, body, _, err := c.do("GET", "/metrics", "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", code)
	}
	return ParseExposition(string(body))
}

// Run drives one load run against a live service and returns its
// measurement. The run is an error if the service misbehaves (malformed
// responses, campaigns that never finish); a failed cross-check is reported
// in the Result rather than as an error so callers can print the evidence.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	rec := &recorder{counts: map[string]int64{}, samples: map[string][]int64{}}
	cl := &client{base: strings.TrimSuffix(cfg.BaseURL, "/"), http: &http.Client{}, rec: rec}

	before, err := cl.scrape()
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-run scrape: %w", err)
	}
	serverVersion := buildInfoVersion(before)

	var (
		claimed    atomic.Int64
		completed  atomic.Int64
		failed     atomic.Int64
		rejected   atomic.Int64
		noRetryHdr atomic.Int64
		eventBytes atomic.Int64
		errMu      sync.Mutex
		runErr     error
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	events := make(chan string, cfg.Requests)

	body, err := json.Marshal(serve.Request{Component: cfg.Component, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	var subWG sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for id := range events {
				code, payload, _, err := cl.do("GET", "/campaigns/{id}/events", "/campaigns/"+id+"/events", nil)
				if err != nil {
					fail(err)
					return
				}
				if code != http.StatusOK {
					fail(fmt.Errorf("events %s: HTTP %d", id, code))
					return
				}
				eventBytes.Add(int64(len(payload)))
			}
		}()
	}

	var genWG sync.WaitGroup
	for i := 0; i < cfg.Submitters; i++ {
		genWG.Add(1)
		go func() {
			defer genWG.Done()
			for {
				n := claimed.Add(1)
				if n > int64(cfg.Requests) {
					return
				}
				id, ok := submitOne(cl, body, &rejected, &noRetryHdr, fail)
				if !ok {
					return
				}
				if cfg.Subscribers > 0 {
					events <- id
				}
				switch waitTerminal(cl, id, fail) {
				case serve.StateDone:
					completed.Add(1)
				case "":
					return // error already recorded
				default:
					failed.Add(1)
				}
				if n%25 == 0 {
					cfg.logf("loadgen: %d/%d campaigns submitted", n, cfg.Requests)
				}
			}
		}()
	}
	genWG.Wait()
	close(events)
	subWG.Wait()
	wall := time.Since(start)
	errMu.Lock()
	err = runErr
	errMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	after, err := cl.scrape()
	if err != nil {
		return nil, fmt.Errorf("loadgen: post-run scrape: %w", err)
	}

	endpoints, totalHTTP := rec.endpoints()
	res := &Result{
		Config:             cfg,
		CPUs:               runtime.NumCPU(),
		GoVersion:          runtime.Version(),
		ServerVersion:      serverVersion,
		WallSeconds:        wall.Seconds(),
		HTTPRequests:       totalHTTP,
		RequestsPerSecond:  float64(totalHTTP) / wall.Seconds(),
		CampaignsCompleted: completed.Load(),
		CampaignsFailed:    failed.Load(),
		CampaignsPerSecond: float64(completed.Load()) / wall.Seconds(),
		EventBytes:         eventBytes.Load(),
		Endpoints:          endpoints,
		Backpressure: Backpressure{
			Rejected503:       rejected.Load(),
			MissingRetryAfter: noRetryHdr.Load(),
		},
		CrossCheck: crossCheck(before, after, rec),
	}
	return res, nil
}

// submitOne posts one campaign, riding out 503 backpressure, and returns
// the accepted job ID.
func submitOne(cl *client, body []byte, rejected, noRetryHdr *atomic.Int64, fail func(error)) (string, bool) {
	for {
		code, payload, hdr, err := cl.do("POST", "/campaigns", "/campaigns", body)
		if err != nil {
			fail(err)
			return "", false
		}
		switch code {
		case http.StatusAccepted:
			var st serve.Status
			if err := json.Unmarshal(payload, &st); err != nil || st.ID == "" {
				fail(fmt.Errorf("submit: bad 202 payload %q", payload))
				return "", false
			}
			return st.ID, true
		case http.StatusServiceUnavailable:
			rejected.Add(1)
			if hdr.Get("Retry-After") == "" {
				noRetryHdr.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			fail(fmt.Errorf("submit: HTTP %d: %s", code, payload))
			return "", false
		}
	}
}

// waitTerminal polls the campaign's status until it reaches a terminal
// state, which it returns ("" after a recorded error).
func waitTerminal(cl *client, id string, fail func(error)) string {
	for {
		code, payload, _, err := cl.do("GET", "/campaigns/{id}", "/campaigns/"+id, nil)
		if err != nil {
			fail(err)
			return ""
		}
		if code != http.StatusOK {
			fail(fmt.Errorf("status %s: HTTP %d: %s", id, code, payload))
			return ""
		}
		var st serve.Status
		if err := json.Unmarshal(payload, &st); err != nil {
			fail(fmt.Errorf("status %s: %v", id, err))
			return ""
		}
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateQuarantined:
			return st.State
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// buildInfoVersion extracts the version label of the concat_build_info
// series from a scrape.
func buildInfoVersion(s *Scrape) string {
	for series := range s.Samples {
		if !strings.HasPrefix(series, "concat_build_info{") {
			continue
		}
		if i := strings.Index(series, `version="`); i >= 0 {
			rest := series[i+len(`version="`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				return rest[:j]
			}
		}
	}
	return ""
}

// crossCheck reconciles the server's concat_http_requests_total deltas
// against the client's own counts, series by series. The /metrics route is
// excluded — the middleware counts a scrape only after its handler ran, so
// the before/after scrapes themselves can never reconcile.
func crossCheck(before, after *Scrape, rec *recorder) CrossCheck {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	series := map[string]bool{}
	for s := range rec.counts {
		series[s] = true
	}
	for s := range after.Samples {
		if strings.HasPrefix(s, "concat_http_requests_total{") {
			series[s] = true
		}
	}
	cc := CrossCheck{Agree: true}
	for s := range series {
		if strings.Contains(s, `route="/metrics"`) {
			continue
		}
		serverDelta := int64(after.Value(s) - before.Value(s))
		if clientCount := rec.counts[s]; serverDelta != clientCount {
			cc.Agree = false
			cc.Mismatches = append(cc.Mismatches,
				fmt.Sprintf("%s: server=%d client=%d", s, serverDelta, clientCount))
		}
		cc.Series++
	}
	sort.Strings(cc.Mismatches)
	return cc
}
