package tfm

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateDot = flag.Bool("update", false, "rewrite golden DOT files")

// checkGolden compares got against the named golden file, rewriting it
// under -update. Golden files pin the exact DOT bytes so renderer drift is
// a reviewed change, not an accident.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateDot {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestWriteDOTGolden(t *testing.T) {
	g := diamond(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, Transaction{Path: []NodeID{"n1", "n2", "n4"}}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	checkGolden(t, "diamond.dot.golden", sb.String())
}

func TestWriteDOTHeatmapGolden(t *testing.T) {
	g := diamond(t)
	nodeHits := map[NodeID]int64{"n1": 3, "n2": 4, "n4": 3}
	// n3 and its edges are deliberately unexercised: the coverage hole must
	// render gray and dashed.
	edgeHits := map[Edge]int64{
		{From: "n1", To: "n2"}: 2,
		{From: "n2", To: "n2"}: 1,
		{From: "n2", To: "n4"}: 2,
	}
	var sb strings.Builder
	if err := g.WriteDOTHeatmap(&sb, nodeHits, edgeHits); err != nil {
		t.Fatalf("WriteDOTHeatmap: %v", err)
	}
	out := sb.String()
	checkGolden(t, "diamond_heatmap.dot.golden", out)
	// Structural spot checks independent of the golden bytes.
	if !strings.Contains(out, "style=filled") {
		t.Error("heatmap nodes are not filled")
	}
	if !strings.Contains(out, `fillcolor="gray92"`) {
		t.Error("unexercised n3 should be gray")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("0-hit edges should be dashed")
	}
}

// TestWriteDOTHeatmapDeterministic pins byte-identical re-renders: map
// iteration order must never leak into the artifact.
func TestWriteDOTHeatmapDeterministic(t *testing.T) {
	g := diamond(t)
	nodeHits := map[NodeID]int64{"n1": 5, "n2": 2, "n3": 1, "n4": 5}
	edgeHits := map[Edge]int64{
		{From: "n1", To: "n2"}: 2,
		{From: "n1", To: "n3"}: 1,
		{From: "n2", To: "n4"}: 2,
		{From: "n3", To: "n4"}: 1,
	}
	var a, b strings.Builder
	if err := g.WriteDOTHeatmap(&a, nodeHits, edgeHits); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOTHeatmap(&b, nodeHits, edgeHits); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("heatmap render is not deterministic")
	}
}

// TestWriteDOTHeatmapEmptyHits: a heatmap with no coverage at all is the
// all-gray drawing, not a crash (division by zero on the max).
func TestWriteDOTHeatmapEmptyHits(t *testing.T) {
	g := linear(t)
	var sb strings.Builder
	if err := g.WriteDOTHeatmap(&sb, nil, nil); err != nil {
		t.Fatalf("WriteDOTHeatmap: %v", err)
	}
	if strings.Contains(sb.String(), "#ff") {
		t.Errorf("uncovered model should have no red:\n%s", sb.String())
	}
}

func TestHeatColor(t *testing.T) {
	if got := heatColor(0, 10); got != "gray92" {
		t.Errorf("heatColor(0) = %q", got)
	}
	if got := heatColor(10, 10); got != "#ff5050" {
		t.Errorf("heatColor(max) = %q, want full red", got)
	}
	if got := heatColor(5, 10); got <= "#ff5050" || got >= "#ffffff" {
		t.Errorf("heatColor(half) = %q, want between extremes", got)
	}
}
