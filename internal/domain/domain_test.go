package domain

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"math/rand/v2"
)

func TestNewIntRangeValidation(t *testing.T) {
	if _, err := NewIntRange(5, 4); err == nil {
		t.Error("inverted range should fail")
	}
	d, err := NewIntRange(1, 99999)
	if err != nil {
		t.Fatalf("NewIntRange: %v", err)
	}
	if d.Lo != 1 || d.Hi != 99999 {
		t.Errorf("range = [%d,%d]", d.Lo, d.Hi)
	}
}

func TestIntRangeSampleWithinBounds(t *testing.T) {
	d, _ := NewIntRange(-10, 10)
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if !d.Contains(v) {
			t.Fatalf("sampled %v outside [%d,%d]", v, d.Lo, d.Hi)
		}
	}
}

func TestIntRangeSampleDegenerate(t *testing.T) {
	d, _ := NewIntRange(7, 7)
	v, err := d.Sample(NewRand(1))
	if err != nil {
		t.Fatalf("sample: %v", err)
	}
	if v.MustInt() != 7 {
		t.Errorf("degenerate range sampled %v", v)
	}
}

func TestIntRangeSampleFullInt64(t *testing.T) {
	d := IntRange{Lo: math.MinInt64, Hi: math.MaxInt64}
	r := NewRand(2)
	for i := 0; i < 100; i++ {
		if _, err := d.Sample(r); err != nil {
			t.Fatalf("full-width sample: %v", err)
		}
	}
}

func TestIntRangeSampleInvalid(t *testing.T) {
	d := IntRange{Lo: 3, Hi: 1}
	if _, err := d.Sample(NewRand(1)); err == nil {
		t.Error("sampling an invalid range should fail")
	}
}

func TestIntRangeBoundary(t *testing.T) {
	d, _ := NewIntRange(0, 100)
	got := d.Boundary()
	want := []int64{0, 1, 50, 99, 100}
	if len(got) != len(want) {
		t.Fatalf("boundary = %v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].MustInt() != w {
			t.Errorf("boundary[%d] = %v, want %d", i, got[i], w)
		}
	}
	// Degenerate range deduplicates.
	d2, _ := NewIntRange(5, 5)
	if b := d2.Boundary(); len(b) != 1 || b[0].MustInt() != 5 {
		t.Errorf("degenerate boundary = %v", b)
	}
}

func TestIntRangeDescribe(t *testing.T) {
	d, _ := NewIntRange(1, 99999)
	if got := d.Describe(); got != "range, 1, 99999" {
		t.Errorf("Describe() = %q", got)
	}
}

func TestFloatRangeValidation(t *testing.T) {
	if _, err := NewFloatRange(2, 1); err == nil {
		t.Error("inverted float range should fail")
	}
	if _, err := NewFloatRange(math.NaN(), 1); err == nil {
		t.Error("NaN limit should fail")
	}
	if _, err := NewFloatRange(0, math.NaN()); err == nil {
		t.Error("NaN upper limit should fail")
	}
}

func TestFloatRangeSampleWithinBounds(t *testing.T) {
	d, _ := NewFloatRange(0.5, 9.5)
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if !d.Contains(v) {
			t.Fatalf("sampled %v outside [%g,%g]", v, d.Lo, d.Hi)
		}
	}
	if _, err := (FloatRange{Lo: 2, Hi: 1}).Sample(r); err == nil {
		t.Error("invalid float range sample should fail")
	}
}

func TestFloatRangeBoundaryAndDescribe(t *testing.T) {
	d, _ := NewFloatRange(0, 10)
	b := d.Boundary()
	if len(b) != 3 {
		t.Fatalf("boundary = %v", b)
	}
	if d.Describe() != "range, 0, 10" {
		t.Errorf("Describe() = %q", d.Describe())
	}
}

func TestSetDomain(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := NewSet(Int(1), Str("x")); err == nil {
		t.Error("mixed-kind set should fail")
	}
	d, err := NewSet(Int(2), Int(4), Int(8))
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	if d.Kind() != KindInt {
		t.Errorf("Kind() = %s", d.Kind())
	}
	r := NewRand(4)
	for i := 0; i < 200; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if !d.Contains(v) {
			t.Fatalf("sampled %v not in set", v)
		}
	}
	if d.Contains(Int(3)) {
		t.Error("Contains(3) should be false")
	}
	if _, err := (Set{}).Sample(r); err == nil {
		t.Error("sampling empty set should fail")
	}
	if (Set{}).Kind() != 0 {
		t.Error("empty set kind should be invalid")
	}
}

func TestSetBoundaryAndDescribe(t *testing.T) {
	d, _ := NewSet(Int(2), Int(4), Int(8))
	b := d.Boundary()
	if len(b) != 2 || b[0].MustInt() != 2 || b[1].MustInt() != 8 {
		t.Errorf("boundary = %v", b)
	}
	one, _ := NewSet(Int(9))
	if b := one.Boundary(); len(b) != 1 {
		t.Errorf("singleton boundary = %v", b)
	}
	if (Set{}).Boundary() != nil {
		t.Error("empty set boundary should be nil")
	}
	if got := d.Describe(); got != "set, [2, 4, 8]" {
		t.Errorf("Describe() = %q", got)
	}
}

func TestSetCopiesMembers(t *testing.T) {
	members := []Value{Int(1), Int(2)}
	d, _ := NewSet(members...)
	members[0] = Int(99)
	if d.Members[0].MustInt() != 1 {
		t.Error("NewSet should copy its member slice")
	}
}

func TestStringDomainRandom(t *testing.T) {
	if _, err := NewStringDomain(-1, 5, ""); err == nil {
		t.Error("negative min length should fail")
	}
	if _, err := NewStringDomain(5, 2, ""); err == nil {
		t.Error("max < min should fail")
	}
	d, err := NewStringDomain(1, 30, "")
	if err != nil {
		t.Fatalf("NewStringDomain: %v", err)
	}
	r := NewRand(5)
	for i := 0; i < 500; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if !d.Contains(v) {
			t.Fatalf("sampled %v not contained", v)
		}
	}
}

func TestStringDomainCandidates(t *testing.T) {
	if _, err := NewStringSet(); err == nil {
		t.Error("empty candidate list should fail")
	}
	d, err := NewStringSet("p1", "p2", "p3")
	if err != nil {
		t.Fatalf("NewStringSet: %v", err)
	}
	r := NewRand(6)
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		seen[v.MustString()] = true
		if !d.Contains(v) {
			t.Fatalf("candidate %v not contained", v)
		}
	}
	if len(seen) != 3 {
		t.Errorf("300 samples hit %d of 3 candidates", len(seen))
	}
	if d.Contains(Str("p4")) {
		t.Error("Contains(p4) should be false")
	}
	if got := d.Describe(); got != "string, ['p1', 'p2', 'p3']" {
		t.Errorf("Describe() = %q", got)
	}
}

func TestStringDomainContainsEdges(t *testing.T) {
	d, _ := NewStringDomain(2, 4, "ab")
	cases := []struct {
		s    string
		want bool
	}{
		{"ab", true},
		{"aaaa", true},
		{"a", false},     // too short
		{"aaaaa", false}, // too long
		{"abc", false},   // 'c' outside charset
	}
	for _, c := range cases {
		if got := d.Contains(Str(c.s)); got != c.want {
			t.Errorf("Contains(%q) = %v, want %v", c.s, got, c.want)
		}
	}
	if d.Contains(Int(1)) {
		t.Error("Contains(int) should be false")
	}
}

func TestStringDomainBoundary(t *testing.T) {
	d, _ := NewStringDomain(1, 3, "xy")
	b := d.Boundary()
	if len(b) != 2 || b[0].MustString() != "x" || b[1].MustString() != "xxx" {
		t.Errorf("boundary = %v", b)
	}
	cand, _ := NewStringSet("only")
	if b := cand.Boundary(); len(b) != 1 || b[0].MustString() != "only" {
		t.Errorf("candidate boundary = %v", b)
	}
}

func TestStringDomainInvalidSample(t *testing.T) {
	d := StringDomain{MinLen: 5, MaxLen: 2}
	if _, err := d.Sample(NewRand(1)); err == nil {
		t.Error("invalid bounds should fail at sample time")
	}
}

func TestStringDomainDescribeRandomForm(t *testing.T) {
	d, _ := NewStringDomain(1, 30, "")
	if got := d.Describe(); got != "string, 1, 30" {
		t.Errorf("Describe() = %q", got)
	}
}

func TestObjectDomainManualCompletion(t *testing.T) {
	d := ObjectDomain{TypeName: "Provider"}
	_, err := d.Sample(NewRand(1))
	if !errors.Is(err, ErrManualCompletion) {
		t.Errorf("sample without provider: err = %v, want ErrManualCompletion", err)
	}
	if !strings.Contains(d.Describe(), "Provider") {
		t.Errorf("Describe() = %q", d.Describe())
	}
	if d.Boundary() != nil {
		t.Error("object boundary should be nil")
	}
}

func TestObjectDomainWithProvider(t *testing.T) {
	obj := &struct{ name string }{"prov"}
	d := ObjectDomain{
		TypeName: "Provider",
		Provider: ProviderFunc(func(r *rand.Rand) (Value, error) { return Object(obj), nil }),
	}
	v, err := d.Sample(NewRand(1))
	if err != nil {
		t.Fatalf("sample with provider: %v", err)
	}
	if v.Ref() != obj {
		t.Error("provider result not passed through")
	}
	if !d.Contains(v) {
		t.Error("provided object should be contained")
	}
	if d.Contains(Nil()) {
		t.Error("nil should not be a member of an object domain")
	}
}

func TestPointerDomain(t *testing.T) {
	// Non-nullable without provider: manual completion.
	d := PointerDomain{TypeName: "Provider"}
	if _, err := d.Sample(NewRand(1)); !errors.Is(err, ErrManualCompletion) {
		t.Errorf("err = %v, want ErrManualCompletion", err)
	}
	// Nullable without provider: always nil.
	dn := PointerDomain{TypeName: "Provider", Nullable: true}
	v, err := dn.Sample(NewRand(1))
	if err != nil || !v.IsNil() {
		t.Errorf("nullable sample = %v, %v", v, err)
	}
	if !dn.Contains(Nil()) {
		t.Error("nullable pointer domain should contain nil")
	}
	if d.Contains(Nil()) {
		t.Error("non-nullable pointer domain should not contain nil")
	}
	if b := dn.Boundary(); len(b) != 1 || !b[0].IsNil() {
		t.Errorf("nullable boundary = %v", b)
	}
	if d.Boundary() != nil {
		t.Error("non-nullable boundary should be nil")
	}
}

func TestPointerDomainWithProvider(t *testing.T) {
	obj := &struct{}{}
	d := PointerDomain{
		TypeName: "Provider",
		Nullable: true,
		Provider: ProviderFunc(func(r *rand.Rand) (Value, error) { return Pointer(obj), nil }),
	}
	r := NewRand(7)
	sawNil, sawObj := false, false
	for i := 0; i < 200; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if v.IsNil() {
			sawNil = true
		} else {
			sawObj = true
		}
	}
	if !sawNil || !sawObj {
		t.Errorf("nullable provider sampling: sawNil=%v sawObj=%v", sawNil, sawObj)
	}
}

func TestBoolDomain(t *testing.T) {
	var d BoolDomain
	r := NewRand(8)
	sawT, sawF := false, false
	for i := 0; i < 100; i++ {
		v, err := d.Sample(r)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		if mustBool(t, v) {
			sawT = true
		} else {
			sawF = true
		}
	}
	if !sawT || !sawF {
		t.Error("bool sampling never produced both values")
	}
	if !d.Contains(Bool(true)) || d.Contains(Int(1)) {
		t.Error("bool Contains misbehaves")
	}
	if len(d.Boundary()) != 2 {
		t.Error("bool boundary should have two members")
	}
	if d.Describe() != "bool" {
		t.Errorf("Describe() = %q", d.Describe())
	}
}

func TestSampleDeterminism(t *testing.T) {
	d, _ := NewIntRange(0, 1_000_000)
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		va, _ := d.Sample(a)
		vb, _ := d.Sample(b)
		if !va.Equal(vb) {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, va, vb)
		}
	}
}

func TestIntRangeSampleProperty(t *testing.T) {
	prop := func(lo int32, span uint16, seed int64) bool {
		d, err := NewIntRange(int64(lo), int64(lo)+int64(span))
		if err != nil {
			return false
		}
		v, err := d.Sample(NewRand(seed))
		return err == nil && d.Contains(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mustBool(t *testing.T, v Value) bool {
	t.Helper()
	b, err := v.AsBool()
	if err != nil {
		t.Fatalf("AsBool: %v", err)
	}
	return b
}
