package history

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"concat/internal/components/oblist"
	"concat/internal/components/sortlist"
	"concat/internal/driver"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

func parentSuite(t *testing.T) *driver.Suite {
	t.Helper()
	s, err := driver.Generate(oblist.Spec(), driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4,
	})
	if err != nil {
		t.Fatalf("Generate parent: %v", err)
	}
	return s
}

func deriveLists(t *testing.T) *DerivedSuite {
	t.Helper()
	opts := driver.Options{Seed: 42, ExpandAlternatives: true, MaxAlternatives: 4}
	d, err := Derive(oblist.Spec(), sortlist.Spec(), parentSuite(t), opts)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return d
}

func TestBuildHistory(t *testing.T) {
	s := parentSuite(t)
	h := Build(s)
	if h.Component != oblist.Name || len(h.Entries) != len(s.Cases) {
		t.Fatalf("history = %+v", h)
	}
	for i, e := range h.Entries {
		if e.Origin != "new" {
			t.Fatalf("entry %d origin = %q", i, e.Origin)
		}
		if e.Transaction == "" || len(e.Methods) == 0 {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
	}
	byTr := h.ByTransaction()
	if len(byTr) == 0 {
		t.Fatal("ByTransaction empty")
	}
	total := 0
	for _, es := range byTr {
		total += len(es)
	}
	if total != len(h.Entries) {
		t.Errorf("grouping lost entries: %d vs %d", total, len(h.Entries))
	}
}

func TestHistorySaveLoad(t *testing.T) {
	h := Build(parentSuite(t))
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Component != h.Component || len(back.Entries) != len(h.Entries) {
		t.Error("round trip lost data")
	}
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("loading garbage should fail")
	}
}

func TestDeriveProducesAllThreeClasses(t *testing.T) {
	d := deriveLists(t)
	skip, reuse, regen := d.Plan.Counts()
	if skip == 0 || reuse == 0 || regen == 0 {
		t.Fatalf("plan counts = skip=%d reuse=%d regen=%d; all three classes expected",
			skip, reuse, regen)
	}
	if d.NumNew == 0 || d.NumReused == 0 || d.NumSkipped == 0 {
		t.Fatalf("suite provenance = new=%d reused=%d skipped=%d",
			d.NumNew, d.NumReused, d.NumSkipped)
	}
	if len(d.Suite.Cases) != d.NumNew+d.NumReused {
		t.Errorf("suite has %d cases, provenance says %d",
			len(d.Suite.Cases), d.NumNew+d.NumReused)
	}
	if d.Suite.Component != sortlist.Name {
		t.Errorf("derived suite component = %q", d.Suite.Component)
	}
}

func TestDeriveDecisionsFollowTheRule(t *testing.T) {
	d := deriveLists(t)
	spec := sortlist.Spec()
	cls := d.Plan.Classification
	byTr := map[string][]driver.TestCase{}
	for _, tc := range d.Suite.Cases {
		byTr[tc.Transaction] = append(byTr[tc.Transaction], tc)
	}
	for _, dec := range d.Plan.Decisions {
		switch dec.Class {
		case ClassSkip:
			if len(byTr[dec.Transaction]) != 0 {
				t.Errorf("skipped transaction %s has cases in the suite", dec.Transaction)
			}
		case ClassRegenerate:
			// Must contain at least one new method.
			found := false
			for _, tc := range byTr[dec.Transaction] {
				for _, m := range tc.Methods() {
					if cls[m] == tspec.StatusNew {
						if mm, ok := spec.MethodByName(m); ok &&
							mm.Category != tspec.CatConstructor && mm.Category != tspec.CatDestructor {
							found = true
						}
					}
				}
			}
			if !found {
				t.Errorf("regenerated transaction %s has no new non-lifecycle method", dec.Transaction)
			}
		case ClassReuse:
			// Reused cases must call the subclass's constructors, not the
			// parent's (lifecycle remapping).
			for _, tc := range byTr[dec.Transaction] {
				first := tc.Calls[0]
				m, ok := spec.MethodByName(first.Method)
				if !ok || m.Category != tspec.CatConstructor {
					t.Errorf("reused case %s starts with %q, not a subclass constructor",
						tc.ID, first.Method)
				}
			}
		}
	}
}

func TestDeriveSuiteIsRunnable(t *testing.T) {
	d := deriveLists(t)
	rep, err := testexec.Run(d.Suite, sortlist.NewFactory(), testexec.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.AllPassed() {
		fails := rep.Failures()
		max := 3
		if len(fails) < max {
			max = len(fails)
		}
		t.Fatalf("derived suite failed %d cases; first: %+v", len(fails), fails[:max])
	}
}

func TestDeriveHistoryOrigins(t *testing.T) {
	d := deriveLists(t)
	if d.History == nil {
		t.Fatal("derived history missing")
	}
	if len(d.History.Entries) != len(d.Suite.Cases) {
		t.Fatalf("history entries = %d, cases = %d", len(d.History.Entries), len(d.Suite.Cases))
	}
	newN, reusedN := 0, 0
	for _, e := range d.History.Entries {
		switch e.Origin {
		case "new":
			newN++
		case "reused":
			reusedN++
		default:
			t.Fatalf("entry origin = %q", e.Origin)
		}
	}
	if newN != d.NumNew || reusedN != d.NumReused {
		t.Errorf("history origins = %d/%d, want %d/%d", newN, reusedN, d.NumNew, d.NumReused)
	}
	if d.History.Superclass != oblist.Name {
		t.Errorf("history superclass = %q", d.History.Superclass)
	}
}

func TestDeriveValidation(t *testing.T) {
	opts := driver.Options{Seed: 1}
	if _, err := Derive(oblist.Spec(), sortlist.Spec(), nil, opts); err == nil {
		t.Error("nil parent suite should fail")
	}
	// Mismatched hierarchy.
	if _, err := Derive(sortlist.Spec(), oblist.Spec(), parentSuite(t), opts); err == nil {
		t.Error("non-child spec should fail classification")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := deriveLists(t)
	b := deriveLists(t)
	if len(a.Suite.Cases) != len(b.Suite.Cases) || a.NumNew != b.NumNew || a.NumReused != b.NumReused {
		t.Fatalf("derivation not deterministic: %d/%d/%d vs %d/%d/%d",
			len(a.Suite.Cases), a.NumNew, a.NumReused,
			len(b.Suite.Cases), b.NumNew, b.NumReused)
	}
	for i := range a.Suite.Cases {
		if a.Suite.Cases[i].Transaction != b.Suite.Cases[i].Transaction {
			t.Fatalf("case %d transaction differs", i)
		}
	}
}

func TestTransactionClassString(t *testing.T) {
	tests := []struct {
		c    TransactionClass
		want string
	}{
		{ClassSkip, "skip"},
		{ClassReuse, "reuse"},
		{ClassRegenerate, "regenerate"},
		{TransactionClass(9), "class(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRemapLifecycle(t *testing.T) {
	parent := oblist.Spec()
	child := sortlist.Spec()
	tc := driver.TestCase{
		ID: "TC0",
		Calls: []driver.Call{
			{MethodID: "m1", Method: "ObList"},
			{MethodID: "m4", Method: "AddHead"},
			{MethodID: "m3", Method: "~ObList"},
		},
	}
	out, err := remapLifecycle(parent, child, tc)
	if err != nil {
		t.Fatalf("remapLifecycle: %v", err)
	}
	if out.Calls[0].Method != "SortableObList" {
		t.Errorf("ctor remapped to %q", out.Calls[0].Method)
	}
	if out.Calls[1].Method != "AddHead" {
		t.Errorf("ordinary call changed: %q", out.Calls[1].Method)
	}
	if out.Calls[2].Method != "~SortableObList" {
		t.Errorf("dtor remapped to %q", out.Calls[2].Method)
	}
	// The original must be untouched.
	if tc.Calls[0].Method != "ObList" {
		t.Error("remapLifecycle mutated its input")
	}
}

func TestRemapLifecycleNoMatch(t *testing.T) {
	parent := oblist.Spec()
	// A child spec with no constructors matching the parent's sized ctor.
	child, err := tspec.NewBuilder("Odd").
		Extends(oblist.Name).
		Method("c1", "Odd", "", tspec.CatConstructor).
		Method("d1", "~Odd", "", tspec.CatDestructor).
		Node("n1", true, "c1").
		Node("n2", false, "d1").
		Edge("n1", "n2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tc := driver.TestCase{
		Calls: []driver.Call{{MethodID: "m2", Method: "ObListSized"}},
	}
	if _, err := remapLifecycle(parent, child, tc); err == nil {
		t.Error("unmatchable ctor should fail")
	}
}

func TestDerivePartitionProperty(t *testing.T) {
	// Invariant: the plan partitions the child's transactions — every
	// transaction gets exactly one decision, skip-class transactions have
	// no cases in the suite, and every suite case belongs to a reuse or
	// regenerate transaction.
	d := deriveLists(t)
	decided := map[string]TransactionClass{}
	for _, dec := range d.Plan.Decisions {
		if _, dup := decided[dec.Transaction]; dup {
			t.Fatalf("transaction %s decided twice", dec.Transaction)
		}
		decided[dec.Transaction] = dec.Class
	}
	for _, tc := range d.Suite.Cases {
		cls, ok := decided[tc.Transaction]
		if !ok {
			t.Fatalf("suite case %s has undecided transaction %s", tc.ID, tc.Transaction)
		}
		if cls == ClassSkip {
			t.Fatalf("suite case %s belongs to a skipped transaction", tc.ID)
		}
	}
	// Case IDs are unique and sequential.
	seen := map[string]bool{}
	for i, tc := range d.Suite.Cases {
		if seen[tc.ID] {
			t.Fatalf("duplicate case ID %s", tc.ID)
		}
		seen[tc.ID] = true
		if tc.ID != fmt.Sprintf("TC%d", i) {
			t.Fatalf("case %d has ID %s", i, tc.ID)
		}
	}
}

// abstractListSpec is an abstract container specification covering the
// method subset both list components implement.
func abstractListSpec(t *testing.T) *tspec.Spec {
	t.Helper()
	elem := tspec.RangeInt(0, 999)
	s, err := tspec.NewBuilder("AbstractList").
		Abstract().
		Attribute("count", tspec.RangeInt(0, 1_000_000)).
		Method("a1", "AbstractList", "", tspec.CatConstructor).
		Method("a2", "~AbstractList", "", tspec.CatDestructor).
		Method("a3", "AddHead", "", tspec.CatUpdate).
		Param("v", elem).
		Method("a4", "AddTail", "", tspec.CatUpdate).
		Param("v", elem).
		Method("a5", "RemoveHead", "int", tspec.CatUpdate).
		Method("a6", "GetCount", "int", tspec.CatAccess).
		Method("a7", "IsEmpty", "bool", tspec.CatAccess).
		Node("n1", true, "a1").
		Node("n2", false, "a3", "a4").
		Node("n3", false, "a5").
		Node("n4", false, "a6", "a7").
		Node("n5", false, "a2").
		Edge("n1", "n2").
		Edge("n1", "n5").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n2", "n5").
		Edge("n3", "n4").
		Edge("n3", "n5").
		Edge("n4", "n5").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdaptSuiteFromAbstractClass(t *testing.T) {
	abs := abstractListSpec(t)
	suite, err := driver.Generate(abs, driver.Options{
		Seed: 42, ExpandAlternatives: true, MaxAlternatives: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cases) == 0 {
		t.Fatal("no abstract cases generated")
	}
	// The same abstract suite instantiates against both concrete classes.
	targets := []struct {
		spec *tspec.Spec
		run  func(*driver.Suite) (*testexec.Report, error)
	}{
		{oblist.Spec(), func(s *driver.Suite) (*testexec.Report, error) {
			return testexec.Run(s, oblist.NewFactory(), testexec.Options{})
		}},
		{sortlist.Spec(), func(s *driver.Suite) (*testexec.Report, error) {
			return testexec.Run(s, sortlist.NewFactory(), testexec.Options{})
		}},
	}
	for _, target := range targets {
		adapted, err := AdaptSuite(abs, target.spec, suite)
		if err != nil {
			t.Fatalf("AdaptSuite(%s): %v", target.spec.Class.Name, err)
		}
		if adapted.Component != target.spec.Class.Name {
			t.Errorf("adapted component = %q", adapted.Component)
		}
		rep, err := target.run(adapted)
		if err != nil {
			t.Fatalf("running adapted suite on %s: %v", target.spec.Class.Name, err)
		}
		if !rep.AllPassed() {
			t.Fatalf("abstract suite fails on %s: %+v", target.spec.Class.Name, rep.Failures()[:1])
		}
	}
}

func TestAdaptSuiteErrors(t *testing.T) {
	abs := abstractListSpec(t)
	suite, err := driver.Generate(abs, driver.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong abstract spec for the suite.
	if _, err := AdaptSuite(oblist.Spec(), sortlist.Spec(), suite); err == nil {
		t.Error("mismatched abstract spec should fail")
	}
	// A concrete class that lacks one of the abstract methods.
	incomplete, err := tspec.NewBuilder("Partial").
		Method("p1", "Partial", "", tspec.CatConstructor).
		Method("p2", "~Partial", "", tspec.CatDestructor).
		Method("p3", "AddHead", "", tspec.CatUpdate).
		Param("v", tspec.RangeInt(0, 999)).
		Node("n1", true, "p1").
		Node("n2", false, "p3").
		Node("n3", false, "p2").
		Edge("n1", "n2").
		Edge("n2", "n3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AdaptSuite(abs, incomplete, suite); err == nil {
		t.Error("incomplete concrete class should fail adaptation")
	}
}
