package component

import (
	"errors"
	"io"
	"testing"

	"concat/internal/bit"
	"concat/internal/domain"
	"concat/internal/tspec"
)

func TestDispatcher(t *testing.T) {
	var d Dispatcher
	if d.Has("f") {
		t.Error("zero dispatcher should have no methods")
	}
	d.Register("f", func(args []domain.Value) ([]domain.Value, error) {
		return []domain.Value{domain.Int(int64(len(args)))}, nil
	})
	d.Register("g", func([]domain.Value) ([]domain.Value, error) { return nil, nil })
	if !d.Has("f") || !d.Has("g") {
		t.Error("registered methods missing")
	}
	out, err := d.Invoke("f", []domain.Value{domain.Int(1), domain.Int(2)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if out[0].MustInt() != 2 {
		t.Errorf("result = %v", out)
	}
	_, err = d.Invoke("missing", nil)
	if !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown method err = %v", err)
	}
	if names := d.Names(); len(names) != 2 || names[0] != "f" || names[1] != "g" {
		t.Errorf("Names() = %v", names)
	}
	// Re-registration replaces.
	d.Register("f", func([]domain.Value) ([]domain.Value, error) {
		return []domain.Value{domain.Int(-1)}, nil
	})
	out, _ = d.Invoke("f", nil)
	if out[0].MustInt() != -1 {
		t.Error("re-registration did not replace binding")
	}
}

type fakeInstance struct {
	bit.Base
	d Dispatcher
}

func (f *fakeInstance) InvariantTest() error     { return f.Guard() }
func (f *fakeInstance) Reporter(io.Writer) error { return f.Guard() }
func (f *fakeInstance) Destroy() error           { return nil }
func (f *fakeInstance) Invoke(m string, a []domain.Value) ([]domain.Value, error) {
	return f.d.Invoke(m, a)
}

type fakeFactory struct{ name string }

func (f *fakeFactory) Name() string      { return f.name }
func (f *fakeFactory) Spec() *tspec.Spec { return nil }
func (f *fakeFactory) New(string, []domain.Value) (Instance, error) {
	return &fakeInstance{}, nil
}

var (
	_ Instance = (*fakeInstance)(nil)
	_ Factory  = (*fakeFactory)(nil)
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil factory should be rejected")
	}
	if err := r.Register(&fakeFactory{}); err == nil {
		t.Error("empty-name factory should be rejected")
	}
	if err := r.Register(&fakeFactory{name: "A"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(&fakeFactory{name: "A"}); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if err := r.Register(&fakeFactory{name: "B"}); err != nil {
		t.Fatalf("Register B: %v", err)
	}
	f, err := r.Lookup("A")
	if err != nil || f.Name() != "A" {
		t.Errorf("Lookup(A) = %v, %v", f, err)
	}
	if _, err := r.Lookup("Z"); err == nil {
		t.Error("Lookup(Z) should fail")
	}
	if names := r.Names(); len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names() = %v", names)
	}
}

func TestWantArgs(t *testing.T) {
	obj := domain.Object(&struct{}{})
	tests := []struct {
		name    string
		args    []domain.Value
		kinds   []domain.Kind
		wantErr bool
	}{
		{"exact", []domain.Value{domain.Int(1), domain.Str("x")}, []domain.Kind{domain.KindInt, domain.KindString}, false},
		{"count mismatch", []domain.Value{domain.Int(1)}, []domain.Kind{domain.KindInt, domain.KindInt}, true},
		{"kind mismatch", []domain.Value{domain.Str("x")}, []domain.Kind{domain.KindInt}, true},
		{"nil for pointer", []domain.Value{domain.Nil()}, []domain.Kind{domain.KindPointer}, false},
		{"nil for object", []domain.Value{domain.Nil()}, []domain.Kind{domain.KindObject}, false},
		{"nil for int", []domain.Value{domain.Nil()}, []domain.Kind{domain.KindInt}, true},
		{"object for pointer", []domain.Value{obj}, []domain.Kind{domain.KindPointer}, false},
		{"pointer for object", []domain.Value{domain.Pointer(&struct{}{})}, []domain.Kind{domain.KindObject}, false},
		{"empty ok", nil, nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := WantArgs("m", tt.args, tt.kinds...)
			if (err != nil) != tt.wantErr {
				t.Errorf("WantArgs = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
