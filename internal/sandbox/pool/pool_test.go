package pool

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// workerEnv gates the test binary's double life as a pool worker: an echo
// loop that also knows how to die, hang, or desync on command — the
// minimal hostile worker for exercising the pool's lifecycle edges.
const workerEnv = "POOL_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) != "" {
		echoWorker()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func echoWorker() {
	br := bufio.NewReader(os.Stdin)
	for {
		payload, err := ReadFrame(br, 0)
		if err == io.EOF {
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		switch string(payload) {
		case "die":
			os.Exit(3)
		case "panic":
			panic("worker told to panic")
		case "hang":
			time.Sleep(time.Hour)
		case "garbage":
			os.Stdout.WriteString("not a frame at all\n")
		default:
			if err := WriteFrame(os.Stdout, append([]byte("echo:"), payload...)); err != nil {
				os.Exit(1)
			}
		}
	}
}

func newTestPool(t *testing.T, size int) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	p, err := New(Config{
		Argv: []string{exe},
		Env:  []string{workerEnv + "=1"},
		Size: size,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolEchoRoundTrip(t *testing.T) {
	p := newTestPool(t, 2)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("frame-%d", i)
		if err := w.Send([]byte(msg)); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := w.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if want := "echo:" + msg; string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	p.Release(w)
	// The released worker is reused, not respawned.
	w2, err := p.Acquire()
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	p.Release(w2)
	if st := p.Stats(); st.Spawned != 1 {
		t.Fatalf("spawned %d workers, want 1 (warm reuse)", st.Spawned)
	}
}

func TestPoolCrashClassifiedAndReplaced(t *testing.T) {
	p := newTestPool(t, 1)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := w.Send([]byte("die")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := w.Recv(5 * time.Second); err == nil {
		t.Fatal("Recv succeeded on a dead worker")
	}
	code, summary := w.Fate()
	if code != 3 {
		t.Fatalf("exit code %d, want 3", code)
	}
	if !strings.Contains(summary, "exit status 3") {
		t.Fatalf("fatal summary %q missing exit status", summary)
	}
	p.Discard(w)

	// The pool replaces the corpse on the next Acquire.
	w2, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire after discard: %v", err)
	}
	if err := w2.Send([]byte("ok")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got, err := w2.Recv(5 * time.Second); err != nil || string(got) != "echo:ok" {
		t.Fatalf("fresh worker broken: %q, %v", got, err)
	}
	p.Release(w2)
	st := p.Stats()
	if st.Spawned != 2 || st.Discarded != 1 {
		t.Fatalf("stats %+v, want 2 spawned / 1 discarded", st)
	}
}

func TestPoolPanicWorkerSummary(t *testing.T) {
	p := newTestPool(t, 1)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := w.Send([]byte("panic")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := w.Recv(5 * time.Second); err == nil {
		t.Fatal("Recv succeeded on a panicking worker")
	}
	code, summary := w.Fate()
	if code == 0 {
		t.Fatal("panicking worker reported exit 0")
	}
	if !strings.Contains(summary, "panic: worker told to panic") {
		t.Fatalf("fatal summary %q missing the panic line", summary)
	}
	p.Discard(w)
}

func TestPoolRecvTimeout(t *testing.T) {
	p := newTestPool(t, 1)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := w.Send([]byte("hang")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := w.Recv(200 * time.Millisecond); err != ErrRecvTimeout {
		t.Fatalf("want ErrRecvTimeout, got %v", err)
	}
	p.Discard(w)
}

func TestPoolDesyncedStreamKillsWorker(t *testing.T) {
	p := newTestPool(t, 1)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := w.Send([]byte("garbage")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := w.Recv(5 * time.Second); err == nil {
		t.Fatal("garbage output decoded as a frame")
	}
	p.Discard(w)
}

func TestPoolSizeBoundBlocksAcquire(t *testing.T) {
	p := newTestPool(t, 1)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	acquired := make(chan *Worker)
	go func() {
		w2, err := p.Acquire()
		if err != nil {
			t.Errorf("second Acquire: %v", err)
		}
		acquired <- w2
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire exceeded the pool size bound")
	case <-time.After(150 * time.Millisecond):
	}
	p.Release(w)
	select {
	case w2 := <-acquired:
		p.Release(w2)
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not unblock on Release")
	}
	if st := p.Stats(); st.Spawned != 1 {
		t.Fatalf("spawned %d, want 1 — the bound must force reuse", st.Spawned)
	}
}

func TestPoolCloseRejectsAcquire(t *testing.T) {
	p := newTestPool(t, 2)
	w, err := p.Acquire()
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	p.Release(w)
	p.Close()
	if _, err := p.Acquire(); err == nil {
		t.Fatal("Acquire succeeded on a closed pool")
	}
}

func TestCapBufferKeepsHead(t *testing.T) {
	b := &capBuffer{max: 8}
	for i := 0; i < 10; i++ {
		n, err := b.Write([]byte("abcdef"))
		if n != 6 || err != nil {
			t.Fatalf("Write consumed %d, %v — must always report full consumption", n, err)
		}
	}
	if got := b.Bytes(); !bytes.Equal(got, []byte("abcdefab")) {
		t.Fatalf("head %q, want first 8 bytes", got)
	}
}
