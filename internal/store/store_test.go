package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(mutant string) Key {
	return Key{
		Kind:    KindMutantVerdict,
		Spec:    "spec-hash",
		Suite:   "suite-hash",
		Mutant:  mutant,
		Seed:    42,
		Options: "opt-hash",
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := Verdict{Killed: true, Reason: 3, KillingCase: "TC7", Reached: true, Infected: true}
	if err := s.Put(testKey("m1"), want); err != nil {
		t.Fatal(err)
	}
	var got Verdict
	ok, err := s.Get(testKey("m1"), &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit", st)
	}
}

func TestMissCounts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s.Get(testKey("absent"), &v)
	if err != nil || ok {
		t.Fatalf("Get of absent key = %v, %v; want clean miss", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 miss", st)
	}
}

func TestKeyComponentsIndependent(t *testing.T) {
	// Every key field moves the address; no cross-kind or cross-field
	// collisions.
	keys := []Key{
		testKey("m1"),
		testKey("m2"),
		{Kind: KindSuiteReport, Spec: "spec-hash", Suite: "suite-hash", Seed: 42, Options: "opt-hash"},
		func() Key { k := testKey("m1"); k.Seed = 43; return k }(),
		func() Key { k := testKey("m1"); k.Options = "other"; return k }(),
		func() Key { k := testKey("m1"); k.Spec = "other"; return k }(),
		func() Key { k := testKey("m1"); k.Suite = "other"; return k }(),
	}
	seen := map[string]int{}
	for i, k := range keys {
		id, err := k.ID()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[id]; dup {
			t.Errorf("keys %d and %d collide", prev, i)
		}
		seen[id] = i
	}
}

func TestPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(testKey("m1"), Verdict{Killed: true, Reason: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s2.Get(testKey("m1"), &v)
	if err != nil || !ok {
		t.Fatalf("reopened store: Get = %v, %v", ok, err)
	}
	if !v.Killed || v.Reason != 1 {
		t.Errorf("reopened verdict = %+v", v)
	}
	if n, err := s2.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// The same (key, value) written into two stores produces byte-identical
	// files — the property that makes cache directories diffable.
	write := func() []byte {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := testKey("m1")
		if err := s.Put(k, Verdict{Killed: true, Reason: 2, KillingCase: "TC1", Reached: true}); err != nil {
			t.Fatal(err)
		}
		id, err := k.ID()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, id[:2], id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := write(), write(); !bytes.Equal(a, b) {
		t.Errorf("same entry, different bytes:\n%s\n%s", a, b)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("m1")
	if err := s.Put(k, Verdict{Killed: true}); err != nil {
		t.Fatal(err)
	}
	id, err := k.ID()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id[:2], id+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store re-reads disk; the corrupt entry reports as a miss with
	// a diagnostic error, and a subsequent Put repairs it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	ok, err := s2.Get(k, &v)
	if ok {
		t.Fatal("corrupt entry should not hit")
	}
	if err == nil {
		t.Fatal("corrupt entry should surface a diagnostic error")
	}
	if err := s2.Put(k, Verdict{Killed: true}); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s3.Get(k, &v); !ok || err != nil {
		t.Fatalf("repaired entry: Get = %v, %v", ok, err)
	}
}

func TestNilStoreDisabled(t *testing.T) {
	var s *Store
	var v Verdict
	ok, err := s.Get(testKey("m"), &v)
	if ok || err != nil {
		t.Errorf("nil store Get = %v, %v", ok, err)
	}
	if err := s.Put(testKey("m"), Verdict{}); err != nil {
		t.Errorf("nil store Put: %v", err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil store stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping key space: every key written by several workers.
				k := testKey(fmt.Sprintf("m%d", i))
				if err := s.Put(k, Verdict{Killed: i%2 == 0, Reason: i % 4}); err != nil {
					errs <- err
					return
				}
				var v Verdict
				if _, err := s.Get(k, &v); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != perWorker {
		t.Errorf("Len = %d, %v; want %d", n, err, perWorker)
	}
}
