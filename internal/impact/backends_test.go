package impact_test

import (
	"net/http/httptest"
	"testing"

	"concat/internal/impact"
	"concat/internal/store"
)

// impactBackends mirrors the store package's conformance-suite pattern: the
// impact engine must behave identically over every backend, including the
// HTTP remote client at both ends of the wire.
func impactBackends(t *testing.T) []struct {
	name string
	make func(t *testing.T) store.Backend
} {
	return []struct {
		name string
		make func(t *testing.T) store.Backend
	}{
		{"fs", func(t *testing.T) store.Backend {
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			return st
		}},
		{"mem", func(t *testing.T) store.Backend {
			return store.NewMem()
		}},
		{"remote-over-mem", func(t *testing.T) store.Backend {
			ts := httptest.NewServer(store.NewHandler(store.NewMem()))
			t.Cleanup(ts.Close)
			return store.NewRemote(ts.URL, nil)
		}},
		{"remote-over-fs", func(t *testing.T) store.Backend {
			raw, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			ts := httptest.NewServer(store.NewHandler(raw))
			t.Cleanup(ts.Close)
			return store.NewRemote(ts.URL, nil)
		}},
	}
}

// The minimal re-run is backend-agnostic: for each backend, a cold impact
// run, a warm partial re-run after a domain change, and a fully-warm
// identical re-run all produce artifact and report bytes identical to every
// other backend's.
func TestImpactBackendConformance(t *testing.T) {
	type snapshot struct {
		cold, changed, warm string
		finals              [3]string
	}
	var want *snapshot
	var wantName string

	for _, b := range impactBackends(t) {
		t.Run(b.name, func(t *testing.T) {
			st := b.make(t)
			r := runner(t, "Account", st)
			spec := r.Factory.Spec()
			old, _ := perturbDomain(t, spec)

			cold, err := r.Run(spec, spec)
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}
			changed, err := r.Run(old, spec)
			if err != nil {
				t.Fatalf("changed run: %v", err)
			}
			if changed.Report.CacheHits != changed.Report.Kept {
				t.Errorf("changed run hits = %d, want %d (all kept cases warm)",
					changed.Report.CacheHits, changed.Report.Kept)
			}
			warm, err := r.Run(spec, spec)
			if err != nil {
				t.Fatalf("warm run: %v", err)
			}
			if warm.Report.CacheMisses != 0 {
				t.Errorf("warm identical run misses = %d, want 0", warm.Report.CacheMisses)
			}

			got := &snapshot{
				cold:    encode(t, cold.Report),
				changed: encode(t, changed.Report),
				warm:    encode(t, warm.Report),
				finals: [3]string{
					finalBytes(t, cold.Final),
					finalBytes(t, changed.Final),
					finalBytes(t, warm.Final),
				},
			}
			if want == nil {
				want, wantName = got, b.name
				return
			}
			if got.cold != want.cold || got.changed != want.changed || got.warm != want.warm {
				t.Errorf("impact artifacts over %s differ from %s", b.name, wantName)
			}
			if got.finals != want.finals {
				t.Errorf("final reports over %s differ from %s", b.name, wantName)
			}
		})
	}
}

func encode(t *testing.T, r *impact.Report) string {
	t.Helper()
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
