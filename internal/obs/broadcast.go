package obs

import (
	"errors"
	"io"
	"sync"
)

// Broadcast is an append-only byte buffer with any number of late-joining
// readers. Every reader observes the complete stream from its first byte —
// subscribing after N writes replays all N before blocking for more — and a
// reader that has caught up waits until new bytes arrive or the stream
// closes. It is the retention layer under the campaign service's live trace
// streams: the tracer writes each NDJSON span once, and every HTTP client
// replays the full trace from its own offset.
//
// Writes and reads are safe for concurrent use. Close is idempotent and
// releases all waiting readers.
type Broadcast struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
	// wake is closed and replaced whenever buf grows or the stream closes;
	// a catching-up reader snapshots it under the lock and waits outside.
	wake chan struct{}
}

// NewBroadcast returns an empty open broadcast buffer.
func NewBroadcast() *Broadcast {
	return &Broadcast{wake: make(chan struct{})}
}

// Write appends p to the stream and wakes all waiting readers. It never
// blocks; the buffer retains the full stream for late subscribers.
func (b *Broadcast) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, errors.New("obs: write on closed broadcast")
	}
	b.buf = append(b.buf, p...)
	close(b.wake)
	b.wake = make(chan struct{})
	return len(p), nil
}

// Close marks end-of-stream. Waiting readers drain the remaining bytes and
// then see io.EOF. Close is idempotent and never fails.
func (b *Broadcast) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.wake)
	}
	return nil
}

// Len returns the number of bytes written so far.
func (b *Broadcast) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Bytes returns a copy of the full stream so far.
func (b *Broadcast) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out
}

// Next returns a copy of the bytes past off, blocking while the stream is
// open and has nothing new. It returns (nil, false) once the stream is
// closed and fully consumed, or as soon as cancel fires (a nil cancel never
// fires). The second return value is true whenever chunk may be non-empty —
// callers loop `for chunk, ok := b.Next(off, c); ok; ...` advancing off by
// len(chunk).
func (b *Broadcast) Next(off int, cancel <-chan struct{}) ([]byte, bool) {
	for {
		b.mu.Lock()
		if off < len(b.buf) {
			chunk := make([]byte, len(b.buf)-off)
			copy(chunk, b.buf[off:])
			b.mu.Unlock()
			return chunk, true
		}
		if b.closed {
			b.mu.Unlock()
			return nil, false
		}
		wake := b.wake
		b.mu.Unlock()
		select {
		case <-wake:
		case <-cancel:
			return nil, false
		}
	}
}

// Reader returns a new independent reader positioned at the start of the
// stream. Read blocks until bytes past the reader's offset exist and
// returns io.EOF only after Close has been called and the stream is fully
// consumed.
func (b *Broadcast) Reader() io.Reader {
	return &broadcastReader{b: b}
}

type broadcastReader struct {
	b   *Broadcast
	off int
}

func (r *broadcastReader) Read(p []byte) (int, error) {
	chunk, ok := r.b.Next(r.off, nil)
	if !ok {
		return 0, io.EOF
	}
	n := copy(p, chunk)
	r.off += n
	return n, nil
}
