package tspec

import (
	"strings"
	"testing"

	"concat/internal/domain"
)

// productSpecText is a t-spec for the paper's Figure 1/3 Product class,
// written in the Figure 3 notation.
const productSpecText = `
// t-spec for class Product (paper Figures 1-3)
Class('Product',
      No,            // not abstract
      <empty>,       // no superclass
      <empty>)       // no source file list

Attribute('qty', range, 1, 99999)
Attribute('name', string, 1, 30)
Attribute('price', range, 0.01, 10000.0)
Attribute('prov', pointer, 'Provider', nullable)

Method(m1, 'Product', <empty>, constructor, 0)
Method(m2, 'Product', <empty>, constructor, 4)
Parameter(m2, 'q', range, 1, 99999)
Parameter(m2, 'n', string, ['p1', 'p2', 'p3'])
Parameter(m2, 'p', range, 0.01, 10000.0)
Parameter(m2, 'prv', pointer, 'Provider', nullable)
Method(m3, '~Product', <empty>, destructor, 0)
Method(m4, 'UpdateQty', <empty>, update, 1)
Parameter(m4, 'q', range, 1, 99999)
Uses(m4, ['qty'])
Method(m5, 'ShowAttributes', <empty>, access, 0)

Node(n1, Yes, 1, [m1, m2])
Node(n2, No, 2, [m4])
Node(n3, No, 1, [m5])
Node(n4, No, 0, [m3])
Edge(n1, n2)
Edge(n2, n3)
Edge(n2, n4)
Edge(n3, n4)
`

func parseProduct(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse(productSpecText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseProductSpec(t *testing.T) {
	s := parseProduct(t)
	if s.Class.Name != "Product" || s.Class.Abstract || s.Class.Superclass != "" {
		t.Errorf("class = %+v", s.Class)
	}
	if len(s.Attributes) != 4 {
		t.Fatalf("attributes = %d", len(s.Attributes))
	}
	if s.Attributes[0].Name != "qty" || s.Attributes[0].Domain.Kind != DomRange {
		t.Errorf("attr qty = %+v", s.Attributes[0])
	}
	if s.Attributes[2].Domain.Float != true {
		t.Error("price should be a float range")
	}
	if s.Attributes[3].Domain.Kind != DomPointer || !s.Attributes[3].Domain.Nullable {
		t.Errorf("prov = %+v", s.Attributes[3].Domain)
	}
	if len(s.Methods) != 5 {
		t.Fatalf("methods = %d", len(s.Methods))
	}
	m2, ok := s.MethodByID("m2")
	if !ok || len(m2.Params) != 4 || m2.DeclaredParams != 4 {
		t.Fatalf("m2 = %+v, ok=%v", m2, ok)
	}
	if m2.Params[1].Domain.Kind != DomString || len(m2.Params[1].Domain.Candidates) != 3 {
		t.Errorf("m2 param n = %+v", m2.Params[1].Domain)
	}
	m4, _ := s.MethodByID("m4")
	if len(m4.Uses) != 1 || m4.Uses[0] != "qty" {
		t.Errorf("m4 uses = %v", m4.Uses)
	}
	if len(s.Nodes) != 4 || len(s.Edges) != 4 {
		t.Errorf("model = %d nodes, %d edges", len(s.Nodes), len(s.Edges))
	}
	if !s.Nodes[0].Start || s.Nodes[0].OutDeg != 1 {
		t.Errorf("n1 = %+v", s.Nodes[0])
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty input", "", "missing Class"},
		{"unknown clause", "Class('A', No, <empty>, <empty>) Widget(1)", "unknown clause"},
		{"duplicate class", "Class('A', No, <empty>, <empty>) Class('B', No, <empty>, <empty>)", "duplicate Class"},
		{"class arity", "Class('A')", "4 arguments"},
		{"class name not string", "Class(A, No, <empty>, <empty>)", "quoted string"},
		{"bad abstract flag", "Class('A', Maybe, <empty>, <empty>)", "Yes or No"},
		{"bad sources", "Class('A', No, <empty>, 42)", "source files"},
		{"attribute arity", "Class('A', No, <empty>, <empty>) Attribute('x')", "at least 2"},
		{"unknown domain", "Class('A', No, <empty>, <empty>) Attribute('x', widget, 1)", "unknown domain type"},
		{"range arity", "Class('A', No, <empty>, <empty>) Attribute('x', range, 1)", "lower and upper"},
		{"range non-number", "Class('A', No, <empty>, <empty>) Attribute('x', range, 'a', 'b')", "must be a number"},
		{"set not list", "Class('A', No, <empty>, <empty>) Attribute('x', set, 3)", "single list"},
		{"set bad member", "Class('A', No, <empty>, <empty>) Attribute('x', set, [yes])", "number or string"},
		{"string arity", "Class('A', No, <empty>, <empty>) Attribute('x', string, 1)", "string domain takes"},
		{"string float len", "Class('A', No, <empty>, <empty>) Attribute('x', string, 1.5, 3)", "must be an integer"},
		{"pointer no type", "Class('A', No, <empty>, <empty>) Attribute('x', pointer)", "takes a type name"},
		{"pointer bad flag", "Class('A', No, <empty>, <empty>) Attribute('x', pointer, 'T', maybe)", "nullable"},
		{"pointer too many", "Class('A', No, <empty>, <empty>) Attribute('x', pointer, 'T', nullable, nullable)", "at most"},
		{"bool args", "Class('A', No, <empty>, <empty>) Attribute('x', bool, 1)", "no arguments"},
		{"method arity", "Class('A', No, <empty>, <empty>) Method(m1, 'f')", "5 arguments"},
		{"method category", "Class('A', No, <empty>, <empty>) Method(m1, 'f', <empty>, builder, 0)", "unknown method category"},
		{"method bad return", "Class('A', No, <empty>, <empty>) Method(m1, 'f', 3, constructor, 0)", "return type"},
		{"param unknown method", "Class('A', No, <empty>, <empty>) Parameter(m9, 'x', range, 1, 2)", "undeclared method"},
		{"param arity", "Class('A', No, <empty>, <empty>) Parameter(m9)", "at least 3"},
		{"uses arity", "Class('A', No, <empty>, <empty>) Uses(m1)", "2 arguments"},
		{"uses unknown method", "Class('A', No, <empty>, <empty>) Uses(m9, ['x'])", "undeclared method"},
		{"uses bad list", "Class('A', No, <empty>, <empty>) Method(m1, 'f', <empty>, update, 0) Uses(m1, [1])", "must be names"},
		{"node arity", "Class('A', No, <empty>, <empty>) Node(n1)", "4 arguments"},
		{"node methods not list", "Class('A', No, <empty>, <empty>) Node(n1, No, 0, m1)", "must be a list"},
		{"edge arity", "Class('A', No, <empty>, <empty>) Edge(n1)", "2 arguments"},
		{"redefined not list", "Class('A', No, <empty>, <empty>) Redefined('x')", "single list"},
		{"unterminated string", "Class('A", "unterminated"},
		{"bad escape", `Class('a\z', No, <empty>, <empty>)`, "unknown escape"},
		{"stray char", "Class('A', No, <empty>, <empty>) @", "unexpected character"},
		{"bad empty literal", "Class('A', No, <emp>, <empty>)", "expected <empty>"},
		{"missing paren", "Class('A', No, <empty>, <empty>", "expected"},
		{"malformed number", "Class('A', No, <empty>, <empty>) Attribute('x', range, -, 2)", "malformed number"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
/* block comment
   spanning lines */
Class('A', No, <empty>, <empty>) // trailing
// whole line
Method(m1, 'A', <empty>, constructor, 0)
Method(m2, '~A', <empty>, destructor, 0)
Node(n1, Yes, 1, [m1])
Node(n2, No, 0, [m2])
Edge(n1, n2)
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s, err := Parse(`Class('it\'s \"x\"\n\t\\', No, <empty>, <empty>)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Class.Name != "it's \"x\"\n\t\\" {
		t.Errorf("name = %q", s.Class.Name)
	}
}

func TestParseDoubleQuotedStrings(t *testing.T) {
	s, err := Parse(`Class("A", No, "Super", ["f1.cpp", "f2.cpp"])`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Class.Superclass != "Super" || len(s.Class.Sources) != 2 {
		t.Errorf("class = %+v", s.Class)
	}
}

func TestParseSetDomains(t *testing.T) {
	s, err := Parse(`
Class('A', No, <empty>, <empty>)
Attribute('ints', set, [1, 2, 3])
Attribute('floats', set, [1.5, 2.5])
Attribute('strs', set, ['a', 'b'])
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Attributes[0].Domain.Members[0].Kind() != domain.KindInt {
		t.Error("int set member kind wrong")
	}
	if s.Attributes[1].Domain.Members[0].Kind() != domain.KindFloat {
		t.Error("float set member kind wrong")
	}
	if s.Attributes[2].Domain.Members[0].Kind() != domain.KindString {
		t.Error("string set member kind wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	orig := parseProduct(t)
	var sb strings.Builder
	if err := orig.Format(&sb); err != nil {
		t.Fatalf("Format: %v", err)
	}
	back, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("re-Parse:\n%s\nerror: %v", sb.String(), err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("re-Validate: %v", err)
	}
	// Compare the round-tripped spec structurally.
	if back.Class.Name != orig.Class.Name || back.Class.Abstract != orig.Class.Abstract ||
		back.Class.Superclass != orig.Class.Superclass {
		t.Errorf("class differs: %+v vs %+v", back.Class, orig.Class)
	}
	if len(back.Attributes) != len(orig.Attributes) {
		t.Fatalf("attributes: %d vs %d", len(back.Attributes), len(orig.Attributes))
	}
	for i := range orig.Attributes {
		if back.Attributes[i].Name != orig.Attributes[i].Name ||
			!sameDomainDecl(back.Attributes[i].Domain, orig.Attributes[i].Domain) {
			t.Errorf("attribute %d differs: %+v vs %+v", i, back.Attributes[i], orig.Attributes[i])
		}
	}
	if len(back.Methods) != len(orig.Methods) {
		t.Fatalf("methods: %d vs %d", len(back.Methods), len(orig.Methods))
	}
	for i := range orig.Methods {
		if !sameSignature(back.Methods[i], orig.Methods[i]) {
			t.Errorf("method %d differs: %+v vs %+v", i, back.Methods[i], orig.Methods[i])
		}
	}
	if len(back.Nodes) != len(orig.Nodes) || len(back.Edges) != len(orig.Edges) {
		t.Errorf("model: %d/%d vs %d/%d", len(back.Nodes), len(back.Edges), len(orig.Nodes), len(orig.Edges))
	}
}

func TestRoundTripInheritanceClauses(t *testing.T) {
	src := `
Class('Sub', No, 'Base', <empty>)
Attribute('n', range, 0, 10)
Method(m1, 'Sub', <empty>, constructor, 0)
Method(m2, '~Sub', <empty>, destructor, 0)
Method(m3, 'Touch', <empty>, update, 0)
Uses(m3, ['n'])
Node(n1, Yes, 1, [m1])
Node(n2, No, 1, [m3])
Node(n3, No, 0, [m2])
Edge(n1, n2)
Edge(n2, n3)
Redefined(['Touch'])
ModifiedAttributes(['n'])
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var sb strings.Builder
	if err := s.Format(&sb); err != nil {
		t.Fatalf("Format: %v", err)
	}
	back, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if len(back.Redefined) != 1 || back.Redefined[0] != "Touch" {
		t.Errorf("Redefined = %v", back.Redefined)
	}
	if len(back.ModifiedAttributes) != 1 || back.ModifiedAttributes[0] != "n" {
		t.Errorf("ModifiedAttributes = %v", back.ModifiedAttributes)
	}
}

func TestSpecString(t *testing.T) {
	s := parseProduct(t)
	if !strings.Contains(s.String(), "Class('Product'") {
		t.Errorf("String() = %q", s.String())
	}
}
