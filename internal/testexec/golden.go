package testexec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Golden is the golden-output oracle: it stores the transcripts of a
// reference run of the original component and flags any later run whose
// observable output differs. This automates the paper's third mutant-kill
// criterion — "the output of the program that finished execution was
// different of the output of the original program (these outputs were
// validated by hand before experiments began)".
type Golden struct {
	Component   string            `json:"component"`
	Transcripts map[string]string `json:"transcripts"` // case ID -> transcript
	Outcomes    map[string]string `json:"outcomes"`    // case ID -> outcome name
}

var _ Oracle = (*Golden)(nil)

// NewGolden records a reference report as the oracle.
func NewGolden(ref *Report) *Golden {
	g := &Golden{
		Component:   ref.Component,
		Transcripts: make(map[string]string, len(ref.Results)),
		Outcomes:    make(map[string]string, len(ref.Results)),
	}
	for _, res := range ref.Results {
		g.Transcripts[res.CaseID] = res.Transcript
		g.Outcomes[res.CaseID] = res.Outcome.String()
	}
	return g
}

// Check implements Oracle.
func (g *Golden) Check(caseID, transcript string) error {
	want, ok := g.Transcripts[caseID]
	if !ok {
		return fmt.Errorf("golden oracle has no reference for case %s", caseID)
	}
	if transcript == want {
		return nil
	}
	return fmt.Errorf("output differs from reference run:\n%s", firstDiff(want, transcript))
}

// Differs reports whether a case result deviates from the reference run in
// any of the paper's three senses: different outcome class (crash or
// assertion violation that the original did not have), or, for completed
// runs, different observable output.
func (g *Golden) Differs(res CaseResult) bool {
	refOutcome, ok := g.Outcomes[res.CaseID]
	if !ok {
		return true
	}
	if res.Outcome.String() != refOutcome {
		return true
	}
	return res.Transcript != g.Transcripts[res.CaseID]
}

// Save writes the oracle as JSON.
func (g *Golden) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		return fmt.Errorf("testexec: encoding golden oracle: %w", err)
	}
	return nil
}

// SaveFile writes the oracle to a file, creating parent directories as
// needed — the committed golden-file workflow: record a reference run once,
// check it in, and let later runs (including parallel ones) be compared
// against it.
func (g *Golden) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("testexec: creating golden directory: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("testexec: creating golden file: %w", err)
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("testexec: writing golden file: %w", err)
	}
	return nil
}

// LoadGoldenFile reads an oracle saved with SaveFile.
func LoadGoldenFile(path string) (*Golden, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("testexec: opening golden file: %w", err)
	}
	defer f.Close()
	return LoadGolden(f)
}

// LoadGolden reads an oracle saved with Save.
func LoadGolden(r io.Reader) (*Golden, error) {
	var g Golden
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("testexec: decoding golden oracle: %w", err)
	}
	if g.Transcripts == nil {
		g.Transcripts = map[string]string{}
	}
	if g.Outcomes == nil {
		g.Outcomes = map[string]string{}
	}
	return &g, nil
}

// firstDiff renders the first differing line between two transcripts.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	if len(wl) != len(gl) {
		return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
	}
	return "transcripts differ"
}
