package tspec

import (
	"fmt"

	"concat/internal/domain"
)

// Builder assembles a Spec programmatically. It is how the component
// producer role of §3.1 is played inside this repository: each built-in
// component constructs its t-spec with a Builder, then serializes it into
// the component (Format) so consumers can regenerate tests from text.
//
// Builder methods record errors instead of returning them; Build reports the
// first recorded error, which keeps construction sites declarative.
type Builder struct {
	spec Spec
	err  error
}

// NewBuilder starts a spec for the named class.
func NewBuilder(name string) *Builder {
	return &Builder{spec: Spec{Class: Class{Name: name}}}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("tspec: builder: %s", fmt.Sprintf(format, args...))
	}
	return b
}

// Abstract marks the class abstract.
func (b *Builder) Abstract() *Builder {
	b.spec.Class.Abstract = true
	return b
}

// Extends records the superclass name.
func (b *Builder) Extends(super string) *Builder {
	b.spec.Class.Superclass = super
	return b
}

// Sources records the source-file list of the Class clause.
func (b *Builder) Sources(files ...string) *Builder {
	b.spec.Class.Sources = append(b.spec.Class.Sources, files...)
	return b
}

// Attribute declares an attribute with a domain.
func (b *Builder) Attribute(name string, d DomainDecl) *Builder {
	b.spec.Attributes = append(b.spec.Attributes, Attribute{Name: name, Domain: d})
	return b
}

// Method declares a method; params are added with Param, which applies to
// the most recently declared method.
func (b *Builder) Method(id, name, ret string, cat MethodCategory) *Builder {
	b.spec.Methods = append(b.spec.Methods, Method{ID: id, Name: name, Return: ret, Category: cat})
	return b
}

// Param appends a parameter to the most recently declared method.
func (b *Builder) Param(name string, d DomainDecl) *Builder {
	if len(b.spec.Methods) == 0 {
		return b.fail("Param(%q) before any Method", name)
	}
	m := &b.spec.Methods[len(b.spec.Methods)-1]
	m.Params = append(m.Params, Param{Name: name, Domain: d})
	return b
}

// Uses records the attributes the most recently declared method touches.
func (b *Builder) Uses(attrs ...string) *Builder {
	if len(b.spec.Methods) == 0 {
		return b.fail("Uses before any Method")
	}
	m := &b.spec.Methods[len(b.spec.Methods)-1]
	m.Uses = append(m.Uses, attrs...)
	return b
}

// Node declares a TFM node.
func (b *Builder) Node(id string, start bool, methods ...string) *Builder {
	b.spec.Nodes = append(b.spec.Nodes, NodeDecl{ID: id, Start: start, Methods: methods})
	return b
}

// Edge declares a TFM link.
func (b *Builder) Edge(from, to string) *Builder {
	b.spec.Edges = append(b.spec.Edges, EdgeDecl{From: from, To: to})
	return b
}

// Redefines marks inherited methods (by name) as reimplemented in this class.
func (b *Builder) Redefines(names ...string) *Builder {
	b.spec.Redefined = append(b.spec.Redefined, names...)
	return b
}

// ModifiesAttributes marks inherited attributes whose representation changed.
func (b *Builder) ModifiesAttributes(names ...string) *Builder {
	b.spec.ModifiedAttributes = append(b.spec.ModifiedAttributes, names...)
	return b
}

// Build finalizes the spec: declared parameter counts and node out-degrees
// are synthesized from what was built, then the spec is validated.
func (b *Builder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	spec := b.spec.Clone()
	for i := range spec.Methods {
		spec.Methods[i].DeclaredParams = len(spec.Methods[i].Params)
	}
	outDeg := map[string]int{}
	for _, e := range spec.Edges {
		outDeg[e.From]++
	}
	for i := range spec.Nodes {
		spec.Nodes[i].OutDeg = outDeg[spec.Nodes[i].ID]
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MustBuild is Build for static component specs whose validity is assured by
// the package's own tests; it panics on error.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Convenience domain constructors used by component spec definitions.

// RangeInt declares an inclusive integer range domain.
func RangeInt(lo, hi int64) DomainDecl {
	return DomainDecl{Kind: DomRange, Lo: float64(lo), Hi: float64(hi)}
}

// RangeFloat declares a closed float interval domain.
func RangeFloat(lo, hi float64) DomainDecl {
	return DomainDecl{Kind: DomRange, Lo: lo, Hi: hi, Float: true}
}

// SetOf declares an enumerated domain.
func SetOf(members ...domain.Value) DomainDecl {
	return DomainDecl{Kind: DomSet, Members: members}
}

// StringLen declares a random-string domain with length bounds.
func StringLen(minLen, maxLen int) DomainDecl {
	return DomainDecl{Kind: DomString, MinLen: minLen, MaxLen: maxLen}
}

// StringsOf declares a candidate-list string domain.
func StringsOf(candidates ...string) DomainDecl {
	return DomainDecl{Kind: DomString, Candidates: candidates}
}

// ObjectOf declares an object domain of the named component type.
func ObjectOf(typeName string) DomainDecl {
	return DomainDecl{Kind: DomObject, TypeName: typeName}
}

// PointerTo declares a pointer domain of the named component type.
func PointerTo(typeName string, nullable bool) DomainDecl {
	return DomainDecl{Kind: DomPointer, TypeName: typeName, Nullable: nullable}
}

// BoolDom declares the boolean domain.
func BoolDom() DomainDecl {
	return DomainDecl{Kind: DomBool}
}
