// Crash containment: the subprocess isolation mode. In-process execution
// recovers panics, but Go offers no recovery from a fatal runtime error —
// stack exhaustion, out-of-memory — and none from code that calls os.Exit;
// any of those in one mutant kills the whole campaign. Under
// IsolateSubprocess the executor re-executes each case in a child process
// (the hidden `concat run-case` subcommand, or any binary that calls
// ServeCase when ServerEnv is set) and classifies fatal child deaths from
// the exit status into OutcomePanic — the paper's criterion (i), "the
// program crashed while running the test cases", surviving the crash it
// records.
package testexec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/obs"
	"concat/internal/sandbox"
)

// DefaultIsolationBackstop is the parent-side kill deadline for an
// isolated case when no CaseTimeout is configured. Without it a child
// wedged in a hard loop (no cooperative timeout to trip) would hang the
// campaign forever — the parent must always hold a deadline of last
// resort.
const DefaultIsolationBackstop = 30 * time.Second

// isolationDeadline computes the parent backstop for one isolated case.
// An explicit Options.IsolationBackstop wins; otherwise the backstop is
// derived from CaseTimeout (double it, plus slack for process startup),
// falling back to DefaultIsolationBackstop when no CaseTimeout is set.
func isolationDeadline(opts Options) time.Duration {
	if opts.IsolationBackstop > 0 {
		return opts.IsolationBackstop
	}
	if opts.CaseTimeout > 0 {
		return 2*opts.CaseTimeout + 30*time.Second
	}
	return DefaultIsolationBackstop
}

// IsolationMode selects how the executor contains crashes.
type IsolationMode int

const (
	// IsolateInProcess (the default) runs cases in the harness process;
	// panics are recovered, but fatal runtime errors and os.Exit are not
	// survivable.
	IsolateInProcess IsolationMode = iota
	// IsolateSubprocess re-executes every case in a child process running a
	// case server (ServeCase); fatal failures become per-case OutcomePanic
	// results classified from the exit status.
	IsolateSubprocess
	// IsolatePool keeps the subprocess containment but amortizes process
	// startup: cases are dispatched in batches to a pool of long-lived
	// worker processes (ServeCaseBatches), each case still executing
	// against a freshly resolved component. Workers are restarted only on
	// crash, deadline kill, or a dirty batch, and a mid-batch death
	// consumes exactly the in-flight case — classifications are
	// byte-identical to IsolateSubprocess.
	IsolatePool
)

// ServerEnv is the environment sentinel the executor sets when spawning a
// case server. A binary that wants to be usable as its own sandbox calls
// ServeCase from main (or TestMain) when this variable is set.
const ServerEnv = "CONCAT_CASE_SERVER"

// Resolved is a Resolver's answer: the factory to run the case against,
// the providers completing its structured parameters, and an optional
// Finish hook whose return value travels back to the parent in
// CaseResult.Extra (mutation analysis ships reach/infection flags this
// way).
type Resolved struct {
	Factory   component.Factory
	Providers map[string]domain.Provider
	Finish    func() json.RawMessage
}

// Resolver maps a component name plus the run's opaque isolation context
// onto the component to execute. It runs inside the case server process.
type Resolver func(componentName string, context json.RawMessage) (Resolved, error)

// caseRequest is the parent-to-child wire form of one isolated case.
type caseRequest struct {
	Component           string          `json:"component"`
	Case                driver.TestCase `json:"case"`
	Seed                int64           `json:"seed"`
	SkipInvariantChecks bool            `json:"skipInvariantChecks,omitempty"`
	SkipReporter        bool            `json:"skipReporter,omitempty"`
	CaseTimeoutMS       int64           `json:"caseTimeoutMs,omitempty"`
	StepBudget          int64           `json:"stepBudget,omitempty"`
	MaxTranscriptBytes  int64           `json:"maxTranscriptBytes,omitempty"`
	Context             json.RawMessage `json:"context,omitempty"`
	// Trace asks the child to collect its call spans and ship them back
	// piggybacked on CaseResult.Extra (see obs.WrapExtra).
	Trace bool `json:"trace,omitempty"`
}

// caseResponse is the child-to-parent wire form. A child that dies before
// writing it is classified from its exit status instead.
type caseResponse struct {
	Result *CaseResult `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	// BITSites carries the case's assertion-site telemetry back to the
	// parent in its own field — never on CaseResult.Extra, whose bytes must
	// stay identical between isolated and in-process runs. Empty when the
	// case timed out (timeout telemetry is dropped on both paths).
	BITSites []bit.SiteRecord `json:"bitSites,omitempty"`
}

// ServeCase is the case-server entry point: it reads one caseRequest from
// r, executes it against the resolver's component, and writes the
// caseResponse to w. Resolution and execution errors are reported in-band;
// the returned error covers only I/O on r/w. Fatal failures of the code
// under test kill this process by design — that is the containment the
// parent classifies.
func ServeCase(r io.Reader, w io.Writer, resolve Resolver) error {
	// A small stack cap makes stack-exhaustion mutants die fast and cheap;
	// the parent sees the same deterministic "fatal error: stack overflow"
	// either way.
	debug.SetMaxStack(64 << 20)

	respond := func(resp caseResponse) error {
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			return fmt.Errorf("testexec: case server writing response: %w", err)
		}
		return nil
	}
	var req caseRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return respond(caseResponse{Error: fmt.Sprintf("decoding case request: %v", err)})
	}
	if resolve == nil {
		return respond(caseResponse{Error: "case server has no resolver"})
	}
	resolved, err := resolve(req.Component, req.Context)
	if err != nil {
		return respond(caseResponse{Error: fmt.Sprintf("resolving %q: %v", req.Component, err)})
	}
	f := resolved.Factory
	if f == nil {
		return respond(caseResponse{Error: fmt.Sprintf("resolver returned no factory for %q", req.Component)})
	}
	opts := Options{
		Providers:           resolved.Providers,
		SkipInvariantChecks: req.SkipInvariantChecks,
		SkipReporter:        req.SkipReporter,
		CaseTimeout:         time.Duration(req.CaseTimeoutMS) * time.Millisecond,
		StepBudget:          req.StepBudget,
		MaxTranscriptBytes:  req.MaxTranscriptBytes,
	}
	if req.Trace {
		// Collect the child's call spans in memory; they travel back to the
		// parent inside Extra and are re-parented under the spawn span there.
		opts.Trace = obs.NewCollector()
	}
	// The child process is the case's fresh world — no Forker dance needed;
	// leaked timeout goroutines die with the process.
	caseTel := bit.NewTelemetry()
	res := runCaseBounded(req.Case, f, f.Spec(), opts, req.Seed, nil, 0, caseTel)
	res.Seed = req.Seed
	if resolved.Finish != nil {
		res.Extra = resolved.Finish()
	}
	if req.Trace {
		res.Extra = obs.WrapExtra(res.Extra, opts.Trace.Spans())
	}
	resp := caseResponse{Result: &res}
	if res.Outcome != OutcomeTimeout {
		// A timed-out case's abandoned goroutine may still be recording;
		// dropping its counts keeps the aggregate deterministic, matching
		// the in-process merge rule.
		resp.BITSites = caseTel.Records()
	}
	return respond(resp)
}

// runCaseIsolated executes one case in a child case server and classifies
// the child's fate into a CaseResult. Spawn failures are retried under the
// transient-error policy; every other failure mode is deterministic.
func runCaseIsolated(componentName string, tc driver.TestCase, opts Options, seed int64, caseSpan *obs.ActiveSpan, tel *bit.Telemetry) CaseResult {
	base := CaseResult{CaseID: tc.ID, Transaction: tc.Transaction, Seed: seed}
	spawn := opts.Trace.Start(caseSpan.ID(), obs.KindSpawn, tc.ID)
	defer spawn.End()
	req := caseRequest{
		Component:           componentName,
		Case:                tc,
		Seed:                seed,
		SkipInvariantChecks: opts.SkipInvariantChecks,
		SkipReporter:        opts.SkipReporter,
		CaseTimeoutMS:       opts.CaseTimeout.Milliseconds(),
		StepBudget:          opts.StepBudget,
		MaxTranscriptBytes:  opts.MaxTranscriptBytes,
		Context:             opts.IsolationContext,
		Trace:               opts.Trace != nil,
	}
	payload, err := json.Marshal(req)
	if err != nil {
		spawn.SetAttr("exit", "encode-error")
		base.Outcome = OutcomeError
		base.Detail = fmt.Sprintf("encoding isolated case request: %v", err)
		return base
	}
	argv := opts.IsolationCommand
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			spawn.SetAttr("exit", "exe-error")
			base.Outcome = OutcomeError
			base.Detail = fmt.Sprintf("resolving executable for isolation: %v", err)
			return base
		}
		argv = []string{exe, "run-case"}
	}
	// The child applies CaseTimeout itself; the parent deadline is a
	// backstop for a child wedged beyond cooperation. It is always armed:
	// with no CaseTimeout to derive from, DefaultIsolationBackstop caps the
	// child so a hard-looping mutant cannot hang the campaign.
	deadline := isolationDeadline(opts)
	policy := opts.SpawnRetry
	if policy.Attempts == 0 {
		policy = sandbox.DefaultRetryPolicy()
	}
	var proc *sandbox.ProcessResult
	attempts := 0
	err = sandbox.Retry(policy, func() error {
		attempts++
		var spawnErr error
		proc, spawnErr = sandbox.RunProcess(sandbox.ProcessSpec{
			Argv:    argv,
			Stdin:   payload,
			Env:     append([]string{ServerEnv + "=1"}, opts.IsolationEnv...),
			Timeout: deadline,
			Span:    spawn,
		})
		return spawnErr
	})
	if spawn != nil && attempts > 1 {
		spawn.SetAttr("attempts", fmt.Sprintf("%d", attempts))
	}
	opts.Metrics.Inc("isolation.spawns", 1)
	if err != nil {
		spawn.SetAttr("exit", "spawn-error")
		base.Outcome = OutcomeError
		base.Detail = fmt.Sprintf("spawning case server: %v", err)
		return base
	}
	if proc.TimedOut {
		spawn.SetAttr("exit", "backstop-timeout")
		opts.Metrics.Inc("isolation.backstop-timeouts", 1)
		base.Outcome = OutcomeTimeout
		base.Detail = fmt.Sprintf("isolated case exceeded the %v harness deadline; subprocess killed", deadline)
		return base
	}
	var resp caseResponse
	if decErr := json.Unmarshal(proc.Stdout, &resp); decErr == nil && (resp.Result != nil || resp.Error != "") {
		if resp.Error != "" {
			spawn.SetAttr("exit", "server-error")
			base.Outcome = OutcomeError
			base.Detail = "case server: " + resp.Error
			return base
		}
		res := *resp.Result
		res.CaseID, res.Transaction = tc.ID, tc.Transaction
		tel.MergeRecords(resp.BITSites)
		if opts.Trace != nil {
			// Split the child's piggybacked spans off Extra and re-parent
			// them under the spawn span; the report keeps the exact payload
			// bytes an untraced run would have carried.
			payload, childSpans := obs.UnwrapExtra(res.Extra)
			res.Extra = payload
			opts.Trace.EmitChildren(spawn.ID(), childSpans)
		}
		spawn.SetAttr("exit", "ok")
		return res
	}
	// No usable response: the child died before reporting — the fatal
	// failure containment is here. A non-zero exit is the mutant killing
	// the process (criterion (i)); exit 0 with garbage output is a broken
	// case server, a harness error.
	if proc.ExitCode != 0 {
		spawn.SetAttr("exit", "fatal")
		base.Outcome = OutcomePanic
		base.Detail = "fatal subprocess failure: " + proc.FatalSummary
		return base
	}
	spawn.SetAttr("exit", "no-result")
	base.Outcome = OutcomeError
	base.Detail = "case server exited without a result"
	return base
}
