package driver

// Tracing the soak generator must not perturb it: the generated suite is
// identical with tracing on or off and at any parallelism, and the span
// forest (one soak-generate root, one soak-case child per case) is
// structurally stable across worker counts.

import (
	"reflect"
	"testing"

	"concat/internal/components/account"
	"concat/internal/obs"
)

func TestGenerateSoakTraceSidechannel(t *testing.T) {
	spec := account.Spec()
	base := SoakOptions{Seed: 9, Cases: 40, MaxLength: 12}

	plain, err := GenerateSoak(spec, base)
	if err != nil {
		t.Fatalf("GenerateSoak: %v", err)
	}

	genSpans := func(parallelism int) []obs.Span {
		opts := base
		opts.Parallelism = parallelism
		opts.Trace = obs.NewCollector()
		opts.Metrics = obs.NewMetrics()
		s, err := GenerateSoak(spec, opts)
		if err != nil {
			t.Fatalf("GenerateSoak(parallelism=%d): %v", parallelism, err)
		}
		if !reflect.DeepEqual(plain.Cases, s.Cases) {
			t.Errorf("tracing or parallelism %d changed the generated suite", parallelism)
		}
		if got := opts.Metrics.Snapshot().Counters["soak.cases"]; got != int64(base.Cases) {
			t.Errorf("soak.cases = %d, want %d", got, base.Cases)
		}
		return opts.Trace.Spans()
	}

	serial := genSpans(1)
	parallel := genSpans(4)
	if err := obs.ValidateTrace(serial); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	var gen, cases int
	for _, sp := range serial {
		switch sp.Kind {
		case obs.KindSoakGen:
			gen++
		case obs.KindSoakCase:
			cases++
		}
	}
	if gen != 1 || cases != base.Cases {
		t.Errorf("span counts gen=%d cases=%d, want 1/%d", gen, cases, base.Cases)
	}
	sf, pf := obs.Tree(serial), obs.Tree(parallel)
	if !obs.EqualForests(sf, pf) {
		t.Errorf("soak span forests differ between serial and parallel generation:\n%s\nvs\n%s",
			obs.RenderForest(sf), obs.RenderForest(pf))
	}
}
