// Impact-analysis determinism suite: for every built-in component, an
// impact-driven partial re-run (old spec = a perturbed revision, new spec =
// the real one) must reassemble a final report and coverage artifact
// byte-identical to a cold full run of the new spec's suite — warm replay
// is an execution-avoidance strategy, never an oracle input — and once the
// store is primed, an identical-spec diff must re-execute nothing.
package concat

import (
	"sort"
	"testing"

	"concat/internal/core"
	"concat/internal/cover"
	"concat/internal/driver"
	"concat/internal/impact"
	"concat/internal/store"
	"concat/internal/testexec"
	"concat/internal/tspec"
)

// impactPerturb clones the component's spec into a plausible "previous
// revision": degenerate the first range parameter domain, or, for specs
// without one, change a method's return type. Either way DiffSpecs sees a
// non-empty impact set, so the run exercises all three partitions' paths.
func impactPerturb(t *testing.T, s *tspec.Spec) *tspec.Spec {
	t.Helper()
	cp := s.Clone()
	for i, m := range cp.Methods {
		for j, p := range m.Params {
			if p.Domain.Kind == tspec.DomRange && p.Domain.Lo != p.Domain.Hi {
				cp.Methods[i].Params[j].Domain.Hi = p.Domain.Lo
				return cp
			}
		}
	}
	for i, m := range cp.Methods {
		if m.Category != tspec.CatConstructor && m.Category != tspec.CatDestructor {
			cp.Methods[i].Return = m.Return + "X"
			return cp
		}
	}
	t.Fatalf("spec %s has nothing to perturb", s.Class.Name)
	return nil
}

// TestImpactByteIdenticalToColdRun is the impact engine's correctness bar,
// enforced component by component: the partial re-run's reassembled report
// and coverage artifact reproduce a cold full run's bytes exactly, and a
// subsequent identical-spec analysis against the primed store re-executes
// zero cases.
func TestImpactByteIdenticalToColdRun(t *testing.T) {
	targets := core.Targets()
	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		target := targets[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			comp := target.New(nil)
			spec := comp.Spec()
			old := impactPerturb(t, spec)
			r := &impact.Runner{
				Factory:   comp.Factory,
				Providers: comp.Providers,
				Gen:       driver.Options{Seed: 42},
				Store:     store.NewMem(),
			}
			res, err := r.Run(old, spec)
			if err != nil {
				t.Fatalf("impact run: %v", err)
			}
			if res.Report.Rerun+res.Report.Regenerated == 0 {
				t.Fatalf("perturbation invalidated nothing; the partial-re-run path went unexercised")
			}

			cold, err := target.New(nil).RunSuite(res.Suite, testexec.Options{})
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}
			if got, want := reportBytes(t, res.Final), reportBytes(t, cold); string(got) != string(want) {
				t.Errorf("impact-reassembled report deviates from the cold run:\ngot:  %s\nwant: %s", got, want)
			}

			g, err := spec.TFM()
			if err != nil {
				t.Fatalf("lowering spec: %v", err)
			}
			coldArt, err := cover.FromRun(g, res.Suite, cold)
			if err != nil {
				t.Fatalf("cold coverage: %v", err)
			}
			want, err := coldArt.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Coverage.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("impact coverage artifact deviates from the cold run's")
			}

			// The first run stored every case; an identical-spec analysis now
			// replays the whole suite without executing a single case.
			warm, err := r.Run(spec, spec)
			if err != nil {
				t.Fatalf("warm identical run: %v", err)
			}
			if warm.Report.Rerun+warm.Report.Regenerated != 0 || warm.Report.CacheMisses != 0 {
				t.Errorf("identical-spec analysis re-executed work: %d rerun, %d regenerated, %d misses",
					warm.Report.Rerun, warm.Report.Regenerated, warm.Report.CacheMisses)
			}
			if got := reportBytes(t, warm.Final); string(got) != string(reportBytes(t, cold)) {
				t.Errorf("fully-warm report deviates from the cold run")
			}
		})
	}
}
