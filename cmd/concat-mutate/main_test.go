package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `package sample

var ext int64

type Box struct {
	size int64
	cap  int64
}

func (b *Box) Fill(n int64) int64 {
	room := b.cap - b.size
	used := n
	if used > room {
		used = room
	}
	b.size += used
	return used
}
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.go")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunList(t *testing.T) {
	path := writeSample(t)
	if err := run([]string{"-src", path, "-list"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesMutants(t *testing.T) {
	path := writeSample(t)
	outDir := filepath.Join(t.TempDir(), "mutants")
	if err := run([]string{"-src", path, "-out", outDir, "-ops", "IndVarBitNeg"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatalf("reading mutant dir: %v", err)
	}
	if len(entries) == 0 {
		t.Error("no mutant files written")
	}
}

func TestRunMethodAndOpFilters(t *testing.T) {
	path := writeSample(t)
	if err := run([]string{"-src", path, "-methods", "Fill", "-ops", "IndVarRepLoc", "-max", "1", "-list"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -src should fail")
	}
	if err := run([]string{"-src", filepath.Join(t.TempDir(), "absent.go")}); err == nil {
		t.Error("missing file should fail")
	}
	path := writeSample(t)
	if err := run([]string{"-src", path, "-ops", "NotAnOperator"}); err == nil {
		t.Error("unknown operator should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.go")
	if err := os.WriteFile(bad, []byte("not go at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-src", bad}); err == nil {
		t.Error("unparsable source should fail")
	}
}
