package testexec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/components/account"
	"concat/internal/domain"
	"concat/internal/driver"
	"concat/internal/tspec"
)

func accountSuite(t *testing.T) *driver.Suite {
	t.Helper()
	s, err := driver.Generate(account.Spec(), driver.Options{Seed: 11, ExpandAlternatives: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

func TestRunAccountSuiteAllPass(t *testing.T) {
	s := accountSuite(t)
	var log bytes.Buffer
	rep, err := Run(s, account.NewFactory(), Options{LogWriter: &log})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Results) != len(s.Cases) {
		t.Fatalf("results = %d, cases = %d", len(rep.Results), len(s.Cases))
	}
	if !rep.AllPassed() {
		t.Fatalf("failures: %+v", rep.Failures())
	}
	if !strings.Contains(log.String(), "TestCaseTC0 OK!") {
		t.Errorf("log missing OK line:\n%s", log.String())
	}
	if got := rep.Counts()[OutcomePass]; got != len(s.Cases) {
		t.Errorf("pass count = %d", got)
	}
	if !strings.Contains(rep.Summary(), "pass=") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestRunTranscriptsDeterministic(t *testing.T) {
	s := accountSuite(t)
	rep1, err := Run(s, account.NewFactory(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(s, account.NewFactory(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep1.Results {
		if rep1.Results[i].Transcript != rep2.Results[i].Transcript {
			t.Fatalf("case %s transcript not deterministic", rep1.Results[i].CaseID)
		}
	}
}

func TestRunValidation(t *testing.T) {
	s := accountSuite(t)
	if _, err := Run(nil, account.NewFactory(), Options{}); err == nil {
		t.Error("nil suite should fail")
	}
	if _, err := Run(s, nil, Options{}); err == nil {
		t.Error("nil factory should fail")
	}
	s2 := *s
	s2.Component = "Other"
	if _, err := Run(&s2, account.NewFactory(), Options{}); err == nil {
		t.Error("component mismatch should fail")
	}
}

func TestReportAccessors(t *testing.T) {
	s := accountSuite(t)
	rep, err := Run(s, account.NewFactory(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := rep.Result("TC0")
	if !ok || res.CaseID != "TC0" {
		t.Errorf("Result(TC0) = %+v, %v", res, ok)
	}
	if _, ok := rep.Result("TC99999"); ok {
		t.Error("Result should miss for unknown case")
	}
}

// chaos is an in-package component whose behaviour is scripted by
// constructor argument, exercising the executor's failure paths.
type chaos struct {
	bit.Base
	mode      string
	destroyed bool
	calls     int
}

func (c *chaos) InvariantTest() error {
	if err := c.Guard(); err != nil {
		return err
	}
	if c.mode == "break-invariant" && c.calls > 0 {
		return bit.ClassInvariant(false, "InvariantTest", "state valid")
	}
	return nil
}

func (c *chaos) Reporter(w io.Writer) error {
	if err := c.Guard(); err != nil {
		return err
	}
	fmt.Fprintf(w, "chaos{calls: %d}\n", c.calls)
	return nil
}

func (c *chaos) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	c.calls++
	switch {
	case c.mode == "panic" && method == "Poke":
		panic("chaos panic")
	case c.mode == "pre-violation" && method == "Poke":
		return nil, bit.PreCondition(false, "Poke", "never")
	case c.mode == "soft-error" && method == "Poke":
		return nil, errors.New("soft failure")
	}
	return []domain.Value{domain.Int(int64(c.calls))}, nil
}

func (c *chaos) Destroy() error {
	if c.mode == "destroy-error" {
		return errors.New("destructor exploded")
	}
	if c.mode == "destroy-violation" {
		return bit.PostCondition(false, "~Chaos", "clean shutdown")
	}
	c.destroyed = true
	return nil
}

type chaosFactory struct{ mode string }

func (f *chaosFactory) Name() string { return "Chaos" }

func (f *chaosFactory) Spec() *tspec.Spec { return chaosSpec() }

func (f *chaosFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	if f.mode == "ctor-error" {
		return nil, errors.New("constructor refused")
	}
	return &chaos{mode: f.mode}, nil
}

func chaosSpec() *tspec.Spec {
	return tspec.NewBuilder("Chaos").
		Method("m1", "Chaos", "", tspec.CatConstructor).
		Method("m2", "~Chaos", "", tspec.CatDestructor).
		Method("m3", "Poke", "int", tspec.CatUpdate).
		Node("n1", true, "m1").
		Node("n2", false, "m3").
		Node("n3", false, "m2").
		Edge("n1", "n2").
		Edge("n2", "n3").
		MustBuild()
}

func chaosSuite() *driver.Suite {
	return &driver.Suite{
		Component: "Chaos",
		Cases: []driver.TestCase{{
			ID:          "TC0",
			Transaction: "n1>n2>n3",
			Path:        []string{"n1", "n2", "n3"},
			Calls: []driver.Call{
				{MethodID: "m1", Method: "Chaos"},
				{MethodID: "m3", Method: "Poke"},
				{MethodID: "m2", Method: "~Chaos"},
			},
		}},
	}
}

func TestRunOutcomes(t *testing.T) {
	tests := []struct {
		mode string
		want Outcome
		kind bit.ViolationKind
	}{
		{"", OutcomePass, 0},
		{"panic", OutcomePanic, 0},
		{"pre-violation", OutcomeViolation, bit.KindPrecondition},
		{"break-invariant", OutcomeViolation, bit.KindInvariant},
		{"soft-error", OutcomePass, 0}, // recorded in transcript, not a failure
		{"ctor-error", OutcomeError, 0},
		{"destroy-error", OutcomeError, 0},
		{"destroy-violation", OutcomeViolation, bit.KindPostcondition},
	}
	for _, tt := range tests {
		t.Run("mode="+tt.mode, func(t *testing.T) {
			var log bytes.Buffer
			rep, err := Run(chaosSuite(), &chaosFactory{mode: tt.mode}, Options{LogWriter: &log})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			res := rep.Results[0]
			if res.Outcome != tt.want {
				t.Fatalf("outcome = %s, want %s (detail %q)", res.Outcome, tt.want, res.Detail)
			}
			if tt.kind != 0 && res.ViolationKind != tt.kind {
				t.Errorf("violation kind = %s, want %s", res.ViolationKind, tt.kind)
			}
			if tt.want != OutcomePass {
				if !strings.Contains(log.String(), "TestCaseTC0\n") {
					t.Errorf("failure log missing case header:\n%s", log.String())
				}
			}
			if tt.mode == "soft-error" && !strings.Contains(res.Transcript, "error: soft failure") {
				t.Errorf("transcript should record the soft error: %q", res.Transcript)
			}
		})
	}
}

func TestRunFailureLogHasMethod(t *testing.T) {
	var log bytes.Buffer
	rep, err := Run(chaosSuite(), &chaosFactory{mode: "pre-violation"}, Options{LogWriter: &log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Method != "Poke" {
		t.Errorf("failing method = %q", rep.Results[0].Method)
	}
	if !strings.Contains(log.String(), "Method called: Poke") {
		t.Errorf("log = %q", log.String())
	}
}

func TestRunEmptyCase(t *testing.T) {
	s := &driver.Suite{Component: "Chaos", Cases: []driver.TestCase{{ID: "TC0"}}}
	rep, err := Run(s, &chaosFactory{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != OutcomeError {
		t.Errorf("empty case outcome = %s", rep.Results[0].Outcome)
	}
}

func TestRunHoleCompletion(t *testing.T) {
	mk := func(holes []driver.Hole) *driver.Suite {
		return &driver.Suite{
			Component: "Chaos",
			Cases: []driver.TestCase{{
				ID: "TC0",
				Calls: []driver.Call{
					{MethodID: "m1", Method: "Chaos"},
					{MethodID: "m3", Method: "Poke", Args: []domain.Value{domain.Nil()}, Holes: holes},
					{MethodID: "m2", Method: "~Chaos"},
				},
			}},
		}
	}
	t.Run("provider fills", func(t *testing.T) {
		s := mk([]driver.Hole{{Arg: 0, TypeName: "Widget"}})
		providers := map[string]domain.Provider{
			"Widget": domain.ProviderFunc(func(r *rand.Rand) (domain.Value, error) {
				return domain.Object(&struct{}{}), nil
			}),
		}
		rep, err := Run(s, &chaosFactory{}, Options{Providers: providers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Outcome != OutcomePass {
			t.Errorf("outcome = %s (%s)", rep.Results[0].Outcome, rep.Results[0].Detail)
		}
	})
	t.Run("provider error surfaces", func(t *testing.T) {
		s := mk([]driver.Hole{{Arg: 0, TypeName: "Widget"}})
		providers := map[string]domain.Provider{
			"Widget": domain.ProviderFunc(func(r *rand.Rand) (domain.Value, error) {
				return domain.Value{}, errors.New("no widgets today")
			}),
		}
		rep, err := Run(s, &chaosFactory{}, Options{Providers: providers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Outcome != OutcomeError {
			t.Errorf("outcome = %s", rep.Results[0].Outcome)
		}
	})
	t.Run("nullable defaults to nil", func(t *testing.T) {
		s := mk([]driver.Hole{{Arg: 0, TypeName: "Widget", Nullable: true}})
		rep, err := Run(s, &chaosFactory{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Outcome != OutcomePass {
			t.Errorf("outcome = %s (%s)", rep.Results[0].Outcome, rep.Results[0].Detail)
		}
	})
	t.Run("missing provider errors", func(t *testing.T) {
		s := mk([]driver.Hole{{Arg: 0, TypeName: "Widget"}})
		rep, err := Run(s, &chaosFactory{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Outcome != OutcomeError {
			t.Errorf("outcome = %s", rep.Results[0].Outcome)
		}
		if !strings.Contains(rep.Results[0].Detail, "manual completion") {
			t.Errorf("detail = %q", rep.Results[0].Detail)
		}
	})
	t.Run("bad hole index errors", func(t *testing.T) {
		s := mk([]driver.Hole{{Arg: 5, TypeName: "Widget", Nullable: true}})
		rep, err := Run(s, &chaosFactory{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results[0].Outcome != OutcomeError {
			t.Errorf("outcome = %s", rep.Results[0].Outcome)
		}
	})
}

func TestGoldenOracle(t *testing.T) {
	s := accountSuite(t)
	ref, err := Run(s, account.NewFactory(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGolden(ref)
	// Same run checks clean.
	rep, err := Run(s, account.NewFactory(), Options{Seed: 1, Oracle: g})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPassed() {
		t.Fatalf("golden-checked rerun failed: %+v", rep.Failures())
	}
	// A doctored transcript is flagged.
	if err := g.Check("TC0", "something else"); err == nil {
		t.Error("doctored transcript should fail the oracle")
	}
	if err := g.Check("TC-unknown", "x"); err == nil {
		t.Error("unknown case should fail the oracle")
	}
}

func TestGoldenDiffers(t *testing.T) {
	s := accountSuite(t)
	ref, err := Run(s, account.NewFactory(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGolden(ref)
	same := ref.Results[0]
	if g.Differs(same) {
		t.Error("identical result should not differ")
	}
	mutated := same
	mutated.Transcript += "extra\n"
	if !g.Differs(mutated) {
		t.Error("changed transcript should differ")
	}
	crashed := same
	crashed.Outcome = OutcomePanic
	if !g.Differs(crashed) {
		t.Error("changed outcome should differ")
	}
	unknown := same
	unknown.CaseID = "TC-missing"
	if !g.Differs(unknown) {
		t.Error("unknown case should differ")
	}
}

func TestGoldenSaveLoad(t *testing.T) {
	s := accountSuite(t)
	ref, err := Run(s, account.NewFactory(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGolden(ref)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadGolden(&buf)
	if err != nil {
		t.Fatalf("LoadGolden: %v", err)
	}
	if back.Component != g.Component || len(back.Transcripts) != len(g.Transcripts) {
		t.Error("golden round trip lost data")
	}
	if _, err := LoadGolden(strings.NewReader("nope")); err == nil {
		t.Error("loading garbage golden should fail")
	}
}

func TestFirstDiff(t *testing.T) {
	if d := firstDiff("a\nb\n", "a\nc\n"); !strings.Contains(d, "line 2") {
		t.Errorf("diff = %q", d)
	}
	if d := firstDiff("a\nb", "a\nb\nc"); !strings.Contains(d, "length differs") {
		t.Errorf("diff = %q", d)
	}
	if d := firstDiff("a", "a"); d != "transcripts differ" {
		t.Errorf("diff = %q", d)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OutcomePass, "pass"},
		{OutcomeViolation, "assertion-violation"},
		{OutcomePanic, "crash"},
		{OutcomeError, "harness-error"},
		{OutcomeOutputDiff, "output-diff"},
		{Outcome(42), "outcome(42)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSkipInvariantChecks(t *testing.T) {
	rep, err := Run(chaosSuite(), &chaosFactory{mode: "break-invariant"},
		Options{SkipInvariantChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != OutcomePass {
		t.Errorf("with checks skipped, outcome = %s", rep.Results[0].Outcome)
	}
}

func TestSkipReporter(t *testing.T) {
	rep, err := Run(chaosSuite(), &chaosFactory{}, Options{SkipReporter: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Results[0].Transcript, "REPORT") {
		t.Error("transcript should not contain the reporter dump")
	}
	rep2, err := Run(chaosSuite(), &chaosFactory{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos's destructor call is the final call, so no REPORT either way —
	// exercise via a suite without a trailing destructor.
	s := &driver.Suite{
		Component: "Chaos",
		Cases: []driver.TestCase{{
			ID: "TC0",
			Calls: []driver.Call{
				{MethodID: "m1", Method: "Chaos"},
				{MethodID: "m3", Method: "Poke"},
			},
		}},
	}
	rep3, err := Run(s, &chaosFactory{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep3.Results[0].Transcript, "REPORT chaos{calls:") {
		t.Errorf("transcript missing reporter dump: %q", rep3.Results[0].Transcript)
	}
	_ = rep2
}

// hangFactory builds a component whose Poke call blocks forever.
type hangFactory struct{ chaosFactory }

type hangInstance struct{ chaos }

func (h *hangInstance) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if method == "Poke" {
		select {} // hang: the component has no iteration bound of its own
	}
	return h.chaos.Invoke(method, args)
}

func (f *hangFactory) New(ctor string, args []domain.Value) (component.Instance, error) {
	return &hangInstance{}, nil
}

func TestCaseTimeout(t *testing.T) {
	rep, err := Run(chaosSuite(), &hangFactory{}, Options{
		CaseTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %s, want timeout", res.Outcome)
	}
	if !strings.Contains(res.Detail, "exceeded") {
		t.Errorf("detail = %q", res.Detail)
	}
	if OutcomeTimeout.String() != "timeout" {
		t.Errorf("OutcomeTimeout.String() = %q", OutcomeTimeout.String())
	}
}

func TestCaseTimeoutNotTriggeredOnFastCases(t *testing.T) {
	rep, err := Run(chaosSuite(), &chaosFactory{}, Options{
		CaseTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != OutcomePass {
		t.Errorf("outcome = %s", rep.Results[0].Outcome)
	}
}
