// Package fsm implements the finite-state-machine test model the paper
// compares the transaction flow model against (§3.2): "Our main reason to
// use such model [the TFM] is that it scales up easier than finite state
// machine models, which are more commonly used in OO testing."
//
// The package exists to make that claim measurable. A Machine models an
// object's behaviour as concrete states and method-labelled transitions;
// test generation is all-transitions coverage (each transition exercised at
// least once, reached via a shortest path from the initial state). For a
// bounded container the machine's size grows with the capacity — state
// count N+1, transition count O(N x methods) — while the component's TFM
// stays fixed. The scaling ablation in internal/experiments tabulates the
// comparison; BoundedListMachine builds FSMs for the ObList subject whose
// generated tests actually run against the component.
package fsm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"concat/internal/domain"
)

// State names one concrete object state.
type State string

// Transition is one labelled edge: in state From, calling Method (with
// Args) moves the object to state To.
type Transition struct {
	From   State
	Method string
	Args   []domain.Value
	To     State
}

// key identifies a transition for coverage bookkeeping.
func (t Transition) key() string {
	return string(t.From) + "|" + t.Method + "|" + string(t.To)
}

// String renders the transition.
func (t Transition) String() string {
	return fmt.Sprintf("%s --%s--> %s", t.From, t.Method, t.To)
}

// Machine is a finite-state test model. Build with New/AddState/
// AddTransition; the zero value is unusable.
type Machine struct {
	name        string
	states      map[State]bool
	initial     State
	transitions []Transition
	// adjacency for shortest-path reachability
	succ map[State][]int // indices into transitions
}

// New creates a machine with the given initial state.
func New(name string, initial State) *Machine {
	m := &Machine{
		name:    name,
		states:  map[State]bool{initial: true},
		initial: initial,
		succ:    map[State][]int{},
	}
	return m
}

// Name returns the modelled component name.
func (m *Machine) Name() string { return m.name }

// Initial returns the initial state.
func (m *Machine) Initial() State { return m.initial }

// AddState declares a state.
func (m *Machine) AddState(s State) {
	m.states[s] = true
}

// AddTransition declares a labelled edge; both endpoint states are declared
// implicitly.
func (m *Machine) AddTransition(t Transition) error {
	if t.From == "" || t.To == "" || t.Method == "" {
		return errors.New("fsm: transition needs from, to and method")
	}
	m.states[t.From] = true
	m.states[t.To] = true
	m.succ[t.From] = append(m.succ[t.From], len(m.transitions))
	m.transitions = append(m.transitions, t)
	return nil
}

// NumStates returns the state count.
func (m *Machine) NumStates() int { return len(m.states) }

// NumTransitions returns the transition count.
func (m *Machine) NumTransitions() int { return len(m.transitions) }

// States returns the states, sorted.
func (m *Machine) States() []State {
	out := make([]State, 0, len(m.states))
	for s := range m.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Transitions returns the transitions in declaration order.
func (m *Machine) Transitions() []Transition {
	return append([]Transition(nil), m.transitions...)
}

// shortestPath returns transition indices of a shortest path from "from" to
// "to" (empty when from == to), or ok=false if unreachable.
func (m *Machine) shortestPath(from, to State) ([]int, bool) {
	if from == to {
		return nil, true
	}
	type item struct {
		state State
		prevI int // queue index of predecessor
		viaT  int // transition index taken
	}
	queue := []item{{state: from, prevI: -1, viaT: -1}}
	seen := map[State]bool{from: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		for _, ti := range m.succ[cur.state] {
			next := m.transitions[ti].To
			if seen[next] {
				continue
			}
			queue = append(queue, item{state: next, prevI: i, viaT: ti})
			if next == to {
				var rev []int
				for j := len(queue) - 1; j > 0; j = queue[j].prevI {
					rev = append(rev, queue[j].viaT)
				}
				out := make([]int, 0, len(rev))
				for k := len(rev) - 1; k >= 0; k-- {
					out = append(out, rev[k])
				}
				return out, true
			}
			seen[next] = true
		}
	}
	return nil, false
}

// TestSequence is one generated test: a transition sequence starting at the
// initial state.
type TestSequence struct {
	// Target is the transition the sequence exists to cover.
	Target Transition
	// Steps is the full path from the initial state through Target.
	Steps []Transition
}

// AllTransitionsTour generates the all-transitions test set: for every
// transition, a shortest path from the initial state to its source followed
// by the transition itself. Unreachable transitions are an error — the
// model is malformed.
func (m *Machine) AllTransitionsTour() ([]TestSequence, error) {
	var out []TestSequence
	for ti, t := range m.transitions {
		prefix, ok := m.shortestPath(m.initial, t.From)
		if !ok {
			return nil, fmt.Errorf("fsm: transition %s unreachable from initial state %s", t, m.initial)
		}
		seq := TestSequence{Target: t}
		for _, pi := range prefix {
			seq.Steps = append(seq.Steps, m.transitions[pi])
		}
		seq.Steps = append(seq.Steps, m.transitions[ti])
		out = append(out, seq)
	}
	return out, nil
}

// Validate checks the machine: every state reachable from the initial one.
func (m *Machine) Validate() error {
	var problems []string
	reach := map[State]bool{m.initial: true}
	queue := []State{m.initial}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, ti := range m.succ[s] {
			next := m.transitions[ti].To
			if !reach[next] {
				reach[next] = true
				queue = append(queue, next)
			}
		}
	}
	for s := range m.states {
		if !reach[s] {
			problems = append(problems, fmt.Sprintf("state %s unreachable", s))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("fsm: invalid machine %q: %s", m.name, strings.Join(problems, "; "))
	}
	return nil
}

// WriteDOT renders the machine in Graphviz DOT syntax, the FSM counterpart
// of the TFM's Figure 2 rendering: states as circles (the initial state
// doubled), transitions labelled with their methods.
func (m *Machine) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.name)
	b.WriteString("  rankdir=LR;\n")
	for _, s := range m.States() {
		shape := "circle"
		if s == m.initial {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", string(s), shape)
	}
	for _, t := range m.transitions {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", string(t.From), string(t.To), t.Method)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("fsm: writing DOT: %w", err)
	}
	return nil
}
