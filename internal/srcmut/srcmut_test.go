package srcmut

import (
	"strings"
	"testing"

	"concat/internal/mutation"
)

// fixture is a miniature list class mirroring the experiments' subjects:
// a method with locals, used and unused receiver fields, and package vars.
const fixture = `package fixture

var auditSeq int64 = 7
var unusedGlobal int64 = 3

type List struct {
	count     int64
	blockSize int64
	items     []int64
}

func (l *List) Sum() int64 {
	total := int64(0)
	n := l.count
	for i := int64(0); i < n; i++ {
		total = total + l.items[i]
	}
	return total
}

func (l *List) AddHead(v int64) {
	oldCount := l.count
	l.items = append([]int64{v}, l.items...)
	newCount := oldCount + 1
	if newCount > oldCount {
		l.count = newCount
	}
}
`

func mutateFixture(t *testing.T, opts Options) []Mutant {
	t.Helper()
	ms, err := MutateFile("fixture.go", []byte(fixture), opts)
	if err != nil {
		t.Fatalf("MutateFile: %v", err)
	}
	return ms
}

func TestMutateFileGeneratesAllOperators(t *testing.T) {
	ms := mutateFixture(t, Options{})
	if len(ms) == 0 {
		t.Fatal("no mutants")
	}
	byOp := map[mutation.Operator]int{}
	for _, m := range ms {
		byOp[m.Operator]++
	}
	for _, op := range mutation.AllOperators {
		if byOp[op] == 0 {
			t.Errorf("no mutants for %s", op)
		}
	}
}

func TestMutantsCompileCleanly(t *testing.T) {
	ms := mutateFixture(t, Options{})
	for _, m := range ms {
		if err := m.TypeCheck("fixture.go"); err != nil {
			t.Errorf("mutant does not compile: %v\n--- source ---\n%s", err, m.Source)
		}
	}
}

func TestMethodFilter(t *testing.T) {
	ms := mutateFixture(t, Options{Methods: []string{"AddHead"}})
	if len(ms) == 0 {
		t.Fatal("no AddHead mutants")
	}
	for _, m := range ms {
		if m.Method != "AddHead" {
			t.Errorf("mutant in %s escaped the filter", m.Method)
		}
	}
}

func TestOperatorFilter(t *testing.T) {
	ms := mutateFixture(t, Options{Operators: []mutation.Operator{mutation.OpBitNeg}})
	for _, m := range ms {
		if m.Operator != mutation.OpBitNeg {
			t.Errorf("operator %s escaped the filter", m.Operator)
		}
		if !strings.Contains(string(m.Source), "(^") {
			t.Error("BitNeg mutant lacks the negation splice")
		}
	}
	if len(ms) == 0 {
		t.Fatal("no BitNeg mutants")
	}
}

func TestMaxPerSite(t *testing.T) {
	unlimited := mutateFixture(t, Options{Operators: []mutation.Operator{mutation.OpRepReq}})
	capped := mutateFixture(t, Options{Operators: []mutation.Operator{mutation.OpRepReq}, MaxPerSite: 1})
	if len(capped) >= len(unlimited) {
		t.Errorf("cap did not reduce mutants: %d vs %d", len(capped), len(unlimited))
	}
}

func TestRepGlobUsesReceiverFields(t *testing.T) {
	ms := mutateFixture(t, Options{
		Methods:   []string{"AddHead"},
		Operators: []mutation.Operator{mutation.OpRepGlob},
	})
	if len(ms) == 0 {
		t.Fatal("no RepGlob mutants for AddHead")
	}
	for _, m := range ms {
		if !strings.HasPrefix(m.Replacement, "l.") {
			t.Errorf("RepGlob replacement %q is not a receiver field", m.Replacement)
		}
		// AddHead uses count (and items); blockSize is NOT used, so it must
		// not appear under RepGlob.
		if strings.Contains(m.Replacement, "blockSize") {
			t.Errorf("RepGlob picked the unused field: %q", m.Replacement)
		}
	}
}

func TestRepExtUsesUnusedFieldsAndPackageVars(t *testing.T) {
	ms := mutateFixture(t, Options{
		Methods:   []string{"AddHead"},
		Operators: []mutation.Operator{mutation.OpRepExt},
	})
	if len(ms) == 0 {
		t.Fatal("no RepExt mutants for AddHead")
	}
	sawField, sawPkg := false, false
	for _, m := range ms {
		switch {
		case m.Replacement == "l.blockSize":
			sawField = true
		case m.Replacement == "auditSeq" || m.Replacement == "unusedGlobal":
			sawPkg = true
		case m.Replacement == "l.count":
			t.Error("RepExt picked a used field")
		}
	}
	if !sawField || !sawPkg {
		t.Errorf("RepExt coverage: field=%v pkgVar=%v", sawField, sawPkg)
	}
}

func TestRepLocSkipsSelf(t *testing.T) {
	ms := mutateFixture(t, Options{
		Methods:   []string{"Sum"},
		Operators: []mutation.Operator{mutation.OpRepLoc},
	})
	for _, m := range ms {
		if m.Var == m.Replacement {
			t.Errorf("RepLoc replaced %s by itself", m.Var)
		}
	}
	if len(ms) == 0 {
		t.Fatal("no RepLoc mutants for Sum")
	}
}

func TestParametersAreNotMutated(t *testing.T) {
	// v is a parameter (an interface variable): no mutant may target it.
	ms := mutateFixture(t, Options{Methods: []string{"AddHead"}})
	for _, m := range ms {
		if m.Var == "v" || m.Var == "l" {
			t.Errorf("interface variable %s was mutated", m.Var)
		}
	}
}

func TestAssignmentTargetsAreNotMutated(t *testing.T) {
	ms := mutateFixture(t, Options{})
	for _, m := range ms {
		// A spliced LHS like "(x) = 1" would not type-check; compile
		// cleanliness is checked elsewhere, here we check the splice text
		// never lands at a declaration.
		if strings.Contains(string(m.Source), ":= (") &&
			strings.Contains(m.ID, m.Replacement+") :=") {
			t.Errorf("mutant %s touched a definition", m.ID)
		}
	}
}

func TestMutantMetadata(t *testing.T) {
	ms := mutateFixture(t, Options{Operators: []mutation.Operator{mutation.OpBitNeg}})
	m := ms[0]
	if m.ID == "" || m.Position.Line == 0 || m.Method == "" {
		t.Errorf("metadata incomplete: %+v", m)
	}
	if m.FileName(7) != "mutant_7.go" {
		t.Errorf("FileName = %q", m.FileName(7))
	}
}

func TestMutateFileErrors(t *testing.T) {
	if _, err := MutateFile("bad.go", []byte("not go"), Options{}); err == nil {
		t.Error("unparsable source should fail")
	}
	if _, err := MutateFile("bad.go", []byte("package x\nfunc f() { undeclared() }"), Options{}); err == nil {
		t.Error("untypeable source should fail")
	}
}

func TestMutateRealComponentSource(t *testing.T) {
	// The real oblist implementation is a richer target; generating and
	// type-checking is expensive, so bound the operator set.
	src := fixture // keep hermetic: the real file imports internal packages
	ms, err := MutateFile("list.go", []byte(src), Options{Operators: []mutation.Operator{mutation.OpRepLoc, mutation.OpRepGlob}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if err := m.TypeCheck("list.go"); err != nil {
			t.Error(err)
		}
	}
}

func TestRepReqQualifiesImportedTypes(t *testing.T) {
	// A local whose type comes from an imported package must be replaced by
	// a constant wrapped in a correctly qualified conversion.
	src := `package q

import "strings"

type Holder struct{ n int }

func (h *Holder) Use(s string) int {
	r := strings.NewReader(s)
	if r != nil {
		h.n++
	}
	_ = r
	return h.n
}
`
	ms, err := MutateFile("q.go", []byte(src), Options{Operators: []mutation.Operator{mutation.OpRepReq}})
	if err != nil {
		t.Fatal(err)
	}
	sawQualified := false
	for _, m := range ms {
		if strings.Contains(m.Replacement, "strings.Reader") {
			sawQualified = true
		}
		if err := m.TypeCheck("q.go"); err != nil {
			t.Errorf("mutant does not compile: %v", err)
		}
	}
	if !sawQualified {
		t.Error("no replacement used the qualified imported type")
	}
}
