// Package account implements a self-testable bank-account component: the
// quickstart subject of this repository. It demonstrates the full producer
// workflow of §3.1 — a component carrying its t-spec, built-in test
// capabilities (invariant, reporter, BIT access control) and mutation
// instrumentation — on a component small enough to read in one sitting.
package account

import (
	"fmt"
	"io"
	"sync"

	"concat/internal/bit"
	"concat/internal/component"
	"concat/internal/domain"
	"concat/internal/mutation"
	"concat/internal/tspec"
)

// Name is the component (class) name.
const Name = "Account"

// MaxBalance bounds the balance domain declared in the t-spec.
const MaxBalance = 1_000_000

// auditLevel is a package-level global deliberately NOT used by Withdraw: it
// populates E(R2) for the IndVarRepExt operator in the mutation lab example.
var auditLevel int64 = 2

// Account is a bank account with invariant "0 <= balance <= MaxBalance".
type Account struct {
	bit.Base
	disp      component.Dispatcher
	eng       *mutation.Engine
	balance   int64
	owner     string
	destroyed bool
}

var _ component.Instance = (*Account)(nil)

// newAccount wires the dispatcher. eng may be nil (no mutation analysis).
func newAccount(owner string, balance int64, eng *mutation.Engine) *Account {
	a := &Account{balance: balance, owner: owner, eng: eng}
	a.disp.Register("Deposit", a.deposit)
	a.disp.Register("Withdraw", a.withdraw)
	a.disp.Register("Balance", a.getBalance)
	a.disp.Register("Owner", a.getOwner)
	return a
}

// Invoke implements component.Instance.
func (a *Account) Invoke(method string, args []domain.Value) ([]domain.Value, error) {
	if a.destroyed {
		return nil, fmt.Errorf("%w: Account", component.ErrDestroyed)
	}
	return a.disp.Invoke(method, args)
}

// Destroy implements component.Instance.
func (a *Account) Destroy() error {
	a.destroyed = true
	return nil
}

// InvariantTest implements bit.SelfTestable: the class invariant is
// 0 <= balance <= MaxBalance.
func (a *Account) InvariantTest() error {
	if err := a.Guard(); err != nil {
		return err
	}
	if err := a.AssertInvariant(a.balance >= 0, "InvariantTest", "balance >= 0"); err != nil {
		return err
	}
	return a.AssertInvariant(a.balance <= MaxBalance, "InvariantTest", "balance <= MaxBalance")
}

// Reporter implements bit.SelfTestable.
func (a *Account) Reporter(w io.Writer) error {
	if err := a.Guard(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Account{owner: %q, balance: %d}\n", a.owner, a.balance)
	return err
}

// Balance returns the current balance (plain Go accessor for example code).
func (a *Account) CurrentBalance() int64 { return a.balance }

func (a *Account) deposit(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Deposit", args, domain.KindInt); err != nil {
		return nil, err
	}
	amount := args[0].MustInt()
	if err := a.AssertPre(amount > 0, "Deposit", "amount > 0"); err != nil {
		return nil, err
	}
	if a.balance+amount > MaxBalance {
		return nil, fmt.Errorf("account: deposit of %d exceeds balance cap", amount)
	}
	a.balance += amount
	return []domain.Value{domain.Int(a.balance)}, nil
}

// withdraw carries the mutation sites of the mutation-lab example. The
// non-interface variables are the local "amount" copy and "remaining".
func (a *Account) withdraw(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Withdraw", args, domain.KindInt); err != nil {
		return nil, err
	}
	amount := args[0].MustInt()
	if err := a.AssertPre(amount > 0, "Withdraw", "amount > 0"); err != nil {
		return nil, err
	}
	amount = a.useInt("Withdraw/amount", amount, map[string]domain.Value{})
	if amount > a.balance {
		return nil, fmt.Errorf("account: insufficient funds: have %d, want %d", a.balance, amount)
	}
	remaining := a.balance - amount
	remaining = a.useInt("Withdraw/remaining", remaining, map[string]domain.Value{
		"amount": domain.Int(amount),
	})
	a.balance = remaining
	return []domain.Value{domain.Int(a.balance)}, nil
}

// useInt routes a variable use through the mutation engine when one is
// attached; locals carries L(R2) values live at the site.
func (a *Account) useInt(site mutation.SiteID, v int64, locals map[string]domain.Value) int64 {
	if a.eng == nil || !a.eng.Armed() {
		return v
	}
	return a.eng.UseInt(site, v, mutation.Env{
		Locals:    locals,
		Globals:   map[string]domain.Value{"balance": domain.Int(a.balance)},
		Externals: map[string]domain.Value{"auditLevel": domain.Int(auditLevel)},
	})
}

func (a *Account) getBalance(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Balance", args); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Int(a.balance)}, nil
}

func (a *Account) getOwner(args []domain.Value) ([]domain.Value, error) {
	if err := component.WantArgs("Owner", args); err != nil {
		return nil, err
	}
	return []domain.Value{domain.Str(a.owner)}, nil
}

// Sites returns the mutation site table for this component.
func Sites() []mutation.Site {
	return []mutation.Site{
		{
			ID: "Withdraw/amount", Method: "Withdraw", Var: "amount",
			Kind:      domain.KindInt,
			Globals:   []string{"balance"},
			Externals: []string{"auditLevel"},
		},
		{
			ID: "Withdraw/remaining", Method: "Withdraw", Var: "remaining",
			Kind:      domain.KindInt,
			Locals:    []string{"amount"},
			Globals:   []string{"balance"},
			Externals: []string{"auditLevel"},
		},
	}
}

// Factory builds accounts and carries the embedded t-spec.
type Factory struct {
	eng *mutation.Engine
}

var _ component.Factory = (*Factory)(nil)

// NewFactory returns a production factory (no mutation engine).
func NewFactory() *Factory { return &Factory{} }

// NewFactoryWithEngine returns a factory whose instances route their
// instrumented uses through eng. The engine must carry Sites().
func NewFactoryWithEngine(eng *mutation.Engine) *Factory { return &Factory{eng: eng} }

// Name implements component.Factory.
func (f *Factory) Name() string { return Name }

// Spec implements component.Factory.
func (f *Factory) Spec() *tspec.Spec { return Spec() }

// New implements component.Factory. Constructors: "Account" (zero balance,
// anonymous) and "AccountOf" (owner and opening balance).
func (f *Factory) New(ctor string, args []domain.Value) (component.Instance, error) {
	switch ctor {
	case "Account":
		if err := component.WantArgs(ctor, args); err != nil {
			return nil, err
		}
		return newAccount("", 0, f.eng), nil
	case "AccountOf":
		if err := component.WantArgs(ctor, args, domain.KindString, domain.KindInt); err != nil {
			return nil, err
		}
		balance := args[1].MustInt()
		if balance < 0 || balance > MaxBalance {
			return nil, fmt.Errorf("account: opening balance %d out of range", balance)
		}
		return newAccount(args[0].MustString(), balance, f.eng), nil
	default:
		return nil, fmt.Errorf("account: unknown constructor %q", ctor)
	}
}

// specOnce builds the embedded t-spec exactly once.
var specOnce = sync.OnceValue(buildSpec)

// Spec returns the component's t-spec (shared, treat as read-only).
func Spec() *tspec.Spec { return specOnce() }

func buildSpec() *tspec.Spec {
	return tspec.NewBuilder(Name).
		Attribute("balance", tspec.RangeInt(0, MaxBalance)).
		Attribute("owner", tspec.StringLen(0, 20)).
		Method("m1", "Account", "", tspec.CatConstructor).
		Method("m2", "AccountOf", "", tspec.CatConstructor).
		Param("owner", tspec.StringsOf("alice", "bob", "carol")).
		Param("initial", tspec.RangeInt(0, 10_000)).
		Uses("balance", "owner").
		Method("m3", "~Account", "", tspec.CatDestructor).
		Method("m4", "Deposit", "int", tspec.CatUpdate).
		Param("amount", tspec.RangeInt(1, 1_000)).
		Uses("balance").
		Method("m5", "Withdraw", "int", tspec.CatUpdate).
		Param("amount", tspec.RangeInt(1, 1_000)).
		Uses("balance").
		Method("m6", "Balance", "int", tspec.CatAccess).
		Uses("balance").
		Method("m7", "Owner", "string", tspec.CatAccess).
		Uses("owner").
		Node("n1", true, "m1", "m2").
		Node("n2", false, "m4").
		Node("n3", false, "m5").
		Node("n4", false, "m6", "m7").
		Node("n5", false, "m3").
		Edge("n1", "n2").
		Edge("n1", "n4").
		Edge("n2", "n2").
		Edge("n2", "n3").
		Edge("n2", "n4").
		Edge("n3", "n4").
		Edge("n3", "n5").
		Edge("n4", "n5").
		Edge("n2", "n5").
		MustBuild()
}

// SetTestState implements component.StateSettable (§3.3's set/reset
// capability): keys "balance" (int) and "owner" (string). The resulting
// state must satisfy the class invariant.
func (a *Account) SetTestState(state map[string]domain.Value) error {
	if err := a.Guard(); err != nil {
		return err
	}
	if v, ok := state["balance"]; ok {
		n, err := v.AsInt()
		if err != nil {
			return fmt.Errorf("account: SetTestState balance: %w", err)
		}
		a.balance = n
	}
	if v, ok := state["owner"]; ok {
		s, err := v.AsString()
		if err != nil {
			return fmt.Errorf("account: SetTestState owner: %w", err)
		}
		a.owner = s
	}
	return a.InvariantTest()
}

// ResetTestState implements component.StateSettable.
func (a *Account) ResetTestState() error {
	if err := a.Guard(); err != nil {
		return err
	}
	a.balance = 0
	a.owner = ""
	return nil
}

var _ component.StateSettable = (*Account)(nil)
