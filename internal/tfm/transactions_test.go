package tfm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"concat/internal/domain"
)

func TestTransactionsLinear(t *testing.T) {
	ts, err := linear(t).Transactions(EnumOptions{})
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d transactions, want 1", len(ts))
	}
	if ts[0].String() != "n1 -> n2 -> n3" {
		t.Errorf("transaction = %s", ts[0])
	}
	if ts[0].Key() != "n1>n2>n3" {
		t.Errorf("key = %s", ts[0].Key())
	}
}

func TestTransactionsDiamondLoopBound1(t *testing.T) {
	ts, err := diamond(t).Transactions(EnumOptions{LoopBound: 1})
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	// Paths: n1-n2-n4, n1-n2-n2-n4 (self loop once), n1-n3-n4.
	want := map[string]bool{
		"n1>n2>n4":    true,
		"n1>n2>n2>n4": true,
		"n1>n3>n4":    true,
	}
	if len(ts) != len(want) {
		t.Fatalf("got %d transactions %v, want %d", len(ts), ts, len(want))
	}
	for _, tr := range ts {
		if !want[tr.Key()] {
			t.Errorf("unexpected transaction %s", tr)
		}
	}
}

func TestTransactionsLoopBound2GrowsSpace(t *testing.T) {
	g := diamond(t)
	one, err := g.Transactions(EnumOptions{LoopBound: 1})
	if err != nil {
		t.Fatalf("bound 1: %v", err)
	}
	two, err := g.Transactions(EnumOptions{LoopBound: 2})
	if err != nil {
		t.Fatalf("bound 2: %v", err)
	}
	if len(two) <= len(one) {
		t.Errorf("loop bound 2 gave %d transactions, bound 1 gave %d", len(two), len(one))
	}
}

func TestTransactionsDeterministic(t *testing.T) {
	g := diamond(t)
	a, err := g.Transactions(EnumOptions{LoopBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Transactions(EnumOptions{LoopBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("order diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestTransactionsTruncation(t *testing.T) {
	g := diamond(t)
	ts, err := g.Transactions(EnumOptions{LoopBound: 3, MaxTransactions: 2})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(ts) != 2 {
		t.Errorf("got %d transactions, want 2", len(ts))
	}
}

func TestTransactionsMaxLength(t *testing.T) {
	g := diamond(t)
	ts, err := g.Transactions(EnumOptions{LoopBound: 5, MaxLength: 3})
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	for _, tr := range ts {
		if len(tr.Path) > 3 {
			t.Errorf("transaction %s exceeds MaxLength", tr)
		}
	}
}

func TestTransactionsInvalidModel(t *testing.T) {
	g := New("broken")
	if _, err := g.Transactions(EnumOptions{}); err == nil {
		t.Error("enumerating an invalid model should fail")
	}
}

func TestAllTransactionsStartAndEndProperly(t *testing.T) {
	g := diamond(t)
	ts, err := g.Transactions(EnumOptions{LoopBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		first, _ := g.Node(tr.Path[0])
		last, _ := g.Node(tr.Path[len(tr.Path)-1])
		if !first.Start {
			t.Errorf("transaction %s does not begin at a start node", tr)
		}
		if !last.Final {
			t.Errorf("transaction %s does not end at a final node", tr)
		}
		for i := 0; i+1 < len(tr.Path); i++ {
			found := false
			for _, s := range g.Successors(tr.Path[i]) {
				if s == tr.Path[i+1] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("transaction %s uses nonexistent edge %s->%s", tr, tr.Path[i], tr.Path[i+1])
			}
		}
	}
}

func TestCriterionString(t *testing.T) {
	tests := []struct {
		c    Criterion
		want string
	}{
		{CoverTransactions, "all-transactions"},
		{CoverLinks, "all-links"},
		{CoverNodes, "all-nodes"},
		{Criterion(9), "criterion(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSelectCoverTransactions(t *testing.T) {
	g := diamond(t)
	ts, err := g.Select(CoverTransactions, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Errorf("transaction coverage selected %d, want 3", len(ts))
	}
}

func TestSelectCoverLinksCoversAllEdges(t *testing.T) {
	g := diamond(t)
	ts, err := g.Select(CoverLinks, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[Edge]bool{}
	for _, tr := range ts {
		for i := 0; i+1 < len(tr.Path); i++ {
			covered[Edge{From: tr.Path[i], To: tr.Path[i+1]}] = true
		}
	}
	for _, e := range g.Edges() {
		if !covered[e] {
			t.Errorf("edge %s->%s not covered", e.From, e.To)
		}
	}
	// All-links should need no more transactions than all-transactions.
	all, _ := g.Select(CoverTransactions, EnumOptions{})
	if len(ts) > len(all) {
		t.Errorf("all-links selected %d > all-transactions %d", len(ts), len(all))
	}
}

func TestSelectCoverNodesCoversAllNodes(t *testing.T) {
	g := diamond(t)
	ts, err := g.Select(CoverNodes, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[NodeID]bool{}
	for _, tr := range ts {
		for _, id := range tr.Path {
			covered[id] = true
		}
	}
	for _, n := range g.Nodes() {
		if !covered[n.ID] {
			t.Errorf("node %s not covered", n.ID)
		}
	}
}

func TestSelectUnknownCriterion(t *testing.T) {
	if _, err := diamond(t).Select(Criterion(42), EnumOptions{}); err == nil {
		t.Error("unknown criterion should fail")
	}
}

func TestRandomWalkAlwaysCompleteTransaction(t *testing.T) {
	g := diamond(t)
	r := domain.NewRand(7)
	for i := 0; i < 500; i++ {
		tr, err := g.RandomWalk(r, 6)
		if err != nil {
			t.Fatalf("walk %d: %v", i, err)
		}
		first, _ := g.Node(tr.Path[0])
		last, _ := g.Node(tr.Path[len(tr.Path)-1])
		if !first.Start || !last.Final {
			t.Fatalf("walk %d produced incomplete transaction %s", i, tr)
		}
	}
}

func TestRandomWalkInvalidModel(t *testing.T) {
	if _, err := New("bad").RandomWalk(domain.NewRand(1), 5); err == nil {
		t.Error("walking an invalid model should fail")
	}
}

func TestRandomWalkProperty(t *testing.T) {
	g := diamond(t)
	prop := func(seed int64, budget uint8) bool {
		tr, err := g.RandomWalk(domain.NewRand(seed), int(budget%16)+2)
		if err != nil {
			return false
		}
		first, _ := g.Node(tr.Path[0])
		last, _ := g.Node(tr.Path[len(tr.Path)-1])
		return first.Start && last.Final
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// cyclic builds n1(start) -> n2 <-> n3 -> n4(final), a genuine multi-node
// cycle (n2 -> n3 -> n2) rather than the diamond's self loop: update/undo
// pairs in real components look like this.
func cyclic(t *testing.T) *Graph {
	t.Helper()
	g := New("Cyclic")
	mustAddNode(t, g, Node{ID: "n1", Methods: []string{"ctor"}, Start: true})
	mustAddNode(t, g, Node{ID: "n2", Methods: []string{"do"}})
	mustAddNode(t, g, Node{ID: "n3", Methods: []string{"undo"}})
	mustAddNode(t, g, Node{ID: "n4", Methods: []string{"dtor"}, Final: true})
	mustAddEdge(t, g, "n1", "n2")
	mustAddEdge(t, g, "n2", "n3")
	mustAddEdge(t, g, "n3", "n2")
	mustAddEdge(t, g, "n2", "n4")
	mustAddEdge(t, g, "n3", "n4")
	return g
}

// TestTransactionsMultiNodeCycle pins the exact bounded enumeration of a
// two-node cycle at LoopBound 1, in deterministic DFS order: the cycle is
// unrolled exactly once per edge and enumeration terminates.
func TestTransactionsMultiNodeCycle(t *testing.T) {
	ts, err := cyclic(t).Transactions(EnumOptions{LoopBound: 1})
	if err != nil {
		t.Fatalf("Transactions: %v", err)
	}
	want := []string{
		"n1>n2>n3>n2>n4",
		"n1>n2>n3>n4",
		"n1>n2>n4",
	}
	if len(ts) != len(want) {
		t.Fatalf("got %d transactions %v, want %d", len(ts), ts, len(want))
	}
	for i, tr := range ts {
		if tr.Key() != want[i] {
			t.Errorf("transaction %d = %s, want %s", i, tr.Key(), want[i])
		}
	}
}

// TestTransactionsCycleLoopBoundRespected: at any bound, no transaction
// traverses a single edge more than LoopBound times, and raising the bound
// strictly grows the cyclic path space.
func TestTransactionsCycleLoopBoundRespected(t *testing.T) {
	g := cyclic(t)
	var prev int
	for bound := 1; bound <= 3; bound++ {
		ts, err := g.Transactions(EnumOptions{LoopBound: bound})
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		for _, tr := range ts {
			counts := make(map[Edge]int)
			for i := 0; i+1 < len(tr.Path); i++ {
				e := Edge{From: tr.Path[i], To: tr.Path[i+1]}
				counts[e]++
				if counts[e] > bound {
					t.Errorf("bound %d: transaction %s traverses %v %d times", bound, tr, e, counts[e])
				}
			}
		}
		if len(ts) <= prev {
			t.Errorf("bound %d gave %d transactions, bound %d gave %d — cycle space did not grow", bound, len(ts), bound-1, prev)
		}
		prev = len(ts)
	}
}

// TestSelectCoverLinksOnCyclicGraph: the greedy link-cover subset still
// covers the back edge of the cycle.
func TestSelectCoverLinksOnCyclicGraph(t *testing.T) {
	g := cyclic(t)
	ts, err := g.Select(CoverLinks, EnumOptions{LoopBound: 1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	covered := make(map[Edge]bool)
	for _, tr := range ts {
		for i := 0; i+1 < len(tr.Path); i++ {
			covered[Edge{From: tr.Path[i], To: tr.Path[i+1]}] = true
		}
	}
	for _, e := range g.Edges() {
		if !covered[e] {
			t.Errorf("edge %v not covered by link-cover selection %v", e, ts)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	tr := Transaction{Path: []NodeID{"n1", "n2", "n4"}}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, tr); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "Diamond"`,
		`"n1" [shape=doublecircle`,
		`"n4" [shape=doubleoctagon`,
		`"n1" -> "n2" [color=red`,
		`"n2" -> "n4" [color=red`,
		`"n1" -> "n3";`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
