// Package chaos is the service-level fault-injection kit for the campaign
// service — the internal/sandbox/hostile idea lifted one layer up. Where
// hostile misbehaves *inside* a case, chaos breaks the machinery around
// whole campaigns: journal writes that fail, workers that panic
// mid-campaign, verdict-store entries flipped on disk, and the process
// itself SIGKILLed at named points between a journal append and the work it
// promised. The serve package threads a *Faults through its journal and
// worker paths and calls Kill at every crash point unconditionally; with no
// faults configured and no kill environment set, every hook is free.
//
// The regression contract the kit exists to prove: every injected fault
// leaves each submitted campaign either completed or journaled and
// retryable — never lost, and never with a duplicated or wrong verdict.
package chaos

import (
	"fmt"
	"os"
	"syscall"
)

// KillEnv names the environment variable that arms a kill point. When its
// value equals the point name passed to Kill, the process SIGKILLs itself —
// no defers, no atexit, exactly what a machine crash or OOM kill looks like
// to the journal.
const KillEnv = "CONCAT_CHAOS_KILL"

// The kill points the serve package declares, in job-lifecycle order.
const (
	// PointSubmitJournaled fires after a submission's queued record is
	// durably journaled but before the job is enqueued for execution. A
	// restart must replay the job from the journal alone.
	PointSubmitJournaled = "submit.journaled"
	// PointJobRunning fires after a job's running state (lease) is
	// journaled but before its campaign starts. A restart must reclaim and
	// retry the job.
	PointJobRunning = "job.running"
	// PointDonePrejournal fires after a campaign fully completed — every
	// verdict already in the content-addressed store — but before the done
	// record lands in the journal. A restart replays the job and must
	// finish it entirely from warm store hits: byte-identical artifacts,
	// zero re-executed mutants.
	PointDonePrejournal = "job.done.prejournal"
)

// Kill SIGKILLs the current process if KillEnv is set to the named point,
// and returns (doing nothing) otherwise. The kill is delivered to our own
// pid and never returns; the select backstop covers the delivery window.
func Kill(point string) {
	if os.Getenv(KillEnv) != point {
		return
	}
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable once the signal lands
}

// Faults is the injectable fault set. A nil *Faults (the production
// default) injects nothing; individual nil hooks likewise.
type Faults struct {
	// JournalWrite, when non-nil, runs before every journal append for job
	// id. Returning an error makes the append fail as if the disk did.
	JournalWrite func(id string) error
	// CampaignStart, when non-nil, runs inside the worker's campaign
	// goroutine before the real campaign, for the given job and attempt
	// number. Panicking here is the "worker panic mid-campaign" fault: the
	// serve package must contain it, retry with backoff, and quarantine
	// the job once attempts are exhausted.
	CampaignStart func(jobID string, attempt int)
	// JournalReplay, when non-nil, runs in the server's start sequence
	// before the journal is replayed. Blocking here holds the server in the
	// not-ready state — the hook readiness probes are tested against.
	JournalReplay func()
}

// FlipByte XORs one byte of the file at path with 0xFF — the minimal
// bit-rot injection for verdict-store and journal corruption tests. The
// offset is clamped into the file.
func FlipByte(path string, offset int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("chaos: %s is empty, nothing to flip", path)
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= len(raw) {
		offset = len(raw) - 1
	}
	raw[offset] ^= 0xFF
	return os.WriteFile(path, raw, 0o644)
}

// Truncate cuts the file at path to n bytes — the torn-write injection.
func Truncate(path string, n int64) error {
	return os.Truncate(path, n)
}
