package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"

	"concat/internal/serve"
	"concat/internal/store"
)

func TestParseExpositionStrict(t *testing.T) {
	valid := `# HELP concat_http_requests_total HTTP requests served.
# TYPE concat_http_requests_total counter
concat_http_requests_total{code="200",method="GET",route="/healthz"} 3
# HELP concat_http_request_duration_seconds Request latency.
# TYPE concat_http_request_duration_seconds histogram
concat_http_request_duration_seconds_bucket{le="0.001"} 2
concat_http_request_duration_seconds_bucket{le="+Inf"} 3
concat_http_request_duration_seconds_sum 0.0042
concat_http_request_duration_seconds_count 3
# HELP concat_weird_total Odd labels.
# TYPE concat_weird_total counter
concat_weird_total{v="a\\b\"c d"} 1
`
	s, err := ParseExposition(valid)
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if got := s.Value(`concat_http_requests_total{code="200",method="GET",route="/healthz"}`); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if got := s.Value(`concat_weird_total{v="a\\b\"c d"}`); got != 1 {
		t.Errorf("escaped-label series = %v, want 1", got)
	}
	if s.Types["concat_http_request_duration_seconds"] != "histogram" {
		t.Errorf("histogram family type = %q", s.Types["concat_http_request_duration_seconds"])
	}

	for name, bad := range map[string]string{
		"blank line":       "# HELP a b\n# TYPE a counter\na 1\n\n",
		"no TYPE":          "orphan_metric 1\n",
		"HELP without doc": "# HELP lonely\n# TYPE lonely counter\nlonely 1\n",
		"unknown kind":     "# HELP a b\n# TYPE a summary\na 1\n",
		"bad value":        "# HELP a b\n# TYPE a counter\na one\n",
		"duplicate series": "# HELP a b\n# TYPE a counter\na 1\na 2\n",
		"unbalanced brace": "# HELP a b\n# TYPE a counter\na{x=\"y\" 1\n",
		"empty body":       "",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}} {
		if got := quantileUS(sorted, tc.q); got != tc.want {
			t.Errorf("quantileUS(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantileUS(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	if got := quantileUS([]int64{7}, 0.99); got != 7 {
		t.Errorf("single-sample p99 = %d, want 7", got)
	}
}

// TestRunAgainstService is the harness's own end-to-end: a small budget
// against an in-process service must complete every campaign, reconcile the
// server's request counters against the client's exactly, and never see a
// 503 without Retry-After.
func TestRunAgainstService(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns through the service")
	}
	s := serve.New(serve.Config{Workers: 2, QueueDepth: 4, Store: store.NewMem()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	res, err := Run(Config{
		BaseURL:     ts.URL,
		Requests:    8,
		Submitters:  3,
		Subscribers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CampaignsCompleted != 8 || res.CampaignsFailed != 0 {
		t.Errorf("campaigns completed=%d failed=%d, want 8/0",
			res.CampaignsCompleted, res.CampaignsFailed)
	}
	if !res.CrossCheck.Agree {
		t.Errorf("server/client counter mismatch:\n%s", strings.Join(res.CrossCheck.Mismatches, "\n"))
	}
	if res.CrossCheck.Series == 0 {
		t.Error("cross-check compared no series")
	}
	if res.Backpressure.MissingRetryAfter != 0 {
		t.Errorf("%d 503s lacked Retry-After", res.Backpressure.MissingRetryAfter)
	}
	submit, ok := res.Endpoints["POST /campaigns"]
	if !ok || submit.Requests < 8 || submit.P99US <= 0 {
		t.Errorf("submit endpoint stats = %+v, want >=8 requests with p99 > 0", submit)
	}
	if res.ServerVersion != serve.Version {
		t.Errorf("server version = %q, want %q", res.ServerVersion, serve.Version)
	}
	if res.EventBytes <= 0 {
		t.Error("subscribers consumed no event bytes")
	}
	if res.Config.Component != "Account" || res.Config.Seed != 42 {
		t.Errorf("defaults not applied: %+v", res.Config)
	}
}
