package tspec

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes of the t-spec notation.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString // 'single' or "double" quoted
	tokNumber // integer or decimal, optionally signed
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokEmpty // the literal <empty>
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokEmpty:
		return "<empty>"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string // payload: identifier spelling, unquoted string, number literal
	line int
	col  int
}

// lexer splits t-spec text into tokens. Line comments start with // and run
// to end of line, matching the paper's Figure 3 annotations.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lexError reports a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("tspec: %d:%d: %s", e.line, e.col, e.msg)
}

func (l *lexer) errorf(format string, args ...any) error {
	return &lexError{line: l.line, col: l.col, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	c := l.peek()
	switch {
	case c == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: startLine, col: startCol}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: startLine, col: startCol}, nil
	case c == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: startLine, col: startCol}, nil
	case c == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: startLine, col: startCol}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: startLine, col: startCol}, nil
	case c == '<':
		return l.lexEmpty(startLine, startCol)
	case c == '\'' || c == '"':
		return l.lexString(startLine, startCol)
	case c == '-' || c == '+' || (c >= '0' && c <= '9'):
		return l.lexNumber(startLine, startCol)
	case isIdentStart(rune(c)):
		return l.lexIdent(startLine, startCol)
	default:
		return token{}, l.errorf("unexpected character %q", string(c))
	}
}

func (l *lexer) lexEmpty(line, col int) (token, error) {
	const lit = "<empty>"
	if strings.HasPrefix(l.src[l.pos:], lit) {
		for range lit {
			l.advance()
		}
		return token{kind: tokEmpty, text: lit, line: line, col: col}, nil
	}
	return token{}, l.errorf("expected <empty>")
}

func (l *lexer) lexString(line, col int) (token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string literal")
		}
		c := l.advance()
		if c == quote {
			return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
		}
		if c == '\\' && l.pos < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(esc)
			default:
				return token{}, l.errorf("unknown escape \\%s", string(esc))
			}
			continue
		}
		if c == '\n' {
			return token{}, l.errorf("newline in string literal")
		}
		sb.WriteByte(c)
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	if c := l.peek(); c == '-' || c == '+' {
		l.advance()
	}
	digits := 0
	for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
		l.advance()
		digits++
	}
	if l.peek() == '.' {
		l.advance()
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
			digits++
		}
	}
	if digits == 0 {
		return token{}, l.errorf("malformed number")
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.peek())) {
		l.advance()
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '~' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '~' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
