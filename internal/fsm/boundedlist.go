package fsm

import (
	"fmt"
	"strconv"

	"concat/internal/domain"
	"concat/internal/driver"
)

// BoundedListMachine models the ObList component as a finite state machine
// whose states are the concrete element counts 0..capacity — the standard
// FSM idiom for containers, and exactly the construction whose size the
// paper's §3.2 argument is about. Per count state the machine has:
//
//   - AddHead / AddTail transitions up to the capacity,
//   - RemoveHead / RemoveTail transitions down to zero,
//   - a GetCount self-loop (observer).
//
// The machine's size is Θ(capacity): (capacity+1) states and roughly
// 4*capacity + (capacity+1) transitions, versus the component's fixed
// 10-node TFM. Generated tours execute against the real ObList component
// (see SuiteFromTour), so the comparison is between live, working models.
func BoundedListMachine(capacity int) (*Machine, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("fsm: capacity %d must be positive", capacity)
	}
	state := func(n int) State { return State("s" + strconv.Itoa(n)) }
	m := New("ObList", state(0))
	for n := 0; n <= capacity; n++ {
		m.AddState(state(n))
		if err := m.AddTransition(Transition{
			From: state(n), Method: "GetCount", To: state(n),
		}); err != nil {
			return nil, err
		}
		if n < capacity {
			for _, method := range []string{"AddHead", "AddTail"} {
				if err := m.AddTransition(Transition{
					From:   state(n),
					Method: method,
					Args:   []domain.Value{domain.Int(int64(n + 1))},
					To:     state(n + 1),
				}); err != nil {
					return nil, err
				}
			}
		}
		if n > 0 {
			for _, method := range []string{"RemoveHead", "RemoveTail"} {
				if err := m.AddTransition(Transition{
					From: state(n), Method: method, To: state(n - 1),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// SuiteFromTour lowers an all-transitions tour onto an executable suite for
// the modelled component: each sequence becomes one birth-to-death test
// case (constructor, the tour's method calls, destructor).
func SuiteFromTour(m *Machine, tours []TestSequence, ctor, ctorID, dtor, dtorID string) *driver.Suite {
	suite := &driver.Suite{
		Component: m.Name(),
		Criterion: "fsm-all-transitions",
	}
	for i, tour := range tours {
		tc := driver.TestCase{
			ID:          "TC" + strconv.Itoa(i),
			Transaction: "fsm:" + tour.Target.key(),
		}
		tc.Calls = append(tc.Calls, driver.Call{MethodID: ctorID, Method: ctor})
		for _, step := range tour.Steps {
			tc.Calls = append(tc.Calls, driver.Call{
				MethodID: step.Method,
				Method:   step.Method,
				Args:     append([]domain.Value(nil), step.Args...),
			})
		}
		tc.Calls = append(tc.Calls, driver.Call{MethodID: dtorID, Method: dtor})
		suite.Cases = append(suite.Cases, tc)
	}
	return suite
}
